/**
 * @file
 * Ablation of the device/circuit design tradeoffs discussed in paper
 * Sec. V-C: crossbar supply voltage and interconnect parasitics trade
 * dot-product fidelity against energy. Reproduced with the full nodal
 * (Gauss-Seidel) crossbar solve:
 *
 *  - higher wire resistance / larger arrays -> more IR-drop error;
 *  - raising the read voltage does not fix the *relative* IR-drop but
 *    raises energy quadratically -- the reason NEBULA's magneto-metallic
 *    neurons (low input resistance) and low-voltage MTJ reads matter;
 *  - lowering crossbar conductance (thicker MTJ oxide) reduces both the
 *    error and the energy, at the cost of read-current margin.
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "circuit/crossbar.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "common/units.hpp"

#include "bench_common.hpp"

namespace nebula {
namespace {

struct FidelityResult
{
    double maxRelError = 0.0;
    double energy = 0.0;
};

FidelityResult
measure(int size, double wire_ohm, double read_v, double oxide_nm)
{
    CrossbarParams p;
    p.rows = p.cols = size;
    p.wireResistance = wire_ohm;
    p.readVoltage = read_v;
    p.mtj.oxideThickness = oxide_nm * units::nm;

    CrossbarArray xbar(p);
    Rng rng(991);
    std::vector<float> weights(static_cast<size_t>(size) * size);
    for (auto &w : weights)
        w = static_cast<float>(rng.uniform(-1.0, 1.0));
    xbar.programWeights(weights);

    std::vector<double> inputs(static_cast<size_t>(size));
    for (auto &x : inputs)
        x = rng.uniform(0.0, 1.0);

    const auto ideal = xbar.evaluateIdeal(inputs, 110 * units::ns);
    const auto real = xbar.evaluateParasitic(inputs, 110 * units::ns,
                                             600, 1e-10);
    FidelityResult result;
    result.energy = real.energy;
    double scale = 0.0;
    for (double i : ideal.currents)
        scale = std::max(scale, std::abs(i));
    for (int j = 0; j < size; ++j)
        result.maxRelError =
            std::max(result.maxRelError,
                     std::abs(real.currents[j] - ideal.currents[j]) /
                         scale);
    return result;
}

void
report()
{
    Table size_sweep("Ablation: array size vs dot-product fidelity "
                     "(wire 2.5 ohm/cell, 0.25 V)",
                     {"array", "max rel error", "energy/eval (pJ)"});
    for (int size : {16, 32, 64, 128}) {
        const auto r = measure(size, 2.5, 0.25, 1.0);
        size_sweep.row()
            .add(std::to_string(size) + "x" + std::to_string(size))
            .add(formatDouble(100 * r.maxRelError, 2) + "%")
            .add(toPj(r.energy), 2);
    }
    size_sweep.print(std::cout);

    Table wire_sweep("Ablation: wire resistance vs fidelity (64x64)",
                     {"ohm/cell", "max rel error", "energy/eval (pJ)"});
    for (double ohm : {0.5, 1.0, 2.5, 5.0, 10.0}) {
        const auto r = measure(64, ohm, 0.25, 1.0);
        wire_sweep.row()
            .add(ohm, 1)
            .add(formatDouble(100 * r.maxRelError, 2) + "%")
            .add(toPj(r.energy), 2);
    }
    wire_sweep.print(std::cout);

    Table voltage_sweep("Ablation: read voltage vs energy (64x64, "
                        "2.5 ohm/cell)",
                        {"V_read", "max rel error", "energy/eval (pJ)"});
    for (double v : {0.1, 0.25, 0.5, 0.75}) {
        const auto r = measure(64, 2.5, v, 1.0);
        voltage_sweep.row()
            .add(v, 2)
            .add(formatDouble(100 * r.maxRelError, 2) + "%")
            .add(toPj(r.energy), 2);
    }
    voltage_sweep.print(std::cout);

    Table oxide_sweep("Ablation: MTJ oxide thickness (conductance range) "
                      "vs fidelity/energy (64x64)",
                      {"t_ox (nm)", "max rel error", "energy/eval (pJ)"});
    for (double t : {0.9, 1.0, 1.1, 1.2}) {
        const auto r = measure(64, 2.5, 0.25, t);
        oxide_sweep.row()
            .add(t, 2)
            .add(formatDouble(100 * r.maxRelError, 2) + "%")
            .add(toPj(r.energy), 2);
    }
    oxide_sweep.print(std::cout);
    std::cout << "Expected: error grows with array size and wire\n"
                 "resistance; energy grows ~V^2 with the read voltage\n"
                 "while the relative IR-drop error stays, and a thicker\n"
                 "oxide (lower conductance) trades read margin for both\n"
                 "lower error and lower energy (paper Sec. V-C).\n";
}

void
BM_ParasiticSolve64(benchmark::State &state)
{
    CrossbarParams p;
    p.rows = p.cols = 64;
    CrossbarArray xbar(p);
    Rng rng(3);
    std::vector<float> w(64 * 64);
    for (auto &x : w)
        x = static_cast<float>(rng.uniform(-1.0, 1.0));
    xbar.programWeights(w);
    std::vector<double> inputs(64, 0.7);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            xbar.evaluateParasitic(inputs, 110 * units::ns, 200, 1e-8)
                .currents[0]);
}
BENCHMARK(BM_ParasiticSolve64)->Unit(benchmark::kMillisecond);

void
BM_IdealEval128(benchmark::State &state)
{
    CrossbarParams p;
    CrossbarArray xbar(p);
    Rng rng(4);
    std::vector<float> w(128 * 128);
    for (auto &x : w)
        x = static_cast<float>(rng.uniform(-1.0, 1.0));
    xbar.programWeights(w);
    std::vector<double> inputs(128, 0.6);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            xbar.evaluateIdeal(inputs, 110 * units::ns).currents[0]);
}
BENCHMARK(BM_IdealEval128)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
