/**
 * @file
 * Ablation of NEBULA's two key architectural choices (DESIGN.md):
 *
 *  1. Morphable tiles (paper Sec. IV-B2): adaptive 1/2/4/8/16 AC
 *     chaining vs a rigid design where every kernel occupies a full
 *     16-AC super-tile chain. Expected: the rigid design wastes
 *     crossbars and cores on small-Rf layers (MobileNet worst).
 *
 *  2. NU hierarchy (paper Sec. IV-B3): current-domain partial-sum
 *     aggregation vs digitizing every chained crossbar's partial sum
 *     (the ISAAC/INXS-style organization). Expected: the ADC-everywhere
 *     design pays a large ADC + reduction energy tax on every large-Rf
 *     layer.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"

namespace nebula {
namespace {

InferenceEnergy
evaluateWith(const MapperOptions &options, const std::string &model_name,
             long long *cores_out = nullptr)
{
    Network net = buildPaperModel(model_name);
    const int spatial = (model_name == "alexnet") ? 64 : 32;
    Tensor x({1, 3, spatial, spatial});
    net.forward(x);

    LayerMapper mapper({}, options);
    const auto mapping = mapper.map(net);
    if (cores_out) {
        *cores_out = 0;
        for (const auto &layer : mapping.layers)
            *cores_out += layer.coresNeeded;
    }
    EnergyModel model;
    return model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
}

void
report()
{
    Table table("Ablation: morphable tiles and NU hierarchy (ANN mode)",
                {"model", "design", "energy (uJ)", "vs NEBULA",
                 "cores used"});

    for (const char *name : {"vgg13", "mobilenet", "alexnet"}) {
        long long cores_full = 0, cores_rigid = 0, cores_adc = 0;
        const auto full = evaluateWith({}, name, &cores_full);

        MapperOptions rigid;
        rigid.morphableTiles = false;
        const auto no_morph = evaluateWith(rigid, name, &cores_rigid);

        MapperOptions no_nu;
        no_nu.nuHierarchy = false;
        const auto adc_everywhere = evaluateWith(no_nu, name, &cores_adc);

        auto add = [&](const char *design, const InferenceEnergy &e,
                       long long cores) {
            table.row()
                .add(name)
                .add(design)
                .add(toUj(e.totalEnergy), 3)
                .add(formatRatio(e.totalEnergy / full.totalEnergy))
                .add(cores);
        };
        add("NEBULA (both on)", full, cores_full);
        add("rigid tiles", no_morph, cores_rigid);
        add("ADC per crossbar", adc_everywhere, cores_adc);
    }
    table.print(std::cout);
    std::cout << "Expected: removing the NU hierarchy costs substantial\n"
                 "ADC/reduction energy on every chained layer; removing\n"
                 "the morphable tiles wastes crossbars and neural cores\n"
                 "(area and leakage) even though read energy tracks the\n"
                 "programmed cells.\n";
}

void
BM_MapperAblation(benchmark::State &state)
{
    for (auto _ : state) {
        MapperOptions rigid;
        rigid.morphableTiles = false;
        benchmark::DoNotOptimize(
            evaluateWith(rigid, "vgg13").totalEnergy);
    }
}
BENCHMARK(BM_MapperAblation)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
