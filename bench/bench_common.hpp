/**
 * @file
 * Shared helpers for the benchmark harness: scaled benchmark-model
 * training with on-disk caching (so the table/figure regenerators stay
 * fast on re-runs), mapped-model construction and activity measurement.
 *
 * Scaling policy: energy/power/mapping studies always use the paper's
 * FULL-SIZE topologies (they depend only on layer geometry + activity
 * statistics). Accuracy studies (Tables I/II, Figs. 9/10) use
 * width/resolution-scaled variants trained on the synthetic datasets,
 * with timestep counts scaled accordingly; the printed tables carry the
 * paper's reference numbers alongside for comparison.
 */

#ifndef NEBULA_BENCH_COMMON_HPP
#define NEBULA_BENCH_COMMON_HPP

#include <cstdio>
#include <ctime>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <string>

#include "arch/energy_model.hpp"
#include "arch/mapping.hpp"
#include "common/json.hpp"
#include "common/logging.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "snn/convert.hpp"
#include "snn/snn_sim.hpp"

namespace nebula {
namespace bench {

/**
 * Scalar results this benchmark binary wants persisted alongside its
 * printed tables. record() during the study, writeBenchSummary() at the
 * end of main.
 */
inline StatGroup &
benchStats()
{
    static StatGroup stats("bench");
    return stats;
}

/** Record one named scalar result (repeat calls accumulate samples). */
inline void
record(const std::string &name, double value)
{
    benchStats().scalar(name).sample(value);
}

/** Current wall-clock time as ISO-8601 UTC ("2026-02-03T04:05:06Z"). */
inline std::string
isoUtcNow()
{
    const std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

/** `git rev-parse --short HEAD` of the CWD's repo; "unknown" outside one. */
inline std::string
gitShortRev()
{
    FILE *pipe =
        ::popen("git rev-parse --short HEAD 2>/dev/null", "r");
    if (!pipe)
        return "unknown";
    char buf[64] = {0};
    std::string rev;
    if (std::fgets(buf, sizeof(buf), pipe))
        rev = buf;
    ::pclose(pipe);
    while (!rev.empty() && (rev.back() == '\n' || rev.back() == '\r'))
        rev.pop_back();
    return rev.empty() ? "unknown" : rev;
}

/**
 * Write the recorded results as BENCH_<basename(argv0)>.json in the
 * working directory. Always records a "completed" scalar first, so
 * every benchmark emits at least one metric even if its study recorded
 * nothing explicitly. Every summary carries a "meta" section stamping
 * when it was produced and from which commit, so a regression checker
 * comparing two BENCH files can tell which builds it is comparing.
 */
inline void
writeBenchSummary(const char *argv0)
{
    std::string base = argv0 ? argv0 : "bench";
    const size_t slash = base.find_last_of('/');
    if (slash != std::string::npos)
        base = base.substr(slash + 1);
    record("completed", 1.0);
    const std::string path = "BENCH_" + base + ".json";

    // Splice a meta object into the StatGroup JSON (which renders as
    // {"scalars":..., "histograms":...}) right after the opening brace.
    std::string body = benchStats().toJson();
    const size_t brace = body.find('{');
    bool ok = brace != std::string::npos;
    if (ok) {
        const std::string meta = "\"meta\":{\"generatedAtUtc\":" +
                                 json::quoted(isoUtcNow()) +
                                 ",\"gitRev\":" +
                                 json::quoted(gitShortRev()) + "},";
        body.insert(brace + 1, meta);
        std::ofstream out(path);
        ok = static_cast<bool>(out << body << "\n");
    }
    if (ok)
        std::cout << "\nwrote " << path << "\n";
    else
        NEBULA_WARN("could not write ", path);
}

/** Cache directory for trained scaled models. */
inline std::string
cachePath(const std::string &tag)
{
    return "/tmp/nebula_bench_" + tag + ".bin";
}

/**
 * Train (or load from cache) a model on a dataset.
 *
 * @param tag      Cache key; delete /tmp/nebula_bench_<tag>.bin to force
 *                 retraining.
 * @param builder  Fresh-network factory (same topology every call).
 * @param train    Training set.
 * @param epochs   Epochs if training is needed.
 */
inline Network
trainedModel(const std::string &tag, const std::function<Network()> &builder,
             const Dataset &train, int epochs, double lr = 0.06)
{
    Network net = builder();
    if (net.load(cachePath(tag)))
        return net;

    TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.batchSize = 32;
    cfg.learningRate = lr;
    SgdTrainer trainer(cfg);
    trainer.train(net, train);
    net.save(cachePath(tag));
    return net;
}

/** Forward once to fix geometry, then map. */
inline NetworkMapping
mapFullModel(Network &net, int channels, int spatial)
{
    Tensor x({1, channels, spatial, spatial});
    net.forward(x);
    return LayerMapper().map(net);
}

/** Build + map one of the paper's full-size models by name. */
inline NetworkMapping
mapPaperModel(const std::string &name)
{
    Network net = buildPaperModel(name);
    const int spatial = (name == "alexnet") ? 64 : 32;
    const int channels = (name == "mlp3" || name == "lenet5") ? 1 : 3;
    const int sp = (name == "mlp3" || name == "lenet5") ? 28 : spatial;
    return mapFullModel(net, channels, sp);
}

/**
 * Measure a per-weight-layer SNN input-activity profile by running a
 * trained scaled model's converted SNN on a few images, then
 * interpolating onto a target layer count. Falls back to the synthetic
 * decaying profile when no measurement is available.
 */
inline ActivityProfile
measuredSnnProfile(SnnSimulator &sim, const Dataset &data, int images,
                   int timesteps, size_t target_layers)
{
    std::vector<double> activity;
    for (int i = 0; i < images; ++i) {
        const auto result = sim.run(data.image(i), timesteps);
        if (activity.empty())
            activity.assign(result.ifActivity.size(), 0.0);
        for (size_t k = 0; k < result.ifActivity.size(); ++k)
            activity[k] += result.ifActivity[k] / images;
    }
    // Input layer activity ~ mean pixel rate; prepend it, then resample.
    activity.insert(activity.begin(), 0.3);

    ActivityProfile profile;
    profile.inputActivity.resize(target_layers);
    for (size_t i = 0; i < target_layers; ++i) {
        const double pos = target_layers > 1
                               ? static_cast<double>(i) *
                                     (activity.size() - 1) /
                                     (target_layers - 1)
                               : 0.0;
        const size_t lo = static_cast<size_t>(pos);
        const size_t hi = std::min(lo + 1, activity.size() - 1);
        const double frac = pos - lo;
        profile.inputActivity[i] =
            activity[lo] * (1 - frac) + activity[hi] * frac;
    }
    return profile;
}

} // namespace bench
} // namespace nebula

#endif // NEBULA_BENCH_COMMON_HPP
