/**
 * @file
 * Reproduces paper Fig. 1(b): DW-MTJ device characteristics -- domain
 * wall displacement (and resulting conductance change) versus
 * programming current magnitude, showing the linear regime above the
 * critical current (device calibrated per Emori et al. geometry).
 *
 * Also microbenchmarks the device kernels (DW pulse, synapse program).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "common/table.hpp"
#include "common/units.hpp"
#include "device/domain_wall.hpp"
#include "device/mtj.hpp"
#include "device/synapse_device.hpp"

#include "bench_common.hpp"

namespace nebula {
namespace {

void
printDeviceCharacteristics()
{
    DwTrackParams track;
    MtjStack mtj((MtjParams()));
    const double pulse = 110 * units::ns;
    const double i_crit =
        track.criticalDensity * track.hmCrossSection();

    Table table("Fig 1(b): DW displacement & conductance vs programming "
                "current (110 ns pulse)",
                {"I_prog (uA)", "I/I_crit", "displacement (nm)",
                 "states moved", "G (uS)", "dG/dI (nm/uA)"});

    double prev_disp = 0.0, prev_current = 0.0;
    for (double factor : {0.5, 0.9, 1.0, 1.2, 1.5, 2.0, 2.5, 3.0, 3.5,
                          4.0, 5.0, 6.0}) {
        const double current = factor * i_crit;
        DomainWallTrack dw(track);
        const double disp = dw.applyCurrent(current, pulse);
        const double g =
            mtj.conductanceAt(dw.pinnedPosition() / track.length);
        const double slope =
            (current > prev_current && factor > 1.0)
                ? (disp - prev_disp) / (current - prev_current) /
                      (units::nm / units::uA)
                : 0.0;
        table.row()
            .add(current / units::uA, 3)
            .add(factor, 2)
            .add(disp / units::nm, 2)
            .add(static_cast<long long>(dw.stateIndex()))
            .add(g / units::uS, 3)
            .add(slope, 3);
        prev_disp = disp;
        prev_current = current;
    }
    table.print(std::cout);
    std::cout << "Expected shape: zero displacement below I_crit, then\n"
                 "displacement (and conductance) linear in overdrive\n"
                 "current -- constant dG/dI slope (paper Fig. 1b).\n";

    Table states("16-state synapse programming (20 nm pinning grid)",
                 {"level", "G (uS)", "program pulses", "energy (fJ)"});
    for (int level : {0, 3, 7, 11, 15}) {
        SynapseDevice dev;
        const int pulses = dev.program(level, 16);
        states.row()
            .add(static_cast<long long>(level))
            .add(dev.conductance() / units::uS, 3)
            .add(static_cast<long long>(pulses))
            .add(dev.programEnergy() / units::fJ, 1);
    }
    states.print(std::cout);
}

void
BM_DomainWallPulse(benchmark::State &state)
{
    DwTrackParams p;
    DomainWallTrack track(p);
    const double current = 2.0 * p.criticalDensity * p.hmCrossSection();
    for (auto _ : state) {
        track.applyCurrent(current, 1 * units::ns);
        if (track.position() >= p.length)
            track.reset();
        benchmark::DoNotOptimize(track.position());
    }
}
BENCHMARK(BM_DomainWallPulse);

void
BM_SynapseProgram(benchmark::State &state)
{
    int level = 0;
    for (auto _ : state) {
        SynapseDevice dev;
        dev.program(level, 16);
        benchmark::DoNotOptimize(dev.conductance());
        level = (level + 7) % 16;
    }
}
BENCHMARK(BM_SynapseProgram);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::printDeviceCharacteristics();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
