/**
 * @file
 * Reproduces paper Fig. 4: layer-wise average neuron spiking activity
 * (spikes per neuron per timestep) of a converted VGG SNN. Expected
 * shape: activity decreases going deeper into the network, which is
 * why the deeper layers consume less dynamic power on event-driven
 * hardware.
 *
 * Substitution: a width/resolution-scaled VGG-13 trained on the
 * synthetic CIFAR-like texture dataset (the paper's full-size
 * CIFAR-trained VGG is not trainable in this environment); the
 * depth-decay shape is what is being reproduced.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"

namespace nebula {
namespace {

void
report()
{
    SyntheticTextures train_set(500, 10, 16, 3, 1601);
    Network net = bench::trainedModel(
        "fig04_vgg13s",
        [] { return buildVgg13(16, 3, 10, 0.25f, 42); }, train_set, 3);

    const Tensor calibration = train_set.firstImages(48);
    SpikingModel model = convertToSnn(net, calibration);
    SnnSimulator sim(model, 1.0, 404);

    const int timesteps = 60;
    const int images = 3;
    std::vector<double> activity;
    for (int i = 0; i < images; ++i) {
        const auto result = sim.run(train_set.image(i), timesteps);
        if (activity.empty())
            activity.assign(result.ifActivity.size(), 0.0);
        for (size_t k = 0; k < result.ifActivity.size(); ++k)
            activity[k] += result.ifActivity[k] / images;
    }

    Table table("Fig 4: layer-wise average spiking activity "
                "(VGG-13 scaled, T=60)",
                {"IF layer", "after", "spikes/neuron/step", "bar"});
    for (size_t k = 0; k < activity.size(); ++k) {
        const int net_index = model.ifLayerIndices[k];
        const int src = model.sourceLayerOf[static_cast<size_t>(net_index)];
        const std::string after =
            src >= 0 ? "relu" : "avgpool";
        const int bar_len = static_cast<int>(activity[k] * 120);
        table.row()
            .add(static_cast<long long>(k + 1))
            .add(after)
            .add(activity[k], 4)
            .add(std::string(static_cast<size_t>(std::max(bar_len, 0)),
                             '#'));
    }
    table.print(std::cout);

    // Shape check: front third vs back third.
    const size_t third = std::max<size_t>(1, activity.size() / 3);
    double front = 0.0, back = 0.0;
    for (size_t k = 0; k < third; ++k)
        front += activity[k] / third;
    for (size_t k = activity.size() - third; k < activity.size(); ++k)
        back += activity[k] / third;
    std::cout << "Mean activity, front third: " << formatDouble(front, 4)
              << "  back third: " << formatDouble(back, 4)
              << (back < front
                      ? "  -- decays with depth, as in paper Fig. 4\n"
                      : "  -- WARNING: no depth decay observed\n");
}

void
BM_SnnTimestep(benchmark::State &state)
{
    SyntheticTextures data(32, 10, 16, 3, 1602);
    Network net = buildVgg13(16, 3, 10, 0.25f, 42);
    SpikingModel model = convertToSnn(net, data.firstImages(16));
    SnnSimulator sim(model, 1.0, 405);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.run(data.image(0), 1).totalSpikes);
}
BENCHMARK(BM_SnnTimestep)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
