/**
 * @file
 * Reproduces paper Fig. 9: inference accuracy versus weight
 * discretization levels with activations quantized to 4 bits, for VGG
 * and MobileNet. Expected shape: accuracy collapses at very coarse
 * weights (2-4 levels) and saturates near the floating-point accuracy
 * by 16 levels -- the justification for NEBULA's 4-bit datapath.
 *
 * Substitution: width/resolution-scaled models trained on the synthetic
 * texture dataset (CIFAR-10 stand-in).
 */

#include <benchmark/benchmark.h>

#include <cmath>
#include <iostream>

#include "bench_common.hpp"
#include "nn/quantize.hpp"

namespace nebula {
namespace {

void
reportModel(const std::string &tag, const char *label,
            const std::function<Network()> &builder,
            const Dataset &train_set, const Dataset &test_set, int epochs,
            bool fine_tune)
{
    Network reference = bench::trainedModel(tag, builder, train_set,
                                            epochs);
    const double float_acc = evaluateAccuracy(reference, test_set);
    const Tensor calibration = train_set.firstImages(48);

    Table table(std::string("Fig 9 (") + label +
                    "): accuracy vs weight levels (activations 16-level)",
                {"weight levels", "bits", "accuracy", "delta vs float"});
    table.row()
        .add("float")
        .add("32")
        .add(formatDouble(100 * float_acc, 2) + "%")
        .add("--");
    for (int levels : {2, 4, 6, 8, 12, 16, 32}) {
        Network net = builder();
        NEBULA_ASSERT(net.load(bench::cachePath(tag)),
                      "model cache missing");
        const auto quant = quantizeNetwork(net, calibration, levels, 16);
        // Post-training-quantization fine-tuning (the paper cites [2]);
        // needed for the deep separable model.
        if (fine_tune)
            fineTuneQuantized(net, train_set, quant, 2, 0.01);
        const double acc = evaluateAccuracy(net, test_set);
        table.row()
            .add(static_cast<long long>(levels))
            .add(formatDouble(std::log2(levels), 1))
            .add(formatDouble(100 * acc, 2) + "%")
            .add(formatDouble(100 * (acc - float_acc), 2) + "%");
    }
    table.print(std::cout);
}

void
BM_QuantizeNetwork(benchmark::State &state)
{
    SyntheticTextures data(64, 10, 16, 3, 1901);
    for (auto _ : state) {
        Network net = buildVgg13(16, 3, 10, 0.25f, 42);
        quantizeNetwork(net, data.firstImages(16), 16, 16);
        benchmark::DoNotOptimize(net.numLayers());
    }
}
BENCHMARK(BM_QuantizeNetwork)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    using namespace nebula;
    SyntheticTextures train10(500, 10, 16, 3, 1601);
    SyntheticTextures test10(200, 10, 16, 3, 1701);

    reportModel("fig04_vgg13s", "VGG-13 scaled, CIFAR-10-like",
                [] { return buildVgg13(16, 3, 10, 0.25f, 42); }, train10,
                test10, 3, false);
    reportModel("fig09_mobilenets", "MobileNet-v1 scaled, CIFAR-10-like",
                [] { return buildMobilenetV1(16, 3, 10, 0.25f, 43); },
                train10, test10, 7, true);

    std::cout << "Expected paper shape: near-float accuracy at 16 levels\n"
                 "(4 bits), visible degradation below ~8 levels.\n";
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
