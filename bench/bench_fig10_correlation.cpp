/**
 * @file
 * Reproduces paper Fig. 10: Pearson correlation between ANN and SNN
 * feature maps at increasing depth, for two evidence-integration
 * windows. Expected shape: correlation decays with layer depth, and the
 * longer window maintains higher correlation at every depth -- the
 * motivation for the hybrid SNN-ANN models (Sec. V-B).
 *
 * Substitution: width/resolution-scaled MobileNet-v1 on synthetic
 * textures with proportionally scaled timestep counts (60 vs 160,
 * standing in for the paper's 600 vs 1000).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"

namespace nebula {
namespace {

void
report()
{
    SyntheticTextures train_set(500, 10, 16, 3, 1601);
    Network net = bench::trainedModel(
        "fig09_mobilenets",
        [] { return buildMobilenetV1(16, 3, 10, 0.25f, 43); }, train_set,
        7);

    const Tensor calibration = train_set.firstImages(48);
    SpikingModel model = convertToSnn(net, calibration);
    SnnSimulator sim(model, 1.0, 1010);

    // Depth sample points: IF layers spread across the network
    // (the paper samples layers 1, 5, 20, 28).
    const int n_if = static_cast<int>(model.ifLayerIndices.size());
    std::vector<int> samples = {0, n_if / 4, n_if / 2, 3 * n_if / 4,
                                n_if - 1};

    const int images = 3;
    Table table("Fig 10: ANN/SNN feature-map correlation vs depth "
                "(MobileNet-v1 scaled)",
                {"IF layer (of " + std::to_string(n_if) + ")",
                 "corr @ T=60", "corr @ T=160"});

    std::vector<double> corr_short(samples.size(), 0.0);
    std::vector<double> corr_long(samples.size(), 0.0);

    for (int img = 0; img < images; ++img) {
        const Tensor &image = train_set.image(img);
        // ANN reference maps.
        std::vector<Tensor> ann_maps;
        net.forwardCollect(image.reshaped({1, 3, 16, 16}), ann_maps);

        for (int pass = 0; pass < 2; ++pass) {
            const int T = pass == 0 ? 60 : 160;
            sim.run(image, T);
            for (size_t s = 0; s < samples.size(); ++s) {
                const int k = samples[s];
                const Tensor snn_map = sim.scaledRateMap(k);
                // Matching ANN map: output of the source layer of this
                // IF (the ReLU it replaced), or of the preceding pool.
                const int net_idx = model.ifLayerIndices[
                    static_cast<size_t>(k)];
                int src = model.sourceLayerOf[
                    static_cast<size_t>(net_idx)];
                if (src < 0) // inserted after pool
                    src = model.sourceLayerOf[
                        static_cast<size_t>(net_idx - 1)];
                const double c = correlation(
                    ann_maps[static_cast<size_t>(src)], snn_map);
                (pass == 0 ? corr_short : corr_long)[s] += c / images;
            }
        }
    }

    for (size_t s = 0; s < samples.size(); ++s) {
        table.row()
            .add(static_cast<long long>(samples[s] + 1))
            .add(corr_short[s], 4)
            .add(corr_long[s], 4);
    }
    table.print(std::cout);

    const bool decays = corr_short.back() < corr_short.front();
    const bool longer_better =
        corr_long.back() >= corr_short.back() - 0.02;
    std::cout << (decays ? "Correlation decays with depth ✓"
                         : "WARNING: no depth decay")
              << (longer_better
                      ? "; longer window >= shorter at depth ✓ "
                        "(paper Fig. 10 shape)\n"
                      : "; WARNING: longer window not better\n");
}

void
BM_RateMapExtraction(benchmark::State &state)
{
    SyntheticTextures data(16, 10, 16, 3, 1603);
    Network net = buildMobilenetV1(16, 3, 10, 0.25f, 43);
    SpikingModel model = convertToSnn(net, data.firstImages(8));
    SnnSimulator sim(model, 1.0, 1011);
    sim.run(data.image(0), 5);
    for (auto _ : state)
        benchmark::DoNotOptimize(sim.scaledRateMap(0).size());
}
BENCHMARK(BM_RateMapExtraction)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
