/**
 * @file
 * Reproduces paper Fig. 12: layer-wise energy of ISAAC (4-bit adapted)
 * normalized to NEBULA-ANN, for AlexNet and MobileNet-v1. Expected
 * shape: NEBULA wins on every layer; MobileNet's depthwise (even) layers
 * save more than the pointwise (odd) ones; AlexNet's spilled large-Rf
 * layers show the smallest savings.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/isaac.hpp"
#include "bench_common.hpp"

namespace nebula {
namespace {

void
reportModel(const std::string &name, const std::string &title)
{
    NetworkMapping mapping = bench::mapPaperModel(name);
    EnergyModel model;
    IsaacModel isaac;

    const auto act = ActivityProfile::uniform(mapping.layers.size(), 0.5);
    const auto nebula_e = model.evaluateAnn(mapping, act);
    const auto isaac_e = isaac.evaluate(mapping, 0.5);

    Table table("Fig 12 (" + title + "): layer-wise ISAAC energy / "
                            "NEBULA-ANN energy",
                {"layer", "name", "Rf", "kernels", "NEBULA (nJ)",
                 "ISAAC (nJ)", "ISAAC/NEBULA"});
    for (size_t i = 0; i < mapping.layers.size(); ++i) {
        table.row()
            .add(static_cast<long long>(i + 1))
            .add(mapping.layers[i].name)
            .add(static_cast<long long>(mapping.layers[i].rf))
            .add(static_cast<long long>(mapping.layers[i].kernels))
            .add(toNj(nebula_e.layers[i].energy), 2)
            .add(toNj(isaac_e.layers[i].energy), 2)
            .add(formatRatio(isaac_e.layers[i].energy /
                             nebula_e.layers[i].energy));
    }
    table.print(std::cout);
    std::cout << "Total: NEBULA " << formatDouble(toUj(nebula_e.totalEnergy), 2)
              << " uJ vs ISAAC " << formatDouble(toUj(isaac_e.totalEnergy), 2)
              << " uJ -> " << formatRatio(isaac_e.totalEnergy /
                                          nebula_e.totalEnergy)
              << " (paper: MobileNet ~7.9x, AlexNet ~2.8x)\n";
}

void
BM_MapAndEvaluateMobileNet(benchmark::State &state)
{
    for (auto _ : state) {
        NetworkMapping mapping = bench::mapPaperModel("mobilenet");
        EnergyModel model;
        const auto result = model.evaluateAnn(
            mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
        benchmark::DoNotOptimize(result.totalEnergy);
    }
}
BENCHMARK(BM_MapAndEvaluateMobileNet)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::reportModel("alexnet", "AlexNet");
    nebula::reportModel("mobilenet", "MobileNet-v1");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
