/**
 * @file
 * Reproduces paper Fig. 13(a): average energy consumption of ISAAC
 * (4-bit adapted) normalized to NEBULA-ANN across the ANN benchmark
 * suite. Expected shape: NEBULA wins everywhere (paper: 2.8x AlexNet up
 * to 7.9x MobileNet); savings are largest for networks dominated by
 * small receptive fields (depthwise/pointwise convolutions).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/isaac.hpp"
#include "bench_common.hpp"

namespace nebula {
namespace {

void
report()
{
    struct Row { const char *id; const char *label; };
    const Row rows[] = {
        {"mlp3", "3-layer MLP (MNIST)"},
        {"lenet5", "LeNet5 (MNIST)"},
        {"vgg13", "VGG-13 (CIFAR-10)"},
        {"mobilenet", "MobileNet-v1 (CIFAR-10)"},
        {"svhn", "SVHN Network"},
        {"alexnet", "AlexNet (ImageNet-like)"},
    };

    EnergyModel model;
    IsaacModel isaac;
    IsaacModel isaac16(IsaacConfig::original16bit());

    Table table("Fig 13(a): ISAAC energy normalized to NEBULA-ANN",
                {"benchmark", "NEBULA (uJ)", "ISAAC-4b (uJ)",
                 "ISAAC-4b/NEBULA", "ISAAC-16b/NEBULA"});
    double worst = 0.0, best = 1e30;
    for (const Row &row : rows) {
        NetworkMapping mapping = bench::mapPaperModel(row.id);
        const auto act =
            ActivityProfile::uniform(mapping.layers.size(), 0.5);
        const auto nebula_e = model.evaluateAnn(mapping, act);
        const auto isaac_e = isaac.evaluate(mapping, 0.5);
        const auto isaac16_e = isaac16.evaluate(mapping, 0.5);
        const double ratio = isaac_e.totalEnergy / nebula_e.totalEnergy;
        worst = std::max(worst, ratio);
        best = std::min(best, ratio);
        table.row()
            .add(row.label)
            .add(toUj(nebula_e.totalEnergy), 3)
            .add(toUj(isaac_e.totalEnergy), 3)
            .add(formatRatio(ratio))
            .add(formatRatio(isaac16_e.totalEnergy /
                             nebula_e.totalEnergy));
    }
    table.print(std::cout);
    std::cout << "NEBULA-ANN is " << formatRatio(best) << " to "
              << formatRatio(worst)
              << " more energy-efficient than 4-bit ISAAC "
                 "(paper: 2.8x to 7.9x, MobileNet highest).\n";
}

void
BM_IsaacEvaluate(benchmark::State &state)
{
    NetworkMapping mapping = bench::mapPaperModel("vgg13");
    IsaacModel isaac;
    for (auto _ : state)
        benchmark::DoNotOptimize(isaac.evaluate(mapping, 0.5).totalEnergy);
}
BENCHMARK(BM_IsaacEvaluate)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
