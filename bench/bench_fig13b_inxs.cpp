/**
 * @file
 * Reproduces paper Fig. 13(b): layer-wise energy of INXS normalized to
 * NEBULA-SNN for VGGNet. Expected shape: ~45x average savings; fully
 * connected layers save more than convolutional layers (their small Rf
 * avoids NEBULA's ADC path while INXS still pays per-timestep ADC +
 * SRAM membrane traffic); deeper layers benefit from lower spike rates.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "baselines/inxs.hpp"
#include "bench_common.hpp"

namespace nebula {
namespace {

void
report()
{
    NetworkMapping mapping = bench::mapPaperModel("vgg13");
    EnergyModel model;
    InxsModel inxs;
    const int timesteps = 300; // paper Table I: VGG-13 / CIFAR-10

    const auto act = ActivityProfile::decaying(mapping.layers.size());
    const auto nebula_e = model.evaluateSnn(mapping, act, timesteps);
    const auto inxs_e = inxs.evaluate(mapping, act.inputActivity,
                                      timesteps);

    Table table("Fig 13(b): layer-wise INXS energy / NEBULA-SNN energy "
                "(VGG-13, T=300)",
                {"layer", "name", "activity", "NEBULA (nJ)", "INXS (nJ)",
                 "INXS/NEBULA"});
    double conv_sum = 0.0, fc_sum = 0.0;
    int conv_n = 0, fc_n = 0;
    for (size_t i = 0; i < mapping.layers.size(); ++i) {
        const double ratio =
            inxs_e.layers[i].energy / nebula_e.layers[i].energy;
        if (mapping.layers[i].kind == LayerKind::Linear) {
            fc_sum += ratio;
            ++fc_n;
        } else {
            conv_sum += ratio;
            ++conv_n;
        }
        table.row()
            .add(static_cast<long long>(i + 1))
            .add(mapping.layers[i].name)
            .add(act.inputActivity[i], 3)
            .add(toNj(nebula_e.layers[i].energy), 1)
            .add(toNj(inxs_e.layers[i].energy), 1)
            .add(formatRatio(ratio));
    }
    table.print(std::cout);
    std::cout << "Average INXS/NEBULA-SNN = "
              << formatRatio(inxs_e.totalEnergy / nebula_e.totalEnergy)
              << " (paper: ~45x).  conv layers avg "
              << formatRatio(conv_sum / conv_n) << ", FC layers avg "
              << formatRatio(fc_sum / fc_n)
              << " -- FC saves more, as in the paper.\n";
    std::cout << "NEBULA advantage sources: no per-timestep ADC of "
                 "membrane increments,\nno SRAM membrane "
                 "read-modify-write (the DW position IS the membrane).\n";
}

void
BM_InxsEvaluate(benchmark::State &state)
{
    NetworkMapping mapping = bench::mapPaperModel("vgg13");
    InxsModel inxs;
    const auto act = ActivityProfile::decaying(mapping.layers.size());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            inxs.evaluate(mapping, act.inputActivity, 300).totalEnergy);
}
BENCHMARK(BM_InxsEvaluate)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
