/**
 * @file
 * Reproduces paper Fig. 14: layer-wise peak power of NEBULA-ANN
 * relative to NEBULA-SNN across the benchmark models. Expected shape:
 * ANN peak power is an order of magnitude above SNN on every layer (the
 * paper reports up to ~50x), because ANN drives every row with
 * multi-level 0.75 V DACs each cycle while SNN drives only spiking rows
 * with 1-bit 0.25 V drivers.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <iostream>

#include "bench_common.hpp"

namespace nebula {
namespace {

void
reportModel(const char *id, const char *label)
{
    NetworkMapping mapping = bench::mapPaperModel(id);
    EnergyModel model;
    const auto ann = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    const auto snn = model.evaluateSnn(
        mapping, ActivityProfile::decaying(mapping.layers.size()), 100);

    Table table(std::string("Fig 14 (") + label +
                    "): layer-wise peak power, ANN vs SNN",
                {"layer", "name", "ANN peak (mW)", "SNN peak (mW)",
                 "ANN/SNN"});
    double max_ratio = 0.0, sum_ratio = 0.0;
    for (size_t i = 0; i < mapping.layers.size(); ++i) {
        const double ratio =
            ann.layers[i].peakPower / snn.layers[i].peakPower;
        max_ratio = std::max(max_ratio, ratio);
        sum_ratio += ratio;
        table.row()
            .add(static_cast<long long>(i + 1))
            .add(mapping.layers[i].name)
            .add(toMw(ann.layers[i].peakPower), 3)
            .add(toMw(snn.layers[i].peakPower), 3)
            .add(formatRatio(ratio));
    }
    table.print(std::cout);
    bench::record(std::string(id) + ".mean_peak_ratio",
                  sum_ratio / mapping.layers.size());
    bench::record(std::string(id) + ".max_peak_ratio", max_ratio);
    std::cout << label << ": mean peak-power ratio "
              << formatRatio(sum_ratio / mapping.layers.size())
              << ", max " << formatRatio(max_ratio)
              << " (paper: up to ~50x).\n";
}

void
BM_PeakPowerSweep(benchmark::State &state)
{
    NetworkMapping mapping = bench::mapPaperModel("vgg13");
    EnergyModel model;
    const auto act = ActivityProfile::decaying(mapping.layers.size());
    for (auto _ : state) {
        double sum = 0.0;
        for (size_t i = 0; i < mapping.layers.size(); ++i)
            sum += model.layerActivePower(mapping.layers[i], Mode::SNN,
                                          act.inputActivity[i]);
        benchmark::DoNotOptimize(sum);
    }
}
BENCHMARK(BM_PeakPowerSweep);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::reportModel("mlp3", "3-layer MLP");
    nebula::reportModel("lenet5", "LeNet5");
    nebula::reportModel("vgg13", "VGG-13");
    nebula::reportModel("mobilenet", "MobileNet-v1");
    nebula::reportModel("svhn", "SVHN Network");
    nebula::reportModel("alexnet", "AlexNet");
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
