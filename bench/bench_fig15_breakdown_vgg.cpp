/**
 * @file
 * Reproduces paper Fig. 15: component-wise energy breakdown of VGGNet
 * on NEBULA in (a) SNN and (b) ANN modes. Expected shape: in SNN mode
 * the memories (SRAM buffers + eDRAM) dominate and the single ADC's
 * share grows (~12%) because it stays busy across all timesteps; in ANN
 * mode the crossbars + DACs dominate (~65% combined in the paper).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"

namespace nebula {
namespace {

void
printBreakdown(const char *title, const InferenceEnergy &result)
{
    Table table(title, {"component", "energy (uJ)", "share"});
    for (const auto &kv : result.byComponent) {
        table.row()
            .add(kv.first)
            .add(toUj(kv.second), 4)
            .add(formatDouble(100.0 * kv.second / result.totalEnergy, 1) +
                 "%");
    }
    table.row().add("TOTAL").add(toUj(result.totalEnergy), 4).add("100%");
    table.print(std::cout);
}

void
printLayerwise(const char *title, const NetworkMapping &mapping,
               const InferenceEnergy &result)
{
    Table table(title, {"layer", "crossbar", "driver/dac", "sram",
                        "edram", "adc", "other", "total (nJ)"});
    for (size_t i = 0; i < result.layers.size(); ++i) {
        const auto &layer = result.layers[i];
        auto share = [&](const char *name) {
            auto it = layer.byComponent.find(name);
            const double v =
                it == layer.byComponent.end() ? 0.0 : it->second;
            return formatDouble(100.0 * v / layer.energy, 1) + "%";
        };
        const double other = layer.byComponent.at("neuron") +
                             layer.byComponent.at("ru") +
                             layer.byComponent.at("noc");
        table.row()
            .add(mapping.layers[i].name)
            .add(share("crossbar"))
            .add(share("driver/dac"))
            .add(share("sram"))
            .add(share("edram"))
            .add(share("adc"))
            .add(formatDouble(100.0 * other / layer.energy, 1) + "%")
            .add(toNj(layer.energy), 1);
    }
    table.print(std::cout);
}

void
report()
{
    NetworkMapping mapping = bench::mapPaperModel("vgg13");
    EnergyModel model;

    const auto snn = model.evaluateSnn(
        mapping, ActivityProfile::decaying(mapping.layers.size()), 300);
    const auto ann = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));

    printBreakdown("Fig 15(a): VGG-13 SNN-mode component breakdown "
                   "(T=300)",
                   snn);
    printLayerwise("Fig 15(a) layer-wise shares (SNN)", mapping, snn);
    printBreakdown("Fig 15(b): VGG-13 ANN-mode component breakdown", ann);
    printLayerwise("Fig 15(b) layer-wise shares (ANN)", mapping, ann);

    std::cout << "Paper shape check: SNN memory (sram+edram) share "
              << formatDouble(100 * (snn.componentShare("sram") +
                                     snn.componentShare("edram")), 1)
              << "% > ANN "
              << formatDouble(100 * (ann.componentShare("sram") +
                                     ann.componentShare("edram")), 1)
              << "%; ANN crossbar+dac share "
              << formatDouble(100 * (ann.componentShare("crossbar") +
                                     ann.componentShare("driver/dac")), 1)
              << "% (paper ~65%); SNN adc share "
              << formatDouble(100 * snn.componentShare("adc"), 1)
              << "% (paper ~12%).\n";
}

void
BM_BreakdownEvaluate(benchmark::State &state)
{
    NetworkMapping mapping = bench::mapPaperModel("vgg13");
    EnergyModel model;
    const auto act = ActivityProfile::decaying(mapping.layers.size());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            model.evaluateSnn(mapping, act, 300).totalEnergy);
}
BENCHMARK(BM_BreakdownEvaluate)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
