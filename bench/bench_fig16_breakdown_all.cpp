/**
 * @file
 * Reproduces paper Fig. 16: component-wise relative energy breakdown of
 * all benchmark models on NEBULA in (a) SNN and (b) ANN modes. Expected
 * shape (paper): in SNN mode SRAM memories and crossbars followed by
 * eDRAM dominate; in ANN mode crossbars and DACs are the major
 * consumers, consistently across models.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"

namespace nebula {
namespace {

struct ModelCase
{
    const char *id;
    const char *label;
    int timesteps;
};

const ModelCase kModels[] = {
    {"mlp3", "MLP (MNIST)", 50},
    {"lenet5", "LeNet5 (MNIST)", 40},
    {"vgg13", "VGG-13 (C10)", 300},
    {"vgg13-c100", "VGG-13 (C100)", 1000},
    {"mobilenet", "MobileNet (C10)", 500},
    {"mobilenet-c100", "MobileNet (C100)", 1000},
    {"svhn", "SVHN Net", 100},
    {"alexnet", "AlexNet", 500},
};

void
report(Mode mode)
{
    Table table(mode == Mode::SNN
                    ? "Fig 16(a): SNN-mode component shares across models"
                    : "Fig 16(b): ANN-mode component shares across models",
                {"model", "crossbar", "driver/dac", "sram", "edram", "adc",
                 "noc+ru+nu", "total (uJ)"});
    EnergyModel model;
    for (const ModelCase &mc : kModels) {
        NetworkMapping mapping = bench::mapPaperModel(mc.id);
        InferenceEnergy result;
        if (mode == Mode::SNN) {
            result = model.evaluateSnn(
                mapping, ActivityProfile::decaying(mapping.layers.size()),
                mc.timesteps);
        } else {
            result = model.evaluateAnn(
                mapping,
                ActivityProfile::uniform(mapping.layers.size(), 0.5));
        }
        auto pct = [&](double share) {
            return formatDouble(100.0 * share, 1) + "%";
        };
        table.row()
            .add(mc.label)
            .add(pct(result.componentShare("crossbar")))
            .add(pct(result.componentShare("driver/dac")))
            .add(pct(result.componentShare("sram")))
            .add(pct(result.componentShare("edram")))
            .add(pct(result.componentShare("adc")))
            .add(pct(result.componentShare("noc") +
                     result.componentShare("ru") +
                     result.componentShare("neuron")))
            .add(toUj(result.totalEnergy), 2);
    }
    table.print(std::cout);
}

void
BM_AllModelsBreakdown(benchmark::State &state)
{
    EnergyModel model;
    for (auto _ : state) {
        double total = 0.0;
        for (const ModelCase &mc : {kModels[0], kModels[1]}) {
            NetworkMapping mapping = bench::mapPaperModel(mc.id);
            total += model
                         .evaluateSnn(mapping,
                                      ActivityProfile::decaying(
                                          mapping.layers.size()),
                                      mc.timesteps)
                         .totalEnergy;
        }
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_AllModelsBreakdown)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report(nebula::Mode::SNN);
    nebula::report(nebula::Mode::ANN);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
