/**
 * @file
 * Reproduces paper Fig. 17: energy (top axes, normalized to SNN) and
 * average power (bottom axes, normalized to ANN) of SNN vs hybrid vs
 * ANN execution on NEBULA, for AlexNet, VGGNet and the SVHN network.
 *
 * Expected shape: pure-SNN energy is several times the ANN energy (the
 * cost of distributing computation over T timesteps) and hybrids sit in
 * between, improving as more trailing layers move to the ANN domain and
 * as the iso-accuracy timestep count shrinks (paper Table II); power
 * ordering is the reverse -- ANN highest (6.25-10x SNN), hybrids in
 * between.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"

namespace nebula {
namespace {

struct HybridPoint
{
    const char *label;
    int annLayers; //!< 0 = pure SNN, -1 = pure ANN
    int timesteps; //!< iso-accuracy timesteps (paper Table II trend)
};

void
reportModel(const char *id, const char *label, int snn_timesteps,
            const std::vector<HybridPoint> &points)
{
    NetworkMapping mapping = bench::mapPaperModel(id);
    EnergyModel model;
    const auto snn_act = ActivityProfile::decaying(mapping.layers.size());
    const auto ann_act =
        ActivityProfile::uniform(mapping.layers.size(), 0.5);
    const int n = static_cast<int>(mapping.layers.size());

    const auto snn = model.evaluateSnn(mapping, snn_act, snn_timesteps);
    const auto ann = model.evaluateAnn(mapping, ann_act);

    Table table(std::string("Fig 17 (") + label +
                    "): SNN vs hybrid vs ANN",
                {"config", "t-steps", "energy (uJ)", "E/E_snn",
                 "power (mW)", "P/P_ann"});
    auto add_row = [&](const char *name, int t,
                       const InferenceEnergy &r) {
        table.row()
            .add(name)
            .add(static_cast<long long>(t))
            .add(toUj(r.totalEnergy), 2)
            .add(formatRatio(r.totalEnergy / snn.totalEnergy))
            .add(toMw(r.avgPower), 2)
            .add(formatRatio(r.avgPower / ann.avgPower));
    };

    add_row("SNN", snn_timesteps, snn);
    for (const HybridPoint &p : points) {
        const int split = n - p.annLayers;
        // Boundary interface width and accumulated spikes, estimated
        // from the mapped geometry and the activity profile.
        const long long boundary_neurons =
            mapping.layers[static_cast<size_t>(split - 1)].outputElements;
        const double boundary_activity =
            snn_act.inputActivity[static_cast<size_t>(split - 1)];
        const long long boundary_spikes = static_cast<long long>(
            boundary_neurons * boundary_activity * p.timesteps);
        const auto hybrid =
            model.evaluateHybrid(mapping, snn_act, split, p.timesteps,
                                 boundary_neurons, boundary_spikes);
        add_row(p.label, p.timesteps, hybrid);
    }
    add_row("ANN", 1, ann);
    table.print(std::cout);

    std::cout << label << ": E_snn/E_ann = "
              << formatRatio(snn.totalEnergy / ann.totalEnergy)
              << " (paper: ~5-10x), P_ann/P_snn = "
              << formatRatio(ann.avgPower / snn.avgPower)
              << " (paper: 6.25-10x).\n";
}

void
BM_HybridEvaluate(benchmark::State &state)
{
    NetworkMapping mapping = bench::mapPaperModel("vgg13");
    EnergyModel model;
    const auto act = ActivityProfile::decaying(mapping.layers.size());
    const int n = static_cast<int>(mapping.layers.size());
    for (auto _ : state)
        benchmark::DoNotOptimize(
            model.evaluateHybrid(mapping, act, n - 2, 200, 512, 50000)
                .totalEnergy);
}
BENCHMARK(BM_HybridEvaluate)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    using nebula::HybridPoint;
    // Iso-accuracy timesteps follow the paper's Table II trend: more
    // ANN layers -> fewer timesteps needed.
    nebula::reportModel("alexnet", "AlexNet", 500,
                        {{"Hyb-1", 1, 400},
                         {"Hyb-2", 2, 300},
                         {"Hyb-3", 3, 200}});
    nebula::reportModel("vgg13", "VGGNet", 300,
                        {{"Hyb-1", 1, 250},
                         {"Hyb-2", 2, 200},
                         {"Hyb-3", 3, 100}});
    nebula::reportModel("svhn", "SVHN", 100,
                        {{"Hyb-1", 1, 80},
                         {"Hyb-2", 2, 60},
                         {"Hyb-3", 3, 40}});
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
