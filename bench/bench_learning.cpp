/**
 * @file
 * On-device learning study: what the learning subsystem achieves and
 * costs on the device model.
 *
 *  1. Competitive clustering (learning/stdp) on the pixel-clusterable
 *     SyntheticClusters stream, clean vs pinning-drifted arrays via the
 *     learning campaign. Records `clustering.purity.clean` and
 *     `clustering.purity.drift` -- dimensionless, fully seeded, so CI
 *     regresses on them without host-speed dependence -- plus the
 *     pulse/energy bill per presented sample.
 *
 *  2. Chip-in-the-loop supervised fine-tuning (learning/insitu) on an
 *     mlp3 whose crossbars took a retention-decay ramp: accuracy clean /
 *     degraded / tuned and the deterministic `insitu.recovery_ratio`
 *     (fraction of the decay-lost accuracy the tuner wins back), plus
 *     the write-back pulse bill.
 *
 * Also microbenchmarks the incremental-update path (updateCells on a
 * dirty array vs a full re-program) so the cost advantage of in-place
 * learning stays visible.
 *
 * Set NEBULA_BENCH_TINY=1 to shrink to smoke-test size for CI; the
 * committed baseline in bench/baselines was recorded in tiny mode.
 */

#include <benchmark/benchmark.h>

#include <cstdlib>
#include <iostream>
#include <memory>
#include <vector>

#include "arch/chip.hpp"
#include "common/table.hpp"
#include "learning/campaign.hpp"
#include "learning/insitu.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "reliability/fault_model.hpp"

#include "bench_common.hpp"

namespace nebula {
namespace {

/** CI smoke-test mode: tiny shapes, same code paths. */
bool
tinyMode()
{
    const char *env = std::getenv("NEBULA_BENCH_TINY");
    return env != nullptr && env[0] == '1';
}

void
clusteringStudy()
{
    const bool tiny = tinyMode();
    const int image = tiny ? 8 : 12;
    const int samples = tiny ? 120 : 240;
    const double drift = 0.05;

    SyntheticClusters data(samples + 32, 10, image, /*seed=*/52);
    LearningCampaignConfig config;
    config.rates = {0.0, drift};
    config.seeds = {3};
    config.samples = samples;
    config.stdp.epochs = 2;
    config.stdp.timesteps = 12;

    const LearningCampaignResult result = runLearningCampaign(data, config);

    Table table("On-device clustering, clean vs pinning drift",
                {"fault rate", "purity", "pulses/sample", "nJ/sample"});
    for (const LearningCampaignRow &row : result.rows) {
        const double presented = static_cast<double>(row.samples) *
                                 config.stdp.epochs;
        table.row()
            .add(formatDouble(100 * row.rate, 1) + "%")
            .add(formatDouble(row.purity, 3))
            .add(formatDouble(row.updates.pulses / presented, 1))
            .add(formatDouble(1e9 * (row.updates.updateEnergy +
                                     row.readEnergy) /
                                  presented,
                              2));
    }
    table.print(std::cout);

    const double clean = result.meanPurity(0.0);
    const double drifted = result.meanPurity(drift);
    bench::record("clustering.purity.clean", clean);
    bench::record("clustering.purity.drift", drifted);
    bench::record("clustering.update_pulses",
                  static_cast<double>(result.rows[0].updates.pulses));
    bench::record("clustering.update_energy_j",
                  result.rows[0].updates.updateEnergy);
    bench::record("clustering.read_energy_j", result.rows[0].readEnergy);
    std::cout << "purity: clean " << formatDouble(clean, 3) << ", at "
              << formatDouble(100 * drift, 1) << "% drift "
              << formatDouble(drifted, 3) << " (chance 0.100).\n\n";
}

void
insituStudy()
{
    const bool tiny = tinyMode();
    const int image = 12;
    const int calib_n = tiny ? 320 : 480;

    SyntheticDigits train(800, image, /*seed=*/61);
    SyntheticDigits test(tiny ? 120 : 200, image, /*seed=*/62);
    Network proto = bench::trainedModel(
        "learning_mlp3", [&] { return buildMlp3(image, 1, 10, 71); }, train,
        /*epochs=*/8);
    const QuantizationResult quant =
        quantizeNetwork(proto, train.firstImages(64));

    std::vector<Tensor> test_images, calib_images;
    std::vector<int> test_labels, calib_labels;
    for (int i = 0; i < test.size(); ++i) {
        test_images.push_back(test.image(i));
        test_labels.push_back(test.label(i));
    }
    for (int i = 0; i < calib_n; ++i) {
        calib_images.push_back(train.image(i));
        calib_labels.push_back(train.label(i));
    }

    // Clean reference chip.
    Network clean_net = proto.clone();
    NebulaChip clean_chip;
    clean_chip.programAnn(clean_net, quant);
    const double clean = chipAccuracy(clean_chip, test_images, test_labels);

    // Retention-decay ramp shared by the control and tuned chips.
    ReliabilityConfig rel;
    rel.faults = std::make_shared<RetentionDecayFaultModel>(
        /*elapsed=*/0.8, /*tau=*/1.0, /*sigma=*/0.4);
    rel.faultSeed = 99;

    Network control_net = proto.clone();
    NebulaChip control_chip;
    control_chip.setReliability(rel);
    control_chip.programAnn(control_net, quant);
    const double degraded =
        chipAccuracy(control_chip, test_images, test_labels);

    Network tuned_net = proto.clone();
    NebulaChip tuned_chip;
    tuned_chip.setReliability(rel);
    tuned_chip.programAnn(tuned_net, quant);

    InsituConfig ic;
    ic.epochs = 3;
    InsituTuner tuner(tuned_chip, tuned_net, ic);
    const InsituResult run = tuner.tune(calib_images, calib_labels);
    const double tuned = chipAccuracy(tuned_chip, test_images, test_labels);
    const double recovery =
        clean > degraded ? (tuned - degraded) / (clean - degraded) : 1.0;

    Table table("Chip-in-the-loop fine-tuning after retention decay",
                {"chip", "test accuracy"});
    table.row().add("clean").add(formatDouble(100 * clean, 1) + "%");
    table.row().add("decayed (control)").add(
        formatDouble(100 * degraded, 1) + "%");
    table.row().add("decayed + tuned").add(formatDouble(100 * tuned, 1) +
                                           "%");
    table.print(std::cout);

    bench::record("insitu.accuracy.clean", clean);
    bench::record("insitu.accuracy.degraded", degraded);
    bench::record("insitu.accuracy.tuned", tuned);
    bench::record("insitu.recovery_ratio", recovery);
    bench::record("insitu.update_pulses",
                  static_cast<double>(run.updates.pulses));
    bench::record("insitu.update_energy_j", run.updates.updateEnergy);
    bench::record("insitu.chip_forwards",
                  static_cast<double>(run.chipForwards));
    std::cout << "fine-tuning recovered "
              << formatDouble(100 * recovery, 0) << "% of the "
              << formatDouble(100 * (clean - degraded), 1)
              << "-point decay loss (" << run.updates.pulses
              << " pulses, " << run.chipForwards << " chip forwards).\n\n";
}

// ---------------------------------------------------------------------------
// Microbenchmarks: incremental update vs full re-program.
// ---------------------------------------------------------------------------

void
BM_UpdateCellsSparse(benchmark::State &state)
{
    CrossbarParams xp;
    CrossbarArray xbar(xp);
    std::vector<float> weights(
        static_cast<size_t>(xp.rows) * xp.cols, 0.25f);
    xbar.program(weights, {});
    // A 1%-sparse delta batch, the shape one learning step produces.
    std::vector<CellUpdate> ups;
    for (int i = 0; i < xp.rows * xp.cols / 100; ++i)
        ups.push_back({(i * 7) % xp.rows, (i * 13) % xp.cols,
                       (i % 2) ? 1 : -1});
    for (auto _ : state) {
        const UpdateReport report = xbar.updateCells(ups);
        benchmark::DoNotOptimize(report.pulses);
    }
}
BENCHMARK(BM_UpdateCellsSparse)->Unit(benchmark::kMicrosecond);

void
BM_FullReprogram(benchmark::State &state)
{
    CrossbarParams xp;
    CrossbarArray xbar(xp);
    std::vector<float> weights(
        static_cast<size_t>(xp.rows) * xp.cols, 0.25f);
    for (auto _ : state) {
        const ProgramReport report = xbar.program(weights, {});
        benchmark::DoNotOptimize(report.pulses);
    }
}
BENCHMARK(BM_FullReprogram)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    std::cout << "== NEBULA on-device learning bench ==\n\n";
    nebula::clusteringStudy();
    nebula::insituStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
