/**
 * @file
 * Extension study (not a paper figure): simulated mesh-NoC traffic of
 * one inference with the layers placed on the 14x14 chip (paper
 * Fig. 6b), comparing ANN and SNN modes. Replaces the energy model's
 * analytic average-hop estimate with per-packet XY routing including
 * link contention. Expected: SNN rounds move far fewer flits per
 * timestep (sparse 1-bit spikes vs dense 4-bit maps), and spilled
 * layers add partial-sum convergecast traffic.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "arch/placement.hpp"
#include "bench_common.hpp"

namespace nebula {
namespace {

MeshNoc
chipNoc()
{
    NocConfig cfg;
    cfg.width = 14;
    cfg.height = 14;
    return MeshNoc(cfg);
}

void
report()
{
    ChipPlacer placer;
    Table table("Simulated NoC traffic per inference (14x14 mesh)",
                {"model", "mode", "packets", "flits", "energy (nJ)",
                 "avg hops", "avg latency (cyc)", "worst (cyc)",
                 "cores", "fits"});

    for (const char *name : {"svhn", "vgg13", "mobilenet"}) {
        NetworkMapping mapping = bench::mapPaperModel(name);
        const auto ann_act =
            ActivityProfile::uniform(mapping.layers.size(), 0.5);
        const auto snn_act =
            ActivityProfile::decaying(mapping.layers.size());

        for (Mode mode : {Mode::ANN, Mode::SNN}) {
            const auto placement = placer.place(mapping, mode);
            MeshNoc noc = chipNoc();
            const auto stats = simulateInferenceTraffic(
                mapping, placement, noc, mode,
                mode == Mode::ANN ? ann_act : snn_act,
                mode == Mode::SNN ? 10 : 1);
            const std::string key = std::string(name) + "." +
                                    (mode == Mode::ANN ? "ann" : "snn");
            bench::record(key + ".flits",
                          static_cast<double>(stats.flits));
            bench::record(key + ".energy_nj", toNj(stats.energy));
            bench::record(key + ".avg_latency_cyc", stats.avgLatency);
            table.row()
                .add(name)
                .add(mode == Mode::ANN ? "ANN" : "SNN x10 steps")
                .add(stats.packets)
                .add(stats.flits)
                .add(toNj(stats.energy), 2)
                .add(stats.avgHops, 2)
                .add(stats.avgLatency, 1)
                .add(stats.worstLatency)
                .add(placement.coresUsed)
                .add(placement.fits ? "yes" : "wraps");
        }
    }
    table.print(std::cout);
    std::cout << "Note: ANN layers wrap onto the chip's 14 dedicated ANN\n"
                 "cores (time-multiplexed), while the 182 SNN cores hold\n"
                 "whole networks resident -- the reason the paper gives\n"
                 "the SNN fabric 13x more cores.\n";
}

void
BM_TrafficSimulation(benchmark::State &state)
{
    ChipPlacer placer;
    NetworkMapping mapping = bench::mapPaperModel("svhn");
    const auto placement = placer.place(mapping, Mode::SNN);
    const auto act = ActivityProfile::decaying(mapping.layers.size());
    for (auto _ : state) {
        MeshNoc noc = chipNoc();
        benchmark::DoNotOptimize(
            simulateInferenceTraffic(mapping, placement, noc, Mode::SNN,
                                     act, 5)
                .packets);
    }
}
BENCHMARK(BM_TrafficSimulation)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
