/**
 * @file
 * Reproduces paper Sec. IV-D: Monte-Carlo weight-variability study.
 * 10% multiplicative device variation is injected into a fully
 * quantized 16-level network and inference accuracy is measured over
 * several device-corner draws, for both the ANN and the converted SNN.
 * Expected shape (paper): accuracy drops by well under a percent on
 * average (VGG-ANN 90.31%, VGG-SNN 89.41% with noise) -- neuromorphic
 * workloads tolerate analog imprecision.
 *
 * The sweep runs on the reliability subsystem's campaign runner
 * (functional backend): the Gaussian variability model is the
 * FaultModel special case the legacy VariabilityModel wraps, so this
 * study and the stuck-at fault campaigns share one injection path.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "nn/quantize.hpp"
#include "reliability/campaign.hpp"

namespace nebula {
namespace {

void
report()
{
    SyntheticTextures train_set(500, 10, 16, 3, 1601);
    SyntheticTextures test_set(200, 10, 16, 3, 1701);
    Network base = bench::trainedModel(
        "fig04_vgg13s",
        [] { return buildVgg13(16, 3, 10, 0.25f, 42); }, train_set, 3);
    const Tensor calibration = train_set.firstImages(48);

    Network quantized = buildVgg13(16, 3, 10, 0.25f, 42);
    quantized.copyStateFrom(base);
    quantizeNetwork(quantized, calibration, 16, 16);

    // Sweep sigma {0, 0.10} x 5 device corners through the campaign's
    // functional backend (faults applied straight to the weights).
    CampaignConfig ann_cfg;
    ann_cfg.modelFactory = [](double sigma) {
        return std::make_shared<const GaussianVariabilityModel>(sigma);
    };
    ann_cfg.mitigations = {MitigationSpec::none()};
    ann_cfg.runSnn = false;
    ann_cfg.images = 200;

    CampaignConfig snn_cfg = ann_cfg;
    snn_cfg.runAnn = false;
    snn_cfg.runSnn = true;
    snn_cfg.images = 60;
    snn_cfg.timesteps = 80;

    const std::vector<uint64_t> corners{1000, 1001, 1002, 1003, 1004};

    ann_cfg.rates = snn_cfg.rates = {0.0};
    ann_cfg.seeds = snn_cfg.seeds = {55};
    const CampaignResult ann_clean =
        runFunctionalCampaign(quantized, calibration, test_set, ann_cfg);
    const CampaignResult snn_clean =
        runFunctionalCampaign(quantized, calibration, test_set, snn_cfg);
    const double ann_base = ann_clean.meanAccuracy("ann", "none", 0.0);
    const double snn_base = snn_clean.meanAccuracy("snn", "none", 0.0);

    ann_cfg.rates = snn_cfg.rates = {0.10};
    ann_cfg.seeds = snn_cfg.seeds = corners;
    const CampaignResult ann_noisy =
        runFunctionalCampaign(quantized, calibration, test_set, ann_cfg);
    const CampaignResult snn_noisy =
        runFunctionalCampaign(quantized, calibration, test_set, snn_cfg);

    Table table("Sec IV-D: Monte-Carlo 10% weight variability "
                "(quantized VGG-13 scaled)",
                {"trial", "ANN acc", "ANN delta", "SNN acc", "SNN delta"});

    double ann_sum = 0.0, snn_sum = 0.0;
    const size_t trials = corners.size();
    for (size_t trial = 0; trial < trials; ++trial) {
        const double ann_acc = ann_noisy.rows[trial].accuracy;
        const double snn_acc = snn_noisy.rows[trial].accuracy;
        ann_sum += ann_acc;
        snn_sum += snn_acc;
        table.row()
            .add(static_cast<long long>(trial + 1))
            .add(formatDouble(100 * ann_acc, 2) + "%")
            .add(formatDouble(100 * (ann_acc - ann_base), 2) + "%")
            .add(formatDouble(100 * snn_acc, 2) + "%")
            .add(formatDouble(100 * (snn_acc - snn_base), 2) + "%");
    }
    table.row()
        .add("mean")
        .add(formatDouble(100 * ann_sum / trials, 2) + "%")
        .add(formatDouble(100 * (ann_sum / trials - ann_base), 2) + "%")
        .add(formatDouble(100 * snn_sum / trials, 2) + "%")
        .add(formatDouble(100 * (snn_sum / trials - snn_base), 2) + "%");
    table.print(std::cout);
    std::cout << "Clean baselines: ANN "
              << formatDouble(100 * ann_base, 2) << "%, SNN "
              << formatDouble(100 * snn_base, 2)
              << "%.  Paper: 0.74% (ANN) and 0.81% (SNN) mean drop.\n";
}

void
BM_NoiseInjection(benchmark::State &state)
{
    Network net = buildVgg13(16, 3, 10, 0.25f, 42);
    for (auto _ : state) {
        injectWeightNoise(net, 0.10, 5);
        benchmark::DoNotOptimize(net.parameterCount());
    }
}
BENCHMARK(BM_NoiseInjection)->Unit(benchmark::kMillisecond);

void
BM_FaultMapSampling(benchmark::State &state)
{
    const StuckAtFaultModel model(0.01);
    uint64_t seed = 1;
    for (auto _ : state) {
        FaultMap map(128, 132);
        model.sampleInto(map, seed++);
        benchmark::DoNotOptimize(map.cellFaultCount());
    }
}
BENCHMARK(BM_FaultMapSampling)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
