/**
 * @file
 * Reproduces paper Sec. IV-D: Monte-Carlo weight-variability study.
 * 10% multiplicative device variation is injected into a fully
 * quantized 16-level network and inference accuracy is measured over
 * several device-corner draws, for both the ANN and the converted SNN.
 * Expected shape (paper): accuracy drops by well under a percent on
 * average (VGG-ANN 90.31%, VGG-SNN 89.41% with noise) -- neuromorphic
 * workloads tolerate analog imprecision.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "nn/quantize.hpp"

namespace nebula {
namespace {

void
report()
{
    SyntheticTextures train_set(500, 10, 16, 3, 1601);
    SyntheticTextures test_set(200, 10, 16, 3, 1701);
    Network base = bench::trainedModel(
        "fig04_vgg13s",
        [] { return buildVgg13(16, 3, 10, 0.25f, 42); }, train_set, 3);
    const Tensor calibration = train_set.firstImages(48);

    // Clean quantized baselines.
    Network clean_ann = buildVgg13(16, 3, 10, 0.25f, 42);
    clean_ann.copyStateFrom(base);
    quantizeNetwork(clean_ann, calibration, 16, 16);
    const double ann_clean = evaluateAccuracy(clean_ann, test_set);

    SpikingModel clean_snn = convertToSnn(clean_ann, calibration);
    SnnSimulator clean_sim(clean_snn, 1.0, 55);
    const double snn_clean = clean_sim.evaluateAccuracy(test_set, 60, 80);

    Table table("Sec IV-D: Monte-Carlo 10% weight variability "
                "(quantized VGG-13 scaled)",
                {"trial", "ANN acc", "ANN delta", "SNN acc", "SNN delta"});

    const int trials = 5;
    double ann_sum = 0.0, snn_sum = 0.0;
    for (int trial = 0; trial < trials; ++trial) {
        Network noisy = buildVgg13(16, 3, 10, 0.25f, 42);
        noisy.copyStateFrom(base);
        quantizeNetwork(noisy, calibration, 16, 16);
        injectWeightNoise(noisy, 0.10, 1000 + trial);
        const double ann_acc = evaluateAccuracy(noisy, test_set);
        ann_sum += ann_acc;

        SpikingModel snn = convertToSnn(noisy, calibration);
        SnnSimulator sim(snn, 1.0, 77 + trial);
        const double snn_acc = sim.evaluateAccuracy(test_set, 60, 80);
        snn_sum += snn_acc;

        table.row()
            .add(static_cast<long long>(trial + 1))
            .add(formatDouble(100 * ann_acc, 2) + "%")
            .add(formatDouble(100 * (ann_acc - ann_clean), 2) + "%")
            .add(formatDouble(100 * snn_acc, 2) + "%")
            .add(formatDouble(100 * (snn_acc - snn_clean), 2) + "%");
    }
    table.row()
        .add("mean")
        .add(formatDouble(100 * ann_sum / trials, 2) + "%")
        .add(formatDouble(100 * (ann_sum / trials - ann_clean), 2) + "%")
        .add(formatDouble(100 * snn_sum / trials, 2) + "%")
        .add(formatDouble(100 * (snn_sum / trials - snn_clean), 2) + "%");
    table.print(std::cout);
    std::cout << "Clean baselines: ANN "
              << formatDouble(100 * ann_clean, 2) << "%, SNN "
              << formatDouble(100 * snn_clean, 2)
              << "%.  Paper: 0.74% (ANN) and 0.81% (SNN) mean drop.\n";
}

void
BM_NoiseInjection(benchmark::State &state)
{
    Network net = buildVgg13(16, 3, 10, 0.25f, 42);
    for (auto _ : state) {
        injectWeightNoise(net, 0.10, 5);
        benchmark::DoNotOptimize(net.parameterCount());
    }
}
BENCHMARK(BM_NoiseInjection)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}
