/**
 * @file
 * Reproduces paper Sec. IV-D: Monte-Carlo weight-variability study.
 * 10% multiplicative device variation is injected into a fully
 * quantized 16-level network and inference accuracy is measured over
 * several device-corner draws, for both the ANN and the converted SNN.
 * Expected shape (paper): accuracy drops by well under a percent on
 * average (VGG-ANN 90.31%, VGG-SNN 89.41% with noise) -- neuromorphic
 * workloads tolerate analog imprecision.
 *
 * The sweep runs on the reliability subsystem's campaign runner
 * (functional backend): the Gaussian variability model is the
 * FaultModel special case the legacy VariabilityModel wraps, so this
 * study and the stuck-at fault campaigns share one injection path.
 *
 * A second study measures the online ABFT checksum columns on the chip
 * backend: detected-vs-silent corruption rates per stuck-at fault rate
 * (the campaign's detection accounting against a clean-reference run)
 * and the read-path overhead of the extra column. Records the
 * deterministic `abft.detection_coverage`, `abft.overhead` and
 * `abft.false_positives` scalars CI regresses on.
 *
 * Set NEBULA_BENCH_TINY=1 to shrink to smoke-test size for CI; the
 * committed baseline in bench/baselines was recorded in tiny mode.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdlib>
#include <iostream>

#include "arch/chip.hpp"
#include "bench_common.hpp"
#include "common/table.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "reliability/campaign.hpp"

namespace nebula {
namespace {

/** CI smoke-test mode: tiny shapes, same code paths. */
bool
tinyMode()
{
    const char *env = std::getenv("NEBULA_BENCH_TINY");
    return env != nullptr && env[0] == '1';
}

void
report()
{
    const bool tiny = tinyMode();
    SyntheticTextures train_set(tiny ? 160 : 500, 10, 16, 3, 1601);
    SyntheticTextures test_set(tiny ? 80 : 200, 10, 16, 3, 1701);
    Network base = bench::trainedModel(
        "fig04_vgg13s",
        [] { return buildVgg13(16, 3, 10, 0.25f, 42); }, train_set,
        tiny ? 1 : 3);
    const Tensor calibration = train_set.firstImages(48);

    Network quantized = buildVgg13(16, 3, 10, 0.25f, 42);
    quantized.copyStateFrom(base);
    quantizeNetwork(quantized, calibration, 16, 16);

    // Sweep sigma {0, 0.10} x 5 device corners through the campaign's
    // functional backend (faults applied straight to the weights).
    CampaignConfig ann_cfg;
    ann_cfg.modelFactory = [](double sigma) {
        return std::make_shared<const GaussianVariabilityModel>(sigma);
    };
    ann_cfg.mitigations = {MitigationSpec::none()};
    ann_cfg.runSnn = false;
    ann_cfg.images = tiny ? 80 : 200;

    CampaignConfig snn_cfg = ann_cfg;
    snn_cfg.runAnn = false;
    snn_cfg.runSnn = true;
    snn_cfg.images = tiny ? 30 : 60;
    snn_cfg.timesteps = tiny ? 40 : 80;

    std::vector<uint64_t> corners{1000, 1001, 1002, 1003, 1004};
    if (tiny)
        corners.resize(2);

    ann_cfg.rates = snn_cfg.rates = {0.0};
    ann_cfg.seeds = snn_cfg.seeds = {55};
    const CampaignResult ann_clean =
        runFunctionalCampaign(quantized, calibration, test_set, ann_cfg);
    const CampaignResult snn_clean =
        runFunctionalCampaign(quantized, calibration, test_set, snn_cfg);
    const double ann_base = ann_clean.meanAccuracy("ann", "none", 0.0);
    const double snn_base = snn_clean.meanAccuracy("snn", "none", 0.0);

    ann_cfg.rates = snn_cfg.rates = {0.10};
    ann_cfg.seeds = snn_cfg.seeds = corners;
    const CampaignResult ann_noisy =
        runFunctionalCampaign(quantized, calibration, test_set, ann_cfg);
    const CampaignResult snn_noisy =
        runFunctionalCampaign(quantized, calibration, test_set, snn_cfg);

    Table table("Sec IV-D: Monte-Carlo 10% weight variability "
                "(quantized VGG-13 scaled)",
                {"trial", "ANN acc", "ANN delta", "SNN acc", "SNN delta"});

    double ann_sum = 0.0, snn_sum = 0.0;
    const size_t trials = corners.size();
    for (size_t trial = 0; trial < trials; ++trial) {
        const double ann_acc = ann_noisy.rows[trial].accuracy;
        const double snn_acc = snn_noisy.rows[trial].accuracy;
        ann_sum += ann_acc;
        snn_sum += snn_acc;
        table.row()
            .add(static_cast<long long>(trial + 1))
            .add(formatDouble(100 * ann_acc, 2) + "%")
            .add(formatDouble(100 * (ann_acc - ann_base), 2) + "%")
            .add(formatDouble(100 * snn_acc, 2) + "%")
            .add(formatDouble(100 * (snn_acc - snn_base), 2) + "%");
    }
    table.row()
        .add("mean")
        .add(formatDouble(100 * ann_sum / trials, 2) + "%")
        .add(formatDouble(100 * (ann_sum / trials - ann_base), 2) + "%")
        .add(formatDouble(100 * snn_sum / trials, 2) + "%")
        .add(formatDouble(100 * (snn_sum / trials - snn_base), 2) + "%");
    table.print(std::cout);
    std::cout << "Clean baselines: ANN "
              << formatDouble(100 * ann_base, 2) << "%, SNN "
              << formatDouble(100 * snn_base, 2)
              << "%.  Paper: 0.74% (ANN) and 0.81% (SNN) mean drop.\n";
}

void
abftReport()
{
    const bool tiny = tinyMode();
    const int image = 12;
    const int images = tiny ? 24 : 48;

    SyntheticDigits train(400, image, /*seed=*/81);
    SyntheticDigits test(images + 8, image, /*seed=*/82);
    Network proto = bench::trainedModel(
        "abft_mlp3", [&] { return buildMlp3(image, 1, 10, 91); }, train,
        /*epochs=*/6);
    const QuantizationResult quant =
        quantizeNetwork(proto, train.firstImages(64));

    // Read-path cost of the checksum column: two identically programmed
    // clean chips, ABFT off vs on. ADC conversions per inference are
    // deterministic and host-speed independent, so the ratio is a CI
    // gate; the clean ABFT chip must also flag nothing (false-positive
    // budget is zero by construction -- tolerance is half an ADC LSB).
    NebulaConfig on_cfg;
    on_cfg.abft = true;
    Network off_net = proto.clone(), on_net = proto.clone();
    NebulaChip off_chip, on_chip(on_cfg);
    off_chip.programAnn(off_net, quant);
    on_chip.programAnn(on_net, quant);
    const int probes = tiny ? 12 : 24;
    for (int i = 0; i < probes; ++i) {
        off_chip.runAnn(test.image(i));
        on_chip.runAnn(test.image(i));
    }
    const double overhead =
        static_cast<double>(on_chip.stats().adcConversions) /
        static_cast<double>(
            std::max<long long>(off_chip.stats().adcConversions, 1));
    const double false_positives =
        static_cast<double>(on_chip.stats().abftViolations);

    // Detection coverage: stuck-at campaign on the chip backend with
    // the checksum columns on. The campaign classifies every corrupt
    // image (prediction differs from the clean-reference run) as
    // detected (checksum flagged the request) or silent.
    CampaignConfig config;
    config.chip.abft = true;
    config.rates = {0.02, 0.05};
    config.seeds = tiny ? std::vector<uint64_t>{11}
                        : std::vector<uint64_t>{11, 12};
    config.images = images;
    config.runSnn = false;
    const CampaignResult result =
        runChipCampaign(proto, quant, nullptr, test, config);

    Table table("ABFT checksum columns: detected vs silent corruption "
                "(chip backend, stuck-at)",
                {"rate", "seed", "images", "corrupt", "detected", "silent",
                 "coverage"});
    for (const CampaignRow &row : result.rows) {
        table.row()
            .add(formatDouble(100 * row.rate, 1) + "%")
            .add(static_cast<long long>(row.seed))
            .add(static_cast<long long>(row.images))
            .add(static_cast<long long>(row.detected + row.undetected))
            .add(static_cast<long long>(row.detected))
            .add(static_cast<long long>(row.undetected))
            .add(formatDouble(row.detectionCoverage(), 3));
    }
    table.print(std::cout);

    bench::record("abft.detection_coverage", result.detectionCoverage());
    bench::record("abft.overhead", overhead);
    bench::record("abft.false_positives", false_positives);
    std::cout << "ABFT: coverage "
              << formatDouble(result.detectionCoverage(), 3)
              << ", read overhead x" << formatDouble(overhead, 3)
              << ", clean-chip false positives "
              << formatDouble(false_positives, 0) << ".\n\n";
}

void
BM_NoiseInjection(benchmark::State &state)
{
    Network net = buildVgg13(16, 3, 10, 0.25f, 42);
    for (auto _ : state) {
        injectWeightNoise(net, 0.10, 5);
        benchmark::DoNotOptimize(net.parameterCount());
    }
}
BENCHMARK(BM_NoiseInjection)->Unit(benchmark::kMillisecond);

void
BM_FaultMapSampling(benchmark::State &state)
{
    const StuckAtFaultModel model(0.01);
    uint64_t seed = 1;
    for (auto _ : state) {
        FaultMap map(128, 132);
        model.sampleInto(map, seed++);
        benchmark::DoNotOptimize(map.cellFaultCount());
    }
}
BENCHMARK(BM_FaultMapSampling)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    nebula::abftReport();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
