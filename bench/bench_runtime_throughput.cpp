/**
 * @file
 * Serving-throughput study for the concurrent inference runtime:
 * images/sec of the worker-pool engine at 1, 2, 4 and 8 workers on the
 * paper's MLP workload (quantized, ANN mode, synthetic digits), with
 * speedup relative to one worker and the mean request latency. Scaling
 * tops out at the machine's core count: on an N-core host the curve
 * should be near-linear up to N workers and flat beyond.
 *
 * Also measures the fast-evaluation speedup in both modes: the same
 * workload served with NebulaConfig::fastEval on (cached crossbar
 * views, sparse spike-driven SNN evaluation, batched ANN windows)
 * versus off (the preserved pre-optimization scalar loops). The
 * recorded `snn.speedup` / `ann.speedup` ratios are machine-relative,
 * so CI can regress on them without depending on absolute host speed.
 *
 * Also measures resilience under overload (shed/timeout ratios for a
 * burst against RejectWhenFull admission control and a tight deadline)
 * and closed-loop recovery from retention decay: the recorded
 * `resilience.recovery_ratio` is deterministically 1.0 because repair
 * re-programs the same weights onto the same crossbars, and CI
 * regresses on it alongside the speedups.
 *
 * Also microbenchmarks the per-request engine overhead (inline mode vs
 * a direct chip call) so queue/promise costs stay visible.
 *
 * Set NEBULA_BENCH_TINY=1 to shrink every study to smoke-test size
 * (small batches, short SNN windows) for CI.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <limits>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"
#include "reliability/fault_model.hpp"
#include "reliability/health.hpp"
#include "runtime/engine.hpp"
#include "runtime/replica.hpp"
#include "snn/convert.hpp"

#include "bench_common.hpp"

namespace nebula {
namespace {

/** CI smoke-test mode: tiny shapes, same code paths. */
bool
tinyMode()
{
    const char *env = std::getenv("NEBULA_BENCH_TINY");
    return env != nullptr && env[0] == '1';
}

/** Quantized MLP prototype + images, built once. */
struct Workload
{
    SyntheticDigits data{256, 16, /*seed=*/5};
    Network net;
    Network floatNet; //!< pre-quantization clone (SNN conversion source)
    QuantizationResult quant;
    std::vector<Tensor> images;

    Workload() : net(buildMlp3(16, 1, 10, /*seed=*/11))
    {
        // A few SGD epochs lift clean accuracy well above chance so the
        // resilience study's clean/degraded/recovered rows measure real
        // classification loss -- an untrained net pins every pass at
        // ~0.09 (pure chance) and hides the decay it is probing for.
        TrainConfig tc;
        tc.epochs = 3;
        SgdTrainer trainer(tc);
        trainer.train(net, data);
        floatNet = net.clone();
        quant = quantizeNetwork(net, data.firstImages(64));
        for (int i = 0; i < data.size(); ++i)
            images.push_back(data.image(i));
    }
};

Workload &
workload()
{
    static Workload w;
    return w;
}

/** One timed serving run; returns images/sec. */
double
measureThroughput(int workers, int batches, double *mean_latency_ms,
                  const BatchingConfig &batching = {},
                  double *mean_batch_size = nullptr)
{
    Workload &w = workload();
    EngineConfig cfg;
    cfg.numWorkers = workers;
    cfg.queueCapacity = 2 * w.images.size();
    cfg.batching = batching;
    InferenceEngine engine(cfg, makeAnnReplicaFactory(w.net, w.quant));

    // Warm-up: fault in every replica's code/data paths.
    for (auto &f : engine.submitBatch({w.images[0], w.images[1]}))
        f.get();

    // Best-of-3 repetitions: each timed section is only a few ms, so a
    // single scheduler preemption on a small CI host can halve one
    // measurement. The fastest repetition is the least-disturbed one;
    // ratios between studies stay meaningful because every study
    // rejects interference the same way.
    long long served = 0;
    double seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        long long rep_served = 0;
        for (int b = 0; b < batches; ++b) {
            auto futures = engine.submitBatch(w.images);
            for (auto &future : futures)
                future.get();
            rep_served += static_cast<long long>(futures.size());
        }
        const double rep_seconds =
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count();
        if (rep_seconds < seconds) {
            seconds = rep_seconds;
            served = rep_served;
        }
    }

    if (mean_latency_ms || mean_batch_size) {
        const StatGroup stats = engine.runtimeStats();
        if (mean_latency_ms)
            *mean_latency_ms = stats.scalarAt("latency_ms").mean();
        if (mean_batch_size)
            *mean_batch_size = stats.hasScalar("batch.size")
                                   ? stats.scalarAt("batch.size").mean()
                                   : 1.0;
    }
    engine.shutdown();
    return served / seconds;
}

void
printThroughputStudy()
{
    const unsigned cores = std::thread::hardware_concurrency();
    Table table("Serving throughput vs worker count (MLP, ANN mode, " +
                    std::to_string(workload().images.size()) +
                    "-image batches; host has " + std::to_string(cores) +
                    " core(s))",
                {"workers", "images/sec", "speedup vs 1", "mean latency "
                                                          "(ms)"});

    double base = 0.0;
    const std::vector<int> worker_counts =
        tinyMode() ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4, 8};
    const int batches = tinyMode() ? 1 : 2;
    for (int workers : worker_counts) {
        double latency_ms = 0.0;
        const double rate = measureThroughput(workers, batches, &latency_ms);
        if (workers == 1)
            base = rate;
        bench::record("images_per_sec.w" + std::to_string(workers), rate);
        bench::record("mean_latency_ms.w" + std::to_string(workers),
                      latency_ms);
        table.row()
            .add(static_cast<long long>(workers))
            .add(rate, 1)
            .add(formatRatio(rate / base))
            .add(latency_ms, 3);
    }
    table.print(std::cout);
    std::cout << "\nSpeedup saturates at the host core count (" << cores
              << "); >2x at 4 workers requires >= 4 cores.\n\n";
}

/**
 * Dynamic micro-batching study at the 2-worker operating point the
 * committed baselines pin: the same saturated offered load served with
 * the gather window off vs on (drain-only, maxWaitUs = 0 -- the worker
 * coalesces whatever is already queued, adding no latency). The
 * recorded `throughput.w2.speedup.batched` ratio divides out host
 * speed, so CI regresses on it; `batch.mean_size.w2` documents how
 * large the windows actually got under this load.
 */
void
printBatchedThroughputStudy()
{
    const int batches = tinyMode() ? 1 : 2;

    double lat_solo = 0.0, lat_batched = 0.0, mean_batch = 1.0;
    const double solo = measureThroughput(2, batches, &lat_solo);
    BatchingConfig bc;
    bc.maxBatch = 32;
    bc.maxWaitUs = 0;
    const double batched =
        measureThroughput(2, batches, &lat_batched, bc, &mean_batch);
    const double speedup = batched / solo;

    bench::record("images_per_sec.w2.batched", batched);
    bench::record("batch.mean_size.w2", mean_batch);
    bench::record("throughput.w2.speedup.batched", speedup);

    Table table("Dynamic micro-batching, 2 workers (maxBatch=32, "
                "drain-only window)",
                {"config", "images/sec", "mean batch", "mean latency (ms)",
                 "speedup"});
    table.row()
        .add("unbatched")
        .add(solo, 1)
        .add("1.00")
        .add(lat_solo, 3)
        .add("1.00x");
    table.row()
        .add("batched")
        .add(batched, 1)
        .add(formatDouble(mean_batch, 2))
        .add(lat_batched, 3)
        .add(formatRatio(speedup));
    table.print(std::cout);
    std::cout << "\nDrain-only batching amortizes the conductance-view "
                 "stream across every request already queued; under a "
                 "saturated queue the window fills to maxBatch.\n\n";
}

/**
 * Serve @p images requests through a single-worker engine built from
 * @p factory and return images/sec.
 */
double
measureServingRate(const ReplicaFactory &factory, int images,
                   int timesteps, const BatchingConfig &batching = {},
                   double *mean_batch_size = nullptr)
{
    Workload &w = workload();
    EngineConfig cfg;
    cfg.numWorkers = 1;
    cfg.defaultTimesteps = std::max(timesteps, 1);
    cfg.queueCapacity = static_cast<size_t>(2 * images + 4);
    cfg.batching = batching;
    InferenceEngine engine(cfg, factory);

    engine.submit(w.images[0]).get(); // warm-up

    std::vector<Tensor> batch(w.images.begin(), w.images.begin() + images);
    // Best-of-3, for the same reason as measureThroughput: the fastest
    // repetition is the one the host scheduler disturbed least.
    double seconds = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < 3; ++rep) {
        const auto start = std::chrono::steady_clock::now();
        for (auto &future : engine.submitBatch(batch))
            future.get();
        seconds = std::min(
            seconds,
            std::chrono::duration<double>(
                std::chrono::steady_clock::now() - start)
                .count());
    }
    if (mean_batch_size) {
        const StatGroup stats = engine.runtimeStats();
        *mean_batch_size = stats.hasScalar("batch.size")
                               ? stats.scalarAt("batch.size").mean()
                               : 1.0;
    }
    engine.shutdown();
    return images / seconds;
}

/**
 * Fast-path speedup study: the SNN and ANN workloads served with
 * fastEval on vs off. The off runs ARE the pre-optimization baseline --
 * NebulaConfig::fastEval == false selects the original scalar crossbar
 * and chip loops byte-for-byte -- so the speedup column compares
 * against pre-PR behaviour inside one binary.
 */
void
printFastPathStudy()
{
    Workload &w = workload();
    const bool tiny = tinyMode();
    const int snn_images = tiny ? 12 : 64;
    const int snn_timesteps = tiny ? 6 : 16;
    const int ann_images = tiny ? 24 : 128;

    Table table("Fast evaluation paths vs pre-optimization scalar "
                "baseline (1 worker; SNN " +
                    std::to_string(snn_images) + " images x T=" +
                    std::to_string(snn_timesteps) + ", ANN " +
                    std::to_string(ann_images) + " images)",
                {"mode", "path", "images/sec", "speedup"});

    double snn_rates[2] = {0.0, 0.0};
    for (int fast = 0; fast < 2; ++fast) {
        Network clone = w.floatNet.clone();
        SpikingModel snn = convertToSnn(clone, w.data.firstImages(32));
        NebulaConfig chip_cfg;
        chip_cfg.fastEval = fast != 0;
        snn_rates[fast] = measureServingRate(
            makeSnnReplicaFactory(snn, chip_cfg), snn_images,
            snn_timesteps);
    }
    const double snn_speedup = snn_rates[1] / snn_rates[0];
    bench::record("snn.images_per_sec.scalar", snn_rates[0]);
    bench::record("snn.images_per_sec.fast", snn_rates[1]);
    bench::record("snn.speedup", snn_speedup);
    table.row().add("snn").add("scalar").add(snn_rates[0], 1).add("1.00x");
    table.row().add("snn").add("fast").add(snn_rates[1], 1).add(
        formatRatio(snn_speedup));

    double ann_rates[2] = {0.0, 0.0};
    for (int fast = 0; fast < 2; ++fast) {
        NebulaConfig chip_cfg;
        chip_cfg.fastEval = fast != 0;
        ann_rates[fast] = measureServingRate(
            makeAnnReplicaFactory(w.net, w.quant, chip_cfg), ann_images,
            0);
    }

    // The shipped ANN fast path is fastEval + the micro-batch gather
    // window: under a saturated queue the worker flushes whole windows
    // through the batched GEMM-style kernels, which is where the ANN
    // mode's headline speedup comes from (solo fast evaluation only
    // buys the cached-conductance win).
    NebulaConfig fast_cfg;
    fast_cfg.fastEval = true;
    BatchingConfig bc;
    bc.maxBatch = 32;
    bc.maxWaitUs = 0;
    double ann_mean_batch = 1.0;
    const double ann_batched = measureServingRate(
        makeAnnReplicaFactory(w.net, w.quant, fast_cfg), ann_images, 0, bc,
        &ann_mean_batch);

    const double ann_solo_speedup = ann_rates[1] / ann_rates[0];
    const double ann_speedup = ann_batched / ann_rates[0];
    const double ann_batch_gain = ann_batched / ann_rates[1];
    bench::record("ann.images_per_sec.scalar", ann_rates[0]);
    bench::record("ann.images_per_sec.fast", ann_rates[1]);
    bench::record("ann.images_per_sec.batched", ann_batched);
    bench::record("ann.speedup.solo", ann_solo_speedup);
    bench::record("ann.speedup", ann_speedup);
    bench::record("ann.speedup.batched", ann_batch_gain);
    bench::record("batch.mean_size", ann_mean_batch);
    table.row().add("ann").add("scalar").add(ann_rates[0], 1).add("1.00x");
    table.row().add("ann").add("fast solo").add(ann_rates[1], 1).add(
        formatRatio(ann_solo_speedup));
    table.row()
        .add("ann")
        .add("fast batched")
        .add(ann_batched, 1)
        .add(formatRatio(ann_speedup));

    table.print(std::cout);
    std::cout << "\nThe scalar rows run the preserved pre-optimization "
                 "loops (fastEval=false); differential tests pin both "
                 "paths to the same numbers. The batched row gathers "
                 "drain-only windows (mean size "
              << formatDouble(ann_mean_batch, 2)
              << ") through the multi-input crossbar kernels; "
                 "`ann.speedup` compares it against scalar, "
                 "`ann.speedup.batched` against the solo fast path.\n\n";
}

/**
 * Overload + closed-loop-recovery study.
 *
 * Overload: a burst far larger than the queue is thrown at a small
 * pool under RejectWhenFull (recording `overload.shed.ratio`) and
 * under a tight per-request deadline (recording
 * `overload.timeout.ratio`). The ratios are load-dependent
 * observability numbers, not regression-gated -- they exist so the
 * BENCH artifact shows how admission control behaved on this host.
 *
 * Recovery: an inline engine with the HealthMonitor attached serves an
 * accuracy pass, has its live crossbars re-programmed under a
 * retention-decay ramp via withReplicas (the silent-drift scenario),
 * serves a degraded pass during which a canary probe catches the drift
 * and repairs in place, then serves a recovered pass. Repair is a
 * clean re-programming of the same weights, so the recovered pass is
 * bit-identical to the clean one and `resilience.recovery_ratio`
 * (recovered correct / clean correct) is deterministically 1.0 -- CI
 * regresses on it.
 */
void
printResilienceStudy()
{
    Workload &w = workload();
    const bool tiny = tinyMode();

    // -- overload: shed + timeout ratios under a burst -------------------
    const int burst = tiny ? 64 : 256;
    std::vector<Tensor> images;
    for (int i = 0; i < burst; ++i)
        images.push_back(w.images[static_cast<size_t>(i) % w.images.size()]);

    long long shed = 0;
    long long shed_delivered = 0;
    {
        EngineConfig cfg;
        cfg.numWorkers = 2;
        cfg.queueCapacity = 16;
        cfg.shedPolicy = ShedPolicy::RejectWhenFull;
        InferenceEngine engine(cfg, makeAnnReplicaFactory(w.net, w.quant));
        for (auto &future : engine.submitBatch(images)) {
            const InferenceResult result = future.get();
            if (result.ok())
                ++shed_delivered;
            else if (result.error == RuntimeErrorKind::Shed)
                ++shed;
        }
        engine.shutdown();
    }

    long long timeouts = 0;
    long long deadline_delivered = 0;
    {
        EngineConfig cfg;
        cfg.numWorkers = 1;
        cfg.queueCapacity = images.size() + 4;
        cfg.defaultDeadlineNs = 1000000; // 1 ms: the burst tail expires
        InferenceEngine engine(cfg, makeAnnReplicaFactory(w.net, w.quant));
        for (auto &future : engine.submitBatch(images)) {
            const InferenceResult result = future.get();
            if (result.ok())
                ++deadline_delivered;
            else if (result.error == RuntimeErrorKind::Timeout)
                ++timeouts;
        }
        engine.shutdown();
    }

    const double shed_ratio = static_cast<double>(shed) / burst;
    const double timeout_ratio = static_cast<double>(timeouts) / burst;
    bench::record("overload.shed.ratio", shed_ratio);
    bench::record("overload.timeout.ratio", timeout_ratio);

    Table overload("Overload: " + std::to_string(burst) +
                       "-request burst vs admission control",
                   {"policy", "delivered", "shed", "timeouts", "ratio"});
    overload.row()
        .add("reject-when-full (q=16, 2 workers)")
        .add(shed_delivered)
        .add(shed)
        .add(0ll)
        .add(formatDouble(shed_ratio, 3) + " shed");
    overload.row()
        .add("1 ms deadline (1 worker)")
        .add(deadline_delivered)
        .add(0ll)
        .add(timeouts)
        .add(formatDouble(timeout_ratio, 3) + " timeout");
    overload.print(std::cout);

    // -- closed-loop recovery --------------------------------------------
    const int eval_images = tiny ? 32 : 128;
    HealthConfig hc;
    hc.probeEvery = 16;
    hc.tolerance = 1e-6;
    hc.repairWith = {}; // repair = clean re-programming pass
    std::vector<Tensor> canaries;
    canaries.push_back(w.images[0]);
    canaries.push_back(w.images[1]);
    auto health = std::make_shared<HealthMonitor>(hc, std::move(canaries));

    EngineConfig cfg;
    cfg.numWorkers = 0; // inline: deterministic probe schedule
    cfg.health = health;
    InferenceEngine engine(cfg, makeAnnReplicaFactory(w.net, w.quant));

    const auto countCorrect = [&]() {
        std::vector<Tensor> batch(w.images.begin(),
                                  w.images.begin() + eval_images);
        long long correct = 0;
        auto futures = engine.submitBatch(batch);
        for (int i = 0; i < eval_images; ++i) {
            const InferenceResult result =
                futures[static_cast<size_t>(i)].get();
            if (result.ok() && result.predictedClass == w.data.label(i))
                ++correct;
        }
        return correct;
    };

    const long long clean = countCorrect();

    ReliabilityConfig decay; // aged crossbars: walls relaxed mid-service
    decay.faults = std::make_shared<RetentionDecayFaultModel>(
        /*elapsed=*/5.0, /*tau=*/1.0, /*sigma=*/0.3);
    engine.withReplicas(
        [&](ChipReplica &replica) { replica.reprogram(decay); });

    const long long degraded = countCorrect();
    const long long recovered = countCorrect();
    engine.shutdown();

    const double recovery_ratio =
        static_cast<double>(recovered) / std::max(1ll, clean);
    bench::record("resilience.accuracy.clean",
                  static_cast<double>(clean) / eval_images);
    bench::record("resilience.accuracy.degraded",
                  static_cast<double>(degraded) / eval_images);
    bench::record("resilience.accuracy.recovered",
                  static_cast<double>(recovered) / eval_images);
    bench::record("resilience.recovery_ratio", recovery_ratio);

    Table recovery("Closed-loop recovery: retention decay injected "
                   "mid-run, canary probe every " +
                       std::to_string(hc.probeEvery) + " requests (" +
                       std::to_string(eval_images) + " images/pass)",
                   {"phase", "correct", "accuracy"});
    recovery.row().add("clean").add(clean).add(
        formatDouble(100.0 * clean / eval_images, 1) + "%");
    recovery.row().add("decayed").add(degraded).add(
        formatDouble(100.0 * degraded / eval_images, 1) + "%");
    recovery.row().add("recovered").add(recovered).add(
        formatDouble(100.0 * recovered / eval_images, 1) + "%");
    recovery.print(std::cout);

    std::cout << "\nhealth: " << health->probes() << " probes, "
              << health->degradations() << " degradation(s), "
              << health->repairs() << " repair(s); recovery ratio "
              << formatDouble(recovery_ratio, 3)
              << " (repair re-programs the same weights, so recovered "
                 "== clean exactly)\n\n";
}

/** Per-request overhead: inline engine vs direct chip call. */
void
BM_EngineInlineRequest(benchmark::State &state)
{
    Workload &w = workload();
    EngineConfig cfg;
    cfg.numWorkers = 0;
    InferenceEngine engine(cfg, makeAnnReplicaFactory(w.net, w.quant));
    size_t i = 0;
    for (auto _ : state) {
        auto future = engine.submit(w.images[i++ % w.images.size()]);
        benchmark::DoNotOptimize(future.get().predictedClass);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineInlineRequest)->Unit(benchmark::kMicrosecond);

void
BM_EnginePoolRequest(benchmark::State &state)
{
    Workload &w = workload();
    EngineConfig cfg;
    cfg.numWorkers = static_cast<int>(state.range(0));
    InferenceEngine engine(cfg, makeAnnReplicaFactory(w.net, w.quant));
    size_t i = 0;
    for (auto _ : state) {
        auto future = engine.submit(w.images[i++ % w.images.size()]);
        benchmark::DoNotOptimize(future.get().predictedClass);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnginePoolRequest)->Arg(1)->Arg(4)->Unit(
    benchmark::kMicrosecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::printThroughputStudy();
    nebula::printBatchedThroughputStudy();
    nebula::printFastPathStudy();
    nebula::printResilienceStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
