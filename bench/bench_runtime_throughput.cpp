/**
 * @file
 * Serving-throughput study for the concurrent inference runtime:
 * images/sec of the worker-pool engine at 1, 2, 4 and 8 workers on the
 * paper's MLP workload (quantized, ANN mode, synthetic digits), with
 * speedup relative to one worker and the mean request latency. Scaling
 * tops out at the machine's core count: on an N-core host the curve
 * should be near-linear up to N workers and flat beyond.
 *
 * Also microbenchmarks the per-request engine overhead (inline mode vs
 * a direct chip call) so queue/promise costs stay visible.
 */

#include <benchmark/benchmark.h>

#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "runtime/engine.hpp"
#include "runtime/replica.hpp"

#include "bench_common.hpp"

namespace nebula {
namespace {

/** Quantized MLP prototype + images, built once. */
struct Workload
{
    SyntheticDigits data{256, 16, /*seed=*/5};
    Network net;
    QuantizationResult quant;
    std::vector<Tensor> images;

    Workload() : net(buildMlp3(16, 1, 10, /*seed=*/11))
    {
        quant = quantizeNetwork(net, data.firstImages(64));
        for (int i = 0; i < data.size(); ++i)
            images.push_back(data.image(i));
    }
};

Workload &
workload()
{
    static Workload w;
    return w;
}

/** One timed serving run; returns images/sec. */
double
measureThroughput(int workers, int batches, double *mean_latency_ms)
{
    Workload &w = workload();
    EngineConfig cfg;
    cfg.numWorkers = workers;
    cfg.queueCapacity = 2 * w.images.size();
    InferenceEngine engine(cfg, makeAnnReplicaFactory(w.net, w.quant));

    // Warm-up: fault in every replica's code/data paths.
    for (auto &f : engine.submitBatch({w.images[0], w.images[1]}))
        f.get();

    const auto start = std::chrono::steady_clock::now();
    long long served = 0;
    for (int b = 0; b < batches; ++b) {
        auto futures = engine.submitBatch(w.images);
        for (auto &future : futures)
            future.get();
        served += static_cast<long long>(futures.size());
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    if (mean_latency_ms) {
        const StatGroup stats = engine.runtimeStats();
        *mean_latency_ms = stats.scalarAt("latency_ms").mean();
    }
    engine.shutdown();
    return served / seconds;
}

void
printThroughputStudy()
{
    const unsigned cores = std::thread::hardware_concurrency();
    Table table("Serving throughput vs worker count (MLP, ANN mode, " +
                    std::to_string(workload().images.size()) +
                    "-image batches; host has " + std::to_string(cores) +
                    " core(s))",
                {"workers", "images/sec", "speedup vs 1", "mean latency "
                                                          "(ms)"});

    double base = 0.0;
    for (int workers : {1, 2, 4, 8}) {
        double latency_ms = 0.0;
        const double rate = measureThroughput(workers, 2, &latency_ms);
        if (workers == 1)
            base = rate;
        bench::record("images_per_sec.w" + std::to_string(workers), rate);
        bench::record("mean_latency_ms.w" + std::to_string(workers),
                      latency_ms);
        table.row()
            .add(static_cast<long long>(workers))
            .add(rate, 1)
            .add(formatRatio(rate / base))
            .add(latency_ms, 3);
    }
    table.print(std::cout);
    std::cout << "\nSpeedup saturates at the host core count (" << cores
              << "); >2x at 4 workers requires >= 4 cores.\n\n";
}

/** Per-request overhead: inline engine vs direct chip call. */
void
BM_EngineInlineRequest(benchmark::State &state)
{
    Workload &w = workload();
    EngineConfig cfg;
    cfg.numWorkers = 0;
    InferenceEngine engine(cfg, makeAnnReplicaFactory(w.net, w.quant));
    size_t i = 0;
    for (auto _ : state) {
        auto future = engine.submit(w.images[i++ % w.images.size()]);
        benchmark::DoNotOptimize(future.get().predictedClass);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineInlineRequest)->Unit(benchmark::kMicrosecond);

void
BM_EnginePoolRequest(benchmark::State &state)
{
    Workload &w = workload();
    EngineConfig cfg;
    cfg.numWorkers = static_cast<int>(state.range(0));
    InferenceEngine engine(cfg, makeAnnReplicaFactory(w.net, w.quant));
    size_t i = 0;
    for (auto _ : state) {
        auto future = engine.submit(w.images[i++ % w.images.size()]);
        benchmark::DoNotOptimize(future.get().predictedClass);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EnginePoolRequest)->Arg(1)->Arg(4)->Unit(
    benchmark::kMicrosecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::printThroughputStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
