/**
 * @file
 * Multi-tenant serving study: the full front-end stack -- ModelRegistry
 * (LRU weight-swap scheduler, write-verify-costed swap-ins) behind a
 * ServingServer on loopback -- driven by several tenant clients that
 * walk a 3-model catalog through 2 resident slots. Records per-tenant
 * tail latency and the total swap bill:
 *
 *   serving.tenant<k>.p99_ms   per-tenant p99 wire latency
 *   serving.ok_fraction        typed-Ok fraction of all requests
 *   serving.swap.count         registry swap-ins during the run
 *   serving.swap.pulses        write-verify program pulses paid
 *   serving.swap.energy_uj     write-verify program energy (uJ)
 *   serving.swap.overhead_ms   mean wall time of one swap-in
 *
 * On NEBULA the cost of rotating tenants' working sets is literally
 * crossbar reprogramming; this study makes that bill a regression
 * surface next to the latency it buys.
 *
 * Also microbenchmarks the wire codec (request encode+decode round
 * trip) so protocol overhead stays visible.
 *
 * Set NEBULA_BENCH_TINY=1 to shrink to smoke-test size for CI.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <future>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "nn/datasets.hpp"
#include "serving/client.hpp"
#include "serving/models.hpp"
#include "serving/registry.hpp"
#include "serving/server.hpp"

#include "bench_common.hpp"

namespace nebula {
namespace {

using namespace nebula::serving;

/** CI smoke-test mode: tiny shapes, same code paths. */
bool
tinyMode()
{
    const char *env = std::getenv("NEBULA_BENCH_TINY");
    return env != nullptr && env[0] == '1';
}

double
percentile(std::vector<double> values, double p)
{
    if (values.empty())
        return 0.0;
    std::sort(values.begin(), values.end());
    return values[static_cast<size_t>(p * (values.size() - 1))];
}

void
printTenancyStudy()
{
    const bool tiny = tinyMode();
    const int tenants = 3;
    const int requests = tiny ? 24 : 90;
    const int run_length = tiny ? 6 : 10;
    const int timesteps = tiny ? 6 : 10;
    const std::vector<std::string> model_ids = {"mlp3/ann", "mlp3/snn",
                                                "lenet5/ann"};

    std::cout << "== Multi-tenant serving tenancy study ==\n"
              << "3-model catalog through 2 resident slots, " << tenants
              << " tenants x " << requests << " pipelined requests\n\n";

    RegistryConfig reg_cfg;
    for (const std::string &id : model_ids) {
        ServableModelSpec spec;
        parseServableId(id, spec);
        spec.trainImages = tiny ? 128 : 400;
        spec.epochs = tiny ? 1 : (spec.family == "lenet5" ? 2 : 3);
        reg_cfg.catalog.push_back(spec);
    }
    reg_cfg.residentCapacity = 2;
    reg_cfg.workersPerModel = 1;
    reg_cfg.engine.queueCapacity = 256;
    reg_cfg.engine.defaultTimesteps = timesteps;
    auto registry = std::make_shared<ModelRegistry>(reg_cfg);

    ServingServer server({}, registry);
    server.start();

    std::vector<std::vector<double>> latencies(tenants);
    std::vector<int> oks(tenants, 0);
    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int t = 0; t < tenants; ++t) {
        threads.emplace_back([&, t] {
            ServingClient client;
            if (!client.connect("127.0.0.1", server.port()))
                return;
            SyntheticDigits images(32, 16, /*seed=*/40 + t);
            std::vector<std::future<WireResponse>> futures;
            std::vector<std::chrono::steady_clock::time_point> sent;
            for (int i = 0; i < requests; ++i) {
                // Tenants start at different catalog offsets so their
                // runs collide on the resident slots and force swaps.
                const std::string &id =
                    model_ids[(t + i / run_length) % model_ids.size()];
                ServableModelSpec spec;
                parseServableId(id, spec);
                WireMode mode;
                parseWireMode(spec.mode, mode);
                ServeOptions options;
                options.timesteps = timesteps;
                sent.push_back(std::chrono::steady_clock::now());
                futures.push_back(client.inferAsync(
                    "tenant" + std::to_string(t), spec.family, mode,
                    images.image(i % images.size()), options));
            }
            for (size_t i = 0; i < futures.size(); ++i) {
                const WireResponse reply = futures[i].get();
                if (reply.status != WireStatus::Ok)
                    continue;
                ++oks[t];
                latencies[t].push_back(
                    1e3 * std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - sent[i])
                              .count());
            }
        });
    }
    for (auto &thread : threads)
        thread.join();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    Table table("Per-tenant tail latency",
                {"tenant", "ok", "p50 ms", "p95 ms", "p99 ms"});
    int total_ok = 0;
    for (int t = 0; t < tenants; ++t) {
        total_ok += oks[t];
        const double p99 = percentile(latencies[t], 0.99);
        bench::record("serving.tenant" + std::to_string(t) + ".p99_ms",
                      p99);
        table.row()
            .add("tenant" + std::to_string(t))
            .add(static_cast<long long>(oks[t]))
            .add(percentile(latencies[t], 0.50), 2)
            .add(percentile(latencies[t], 0.95), 2)
            .add(p99, 2);
    }
    table.print(std::cout);

    const uint64_t swaps = registry->swapIns();
    const ProgramReport cost = registry->totalSwapCost();
    server.stop();
    registry->shutdown();

    const double ok_fraction =
        static_cast<double>(total_ok) / (tenants * requests);
    bench::record("serving.ok_fraction", ok_fraction);
    bench::record("serving.swap.count", static_cast<double>(swaps));
    bench::record("serving.swap.pulses", static_cast<double>(cost.pulses));
    bench::record("serving.swap.energy_uj", cost.programEnergy * 1e6);

    std::cout << "\nswaps: " << swaps << " swap-ins, "
              << registry->evictions() << " evictions; cost "
              << cost.pulses << " pulses / "
              << formatDouble(cost.programEnergy * 1e6, 3)
              << " uJ write-verify energy\n"
              << "ok fraction " << formatDouble(ok_fraction, 3) << ", "
              << formatDouble(total_ok / wall_s, 1)
              << " ok replies/sec aggregate\n\n";
}

/** Wall-time of one cold swap-in (program-on-demand), measured alone. */
void
printSwapOverheadStudy()
{
    const bool tiny = tinyMode();
    RegistryConfig reg_cfg;
    for (const char *id : {"mlp3/ann", "mlp3/snn"}) {
        ServableModelSpec spec;
        parseServableId(id, spec);
        spec.trainImages = tiny ? 128 : 400;
        spec.epochs = tiny ? 1 : 3;
        reg_cfg.catalog.push_back(spec);
    }
    reg_cfg.residentCapacity = 1; // every alternation is a swap
    ModelRegistry registry(reg_cfg);

    // Warm the loader cache so we time programming, not training.
    registry.acquire("mlp3/ann");
    registry.acquire("mlp3/snn");

    const int alternations = tiny ? 4 : 10;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < alternations; ++i)
        registry.acquire(i % 2 == 0 ? "mlp3/ann" : "mlp3/snn");
    const double mean_ms =
        1e3 *
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count() /
        alternations;
    registry.shutdown();

    bench::record("serving.swap.overhead_ms", mean_ms);
    std::cout << "swap-in overhead (capacity-1 alternation, warm "
                 "prototypes): "
              << formatDouble(mean_ms, 2) << " ms mean over "
              << alternations << " swaps\n\n";
}

/** Wire codec round trip: encode a request frame, decode it back. */
void
BM_ProtocolRoundTrip(benchmark::State &state)
{
    WireRequest request;
    request.corrId = 42;
    request.mode = WireMode::Snn;
    request.timesteps = 10;
    request.tenant = "tenant0";
    request.model = "mlp3";
    request.image = Tensor({1, 16, 16});
    for (auto _ : state) {
        const std::vector<uint8_t> frame = encodeRequestFrame(request);
        FrameHeader header;
        decodeHeader(frame.data(), kHeaderBytes, 1 << 26, header);
        WireRequest decoded;
        decodeRequestBody(frame.data() + kHeaderBytes, header.bodyLen,
                          decoded);
        benchmark::DoNotOptimize(decoded.corrId);
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ProtocolRoundTrip)->Unit(benchmark::kMicrosecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::printTenancyStudy();
    nebula::printSwapOverheadStudy();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
