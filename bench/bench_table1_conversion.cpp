/**
 * @file
 * Reproduces paper Table I: ANN-to-SNN conversion accuracy across the
 * benchmark suite -- ANN accuracy, converted-SNN accuracy at the
 * evidence-integration window, timesteps and depth. Expected shape: the
 * SNN lands within a few points of its ANN on the shallow models, with
 * a wider gap (and many more timesteps) on the deep ones.
 *
 * Substitution: width/resolution-scaled models on synthetic datasets
 * (MNIST/CIFAR/SVHN/ImageNet stand-ins); timesteps scaled down
 * proportionally. The paper's reference numbers are printed alongside.
 */

#include <benchmark/benchmark.h>

#include <iostream>
#include <memory>

#include "bench_common.hpp"

namespace nebula {
namespace {

struct BenchRow
{
    std::string tag;      //!< cache key
    const char *paperRow; //!< matching Table I entry
    std::function<Network()> builder;
    std::shared_ptr<Dataset> train;
    std::shared_ptr<Dataset> test;
    int epochs;
    double lr;
    int timesteps;        //!< scaled evidence window
    int evalImages;
};

void
report()
{
    auto digits_train = std::make_shared<SyntheticDigits>(1000, 16, 100);
    auto digits_test = std::make_shared<SyntheticDigits>(300, 16, 200);
    auto tex10_train =
        std::make_shared<SyntheticTextures>(500, 10, 16, 3, 1601);
    auto tex10_test =
        std::make_shared<SyntheticTextures>(200, 10, 16, 3, 1701);
    auto tex20_train =
        std::make_shared<SyntheticTextures>(700, 20, 16, 3, 1801);
    auto tex20_test =
        std::make_shared<SyntheticTextures>(200, 20, 16, 3, 1901);
    auto svhn_train = std::make_shared<SyntheticSvhn>(1100, 16, 2001);
    auto svhn_test = std::make_shared<SyntheticSvhn>(200, 16, 2101);
    auto tex20_32_train =
        std::make_shared<SyntheticTextures>(500, 20, 32, 3, 2201);
    auto tex20_32_test =
        std::make_shared<SyntheticTextures>(150, 20, 32, 3, 2301);

    std::vector<BenchRow> rows = {
        {"t1_mlp3", "3-layer MLP / MNIST (96.81 / 95.75, t=50)",
         [] { return buildMlp3(16, 1, 10, 11); }, digits_train,
         digits_test, 6, 0.08, 50, 60},
        {"t1_lenet5", "LeNet5 / MNIST (99.12 / 98.56, t=40)",
         [] { return buildLenet5(16, 1, 10, 12); }, digits_train,
         digits_test, 5, 0.06, 60, 40},
        {"fig09_mobilenets",
         "MobileNet-v1 / CIFAR-10 (91.00 / 81.08, t=500)",
         [] { return buildMobilenetV1(16, 3, 10, 0.25f, 43); },
         tex10_train, tex10_test, 7, 0.04, 200, 25},
        {"fig04_vgg13s", "VGG-13 / CIFAR-10 (91.60 / 90.05, t=300)",
         [] { return buildVgg13(16, 3, 10, 0.25f, 42); }, tex10_train,
         tex10_test, 3, 0.04, 150, 25},
        {"t1_mobilenet_c100",
         "MobileNet-v1 / CIFAR-100 (66.06 / 56.88, t=1000)",
         [] { return buildMobilenetV1(16, 3, 20, 0.25f, 44); },
         tex20_train, tex20_test, 8, 0.04, 250, 20},
        {"t1_vgg13_c100", "VGG-13 / CIFAR-100 (71.50 / 68.32, t=1000)",
         [] { return buildVgg13(16, 3, 20, 0.25f, 45); }, tex20_train,
         tex20_test, 5, 0.04, 200, 20},
        {"t1_svhn", "SVHN Network / SVHN (94.96 / 94.48, t=100)",
         [] { return buildSvhnNet(16, 3, 10, 0.25f, 46); }, svhn_train,
         svhn_test, 9, 0.05, 120, 25},
        {"t1_alexnet", "AlexNet / ImageNet (51 / 50, t=500)",
         [] { return buildAlexNet(32, 3, 20, 0.25f, 47); },
         tex20_32_train, tex20_32_test, 6, 0.05, 150, 15},
    };

    Table table("Table I: ANN-to-SNN conversion accuracy "
                "(scaled models on synthetic data; paper reference in "
                "row label)",
                {"benchmark (paper ANN/SNN acc, t)", "ANN acc", "SNN acc",
                 "gap", "t-steps", "depth"});

    for (BenchRow &row : rows) {
        Network net = bench::trainedModel(row.tag, row.builder,
                                          *row.train, row.epochs, row.lr);
        const double ann_acc =
            evaluateAccuracy(net, *row.test, row.evalImages * 4);

        SpikingModel model =
            convertToSnn(net, row.train->firstImages(48));
        SnnSimulator sim(model, 1.0, 777);
        const double snn_acc = sim.evaluateAccuracy(
            *row.test, row.evalImages, row.timesteps);

        table.row()
            .add(row.paperRow)
            .add(formatDouble(100 * ann_acc, 2) + "%")
            .add(formatDouble(100 * snn_acc, 2) + "%")
            .add(formatDouble(100 * (ann_acc - snn_acc), 2) + "%")
            .add(static_cast<long long>(row.timesteps))
            .add(static_cast<long long>(
                net.weightLayerIndices().size()));
    }
    table.print(std::cout);
    std::cout << "Expected paper shape: converted SNNs land within a few\n"
                 "points of their ANN; deep separable models (MobileNet)\n"
                 "lose the most and need the longest windows.\n";
}

void
BM_ConvertMlp(benchmark::State &state)
{
    SyntheticDigits data(64, 16, 100);
    Network net = buildMlp3(16, 1, 10, 11);
    const Tensor calibration = data.firstImages(32);
    for (auto _ : state) {
        SpikingModel model = convertToSnn(net, calibration);
        benchmark::DoNotOptimize(model.net.numLayers());
    }
}
BENCHMARK(BM_ConvertMlp)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
