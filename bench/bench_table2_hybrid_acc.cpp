/**
 * @file
 * Reproduces paper Table II: hybrid SNN-ANN model accuracy versus
 * timesteps for the VGG and SVHN networks. Expected shape: a Hyb-1
 * model (one trailing ANN layer) matches the pure-SNN accuracy at
 * noticeably fewer timesteps; pushing more layers into the ANN domain
 * allows even shorter windows at a modest accuracy cost, and accuracy
 * falls off when the window gets too short for the spiking prefix.
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "bench_common.hpp"
#include "snn/hybrid.hpp"

namespace nebula {
namespace {

void
reportModel(const std::string &tag, const char *label,
            const std::function<Network()> &builder, const Dataset &train,
            const Dataset &test, int epochs, int snn_timesteps,
            const std::vector<std::pair<int, int>> &configs,
            int eval_images)
{
    Network net =
        bench::trainedModel(tag, builder, train, epochs, 0.04);
    const Tensor calibration = train.firstImages(48);

    Table table(std::string("Table II (") + label +
                    "): hybrid accuracy vs timesteps",
                {"mode", "t-steps", "accuracy", "SNN @ same t",
                 "hybrid advantage"});

    Network snn_src = builder();
    NEBULA_ASSERT(snn_src.load(bench::cachePath(tag)), "cache missing");
    SpikingModel model = convertToSnn(snn_src, calibration);
    SnnSimulator sim(model, 1.0, 888);

    {
        const double acc =
            sim.evaluateAccuracy(test, eval_images, snn_timesteps);
        table.row()
            .add("SNN")
            .add(static_cast<long long>(snn_timesteps))
            .add(formatDouble(100 * acc, 2) + "%")
            .add("--")
            .add("--");
    }

    for (const auto &[ann_layers, timesteps] : configs) {
        Network copy = builder();
        NEBULA_ASSERT(copy.load(bench::cachePath(tag)), "cache missing");
        HybridNetwork hybrid(copy, calibration, ann_layers, {}, 889);
        const double acc =
            hybrid.evaluateAccuracy(test, eval_images, timesteps);
        // The paper annotates Fig. 17 with the accuracy gain of the
        // hybrid over a pure SNN run for the SAME number of timesteps.
        const double snn_same_t =
            sim.evaluateAccuracy(test, eval_images, timesteps);
        table.row()
            .add("Hyb-" + std::to_string(ann_layers))
            .add(static_cast<long long>(timesteps))
            .add(formatDouble(100 * acc, 2) + "%")
            .add(formatDouble(100 * snn_same_t, 2) + "%")
            .add(formatDouble(100 * (acc - snn_same_t), 2) + "%");
    }
    table.print(std::cout);
}

void
BM_HybridInference(benchmark::State &state)
{
    SyntheticSvhn data(64, 16, 2001);
    Network net = buildSvhnNet(16, 3, 10, 0.25f, 46);
    HybridNetwork hybrid(net, data.firstImages(16), 1);
    for (auto _ : state)
        benchmark::DoNotOptimize(
            hybrid.run(data.image(0), 10).predictedClass());
}
BENCHMARK(BM_HybridInference)->Unit(benchmark::kMillisecond);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    using namespace nebula;
    SyntheticTextures tex_train(500, 10, 16, 3, 1601);
    SyntheticTextures tex_test(200, 10, 16, 3, 1701);
    SyntheticSvhn svhn_train(1100, 16, 2001);
    SyntheticSvhn svhn_test(200, 16, 2101);

    // (ann_layers, timesteps) per the paper's Table II structure,
    // timestep counts scaled with the SNN window.
    reportModel("fig04_vgg13s", "VGG, paper: SNN 90.05 @300; Hyb-1 90.10 "
                                "@250 ... Hyb-3 62 @100",
                [] { return buildVgg13(16, 3, 10, 0.25f, 42); },
                tex_train, tex_test, 3, 80,
                {{1, 65}, {2, 50}, {2, 40}, {3, 25}}, 25);
    reportModel("t1_svhn", "SVHN, paper: SNN 94.48 @100; Hyb-1 94.46 @80 "
                           "... Hyb-3 93.29 @40",
                [] { return buildSvhnNet(16, 3, 10, 0.25f, 46); },
                svhn_train, svhn_test, 9, 60,
                {{1, 48}, {1, 42}, {2, 36}, {3, 30}, {3, 24}}, 25);
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
