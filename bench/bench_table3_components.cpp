/**
 * @file
 * Regenerates paper Table III: component specifications (power, area,
 * counts) for the NEBULA chip, from the component database, plus the
 * derived core/chip totals the paper reports (ANN core 113.8 mW, SNN
 * core 19.66 mW, chip 5.2 W / 86.7 mm^2).
 */

#include <benchmark/benchmark.h>

#include <iostream>

#include "circuit/component_db.hpp"
#include "common/table.hpp"

#include "bench_common.hpp"

namespace nebula {
namespace {

void
report()
{
    const ComponentDb &db = componentDb();
    db.toTable().print(std::cout);

    Table derived("Derived quantities", {"quantity", "value"});
    derived.row()
        .add("pipeline stage")
        .add(formatDouble(db.cycleTime() / units::ns, 0) + " ns");
    derived.row()
        .add("digital clock")
        .add(formatDouble(db.digitalClock() / 1e9, 1) + " GHz");
    derived.row()
        .add("ANN/SNN super-tile power ratio")
        .add(formatRatio(db.superTilePower(Mode::ANN) /
                         db.superTilePower(Mode::SNN)));
    derived.row()
        .add("ANN DAC / SNN driver power ratio")
        .add(formatRatio(db.annDacPower() / db.snnDriverPower()));
    derived.row()
        .add("max in-core receptive field (16M)")
        .add(static_cast<long long>(db.maxInCoreReceptiveField()));
    derived.row()
        .add("weight/activation precision")
        .add(static_cast<long long>(db.precisionBits()));
    derived.print(std::cout);
}

void
BM_ComponentDbLookup(benchmark::State &state)
{
    for (auto _ : state) {
        const ComponentDb &db = componentDb();
        benchmark::DoNotOptimize(db.corePower(Mode::ANN) +
                                 db.corePower(Mode::SNN));
    }
}
BENCHMARK(BM_ComponentDbLookup);

} // namespace
} // namespace nebula

int
main(int argc, char **argv)
{
    nebula::report();
    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    nebula::bench::writeBenchSummary(argv[0]);
    return 0;
}
