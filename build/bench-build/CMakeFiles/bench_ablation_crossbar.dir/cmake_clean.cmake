file(REMOVE_RECURSE
  "../bench/bench_ablation_crossbar"
  "../bench/bench_ablation_crossbar.pdb"
  "CMakeFiles/bench_ablation_crossbar.dir/bench_ablation_crossbar.cpp.o"
  "CMakeFiles/bench_ablation_crossbar.dir/bench_ablation_crossbar.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_crossbar.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
