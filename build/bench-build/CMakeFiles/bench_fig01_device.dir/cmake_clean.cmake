file(REMOVE_RECURSE
  "../bench/bench_fig01_device"
  "../bench/bench_fig01_device.pdb"
  "CMakeFiles/bench_fig01_device.dir/bench_fig01_device.cpp.o"
  "CMakeFiles/bench_fig01_device.dir/bench_fig01_device.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig01_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
