# Empty dependencies file for bench_fig01_device.
# This may be replaced when dependencies are built.
