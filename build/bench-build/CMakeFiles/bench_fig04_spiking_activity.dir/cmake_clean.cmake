file(REMOVE_RECURSE
  "../bench/bench_fig04_spiking_activity"
  "../bench/bench_fig04_spiking_activity.pdb"
  "CMakeFiles/bench_fig04_spiking_activity.dir/bench_fig04_spiking_activity.cpp.o"
  "CMakeFiles/bench_fig04_spiking_activity.dir/bench_fig04_spiking_activity.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig04_spiking_activity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
