# Empty compiler generated dependencies file for bench_fig04_spiking_activity.
# This may be replaced when dependencies are built.
