file(REMOVE_RECURSE
  "../bench/bench_fig09_quantization"
  "../bench/bench_fig09_quantization.pdb"
  "CMakeFiles/bench_fig09_quantization.dir/bench_fig09_quantization.cpp.o"
  "CMakeFiles/bench_fig09_quantization.dir/bench_fig09_quantization.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig09_quantization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
