file(REMOVE_RECURSE
  "../bench/bench_fig10_correlation"
  "../bench/bench_fig10_correlation.pdb"
  "CMakeFiles/bench_fig10_correlation.dir/bench_fig10_correlation.cpp.o"
  "CMakeFiles/bench_fig10_correlation.dir/bench_fig10_correlation.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
