file(REMOVE_RECURSE
  "../bench/bench_fig12_isaac_layerwise"
  "../bench/bench_fig12_isaac_layerwise.pdb"
  "CMakeFiles/bench_fig12_isaac_layerwise.dir/bench_fig12_isaac_layerwise.cpp.o"
  "CMakeFiles/bench_fig12_isaac_layerwise.dir/bench_fig12_isaac_layerwise.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_isaac_layerwise.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
