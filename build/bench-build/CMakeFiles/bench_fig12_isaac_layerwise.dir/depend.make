# Empty dependencies file for bench_fig12_isaac_layerwise.
# This may be replaced when dependencies are built.
