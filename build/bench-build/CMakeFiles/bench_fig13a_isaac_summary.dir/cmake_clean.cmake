file(REMOVE_RECURSE
  "../bench/bench_fig13a_isaac_summary"
  "../bench/bench_fig13a_isaac_summary.pdb"
  "CMakeFiles/bench_fig13a_isaac_summary.dir/bench_fig13a_isaac_summary.cpp.o"
  "CMakeFiles/bench_fig13a_isaac_summary.dir/bench_fig13a_isaac_summary.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13a_isaac_summary.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
