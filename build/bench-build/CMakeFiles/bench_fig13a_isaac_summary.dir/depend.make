# Empty dependencies file for bench_fig13a_isaac_summary.
# This may be replaced when dependencies are built.
