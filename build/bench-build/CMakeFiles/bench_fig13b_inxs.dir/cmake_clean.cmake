file(REMOVE_RECURSE
  "../bench/bench_fig13b_inxs"
  "../bench/bench_fig13b_inxs.pdb"
  "CMakeFiles/bench_fig13b_inxs.dir/bench_fig13b_inxs.cpp.o"
  "CMakeFiles/bench_fig13b_inxs.dir/bench_fig13b_inxs.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig13b_inxs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
