# Empty dependencies file for bench_fig13b_inxs.
# This may be replaced when dependencies are built.
