# Empty dependencies file for bench_fig14_peak_power.
# This may be replaced when dependencies are built.
