file(REMOVE_RECURSE
  "../bench/bench_fig15_breakdown_vgg"
  "../bench/bench_fig15_breakdown_vgg.pdb"
  "CMakeFiles/bench_fig15_breakdown_vgg.dir/bench_fig15_breakdown_vgg.cpp.o"
  "CMakeFiles/bench_fig15_breakdown_vgg.dir/bench_fig15_breakdown_vgg.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_breakdown_vgg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
