# Empty dependencies file for bench_fig15_breakdown_vgg.
# This may be replaced when dependencies are built.
