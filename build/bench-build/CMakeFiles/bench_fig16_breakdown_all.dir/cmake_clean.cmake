file(REMOVE_RECURSE
  "../bench/bench_fig16_breakdown_all"
  "../bench/bench_fig16_breakdown_all.pdb"
  "CMakeFiles/bench_fig16_breakdown_all.dir/bench_fig16_breakdown_all.cpp.o"
  "CMakeFiles/bench_fig16_breakdown_all.dir/bench_fig16_breakdown_all.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_breakdown_all.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
