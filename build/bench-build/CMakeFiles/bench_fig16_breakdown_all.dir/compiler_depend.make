# Empty compiler generated dependencies file for bench_fig16_breakdown_all.
# This may be replaced when dependencies are built.
