file(REMOVE_RECURSE
  "../bench/bench_fig17_hybrid"
  "../bench/bench_fig17_hybrid.pdb"
  "CMakeFiles/bench_fig17_hybrid.dir/bench_fig17_hybrid.cpp.o"
  "CMakeFiles/bench_fig17_hybrid.dir/bench_fig17_hybrid.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig17_hybrid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
