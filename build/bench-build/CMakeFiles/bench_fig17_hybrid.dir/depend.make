# Empty dependencies file for bench_fig17_hybrid.
# This may be replaced when dependencies are built.
