file(REMOVE_RECURSE
  "../bench/bench_noise_resilience"
  "../bench/bench_noise_resilience.pdb"
  "CMakeFiles/bench_noise_resilience.dir/bench_noise_resilience.cpp.o"
  "CMakeFiles/bench_noise_resilience.dir/bench_noise_resilience.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_noise_resilience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
