# Empty compiler generated dependencies file for bench_noise_resilience.
# This may be replaced when dependencies are built.
