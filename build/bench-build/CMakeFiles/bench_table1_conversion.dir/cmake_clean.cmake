file(REMOVE_RECURSE
  "../bench/bench_table1_conversion"
  "../bench/bench_table1_conversion.pdb"
  "CMakeFiles/bench_table1_conversion.dir/bench_table1_conversion.cpp.o"
  "CMakeFiles/bench_table1_conversion.dir/bench_table1_conversion.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_conversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
