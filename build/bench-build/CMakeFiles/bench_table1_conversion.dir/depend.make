# Empty dependencies file for bench_table1_conversion.
# This may be replaced when dependencies are built.
