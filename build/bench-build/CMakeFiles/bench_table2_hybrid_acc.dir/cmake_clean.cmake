file(REMOVE_RECURSE
  "../bench/bench_table2_hybrid_acc"
  "../bench/bench_table2_hybrid_acc.pdb"
  "CMakeFiles/bench_table2_hybrid_acc.dir/bench_table2_hybrid_acc.cpp.o"
  "CMakeFiles/bench_table2_hybrid_acc.dir/bench_table2_hybrid_acc.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_hybrid_acc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
