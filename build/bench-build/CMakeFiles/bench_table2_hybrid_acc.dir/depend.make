# Empty dependencies file for bench_table2_hybrid_acc.
# This may be replaced when dependencies are built.
