file(REMOVE_RECURSE
  "../examples-bin/device_playground"
  "../examples-bin/device_playground.pdb"
  "CMakeFiles/device_playground.dir/device_playground.cpp.o"
  "CMakeFiles/device_playground.dir/device_playground.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/device_playground.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
