file(REMOVE_RECURSE
  "../examples-bin/edge_always_on"
  "../examples-bin/edge_always_on.pdb"
  "CMakeFiles/edge_always_on.dir/edge_always_on.cpp.o"
  "CMakeFiles/edge_always_on.dir/edge_always_on.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_always_on.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
