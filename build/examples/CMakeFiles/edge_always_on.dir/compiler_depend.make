# Empty compiler generated dependencies file for edge_always_on.
# This may be replaced when dependencies are built.
