file(REMOVE_RECURSE
  "../examples-bin/hybrid_tradeoff"
  "../examples-bin/hybrid_tradeoff.pdb"
  "CMakeFiles/hybrid_tradeoff.dir/hybrid_tradeoff.cpp.o"
  "CMakeFiles/hybrid_tradeoff.dir/hybrid_tradeoff.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_tradeoff.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
