# Empty compiler generated dependencies file for hybrid_tradeoff.
# This may be replaced when dependencies are built.
