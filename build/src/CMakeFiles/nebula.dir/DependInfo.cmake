
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/arch/accumulator.cpp" "src/CMakeFiles/nebula.dir/arch/accumulator.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/arch/accumulator.cpp.o.d"
  "/root/repo/src/arch/chip.cpp" "src/CMakeFiles/nebula.dir/arch/chip.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/arch/chip.cpp.o.d"
  "/root/repo/src/arch/energy_model.cpp" "src/CMakeFiles/nebula.dir/arch/energy_model.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/arch/energy_model.cpp.o.d"
  "/root/repo/src/arch/mapping.cpp" "src/CMakeFiles/nebula.dir/arch/mapping.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/arch/mapping.cpp.o.d"
  "/root/repo/src/arch/pipeline.cpp" "src/CMakeFiles/nebula.dir/arch/pipeline.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/arch/pipeline.cpp.o.d"
  "/root/repo/src/arch/placement.cpp" "src/CMakeFiles/nebula.dir/arch/placement.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/arch/placement.cpp.o.d"
  "/root/repo/src/baselines/inxs.cpp" "src/CMakeFiles/nebula.dir/baselines/inxs.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/baselines/inxs.cpp.o.d"
  "/root/repo/src/baselines/isaac.cpp" "src/CMakeFiles/nebula.dir/baselines/isaac.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/baselines/isaac.cpp.o.d"
  "/root/repo/src/circuit/adc.cpp" "src/CMakeFiles/nebula.dir/circuit/adc.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/circuit/adc.cpp.o.d"
  "/root/repo/src/circuit/component_db.cpp" "src/CMakeFiles/nebula.dir/circuit/component_db.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/circuit/component_db.cpp.o.d"
  "/root/repo/src/circuit/crossbar.cpp" "src/CMakeFiles/nebula.dir/circuit/crossbar.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/circuit/crossbar.cpp.o.d"
  "/root/repo/src/circuit/driver.cpp" "src/CMakeFiles/nebula.dir/circuit/driver.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/circuit/driver.cpp.o.d"
  "/root/repo/src/circuit/neuron_unit.cpp" "src/CMakeFiles/nebula.dir/circuit/neuron_unit.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/circuit/neuron_unit.cpp.o.d"
  "/root/repo/src/circuit/sense.cpp" "src/CMakeFiles/nebula.dir/circuit/sense.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/circuit/sense.cpp.o.d"
  "/root/repo/src/common/logging.cpp" "src/CMakeFiles/nebula.dir/common/logging.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/common/logging.cpp.o.d"
  "/root/repo/src/common/rng.cpp" "src/CMakeFiles/nebula.dir/common/rng.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/common/rng.cpp.o.d"
  "/root/repo/src/common/stats.cpp" "src/CMakeFiles/nebula.dir/common/stats.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/common/stats.cpp.o.d"
  "/root/repo/src/common/table.cpp" "src/CMakeFiles/nebula.dir/common/table.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/common/table.cpp.o.d"
  "/root/repo/src/device/domain_wall.cpp" "src/CMakeFiles/nebula.dir/device/domain_wall.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/device/domain_wall.cpp.o.d"
  "/root/repo/src/device/mtj.cpp" "src/CMakeFiles/nebula.dir/device/mtj.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/device/mtj.cpp.o.d"
  "/root/repo/src/device/neuron_device.cpp" "src/CMakeFiles/nebula.dir/device/neuron_device.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/device/neuron_device.cpp.o.d"
  "/root/repo/src/device/synapse_device.cpp" "src/CMakeFiles/nebula.dir/device/synapse_device.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/device/synapse_device.cpp.o.d"
  "/root/repo/src/device/variability.cpp" "src/CMakeFiles/nebula.dir/device/variability.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/device/variability.cpp.o.d"
  "/root/repo/src/nn/activations.cpp" "src/CMakeFiles/nebula.dir/nn/activations.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/activations.cpp.o.d"
  "/root/repo/src/nn/batchnorm.cpp" "src/CMakeFiles/nebula.dir/nn/batchnorm.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/batchnorm.cpp.o.d"
  "/root/repo/src/nn/conv.cpp" "src/CMakeFiles/nebula.dir/nn/conv.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/conv.cpp.o.d"
  "/root/repo/src/nn/datasets.cpp" "src/CMakeFiles/nebula.dir/nn/datasets.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/datasets.cpp.o.d"
  "/root/repo/src/nn/gemm.cpp" "src/CMakeFiles/nebula.dir/nn/gemm.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/gemm.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/CMakeFiles/nebula.dir/nn/layer.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/layer.cpp.o.d"
  "/root/repo/src/nn/linear.cpp" "src/CMakeFiles/nebula.dir/nn/linear.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/linear.cpp.o.d"
  "/root/repo/src/nn/models.cpp" "src/CMakeFiles/nebula.dir/nn/models.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/models.cpp.o.d"
  "/root/repo/src/nn/network.cpp" "src/CMakeFiles/nebula.dir/nn/network.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/network.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/CMakeFiles/nebula.dir/nn/pooling.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/pooling.cpp.o.d"
  "/root/repo/src/nn/quantize.cpp" "src/CMakeFiles/nebula.dir/nn/quantize.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/quantize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/CMakeFiles/nebula.dir/nn/tensor.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/tensor.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/CMakeFiles/nebula.dir/nn/trainer.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/nn/trainer.cpp.o.d"
  "/root/repo/src/noc/noc.cpp" "src/CMakeFiles/nebula.dir/noc/noc.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/noc/noc.cpp.o.d"
  "/root/repo/src/snn/convert.cpp" "src/CMakeFiles/nebula.dir/snn/convert.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/snn/convert.cpp.o.d"
  "/root/repo/src/snn/encoder.cpp" "src/CMakeFiles/nebula.dir/snn/encoder.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/snn/encoder.cpp.o.d"
  "/root/repo/src/snn/hybrid.cpp" "src/CMakeFiles/nebula.dir/snn/hybrid.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/snn/hybrid.cpp.o.d"
  "/root/repo/src/snn/if_layer.cpp" "src/CMakeFiles/nebula.dir/snn/if_layer.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/snn/if_layer.cpp.o.d"
  "/root/repo/src/snn/snn_sim.cpp" "src/CMakeFiles/nebula.dir/snn/snn_sim.cpp.o" "gcc" "src/CMakeFiles/nebula.dir/snn/snn_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
