file(REMOVE_RECURSE
  "libnebula.a"
)
