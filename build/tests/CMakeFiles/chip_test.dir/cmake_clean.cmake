file(REMOVE_RECURSE
  "CMakeFiles/chip_test.dir/chip_test.cpp.o"
  "CMakeFiles/chip_test.dir/chip_test.cpp.o.d"
  "chip_test"
  "chip_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chip_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
