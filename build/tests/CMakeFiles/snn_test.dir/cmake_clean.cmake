file(REMOVE_RECURSE
  "CMakeFiles/snn_test.dir/snn_test.cpp.o"
  "CMakeFiles/snn_test.dir/snn_test.cpp.o.d"
  "snn_test"
  "snn_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
