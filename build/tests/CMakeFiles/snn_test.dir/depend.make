# Empty dependencies file for snn_test.
# This may be replaced when dependencies are built.
