/**
 * @file
 * Scenario: device/circuit bring-up. Walks the spintronic substrate
 * bottom-up the way a device engineer would characterize a test chip:
 *
 *  1. sweep a DW-MTJ synapse through its 16 conductance states;
 *  2. drive a spiking neuron device and watch the membrane (domain
 *     wall) integrate and fire;
 *  3. program a small crossbar and compare the ideal and
 *     parasitic-aware dot products;
 *  4. check a spiking neuron unit against the algorithmic IF model.
 *
 * Build & run:  ./examples-bin/device_playground
 */

#include <iostream>

#include "circuit/crossbar.hpp"
#include "circuit/neuron_unit.hpp"
#include "common/table.hpp"
#include "common/units.hpp"
#include "device/neuron_device.hpp"
#include "device/synapse_device.hpp"

using namespace nebula;
using namespace nebula::units;

int
main()
{
    std::cout << "== DW-MTJ device playground ==\n\n";

    // 1. Synapse state sweep. --------------------------------------------
    Table synapse("Synapse: programming through all 16 states",
                  {"level", "DW position (nm)", "G (uS)", "R (kOhm)"});
    for (int level = 0; level < 16; level += 3) {
        SynapseDevice dev;
        dev.program(level, 16);
        synapse.row()
            .add(static_cast<long long>(level))
            .add(dev.track().pinnedPosition() / nm, 0)
            .add(dev.conductance() / uS, 2)
            .add(1.0 / dev.conductance() / kOhm, 1);
    }
    synapse.print(std::cout);

    // 2. Neuron integrate-and-fire trace. ---------------------------------
    SpikingNeuronDevice neuron;
    const double window = 110 * ns;
    const double i_th = neuron.thresholdCurrent(window);
    Table trace("Spiking neuron: membrane (DW position) vs time at "
                "0.4x threshold drive",
                {"step", "membrane (fraction of vth)", "spike"});
    for (int t = 1; t <= 8; ++t) {
        const bool fired = neuron.integrate(0.4 * i_th, window);
        trace.row()
            .add(static_cast<long long>(t))
            .add(neuron.membraneFraction(), 3)
            .add(fired ? "SPIKE" : "");
    }
    trace.print(std::cout);
    std::cout << "Note the membrane holding its value in the device --\n"
                 "no SRAM refresh between steps (paper Sec. IV-B4).\n\n";

    // 3. Crossbar ideal vs parasitic. --------------------------------------
    CrossbarParams xp;
    xp.rows = xp.cols = 32;
    xp.wireResistance = 2.5;
    CrossbarArray xbar(xp);
    Rng rng(17);
    std::vector<float> weights(32 * 32);
    for (auto &w : weights)
        w = static_cast<float>(rng.uniform(-1.0, 1.0));
    xbar.programWeights(weights);

    std::vector<double> inputs(32);
    for (auto &x : inputs)
        x = rng.uniform(0.0, 1.0);
    const auto ideal = xbar.evaluateIdeal(inputs, window);
    const auto real = xbar.evaluateParasitic(inputs, window);

    double full_scale = 0.0;
    for (double i : ideal.currents)
        full_scale = std::max(full_scale, std::abs(i));

    Table xb("Crossbar: ideal vs parasitic column currents (first 6)",
             {"column", "ideal (uA)", "parasitic (uA)",
              "error (% of full scale)"});
    for (int j = 0; j < 6; ++j) {
        xb.row()
            .add(static_cast<long long>(j))
            .add(ideal.currents[j] / uA, 4)
            .add(real.currents[j] / uA, 4)
            .add(formatDouble(100.0 *
                                  std::abs(real.currents[j] -
                                           ideal.currents[j]) /
                                  full_scale,
                              2) +
                 "%");
    }
    xb.print(std::cout);

    // 4. Neuron unit vs algorithmic IF. ------------------------------------
    NeuronUnitParams np;
    np.count = 4;
    SpikingNeuronUnit nu(np);
    const double vth = 1.5;
    nu.calibrate(xbar.currentScale(), vth);

    std::vector<double> column_currents(4);
    for (int j = 0; j < 4; ++j)
        column_currents[static_cast<size_t>(j)] = ideal.currents[j];

    std::vector<double> membrane(4, 0.0);
    int device_spikes = 0, model_spikes = 0;
    for (int t = 0; t < 20; ++t) {
        const auto spikes = nu.step(column_currents);
        for (int j = 0; j < 4; ++j) {
            device_spikes += spikes[static_cast<size_t>(j)];
            membrane[static_cast<size_t>(j)] +=
                column_currents[static_cast<size_t>(j)] /
                xbar.currentScale();
            if (membrane[static_cast<size_t>(j)] >= vth) {
                membrane[static_cast<size_t>(j)] = 0.0;
                ++model_spikes;
            }
        }
    }
    std::cout << "Neuron unit vs algorithmic IF over 20 steps: "
              << device_spikes << " vs " << model_spikes
              << " spikes (device pinning quantization accounts for any "
                 "small difference).\n";
    std::cout << "Device energy consumed by the 4-neuron unit: "
              << nu.energy() / fJ << " fJ.\n";
    return 0;
}
