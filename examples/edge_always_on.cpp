/**
 * @file
 * Scenario: always-on digit recognition at the edge (the paper's
 * low-power motivation, Sec. I). A battery-powered sensor must classify
 * house-number digits continuously within a ~2 mW power envelope.
 *
 * The example maps the SVHN network onto NEBULA, compares the ANN, SNN
 * and hybrid execution modes against the power budget, and reports the
 * battery life each mode achieves -- showing why the SNN/hybrid modes
 * are the only viable always-on configurations, and what latency they
 * trade for it.
 *
 * Build & run:  ./examples-bin/edge_always_on
 */

#include <iostream>

#include "arch/energy_model.hpp"
#include "arch/pipeline.hpp"
#include "common/table.hpp"
#include "nn/models.hpp"

using namespace nebula;

int
main()
{
    std::cout << "== Always-on edge inference on NEBULA ==\n\n";

    // Full-size SVHN network mapped onto the chip.
    Network net = buildPaperModel("svhn");
    Tensor probe({1, 3, 32, 32});
    net.forward(probe);
    LayerMapper mapper;
    const auto mapping = mapper.map(net);

    std::cout << "SVHN network: " << mapping.layers.size()
              << " weight layers, " << mapping.totalCores()
              << " neural cores, "
              << (mapping.anyAdc() ? "uses" : "avoids")
              << " the ADC spill path.\n\n";

    EnergyModel model;
    PipelineModel pipeline;
    const auto snn_act = ActivityProfile::decaying(mapping.layers.size());
    const auto ann_act =
        ActivityProfile::uniform(mapping.layers.size(), 0.5);

    const double budget = 2.0e-3;      // 2 mW envelope
    const double battery_j = 3.7 * 0.2 * 3600; // 200 mAh @ 3.7 V

    struct ModeRow
    {
        const char *name;
        InferenceEnergy energy;
        double latency;
    };

    const int T = 100;
    std::vector<ModeRow> rows;
    rows.push_back({"ANN", model.evaluateAnn(mapping, ann_act),
                    pipeline.networkLatency(mapping, 1)});
    rows.push_back({"SNN (T=100)", model.evaluateSnn(mapping, snn_act, T),
                    pipeline.networkLatency(mapping, T)});
    const int split = static_cast<int>(mapping.layers.size()) - 2;
    const long long bneurons =
        mapping.layers[static_cast<size_t>(split - 1)].outputElements;
    rows.push_back(
        {"Hybrid-2 (T=60)",
         model.evaluateHybrid(mapping, snn_act, split, 60, bneurons,
                              static_cast<long long>(bneurons * 0.1 * 60)),
         pipeline.networkLatency(mapping, 60)});

    Table table("Execution modes vs a 2 mW always-on budget",
                {"mode", "power (mW)", "within budget",
                 "latency/frame (us)", "energy/frame (uJ)",
                 "battery life (days)"});
    for (const ModeRow &row : rows) {
        // Always-on: one inference immediately follows another, so
        // average power is the sustained draw.
        const double days =
            battery_j / row.energy.avgPower / (24 * 3600);
        table.row()
            .add(row.name)
            .add(toMw(row.energy.avgPower), 3)
            .add(row.energy.avgPower <= budget ? "yes" : "NO")
            .add(row.latency / units::us, 1)
            .add(toUj(row.energy.totalEnergy), 2)
            .add(days, 1);
    }
    table.print(std::cout);

    std::cout
        << "\nThe ANN mode blows the envelope; the SNN mode fits with\n"
           "an order of magnitude to spare but pays ~"
        << formatDouble(rows[1].latency / rows[0].latency, 0)
        << "x the latency. The hybrid splits the difference -- the\n"
           "paper's argument for a multi-modal chip (Sec. VI-C3).\n";
    return 0;
}
