/**
 * @file
 * Fault-injection campaign over the NEBULA chip model: how much
 * accuracy do stuck DW-MTJ cells cost, and how much do the mitigation
 * flows (closed-loop write-verify programming, spare-column repair)
 * buy back?
 *
 *  1. Train a small CNN on the synthetic digit dataset and quantize it.
 *  2. Sweep stuck-at fault rates 0 -> 5% x fault seeds x mitigations
 *     {none, write-verify, write-verify + spare-column repair} over the
 *     chip-programmed ANN and its converted SNN, running every trial
 *     through the concurrent inference engine.
 *  3. Print the accuracy-degradation curves and the programming-flow
 *     statistics, and write the raw rows to fault_campaign.csv. The CSV
 *     leads with a `#` comment documenting column units (program energy
 *     in joules; accuracy and rate as dimensionless fractions).
 *
 * The campaign is deterministic: rerunning produces byte-identical CSV.
 *
 * Build & run:  ./examples-bin/fault_campaign
 */

#include <iostream>

#include "common/stats.hpp"
#include "common/table.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/datasets.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"
#include "reliability/campaign.hpp"
#include "snn/convert.hpp"

using namespace nebula;

int
main()
{
    std::cout << "== NEBULA fault-injection campaign ==\n\n";

    // 1. Train + quantize a small CNN. ----------------------------------
    SyntheticDigits train_set(1000, 12, /*seed=*/1);
    SyntheticDigits test_set(200, 12, /*seed=*/2);

    Rng rng(7);
    Network net("fault-cnn");
    net.add<Conv2d>(1, 6, 3, 1, 1)->initKaiming(rng);
    net.add<Relu>();
    net.add<AvgPool2d>(2);
    net.add<Flatten>();
    net.add<Linear>(6 * 6 * 6, 10)->initKaiming(rng);

    TrainConfig cfg;
    cfg.epochs = 5;
    cfg.learningRate = 0.08;
    SgdTrainer trainer(cfg);
    trainer.train(net, train_set);

    const Tensor calibration = train_set.firstImages(64);
    const QuantizationResult quant = quantizeNetwork(net, calibration);
    std::cout << "quantized ANN accuracy (functional): "
              << 100 * evaluateAccuracy(net, test_set) << "%\n\n";

    Network snn_source = net.clone();
    SpikingModel snn = convertToSnn(snn_source, calibration);

    // 2. The sweep. -----------------------------------------------------
    CampaignConfig config;
    config.rates = {0.0, 0.01, 0.02, 0.05};
    config.seeds = {11, 12};
    config.mitigations = {MitigationSpec::none(),
                          MitigationSpec::writeVerifyOnly(),
                          MitigationSpec::full(4)};
    config.images = 60;
    config.timesteps = 40;
    config.numWorkers = 2;

    const CampaignResult result =
        runChipCampaign(net, quant, &snn, test_set, config);
    result.writeCsv("fault_campaign.csv");

    // 3. Report. --------------------------------------------------------
    for (const char *mode : {"ann", "snn"}) {
        Table table(std::string("Stuck-at fault sweep, chip ") + mode +
                        " path (mean accuracy over seeds)",
                    {"fault rate", "none", "write_verify", "wv+repair"});
        for (double rate : config.rates) {
            table.row()
                .add(formatDouble(100 * rate, 1) + "%")
                .add(formatDouble(
                         100 * result.meanAccuracy(mode, "none", rate), 1) +
                     "%")
                .add(formatDouble(100 * result.meanAccuracy(
                                            mode, "write_verify", rate),
                                  1) +
                     "%")
                .add(formatDouble(100 * result.meanAccuracy(
                                            mode, "wv+repair", rate),
                                  1) +
                     "%");
        }
        table.print(std::cout);

        const double clean = result.meanAccuracy(mode, "none", 0.0);
        const double broken = result.meanAccuracy(mode, "none", 0.01);
        const double repaired =
            result.meanAccuracy(mode, "wv+repair", 0.01);
        if (clean > broken) {
            const double recovered =
                100 * (repaired - broken) / (clean - broken);
            std::cout << "at 1% stuck cells the " << mode << " path loses "
                      << formatDouble(100 * (clean - broken), 1)
                      << " points; write-verify + repair recovers "
                      << formatDouble(recovered, 0) << "% of that.\n\n";
        }
    }

    StatGroup stats("fault_campaign");
    result.addStats(stats);
    std::cout << "programming-flow totals across all trials:\n";
    stats.toTable().print(std::cout);
    std::cout << "\nwrote fault_campaign.csv (" << result.rows.size()
              << " rows).\n";
    return 0;
}
