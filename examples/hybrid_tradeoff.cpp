/**
 * @file
 * Scenario: exploring the hybrid SNN-ANN design space (paper Sec. V-B,
 * Fig. 17). Trains a scaled VGG, then sweeps (a) the number of trailing
 * ANN layers and (b) the evidence-integration window, measuring real
 * classification accuracy with the functional simulator and pairing it
 * with the architectural energy/power model -- producing the
 * accuracy/energy/power frontier a deployment engineer would use to
 * pick an operating point.
 *
 * Build & run:  ./examples-bin/hybrid_tradeoff
 */

#include <iostream>

#include "arch/energy_model.hpp"
#include "common/table.hpp"
#include "nn/models.hpp"
#include "nn/trainer.hpp"
#include "snn/hybrid.hpp"
#include "snn/snn_sim.hpp"

using namespace nebula;

int
main()
{
    std::cout << "== Hybrid SNN-ANN trade-off explorer ==\n\n";

    // Train a scaled VGG-13 on the CIFAR-like synthetic set.
    SyntheticTextures train_set(500, 10, 16, 3, 1601);
    SyntheticTextures test_set(150, 10, 16, 3, 1701);
    Network net = buildVgg13(16, 3, 10, 0.25f, 42);
    TrainConfig cfg;
    cfg.epochs = 3;
    cfg.learningRate = 0.04;
    SgdTrainer trainer(cfg);
    trainer.train(net, train_set);
    const double ann_acc = evaluateAccuracy(net, test_set);
    std::cout << "ANN reference accuracy: " << 100 * ann_acc << "%\n\n";

    const Tensor calibration = train_set.firstImages(48);

    // Full-size VGG mapping drives the energy numbers; accuracy comes
    // from the scaled functional model.
    Network full = buildPaperModel("vgg13");
    Tensor probe({1, 3, 32, 32});
    full.forward(probe);
    const auto mapping = LayerMapper().map(full);
    EnergyModel energy_model;
    const auto snn_act = ActivityProfile::decaying(mapping.layers.size());
    const int n = static_cast<int>(mapping.layers.size());

    Table table("Hybrid frontier: accuracy (measured) vs energy/power "
                "(full-size VGG model)",
                {"config", "t-steps", "accuracy", "energy (uJ)",
                 "power (mW)"});

    const int eval_images = 20;
    for (int t : {40, 80}) {
        Network snn_src = buildVgg13(16, 3, 10, 0.25f, 42);
        snn_src.copyStateFrom(net);
        SpikingModel model = convertToSnn(snn_src, calibration);
        SnnSimulator sim(model, 1.0, 99);
        const double acc = sim.evaluateAccuracy(test_set, eval_images, t);
        const auto e = energy_model.evaluateSnn(mapping, snn_act, t);
        table.row()
            .add("SNN")
            .add(static_cast<long long>(t))
            .add(formatDouble(100 * acc, 1) + "%")
            .add(toUj(e.totalEnergy), 1)
            .add(toMw(e.avgPower), 2);
    }

    for (int ann_layers : {1, 2, 3}) {
        for (int t : {30, 60}) {
            Network src = buildVgg13(16, 3, 10, 0.25f, 42);
            src.copyStateFrom(net);
            HybridNetwork hybrid(src, calibration, ann_layers, {}, 101);
            const double acc =
                hybrid.evaluateAccuracy(test_set, eval_images, t);

            const int split = n - ann_layers;
            const long long bn =
                mapping.layers[static_cast<size_t>(split - 1)]
                    .outputElements;
            const auto e = energy_model.evaluateHybrid(
                mapping, snn_act, split, t, bn,
                static_cast<long long>(bn * 0.1 * t));
            table.row()
                .add("Hyb-" + std::to_string(ann_layers))
                .add(static_cast<long long>(t))
                .add(formatDouble(100 * acc, 1) + "%")
                .add(toUj(e.totalEnergy), 1)
                .add(toMw(e.avgPower), 2);
        }
    }

    const auto ann_e = energy_model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    table.row()
        .add("ANN")
        .add(1LL)
        .add(formatDouble(100 * ann_acc, 1) + "%")
        .add(toUj(ann_e.totalEnergy), 1)
        .add(toMw(ann_e.avgPower), 2);
    table.print(std::cout);

    std::cout << "\nReading the frontier: hybrids recover most of the\n"
                 "accuracy lost at short windows while staying far below\n"
                 "ANN power -- pick the deepest split that meets your\n"
                 "accuracy floor (paper Sec. VI-C3).\n";
    return 0;
}
