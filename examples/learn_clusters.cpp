/**
 * @file
 * On-device competitive clustering demo and smoke gate: fits an
 * STDP-style clusterer (crossbar columns as prototypes, WTA over column
 * currents, accounted update pulses) on the SyntheticClusters stream,
 * then sweeps pinning-drift fault rates through the learning campaign
 * to show graceful degradation and what the learning pulses cost.
 *
 * Exits nonzero when clean-device purity lands below --min-purity, so
 * CI can run it as a learning-health smoke test.
 *
 * Build & run:  ./examples-bin/learn_clusters
 *
 * Flags:
 *   --samples N      stream samples per trial (default 240)
 *   --clusters K     prototype columns / dataset classes (default 10)
 *   --image N        image side in pixels (default 12)
 *   --timesteps T    rate-encoding window per presentation (default 12)
 *   --epochs E       passes over the stream (default 2)
 *   --drift R        faulted sweep point, per-cell rate (default 0.05)
 *   --min-purity P   clean-purity gate, exit 1 below it (default 0.7)
 *   --csv PATH       campaign CSV destination (default learn_clusters.csv)
 */

#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/table.hpp"
#include "learning/campaign.hpp"
#include "nn/datasets.hpp"

using namespace nebula;

int
main(int argc, char **argv)
{
    int samples = 240;
    int clusters = 10;
    int image = 12;
    int timesteps = 12;
    int epochs = 2;
    double drift = 0.05;
    double min_purity = 0.7;
    std::string csv_path = "learn_clusters.csv";

    for (int i = 1; i < argc; ++i) {
        auto intArg = [&](const char *flag, int &out) {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
                out = std::atoi(argv[++i]);
                return true;
            }
            return false;
        };
        if (intArg("--samples", samples) || intArg("--clusters", clusters) ||
            intArg("--image", image) || intArg("--timesteps", timesteps) ||
            intArg("--epochs", epochs)) {
        } else if (std::strcmp(argv[i], "--drift") == 0 && i + 1 < argc) {
            drift = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--min-purity") == 0 &&
                   i + 1 < argc) {
            min_purity = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--csv") == 0 && i + 1 < argc) {
            csv_path = argv[++i];
        } else {
            std::cerr << "unknown flag: " << argv[i] << "\n";
            return 2;
        }
    }

    std::cout << "== NEBULA on-device clustering smoke ==\n\n";

    // A pixel-clusterable stream: fixed per-class ink masks plus flips
    // and sensor noise, so nearest-prototype matching can recover the
    // labels and purity is a meaningful learning-health signal.
    SyntheticClusters data(samples + 32, clusters, image, /*seed=*/52);

    LearningCampaignConfig config;
    config.rates = {0.0, drift};
    config.seeds = {3};
    config.samples = samples;
    config.clusters = clusters;
    config.stdp.epochs = epochs;
    config.stdp.timesteps = timesteps;

    const LearningCampaignResult result = runLearningCampaign(data, config);

    Table table("Clustering under pinning drift (" +
                    std::to_string(samples) + " samples, k=" +
                    std::to_string(clusters) + ")",
                {"fault rate", "purity", "pulses", "level steps",
                 "update energy", "read energy"});
    for (const LearningCampaignRow &row : result.rows) {
        table.row()
            .add(formatDouble(100 * row.rate, 1) + "%")
            .add(formatDouble(row.purity, 3))
            .add(std::to_string(row.updates.pulses))
            .add(std::to_string(row.updates.levelSteps))
            .add(formatDouble(1e9 * row.updates.updateEnergy, 1) + " nJ")
            .add(formatDouble(1e9 * row.readEnergy, 1) + " nJ");
    }
    table.print(std::cout);

    std::ofstream csv(csv_path);
    csv << result.csv();
    std::cout << "\nwrote " << csv_path << " (" << result.rows.size()
              << " rows).\n";

    const double clean = result.meanPurity(0.0);
    const double faulted = result.meanPurity(drift);
    std::cout << "clean purity " << formatDouble(clean, 3) << ", at "
              << formatDouble(100 * drift, 1) << "% drift "
              << formatDouble(faulted, 3) << " (chance = "
              << formatDouble(1.0 / clusters, 3) << ").\n";

    if (clean < min_purity) {
        std::cerr << "FAIL: clean purity " << formatDouble(clean, 3)
                  << " below gate " << formatDouble(min_purity, 3) << "\n";
        return 1;
    }
    std::cout << "PASS: clean purity above the " << formatDouble(min_purity, 3)
              << " gate.\n";
    return 0;
}
