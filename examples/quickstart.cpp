/**
 * @file
 * Quickstart: the full NEBULA flow in one file.
 *
 *  1. Train a small CNN on the synthetic digit dataset.
 *  2. Quantize it to the chip's 4-bit datapath.
 *  3. Program it onto the NEBULA chip model and run ANN inference
 *     through the DW-MTJ crossbars.
 *  4. Convert it to a spiking network and run SNN inference on-chip.
 *  5. Compare accuracy, energy and power of the two modes.
 *
 * Build & run:  ./examples-bin/quickstart
 */

#include <iostream>

#include "arch/chip.hpp"
#include "arch/energy_model.hpp"
#include "common/table.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/datasets.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"
#include "snn/convert.hpp"

using namespace nebula;

int
main()
{
    std::cout << "== NEBULA quickstart ==\n\n";

    // 1. Data + model + training. ---------------------------------------
    SyntheticDigits train_set(1200, 16, /*seed=*/1);
    SyntheticDigits test_set(300, 16, /*seed=*/2);

    Rng rng(7);
    Network net("quickstart-cnn");
    net.add<Conv2d>(1, 8, 3, 1, 1)->initKaiming(rng);
    net.add<Relu>();
    net.add<AvgPool2d>(2);
    net.add<Conv2d>(8, 16, 3, 1, 1)->initKaiming(rng);
    net.add<Relu>();
    net.add<AvgPool2d>(2);
    net.add<Flatten>();
    net.add<Linear>(16 * 4 * 4, 10)->initKaiming(rng);

    std::cout << net.summary() << "\n";

    TrainConfig cfg;
    cfg.epochs = 6;
    cfg.learningRate = 0.08;
    SgdTrainer trainer(cfg);
    trainer.train(net, train_set);
    const double float_acc = evaluateAccuracy(net, test_set);
    std::cout << "float ANN accuracy: " << 100 * float_acc << "%\n";

    // 2. Quantize to the 4-bit datapath. ---------------------------------
    const Tensor calibration = train_set.firstImages(64);
    const auto quant = quantizeNetwork(net, calibration, 16, 16);
    const double quant_acc = evaluateAccuracy(net, test_set);
    std::cout << "4-bit quantized accuracy: " << 100 * quant_acc << "%\n\n";

    // 3. ANN mode on the chip model. --------------------------------------
    NebulaChip chip;
    chip.programAnn(net, quant);
    int ann_correct = 0;
    const int chip_images = 100;
    for (int i = 0; i < chip_images; ++i) {
        Tensor logits = chip.runAnn(test_set.image(i));
        ann_correct += (logits.argmaxRow(0) == test_set.label(i));
    }
    std::cout << "on-chip ANN accuracy (" << chip_images
              << " images): " << 100.0 * ann_correct / chip_images
              << "%\n";
    std::cout << "  crossbar evaluations: " << chip.stats().crossbarEvals
              << ", analog array energy: "
              << toNj(chip.stats().crossbarEnergy) << " nJ\n\n";

    // 4. SNN mode on the chip model. --------------------------------------
    SpikingModel snn = convertToSnn(net, calibration);
    NebulaChip snn_chip;
    snn_chip.programSnn(snn);
    int snn_correct = 0;
    const int timesteps = 50;
    for (int i = 0; i < chip_images; ++i) {
        const auto result = snn_chip.runSnn(test_set.image(i), timesteps);
        snn_correct += (result.predictedClass() == test_set.label(i));
    }
    std::cout << "on-chip SNN accuracy (T=" << timesteps
              << "): " << 100.0 * snn_correct / chip_images << "%\n";
    std::cout << "  total spikes: " << snn_chip.stats().spikes << "\n\n";

    // 5. Architectural energy / power accounting. -------------------------
    const auto mapping = chip.mapping();
    EnergyModel model;
    const auto ann_energy = model.evaluateAnn(
        mapping, ActivityProfile::uniform(mapping.layers.size(), 0.5));
    const auto snn_energy = model.evaluateSnn(
        mapping, ActivityProfile::decaying(mapping.layers.size()),
        timesteps);

    Table table("ANN vs SNN mode on NEBULA",
                {"mode", "accuracy", "energy/inference (nJ)",
                 "avg power (mW)", "peak power (mW)"});
    table.row()
        .add("ANN")
        .add(formatDouble(100.0 * ann_correct / chip_images, 1) + "%")
        .add(toNj(ann_energy.totalEnergy), 1)
        .add(toMw(ann_energy.avgPower), 3)
        .add(toMw(ann_energy.peakPower), 3);
    table.row()
        .add("SNN")
        .add(formatDouble(100.0 * snn_correct / chip_images, 1) + "%")
        .add(toNj(snn_energy.totalEnergy), 1)
        .add(toMw(snn_energy.avgPower), 3)
        .add(toMw(snn_energy.peakPower), 3);
    table.print(std::cout);

    std::cout << "\nSNN mode runs at "
              << formatRatio(ann_energy.avgPower / snn_energy.avgPower)
              << " lower average power; the energy cost is the "
              << timesteps << "-step evidence integration.\n";
    return 0;
}
