/**
 * @file
 * Multi-tenant serving loadgen: stands up the full serving stack --
 * ModelRegistry (weight-swap scheduler) behind a ServingServer on a
 * loopback port -- then drives open-loop traffic from several tenants
 * over real sockets with the async client.
 *
 * Each tenant runs its own connection and walks the model list in
 * runs of --run-length requests; with more models than
 * --resident slots this forces weight swaps, whose write-verify cost
 * (program pulses / energy) the registry accounts and this tool
 * prints. Arrivals are open-loop: requests are fired on a fixed
 * schedule regardless of completions, so overload shows up as typed
 * Shed/QuotaExceeded outcomes rather than as a slowed-down generator.
 *
 * Exit code: 0 iff every request resolved to a *typed wire outcome*
 * (ok or a protocol/serving error) and --require-swaps was met; any
 * client-local failure (connection lost, send failure) or exception
 * is a hard failure. The CI serving-smoke job runs exactly this.
 *
 * Build & run:  ./examples-bin/serve_loadgen
 *   --tenants N          tenant connections (default 2)
 *   --requests N         requests per tenant (default 48)
 *   --models a,b,c       catalog ids (default mlp3/ann,mlp3/snn,lenet5/ann)
 *   --resident K         registry resident capacity (default 2)
 *   --run-length N       requests before a tenant switches model (8)
 *   --rate R             per-tenant arrivals/sec (default 150)
 *   --timesteps T        SNN/hybrid evidence window (default 10)
 *   --quota-rps R        tenant0's admission quota (0 = unlimited)
 *   --quota-burst B      tenant0's burst allowance (default 8)
 *   --require-swaps N    fail unless the registry swapped >= N times
 *   --slo-ms X           per-request SLO target; prints the rolling
 *                        per-tenant SLO scoreboard and exits non-zero
 *                        when any (tenant, model) error budget is
 *                        exhausted (burn rate >= 1)
 *   --batch N            per-worker micro-batch cap for ANN model
 *                        engines (pipelined same-model requests are
 *                        coalesced at dequeue; logits stay bit-exact)
 *   --batch-wait-us N    longest a worker holds a request waiting to
 *                        fill a batch (default 0: drain-only)
 *   --admin-port P       expose /metrics /statusz /healthz on P
 *                        (0 = ephemeral; the bound port is printed)
 *   --admin-wait-sec S   keep the server (and admin endpoint) up S
 *                        seconds after the load completes, so an
 *                        external scraper can read the final state
 *   --abft               online ABFT integrity checking: checksum
 *                        columns on every chip servable, hedged
 *                        re-execution of flagged requests on the
 *                        functional fallback, health-probe escalation
 *   --fault-rate R       program every chip servable under a stuck-at
 *                        fault map (rate R, hard walls write-verify
 *                        cannot free). Enables the integrity
 *                        cross-check: every Ok ANN response is compared
 *                        against a clean-reference chip programmed from
 *                        the same prototype, and the run exits non-zero
 *                        if any response is both corrupt and unflagged
 *                        (silent corruption). The CI integrity-smoke
 *                        job runs exactly this with --abft on.
 */

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "nn/datasets.hpp"
#include "obs/metrics.hpp"
#include "reliability/fault_model.hpp"
#include "runtime/replica.hpp"
#include "serving/client.hpp"
#include "serving/models.hpp"
#include "serving/registry.hpp"
#include "serving/server.hpp"

using namespace nebula;
using namespace nebula::serving;

namespace {

struct TenantOutcome
{
    std::string tenant;
    long long sent = 0;
    long long ok = 0;
    long long quotaShed = 0;
    long long engineShed = 0;
    long long timeouts = 0;
    long long otherTyped = 0;  //!< replica fault, unknown model, ...
    long long untyped = 0;     //!< connection lost / send failed

    // ABFT verdicts from the v3 frame header, plus the loadgen's own
    // clean-reference cross-check (ANN responses only -- SNN logits
    // depend on the server-assigned request id's encoder seed).
    long long checked = 0;          //!< responses that ran checksums
    long long flagged = 0;          //!< violation flag on the wire
    long long reExecuted = 0;       //!< hedged re-runs on the fallback
    long long corrupt = 0;          //!< prediction != clean reference
    long long corruptUnflagged = 0; //!< silent corruption (the failure)
    std::vector<double> latenciesMs;

    double percentile(double p) const
    {
        if (latenciesMs.empty())
            return 0.0;
        std::vector<double> sorted = latenciesMs;
        std::sort(sorted.begin(), sorted.end());
        const size_t idx = static_cast<size_t>(
            p * static_cast<double>(sorted.size() - 1));
        return sorted[idx];
    }
};

std::vector<std::string>
splitCsv(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

/** One tenant's open-loop run: fire on schedule, then collect. */
TenantOutcome
runTenant(const std::string &tenant, uint16_t port,
          const std::vector<std::string> &models, int requests,
          int run_length, double rate, int timesteps, int image_size,
          const std::map<std::string, ReplicaFactory> *clean_factories)
{
    TenantOutcome outcome;
    outcome.tenant = tenant;

    ServingClient client;
    if (!client.connect("127.0.0.1", port)) {
        outcome.untyped = requests;
        return outcome;
    }

    // Per-tenant images (deterministic, distinct across tenants).
    const uint64_t data_seed =
        7 + static_cast<uint64_t>(std::hash<std::string>{}(tenant) % 1000);
    SyntheticDigits images(std::min(64, requests), image_size, data_seed);

    // Clean-reference predictions for the integrity cross-check: a
    // fault-free chip programmed from the same trained prototype (same
    // chip seed the server's worker 0 uses), run over this tenant's
    // image stream. ANN evaluation is deterministic, so any Ok reply
    // whose prediction differs from this reference was corrupted.
    std::map<std::string, std::vector<int>> reference;
    if (clean_factories != nullptr) {
        for (const auto &entry : *clean_factories) {
            std::unique_ptr<ChipReplica> replica = entry.second(0);
            std::vector<int> predicted;
            for (int i = 0; i < images.size(); ++i) {
                InferenceRequest req;
                req.id = static_cast<uint64_t>(i);
                req.image = images.image(i);
                predicted.push_back(replica->run(req).predictedClass);
            }
            reference[entry.first] = std::move(predicted);
        }
    }

    std::vector<std::future<WireResponse>> futures;
    std::vector<std::chrono::steady_clock::time_point> sent_at;
    futures.reserve(static_cast<size_t>(requests));
    const auto interval = std::chrono::duration<double>(1.0 / rate);
    const auto start = std::chrono::steady_clock::now();

    for (int i = 0; i < requests; ++i) {
        // Open-loop: fire at the scheduled instant even if earlier
        // requests are still pending.
        std::this_thread::sleep_until(
            start + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(interval * i));

        const std::string &id =
            models[static_cast<size_t>(i / run_length) % models.size()];
        ServableModelSpec spec;
        parseServableId(id, spec);
        ServeOptions options;
        options.timesteps = timesteps;

        sent_at.push_back(std::chrono::steady_clock::now());
        WireMode mode;
        parseWireMode(spec.mode, mode);
        futures.push_back(client.inferAsync(
            tenant, spec.family, mode,
            images.image(i % images.size()), options));
        ++outcome.sent;
    }

    for (size_t i = 0; i < futures.size(); ++i) {
        const WireResponse reply = futures[i].get();
        switch (reply.status) {
        case WireStatus::Ok: {
            ++outcome.ok;
            outcome.latenciesMs.push_back(
                1e3 *
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - sent_at[i])
                    .count());
            outcome.checked += reply.integrityChecked() ? 1 : 0;
            outcome.flagged += reply.integrityViolation() ? 1 : 0;
            outcome.reExecuted += reply.integrityReExecuted() ? 1 : 0;
            const std::string &model_id =
                models[(i / static_cast<size_t>(run_length)) %
                       models.size()];
            const auto ref = reference.find(model_id);
            if (ref != reference.end() &&
                reply.predictedClass !=
                    ref->second[i % ref->second.size()]) {
                ++outcome.corrupt;
                if (!reply.integrityViolation() &&
                    !reply.integrityReExecuted())
                    ++outcome.corruptUnflagged;
            }
            break;
        }
        case WireStatus::QuotaExceeded: ++outcome.quotaShed; break;
        case WireStatus::Shed: ++outcome.engineShed; break;
        case WireStatus::Timeout: ++outcome.timeouts; break;
        case WireStatus::ConnectionLost:
        case WireStatus::SendFailed: ++outcome.untyped; break;
        default: ++outcome.otherTyped; break;
        }
    }
    client.close();
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    int tenants = 2;
    int requests = 48;
    int resident = 2;
    int run_length = 8;
    int timesteps = 10;
    double rate = 150.0;
    double quota_rps = 0.0;
    double quota_burst = 8.0;
    long long require_swaps = 0;
    double slo_ms = 0.0;
    int max_batch = 1;
    int batch_wait_us = 0;
    bool admin = false;
    int admin_port = 0;
    int admin_wait_sec = 0;
    bool abft = false;
    double fault_rate = 0.0;
    std::string models_csv = "mlp3/ann,mlp3/snn,lenet5/ann";

    for (int i = 1; i < argc; ++i) {
        auto intArg = [&](const char *flag, int &out) {
            if (std::strcmp(argv[i], flag) == 0 && i + 1 < argc) {
                out = std::atoi(argv[++i]);
                return true;
            }
            return false;
        };
        if (intArg("--tenants", tenants) ||
            intArg("--requests", requests) ||
            intArg("--resident", resident) ||
            intArg("--run-length", run_length) ||
            intArg("--timesteps", timesteps) ||
            intArg("--batch", max_batch) ||
            intArg("--batch-wait-us", batch_wait_us)) {
            continue;
        } else if (std::strcmp(argv[i], "--rate") == 0 && i + 1 < argc) {
            rate = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--quota-rps") == 0 &&
                   i + 1 < argc) {
            quota_rps = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--quota-burst") == 0 &&
                   i + 1 < argc) {
            quota_burst = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--require-swaps") == 0 &&
                   i + 1 < argc) {
            require_swaps = std::atoll(argv[++i]);
        } else if (std::strcmp(argv[i], "--slo-ms") == 0 && i + 1 < argc) {
            slo_ms = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--admin-port") == 0 &&
                   i + 1 < argc) {
            admin = true;
            admin_port = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--admin-wait-sec") == 0 &&
                   i + 1 < argc) {
            admin_wait_sec = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--models") == 0 && i + 1 < argc) {
            models_csv = argv[++i];
        } else if (std::strcmp(argv[i], "--abft") == 0) {
            abft = true;
        } else if (std::strcmp(argv[i], "--fault-rate") == 0 &&
                   i + 1 < argc) {
            fault_rate = std::atof(argv[++i]);
        } else {
            std::cerr
                << "usage: " << argv[0]
                << " [--tenants N] [--requests N] [--models a,b,c]"
                   " [--resident K] [--run-length N] [--rate R]"
                   " [--timesteps T] [--quota-rps R] [--quota-burst B]"
                   " [--require-swaps N] [--slo-ms X]"
                   " [--batch N] [--batch-wait-us N] [--admin-port P]"
                   " [--admin-wait-sec S] [--abft] [--fault-rate R]\n";
            return 2;
        }
    }

    const std::vector<std::string> model_ids = splitCsv(models_csv);
    if (model_ids.empty() || tenants < 1 || requests < 1 ||
        run_length < 1 || rate <= 0.0) {
        std::cerr << "bad arguments\n";
        return 2;
    }

    std::cout << "== NEBULA multi-tenant serving loadgen ==\n\n";

    // 1. Catalog: quick-training specs, shared trained prototypes.
    RegistryConfig reg_cfg;
    int image_size = 0;
    for (const std::string &id : model_ids) {
        ServableModelSpec spec;
        if (!parseServableId(id, spec)) {
            std::cerr << "unknown servable id '" << id << "'\n";
            return 2;
        }
        spec.trainImages = 400;
        spec.epochs = spec.family == "lenet5" ? 2 : 3;
        reg_cfg.catalog.push_back(spec);
        image_size = spec.imageSize;
    }
    reg_cfg.residentCapacity = static_cast<size_t>(std::max(1, resident));
    reg_cfg.workersPerModel = 1;
    reg_cfg.engine.queueCapacity = 128;
    reg_cfg.engine.defaultTimesteps = timesteps;
    // Dynamic micro-batching: ANN model engines coalesce pipelined
    // same-model requests at dequeue time (logits stay bit-exact).
    reg_cfg.engine.batching.maxBatch = std::max(1, max_batch);
    reg_cfg.engine.batching.maxWaitUs =
        static_cast<uint64_t>(std::max(0, batch_wait_us));
    reg_cfg.abft = abft;
    if (fault_rate > 0.0) {
        // Program every chip servable under a stuck-at map whose walls
        // are all hard: write-verify pulse escalation cannot free them,
        // so the corruption survives programming and the checksum
        // columns (when --abft) must catch it on the read path.
        reg_cfg.reliability.faults = std::make_shared<StuckAtFaultModel>(
            fault_rate, /*high_fraction=*/0.5, /*hard_fraction=*/1.0);
        reg_cfg.reliability.faultSeed = 4242;
    }

    // Clean-reference factories for the integrity cross-check: one
    // fault-free, ABFT-off chip per ANN servable (same trained
    // prototype via the shared loader cache). Each tenant runs its own
    // image stream through these to learn the uncorrupted predictions.
    std::map<std::string, ReplicaFactory> clean_factories;
    if (fault_rate > 0.0) {
        auto &loader = ServableLoader::global();
        for (const ServableModelSpec &spec : reg_cfg.catalog)
            if (spec.mode == "ann")
                clean_factories[spec.id()] = loader.makeFactory(spec);
    }

    std::cout << "catalog: " << model_ids.size() << " models, "
              << reg_cfg.residentCapacity
              << " resident slots (training prototypes...)\n";
    auto registry = std::make_shared<ModelRegistry>(reg_cfg);

    // 2. Server on an ephemeral loopback port.
    ServerConfig srv_cfg;
    srv_cfg.port = 0;
    if (quota_rps > 0.0) {
        // tenant0 is the quota-capped tenant; the rest stay unlimited.
        srv_cfg.tenantQuotas["tenant0"] =
            TenantQuota{quota_rps, quota_burst};
    }
    if (slo_ms > 0.0)
        srv_cfg.slo.targetMs = slo_ms;
    if (admin) {
        srv_cfg.adminEnabled = true;
        srv_cfg.adminPort = static_cast<uint16_t>(admin_port);
    }
    ServingServer server(srv_cfg, registry);
    server.start();
    std::cout << "server up on 127.0.0.1:" << server.port() << "\n";
    if (admin)
        std::cout << "admin endpoint on 127.0.0.1:" << server.adminPort()
                  << " (/metrics /statusz /healthz)\n";
    std::cout << "\n";

    // 3. Tenant threads, open-loop.
    const auto wall_start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    std::vector<TenantOutcome> outcomes(static_cast<size_t>(tenants));
    for (int t = 0; t < tenants; ++t) {
        threads.emplace_back([&, t] {
            outcomes[static_cast<size_t>(t)] = runTenant(
                "tenant" + std::to_string(t), server.port(), model_ids,
                requests, run_length, rate, timesteps, image_size,
                clean_factories.empty() ? nullptr : &clean_factories);
        });
    }
    for (auto &thread : threads)
        thread.join();
    const double wall_seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall_start)
            .count();

    // 4. Scoreboard.
    Table table("Per-tenant outcomes (open-loop @ " +
                    formatDouble(rate, 0) + " req/s each)",
                {"tenant", "sent", "ok", "quota shed", "engine shed",
                 "timeout", "other", "untyped", "p50 ms", "p95 ms",
                 "p99 ms"});
    long long total_untyped = 0;
    long long total_ok = 0;
    for (const TenantOutcome &o : outcomes) {
        total_untyped += o.untyped;
        total_ok += o.ok;
        table.row()
            .add(o.tenant)
            .add(o.sent)
            .add(o.ok)
            .add(o.quotaShed)
            .add(o.engineShed)
            .add(o.timeouts)
            .add(o.otherTyped)
            .add(o.untyped)
            .add(o.percentile(0.50), 2)
            .add(o.percentile(0.95), 2)
            .add(o.percentile(0.99), 2);
    }
    table.print(std::cout);

    // Integrity scoreboard (when ABFT or fault injection is on): the
    // wire-level verdict counts plus the clean-reference cross-check.
    long long total_corrupt_unflagged = 0;
    if (abft || fault_rate > 0.0) {
        Table integrity_table(
            "Integrity (ABFT " + std::string(abft ? "on" : "off") +
                ", stuck-at fault rate " + formatDouble(fault_rate, 3) +
                ")",
            {"tenant", "checked", "flagged", "re-executed", "corrupt",
             "corrupt+unflagged"});
        for (const TenantOutcome &o : outcomes) {
            total_corrupt_unflagged += o.corruptUnflagged;
            integrity_table.row()
                .add(o.tenant)
                .add(o.checked)
                .add(o.flagged)
                .add(o.reExecuted)
                .add(o.corrupt)
                .add(o.corruptUnflagged);
        }
        std::cout << "\n";
        integrity_table.print(std::cout);
    }

    const ProgramReport swap_cost = registry->totalSwapCost();
    std::cout << "\nweight swaps: " << registry->swapIns()
              << " swap-ins, " << registry->evictions() << " evictions ("
              << registry->residentCount() << "/"
              << registry->residentCapacity() << " resident at end)\n"
              << "swap cost:    " << swap_cost.pulses
              << " program pulses, " << swap_cost.programEnergy
              << " J write-verify energy, " << swap_cost.pulsesPerCell()
              << " pulses/cell\n"
              << "throughput:   "
              << static_cast<double>(total_ok) / wall_seconds
              << " ok replies/sec across all tenants\n";

    // 5. Energy attribution: Joules the chip model spent per tenant,
    //    billed by the server on every Ok response.
    auto &global_metrics = obs::MetricsRegistry::global();
    Table energy_table("Per-tenant energy attribution (chip model)",
                       {"tenant", "inferences", "energy (J)",
                        "J/inference"});
    for (const TenantOutcome &o : outcomes) {
        const double inferences = global_metrics.counterValue(
            "telemetry.tenant.inferences", {{"tenant", o.tenant}});
        const double joules = global_metrics.counterValue(
            "telemetry.tenant.energy_j", {{"tenant", o.tenant}});
        energy_table.row()
            .add(o.tenant)
            .add(static_cast<long long>(inferences))
            .add(joules, 9)
            .add(inferences > 0 ? joules / inferences : 0.0, 12);
    }
    std::cout << "\n";
    energy_table.print(std::cout);

    // 6. SLO scoreboard (when a target was set): rolling per-cell
    //    quantiles and the error-budget burn rate.
    bool budget_exhausted = false;
    if (slo_ms > 0.0) {
        Table slo_table("Rolling SLO (target " + formatDouble(slo_ms, 1) +
                            " ms, objective " +
                            formatDouble(100.0 * srv_cfg.slo.objective, 1) +
                            "%, window " +
                            formatDouble(srv_cfg.slo.windowSeconds, 0) +
                            " s)",
                        {"tenant", "model", "p50 ms", "p95 ms", "p99 ms",
                         "good", "bad", "burn rate"});
        for (const obs::SloSnapshot &cell : server.slo().snapshotAll()) {
            budget_exhausted |= cell.budgetExhausted();
            slo_table.row()
                .add(cell.tenant)
                .add(cell.model)
                .add(cell.p50Ms, 2)
                .add(cell.p95Ms, 2)
                .add(cell.p99Ms, 2)
                .add(static_cast<long long>(cell.good))
                .add(static_cast<long long>(cell.bad))
                .add(cell.burnRate, 3);
        }
        std::cout << "\n";
        slo_table.print(std::cout);
    }

    if (admin && admin_wait_sec > 0) {
        std::cout << "\nholding admin endpoint on 127.0.0.1:"
                  << server.adminPort() << " for " << admin_wait_sec
                  << " s...\n"
                  << std::flush;
        std::this_thread::sleep_for(std::chrono::seconds(admin_wait_sec));
    }

    const uint64_t swap_ins = registry->swapIns();
    server.stop();
    registry->shutdown();

    if (budget_exhausted) {
        std::cerr << "\nFAIL: at least one (tenant, model) error budget "
                     "is exhausted (burn rate >= 1)\n";
        return 1;
    }
    if (total_untyped > 0) {
        std::cerr << "\nFAIL: " << total_untyped
                  << " request(s) ended without a typed wire outcome\n";
        return 1;
    }
    if (swap_ins < static_cast<uint64_t>(require_swaps)) {
        std::cerr << "\nFAIL: " << swap_ins << " swap-ins < required "
                  << require_swaps << "\n";
        return 1;
    }
    if (total_corrupt_unflagged > 0) {
        std::cerr << "\nFAIL: " << total_corrupt_unflagged
                  << " response(s) corrupt vs the clean reference and "
                     "not flagged by ABFT (silent corruption)\n";
        return 1;
    }
    std::cout << "\nRESULT ok: every request resolved to a typed wire "
                 "outcome\n";
    return 0;
}
