/**
 * @file
 * Serving example: the concurrent inference runtime end-to-end on the
 * synthetic digit dataset.
 *
 *  1. Train a small MLP and quantize it to the 4-bit datapath.
 *  2. Stand up an InferenceEngine whose workers each hold a programmed
 *     NebulaChip replica, and serve the test set through submitBatch.
 *  3. Do the same in SNN mode (per-request encoder seeds keep results
 *     reproducible regardless of worker interleaving).
 *  4. Print accuracy, throughput, latency distribution and the merged
 *     chip counters.
 *
 * Build & run:  ./examples-bin/serve_throughput
 *
 * Tracing:      ./examples-bin/serve_throughput --trace out.json
 * records every request's latency breakdown, the chip-level layer
 * evaluations and the NoC transfers nested inside them as Chrome
 * trace-event JSON -- open out.json in ui.perfetto.dev. Use
 * --sample N to keep every Nth request's spans (bounds trace size).
 * NEBULA_TRACE=out.json works for any binary, without flags.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"
#include "obs/trace.hpp"
#include "runtime/engine.hpp"
#include "runtime/replica.hpp"
#include "snn/convert.hpp"

using namespace nebula;

namespace {

struct ServeOutcome
{
    double accuracy = 0.0;
    double imagesPerSec = 0.0;
    double meanLatencyMs = 0.0;
    double maxLatencyMs = 0.0;
    long long crossbarEvals = 0;
    long long spikes = 0;
};

/** Serve every test image through the engine; gather the scoreboard. */
ServeOutcome
serve(InferenceEngine &engine, const Dataset &test)
{
    std::vector<Tensor> images;
    for (int i = 0; i < test.size(); ++i)
        images.push_back(test.image(i));

    const auto start = std::chrono::steady_clock::now();
    auto futures = engine.submitBatch(images);
    int correct = 0;
    for (int i = 0; i < test.size(); ++i)
        correct +=
            (futures[static_cast<size_t>(i)].get().predictedClass ==
             test.label(i));
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    ServeOutcome outcome;
    outcome.accuracy = 100.0 * correct / test.size();
    outcome.imagesPerSec = test.size() / seconds;
    const StatGroup stats = engine.runtimeStats();
    outcome.meanLatencyMs = stats.scalarAt("latency_ms").mean();
    outcome.maxLatencyMs = stats.scalarAt("latency_ms").max();
    const ChipStats chip = engine.chipStats();
    outcome.crossbarEvals = chip.crossbarEvals;
    outcome.spikes = chip.spikes;
    return outcome;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    obs::TraceConfig trace_cfg;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--sample") == 0 && i + 1 < argc) {
            trace_cfg.sampleEvery = std::max(1ll, std::atoll(argv[++i]));
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--trace out.json] [--sample N]\n";
            return 2;
        }
    }
    if (!trace_path.empty()) {
        obs::setThreadName("main");
        obs::TraceSession::start(trace_cfg);
    }

    std::cout << "== NEBULA serving quickstart ==\n\n";

    // 1. Train + quantize. ------------------------------------------------
    SyntheticDigits train_set(1200, 16, /*seed=*/1);
    SyntheticDigits test_set(300, 16, /*seed=*/2);

    Network net = buildMlp3(16, 1, 10, /*seed=*/7);
    TrainConfig tc;
    tc.epochs = 6;
    tc.learningRate = 0.08;
    SgdTrainer trainer(tc);
    trainer.train(net, train_set);

    Network float_net = net.clone(); // SNN conversion wants plain ReLUs
    const Tensor calibration = train_set.firstImages(64);
    const auto quant = quantizeNetwork(net, calibration);

    const int workers =
        std::max(2u, std::thread::hardware_concurrency());
    std::cout << "serving " << test_set.size() << " images with "
              << workers << " workers\n\n";

    // 2. ANN-mode engine. -------------------------------------------------
    EngineConfig ann_cfg;
    ann_cfg.numWorkers = workers;
    ann_cfg.queueCapacity = 64;
    InferenceEngine ann_engine(ann_cfg, makeAnnReplicaFactory(net, quant));
    const ServeOutcome ann = serve(ann_engine, test_set);
    ann_engine.shutdown();

    // 3. SNN-mode engine. -------------------------------------------------
    SpikingModel snn = convertToSnn(float_net, calibration);
    EngineConfig snn_cfg;
    snn_cfg.numWorkers = workers;
    snn_cfg.defaultTimesteps = 40;
    InferenceEngine snn_engine(snn_cfg, makeSnnReplicaFactory(snn));
    const ServeOutcome snn_out = serve(snn_engine, test_set);
    snn_engine.shutdown();

    // 4. Scoreboard. ------------------------------------------------------
    Table table("Worker-pool serving: ANN vs SNN mode",
                {"mode", "accuracy", "images/sec", "mean latency (ms)",
                 "max latency (ms)", "crossbar evals", "spikes"});
    table.row()
        .add("ANN")
        .add(formatDouble(ann.accuracy, 1) + "%")
        .add(ann.imagesPerSec, 1)
        .add(ann.meanLatencyMs, 3)
        .add(ann.maxLatencyMs, 3)
        .add(ann.crossbarEvals)
        .add(ann.spikes);
    table.row()
        .add("SNN (T=40)")
        .add(formatDouble(snn_out.accuracy, 1) + "%")
        .add(snn_out.imagesPerSec, 1)
        .add(snn_out.meanLatencyMs, 3)
        .add(snn_out.maxLatencyMs, 3)
        .add(snn_out.crossbarEvals)
        .add(snn_out.spikes);
    table.print(std::cout);

    std::cout << "\nDeterminism: every request carries its own encoder "
                 "seed, so re-serving the same\nbatch -- with any worker "
                 "count, including the inline numWorkers=0 mode -- "
                 "reproduces\nbit-identical logits.\n";

    // 5. Trace output. ----------------------------------------------------
    if (!trace_path.empty()) {
        auto session = obs::TraceSession::stop();
        if (session) {
            if (!session->writeJson(trace_path)) {
                std::cerr << "failed to write trace to " << trace_path
                          << "\n";
                return 1;
            }
            std::cout << "\nwrote " << session->eventCount()
                      << " trace events (" << session->droppedEvents()
                      << " dropped) across " << session->tracks().size()
                      << " thread tracks to " << trace_path
                      << "\nopen it in ui.perfetto.dev or "
                         "chrome://tracing\n";
        }
    }
    return 0;
}
