/**
 * @file
 * Serving example: the concurrent inference runtime end-to-end on the
 * synthetic digit dataset.
 *
 *  1. Train a small MLP and quantize it to the 4-bit datapath.
 *  2. Stand up an InferenceEngine whose workers each hold a programmed
 *     NebulaChip replica, and serve the test set through submitBatch.
 *  3. Do the same in SNN mode (per-request encoder seeds keep results
 *     reproducible regardless of worker interleaving).
 *  4. Print accuracy, throughput, latency distribution and the merged
 *     chip counters.
 *
 * Build & run:  ./examples-bin/serve_throughput
 *
 * Model:        --model mlp3|lenet5 selects the served topology; the
 * trained prototype comes from the serving ServableLoader, the same
 * loader the multi-tenant registry programs swap-ins from, so the
 * example and the server share model-construction code.
 *
 * Resilience:   --deadline-ms N attaches an N-millisecond deadline to
 * every request (expired ones resolve to typed Timeout outcomes
 * instead of being evaluated); --shed-policy block|reject|deadline
 * selects the admission-control policy (reject sheds when the queue is
 * full, deadline sheds at submit when the predicted queue wait already
 * blows the budget). --chaos runs an extra ANN phase with the
 * closed-loop health monitor attached: mid-run the live replicas are
 * re-programmed under a retention-decay ramp (aged crossbars serving
 * silently wrong logits), the canary probes catch the drift, repair
 * re-programs in place, and the scoreboard shows accuracy before the
 * fault, while degraded, and after recovery.
 *
 * Batching:     --batch N lets each ANN worker coalesce up to N queued
 * requests into one micro-batch (batched GEMM-style crossbar walk,
 * logits bit-identical to solo evaluation); --batch-wait-us N bounds
 * how long a worker holds a request waiting for more (default 0:
 * opportunistic draining only, no added latency).
 *
 * Telemetry:    --admin-port P exposes /metrics (Prometheus), /statusz
 * (JSON metric snapshot) and /healthz on 127.0.0.1:P for the lifetime
 * of the run (0 = ephemeral, the bound port is printed);
 * --admin-wait-sec S keeps the process (and the endpoint) alive S
 * seconds after serving completes so an external scraper can read the
 * final counters. The CI telemetry-smoke job curls exactly these.
 *
 * Integrity:    --abft programs every replica with the checksum column
 * and verifies each crossbar read against its input-weighted
 * expectation; flagged requests are re-executed once on a functional
 * (no-crossbar) fallback replica before the promise settles. The
 * scoreboard prints the checks / violations / re-executions billed on
 * the results (zero violations expected on clean arrays).
 *
 * Tracing:      ./examples-bin/serve_throughput --trace out.json
 * records every request's latency breakdown, the chip-level layer
 * evaluations and the NoC transfers nested inside them as Chrome
 * trace-event JSON -- open out.json in ui.perfetto.dev. Use
 * --sample N to keep every Nth request's spans (bounds trace size).
 * NEBULA_TRACE=out.json works for any binary, without flags.
 */

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/table.hpp"
#include "nn/datasets.hpp"
#include "nn/models.hpp"
#include "nn/quantize.hpp"
#include "nn/trainer.hpp"
#include "obs/trace.hpp"
#include "reliability/fault_model.hpp"
#include "reliability/health.hpp"
#include "runtime/engine.hpp"
#include "runtime/replica.hpp"
#include "serving/admin.hpp"
#include "serving/models.hpp"
#include "snn/convert.hpp"

using namespace nebula;

namespace {

struct ServeOutcome
{
    double accuracy = 0.0;
    double imagesPerSec = 0.0;
    double meanLatencyMs = 0.0;
    double maxLatencyMs = 0.0;
    long long crossbarEvals = 0;
    long long spikes = 0;
    long long delivered = 0;
    long long shed = 0;
    long long timeouts = 0;
    long long faults = 0;
    long long integrityChecks = 0;
    long long integrityViolations = 0;
    long long integrityReExecuted = 0;
};

/** Serve every test image through the engine; gather the scoreboard. */
ServeOutcome
serve(InferenceEngine &engine, const Dataset &test)
{
    std::vector<Tensor> images;
    for (int i = 0; i < test.size(); ++i)
        images.push_back(test.image(i));

    const auto start = std::chrono::steady_clock::now();
    auto futures = engine.submitBatch(images);
    ServeOutcome outcome;
    int correct = 0;
    for (int i = 0; i < test.size(); ++i) {
        const InferenceResult result = futures[static_cast<size_t>(i)].get();
        if (result.ok()) {
            ++outcome.delivered;
            correct += (result.predictedClass == test.label(i));
            outcome.integrityChecks += result.integrity.checks;
            outcome.integrityViolations += result.integrity.violations;
            outcome.integrityReExecuted += result.integrity.reExecuted ? 1 : 0;
        } else if (result.error == RuntimeErrorKind::Shed) {
            ++outcome.shed;
        } else if (result.error == RuntimeErrorKind::Timeout) {
            ++outcome.timeouts;
        } else {
            ++outcome.faults;
        }
    }
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();

    outcome.accuracy = outcome.delivered > 0
                           ? 100.0 * correct / outcome.delivered
                           : 0.0;
    outcome.imagesPerSec = test.size() / seconds;
    const StatGroup stats = engine.runtimeStats();
    outcome.meanLatencyMs = stats.scalarAt("latency_ms").mean();
    outcome.maxLatencyMs = stats.scalarAt("latency_ms").max();
    const ChipStats chip = engine.chipStats();
    outcome.crossbarEvals = chip.crossbarEvals;
    outcome.spikes = chip.spikes;
    return outcome;
}

void
addOutcomeRow(Table &table, const std::string &mode,
              const ServeOutcome &o)
{
    table.row()
        .add(mode)
        .add(formatDouble(o.accuracy, 1) + "%")
        .add(o.imagesPerSec, 1)
        .add(o.meanLatencyMs, 3)
        .add(o.maxLatencyMs, 3)
        .add(o.delivered)
        .add(o.shed)
        .add(o.timeouts)
        .add(o.crossbarEvals);
}

/**
 * Chaos phase: serve with the health monitor attached, age the live
 * replicas mid-run with a retention-decay ramp, and let the canary
 * probe / repair loop pull accuracy back.
 */
void
runChaosPhase(const Network &net, const QuantizationResult &quant,
              const SyntheticDigits &train_set, const Dataset &test,
              int workers)
{
    HealthConfig hc;
    hc.probeEvery = 8;       // probe often: the demo run is short
    hc.tolerance = 1e-6;     // any drift at all trips the repair
    hc.repairWith = {};      // repair = clean re-programming pass
    std::vector<Tensor> canaries;
    canaries.push_back(train_set.image(0));
    canaries.push_back(train_set.image(1));
    auto health = std::make_shared<HealthMonitor>(hc, std::move(canaries));
    health->setFallback(makeFunctionalAnnReplicaFactory(net));

    EngineConfig cfg;
    cfg.numWorkers = workers;
    cfg.queueCapacity = 64;
    cfg.health = health;
    InferenceEngine engine(cfg, makeAnnReplicaFactory(net, quant));

    const ServeOutcome clean = serve(engine, test);

    // Age every serving crossbar in place: re-program under a
    // retention-decay ramp (walls relaxed toward the track middle) --
    // the silent-drift scenario the monitor exists for.
    ReliabilityConfig decay;
    decay.faults = std::make_shared<RetentionDecayFaultModel>(
        /*elapsed=*/5.0, /*tau=*/1.0, /*sigma=*/0.3);
    engine.withReplicas(
        [&](ChipReplica &replica) { replica.reprogram(decay); });

    const ServeOutcome degraded = serve(engine, test);
    const ServeOutcome recovered = serve(engine, test);
    engine.shutdown();

    Table table("Chaos: retention decay injected mid-run, closed-loop "
                "repair (probe every " +
                    std::to_string(hc.probeEvery) + " requests)",
                {"phase", "accuracy", "images/sec", "mean latency (ms)",
                 "max latency (ms)", "delivered", "shed", "timeouts",
                 "crossbar evals"});
    addOutcomeRow(table, "clean", clean);
    addOutcomeRow(table, "decayed", degraded);
    addOutcomeRow(table, "recovered", recovered);
    table.print(std::cout);

    std::cout << "\nhealth: " << health->probes() << " probes, "
              << health->degradations() << " degradation(s), "
              << health->repairs() << " repair(s), "
              << health->demotions() << " demotion(s)\n";
    for (int slot = 0; slot < std::max(1, workers); ++slot)
        std::cout << "  replica " << slot << ": "
                  << toString(health->health(slot)) << "\n";
    std::cout << "\nThe decayed phase serves whatever drift the probes "
                 "have not caught yet; the\nrecovered phase is "
                 "bit-identical to clean -- repair re-programs the "
                 "same weights\nonto the same crossbars.\n\n";
}

} // namespace

int
main(int argc, char **argv)
{
    std::string trace_path;
    std::string model_name = "mlp3";
    obs::TraceConfig trace_cfg;
    double deadline_ms = 0.0;
    ShedPolicy shed_policy = ShedPolicy::Block;
    int max_batch = 1;
    long long batch_wait_us = 0;
    bool chaos = false;
    bool abft = false;
    bool admin = false;
    int admin_port = 0;
    int admin_wait_sec = 0;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--model") == 0 && i + 1 < argc) {
            model_name = argv[++i];
            if (model_name != "mlp3" && model_name != "lenet5") {
                std::cerr << "unknown model '" << model_name
                          << "' (mlp3|lenet5)\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--trace") == 0 && i + 1 < argc) {
            trace_path = argv[++i];
        } else if (std::strcmp(argv[i], "--sample") == 0 && i + 1 < argc) {
            trace_cfg.sampleEvery = std::max(1ll, std::atoll(argv[++i]));
        } else if (std::strcmp(argv[i], "--deadline-ms") == 0 &&
                   i + 1 < argc) {
            deadline_ms = std::atof(argv[++i]);
        } else if (std::strcmp(argv[i], "--shed-policy") == 0 &&
                   i + 1 < argc) {
            const std::string policy = argv[++i];
            if (policy == "block") {
                shed_policy = ShedPolicy::Block;
            } else if (policy == "reject") {
                shed_policy = ShedPolicy::RejectWhenFull;
            } else if (policy == "deadline") {
                shed_policy = ShedPolicy::DeadlineAware;
            } else {
                std::cerr << "unknown shed policy '" << policy
                          << "' (block|reject|deadline)\n";
                return 2;
            }
        } else if (std::strcmp(argv[i], "--batch") == 0 && i + 1 < argc) {
            max_batch = std::max(1, std::atoi(argv[++i]));
        } else if (std::strcmp(argv[i], "--batch-wait-us") == 0 &&
                   i + 1 < argc) {
            batch_wait_us = std::max(0ll, std::atoll(argv[++i]));
        } else if (std::strcmp(argv[i], "--chaos") == 0) {
            chaos = true;
        } else if (std::strcmp(argv[i], "--abft") == 0) {
            abft = true;
        } else if (std::strcmp(argv[i], "--admin-port") == 0 &&
                   i + 1 < argc) {
            admin = true;
            admin_port = std::atoi(argv[++i]);
        } else if (std::strcmp(argv[i], "--admin-wait-sec") == 0 &&
                   i + 1 < argc) {
            admin_wait_sec = std::atoi(argv[++i]);
        } else {
            std::cerr << "usage: " << argv[0]
                      << " [--model mlp3|lenet5]"
                         " [--trace out.json] [--sample N]"
                         " [--deadline-ms N]"
                         " [--shed-policy block|reject|deadline]"
                         " [--batch N] [--batch-wait-us N]"
                         " [--chaos] [--abft] [--admin-port P]"
                         " [--admin-wait-sec S]\n";
            return 2;
        }
    }

    // Telemetry endpoint over the process-global metrics registry (the
    // default handlers): up before serving starts, so a scraper watches
    // the counters move while the run is in flight.
    serving::AdminServer admin_server{[&] {
        serving::AdminConfig cfg;
        cfg.port = static_cast<uint16_t>(admin_port);
        return cfg;
    }()};
    if (admin) {
        admin_server.start();
        std::cout << "admin endpoint on 127.0.0.1:" << admin_server.port()
                  << " (/metrics /statusz /healthz)\n"
                  << std::flush;
    }
    if (!trace_path.empty()) {
        obs::setThreadName("main");
        obs::TraceSession::start(trace_cfg);
    }

    std::cout << "== NEBULA serving quickstart ==\n\n";

    // 1. Train + quantize via the shared servable loader (the same
    //    prototype the multi-tenant registry programs swap-ins from).
    serving::ServableModelSpec spec;
    spec.family = model_name;
    spec.trainImages = 1200;
    spec.epochs = 6;
    SyntheticDigits train_set(1200, spec.imageSize, /*seed=*/1);
    SyntheticDigits test_set(300, spec.imageSize, /*seed=*/2);

    auto &loader = serving::ServableLoader::global();
    auto [net, quant] = loader.quantized(spec);

    const int workers =
        std::max(2u, std::thread::hardware_concurrency());
    std::cout << "serving " << test_set.size() << " images (" << model_name
              << ") with " << workers << " workers";
    if (deadline_ms > 0.0)
        std::cout << ", " << deadline_ms << " ms deadline";
    if (shed_policy != ShedPolicy::Block)
        std::cout << ", shed policy "
                  << (shed_policy == ShedPolicy::RejectWhenFull
                          ? "reject-when-full"
                          : "deadline-aware");
    if (max_batch > 1)
        std::cout << ", micro-batch up to " << max_batch << " (wait "
                  << batch_wait_us << " us)";
    if (abft)
        std::cout << ", ABFT checksum columns on";
    std::cout << "\n\n";

    const uint64_t deadline_ns =
        deadline_ms > 0.0 ? static_cast<uint64_t>(1e6 * deadline_ms) : 0;

    // Checksum columns on every programmed crossbar when --abft; the
    // flagged-request fallback is the mode's functional backend (no
    // crossbars to corrupt), mirroring the serving registry's wiring.
    NebulaConfig chip_cfg;
    chip_cfg.abft = abft;

    // 2. ANN-mode engine. -------------------------------------------------
    EngineConfig ann_cfg;
    ann_cfg.numWorkers = workers;
    ann_cfg.queueCapacity = 64;
    ann_cfg.defaultDeadlineNs = deadline_ns;
    ann_cfg.shedPolicy = shed_policy;
    ann_cfg.batching.maxBatch = max_batch;
    ann_cfg.batching.maxWaitUs = static_cast<uint64_t>(batch_wait_us);
    if (abft)
        ann_cfg.abft.fallback = makeFunctionalAnnReplicaFactory(net);
    InferenceEngine ann_engine(ann_cfg,
                               makeAnnReplicaFactory(net, quant, chip_cfg));
    const ServeOutcome ann = serve(ann_engine, test_set);
    ann_engine.shutdown();

    // 3. SNN-mode engine. -------------------------------------------------
    SpikingModel snn = loader.spiking(spec);
    EngineConfig snn_cfg;
    snn_cfg.numWorkers = workers;
    snn_cfg.defaultTimesteps = 40;
    snn_cfg.defaultDeadlineNs = deadline_ns;
    snn_cfg.shedPolicy = shed_policy;
    if (abft)
        snn_cfg.abft.fallback = makeFunctionalSnnReplicaFactory(
            net, loader.calibration(spec));
    InferenceEngine snn_engine(snn_cfg, makeSnnReplicaFactory(snn, chip_cfg));
    const ServeOutcome snn_out = serve(snn_engine, test_set);
    snn_engine.shutdown();

    // 4. Scoreboard. ------------------------------------------------------
    Table table("Worker-pool serving: ANN vs SNN mode",
                {"mode", "accuracy", "images/sec", "mean latency (ms)",
                 "max latency (ms)", "delivered", "shed", "timeouts",
                 "crossbar evals"});
    addOutcomeRow(table, "ANN", ann);
    addOutcomeRow(table, "SNN (T=40)", snn_out);
    table.print(std::cout);

    if (abft)
        std::cout << "\nintegrity: ANN "
                  << ann.integrityChecks << " checksum comparisons, "
                  << ann.integrityViolations << " violation(s), "
                  << ann.integrityReExecuted << " re-executed; SNN "
                  << snn_out.integrityChecks << " comparisons, "
                  << snn_out.integrityViolations << " violation(s), "
                  << snn_out.integrityReExecuted << " re-executed\n";

    std::cout << "\nDeterminism: every request carries its own encoder "
                 "seed, so re-serving the same\nbatch -- with any worker "
                 "count, including the inline numWorkers=0 mode -- "
                 "reproduces\nbit-identical logits.\n\n";

    // 5. Chaos phase (opt-in). ---------------------------------------------
    if (chaos)
        runChaosPhase(net, quant, train_set, test_set, workers);

    // 6. Trace output. ----------------------------------------------------
    if (!trace_path.empty()) {
        auto session = obs::TraceSession::stop();
        if (session) {
            if (!session->writeJson(trace_path)) {
                std::cerr << "failed to write trace to " << trace_path
                          << "\n";
                return 1;
            }
            std::cout << "\nwrote " << session->eventCount()
                      << " trace events (" << session->droppedEvents()
                      << " dropped) across " << session->tracks().size()
                      << " thread tracks to " << trace_path
                      << "\nopen it in ui.perfetto.dev or "
                         "chrome://tracing\n";
        }
    }

    if (admin && admin_wait_sec > 0) {
        std::cout << "\nholding admin endpoint on 127.0.0.1:"
                  << admin_server.port() << " for " << admin_wait_sec
                  << " s...\n"
                  << std::flush;
        std::this_thread::sleep_for(std::chrono::seconds(admin_wait_sec));
    }
    return 0;
}
