#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline.

Only ratio metrics (names matching --metrics, default the ``*.speedup``
scalars) are compared: they divide out absolute host speed, so a laptop,
a CI runner and the machine that recorded the baseline all agree on them
to within noise. A metric regresses when

    current_mean < baseline_mean * (1 - tolerance)

Improvements and new metrics never fail; a metric present in the
baseline but missing from the current run always fails (the bench
silently dropped a study).

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json \
        [--tolerance 0.2] [--metrics REGEX]

Exit status 0 when nothing regressed, 1 otherwise.
"""

import argparse
import json
import re
import sys


def scalar_means(path):
    with open(path) as fh:
        doc = json.load(fh)
    return {name: stats["mean"] for name, stats in doc["scalars"].items()}


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH json from this run")
    parser.add_argument("baseline", help="committed baseline BENCH json")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional drop (default 0.2)")
    parser.add_argument("--metrics", default=r"\.speedup$",
                        help="regex selecting comparable metrics "
                             "(default: the *.speedup ratios)")
    args = parser.parse_args()

    current = scalar_means(args.current)
    baseline = scalar_means(args.baseline)
    pattern = re.compile(args.metrics)

    failures = []
    compared = 0
    for name, base in sorted(baseline.items()):
        if not pattern.search(name):
            continue
        compared += 1
        if name not in current:
            failures.append(f"{name}: missing from current run "
                            f"(baseline {base:.3f})")
            continue
        cur = current[name]
        floor = base * (1.0 - args.tolerance)
        verdict = "FAIL" if cur < floor else "ok"
        print(f"{verdict:4} {name}: current {cur:.3f} vs baseline "
              f"{base:.3f} (floor {floor:.3f})")
        if cur < floor:
            failures.append(f"{name}: {cur:.3f} < {floor:.3f} "
                            f"(baseline {base:.3f} - {args.tolerance:.0%})")

    if compared == 0:
        print(f"error: no baseline metrics match /{args.metrics}/",
              file=sys.stderr)
        return 1
    if failures:
        print(f"\n{len(failures)} metric(s) regressed more than "
              f"{args.tolerance:.0%}:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {compared} compared metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
