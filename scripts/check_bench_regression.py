#!/usr/bin/env python3
"""Compare a fresh BENCH_*.json against a committed baseline.

Only ratio metrics (names matching --metrics, default the ``*.speedup``
scalars) are compared: they divide out absolute host speed, so a laptop,
a CI runner and the machine that recorded the baseline all agree on them
to within noise. A metric regresses when

    current_mean < baseline_mean * (1 - tolerance)

Improvements and new metrics never fail; a metric present in the
baseline but missing from the current run always fails (the bench
silently dropped a study).

``--require-key NAME`` (repeatable) additionally asserts that NAME is
present in the *current* run's scalars -- use it to pin metrics a bench
is expected to start emitting (e.g. the ``abft.*`` ratios) even before
the committed baseline records them.

Usage:
    check_bench_regression.py CURRENT.json BASELINE.json \
        [--tolerance 0.2] [--metrics REGEX] [--require-key NAME]...

Exit status 0 when nothing regressed, 1 otherwise.
"""

import argparse
import json
import re
import sys


def scalar_means(path):
    """Load ``{scalar name: mean}`` from a BENCH json.

    Malformed documents produce a named diagnostic (which file, which
    key) instead of a KeyError traceback.
    """
    with open(path) as fh:
        doc = json.load(fh)
    if "scalars" not in doc:
        sys.exit(f"error: {path}: no 'scalars' section -- not a BENCH "
                 f"summary json?")
    means = {}
    for name, stats in doc["scalars"].items():
        if "mean" not in stats:
            sys.exit(f"error: {path}: scalar '{name}' has no 'mean' "
                     f"field")
        means[name] = stats["mean"]
    return means


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("current", help="BENCH json from this run")
    parser.add_argument("baseline", help="committed baseline BENCH json")
    parser.add_argument("--tolerance", type=float, default=0.2,
                        help="allowed fractional drop (default 0.2)")
    parser.add_argument("--metrics", default=r"\.speedup$",
                        help="regex selecting comparable metrics "
                             "(default: the *.speedup ratios)")
    parser.add_argument("--require-key", action="append", default=[],
                        metavar="NAME", dest="require_keys",
                        help="scalar that must exist in the current run "
                             "(repeatable; fails by name if absent)")
    args = parser.parse_args()

    current = scalar_means(args.current)
    baseline = scalar_means(args.baseline)
    pattern = re.compile(args.metrics)

    failures = []
    compared = 0
    for name in args.require_keys:
        if name in current:
            print(f"ok   {name}: required key present "
                  f"({current[name]:.3f})")
        else:
            failures.append(f"{name}: required key missing from current "
                            f"run ({args.current})")
    for name, base in sorted(baseline.items()):
        if not pattern.search(name):
            continue
        compared += 1
        if name not in current:
            failures.append(f"{name}: missing from current run "
                            f"(baseline {base:.3f})")
            continue
        cur = current[name]
        floor = base * (1.0 - args.tolerance)
        verdict = "FAIL" if cur < floor else "ok"
        print(f"{verdict:4} {name}: current {cur:.3f} vs baseline "
              f"{base:.3f} (floor {floor:.3f})")
        if cur < floor:
            failures.append(f"{name}: {cur:.3f} < {floor:.3f} "
                            f"(baseline {base:.3f} - {args.tolerance:.0%})")

    if compared == 0:
        print(f"error: no baseline metrics match /{args.metrics}/",
              file=sys.stderr)
        failures.append(f"no baseline metrics match /{args.metrics}/")
    if failures:
        print(f"\n{len(failures)} check(s) failed "
              f"(tolerance {args.tolerance:.0%}):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\nall {compared} compared metric(s) within tolerance")
    return 0


if __name__ == "__main__":
    sys.exit(main())
