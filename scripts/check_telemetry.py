#!/usr/bin/env python3
"""Validate the admin/telemetry endpoints of a running NEBULA process.

Scrapes ``/metrics``, ``/statusz`` and ``/healthz`` on the given port
and checks:

  * /healthz answers 200 with body "ok".
  * /metrics parses as Prometheus text exposition 0.0.4: every
    non-comment line is ``name[{labels}] value``, metric names match
    ``[a-zA-Z_:][a-zA-Z0-9_:]*``, at most one ``# TYPE`` line per
    family, and the TYPE line precedes that family's first sample.
  * /statusz parses as JSON.
  * Optional --require-metric NAME flags (repeatable) assert that a
    metric family is present in /metrics.
  * Optional --require-statusz-key KEY flags assert a top-level key in
    the /statusz document.

Usage:
    check_telemetry.py PORT [--host 127.0.0.1]
        [--require-metric serving_requests] [--require-statusz-key slo]

Exit status 0 when every check passes, 1 otherwise.
"""

import argparse
import json
import re
import sys
import urllib.request

NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*")
# name{labels} value  |  name value   (label values may contain escapes)
SAMPLE_RE = re.compile(
    r"^([a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(\{[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\""
    r"(?:,[a-zA-Z_][a-zA-Z0-9_]*=\"(?:[^\"\\]|\\.)*\")*\})?"
    r" [^ ]+$")


def fetch(host, port, path):
    with urllib.request.urlopen(f"http://{host}:{port}{path}",
                                timeout=10) as resp:
        return resp.status, resp.read().decode("utf-8", "replace")


def check_prometheus(text, errors):
    """Validate exposition-format grammar; return the family names."""
    families = set()
    typed = set()
    sampled_before_type = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4 or parts[3] not in (
                    "counter", "gauge", "summary", "histogram", "untyped"):
                errors.append(f"/metrics:{lineno}: malformed TYPE: {line}")
                continue
            family = parts[2]
            if family in typed:
                errors.append(
                    f"/metrics:{lineno}: duplicate TYPE for {family}")
            if family in sampled_before_type:
                errors.append(
                    f"/metrics:{lineno}: TYPE after samples of {family}")
            typed.add(family)
            continue
        if line.startswith("#"):
            continue  # other comments are legal
        match = SAMPLE_RE.match(line)
        if not match:
            errors.append(f"/metrics:{lineno}: unparseable sample: "
                          f"{line!r}")
            continue
        name = match.group(1)
        families.add(name)
        # summary samples belong to the base family for TYPE purposes
        base = re.sub(r"_(sum|count)$", "", name)
        if name not in typed and base not in typed:
            sampled_before_type.add(name)
        value = line.rsplit(" ", 1)[1]
        try:
            float(value)
        except ValueError:
            if value not in ("+Inf", "-Inf", "NaN"):
                errors.append(
                    f"/metrics:{lineno}: bad sample value: {value!r}")
    return families


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("port", type=int)
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--require-metric", action="append", default=[],
                        help="metric family that must be present")
    parser.add_argument("--require-statusz-key", action="append",
                        default=[],
                        help="top-level /statusz key that must be present")
    args = parser.parse_args()

    errors = []

    status, body = fetch(args.host, args.port, "/healthz")
    if status != 200 or body.strip() != "ok":
        errors.append(f"/healthz: status {status}, body {body!r}")

    status, metrics = fetch(args.host, args.port, "/metrics")
    if status != 200:
        errors.append(f"/metrics: status {status}")
    families = check_prometheus(metrics, errors)
    for name in args.require_metric:
        if name not in families:
            errors.append(f"/metrics: required family {name!r} missing")

    status, statusz = fetch(args.host, args.port, "/statusz")
    if status != 200:
        errors.append(f"/statusz: status {status}")
    try:
        doc = json.loads(statusz)
        for key in args.require_statusz_key:
            if key not in doc:
                errors.append(f"/statusz: required key {key!r} missing")
    except json.JSONDecodeError as exc:
        errors.append(f"/statusz: invalid JSON: {exc}")

    if errors:
        for error in errors:
            print("FAIL:", error, file=sys.stderr)
        return 1
    print(f"telemetry ok: {len(families)} metric families, "
          f"statusz valid, healthz ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
