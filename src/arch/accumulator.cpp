#include "arch/accumulator.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace nebula {

AccumulatorUnit::AccumulatorUnit(int lanes) : lanes_(lanes)
{
    NEBULA_ASSERT(lanes_ > 0, "AU needs at least one lane");
    counts_.assign(static_cast<size_t>(lanes_), 0);
}

void
AccumulatorUnit::accumulate(const std::vector<uint8_t> &spikes)
{
    NEBULA_ASSERT(spikes.size() <= static_cast<size_t>(lanes_),
                  "spike vector wider than AU lanes: ", spikes.size(),
                  " > ", lanes_);
    for (size_t i = 0; i < spikes.size(); ++i) {
        if (spikes[i]) {
            counts_[i] = std::min(counts_[i] + 1, kMaxCount);
            ++additions_;
        }
    }
    ++window_;
}

int
AccumulatorUnit::count(int i) const
{
    NEBULA_ASSERT(i >= 0 && i < lanes_, "AU lane out of range");
    return counts_[static_cast<size_t>(i)];
}

std::vector<float>
AccumulatorUnit::scaledValues(int timesteps, float lambda) const
{
    NEBULA_ASSERT(timesteps > 0, "bad accumulation window");
    std::vector<float> out(static_cast<size_t>(lanes_));
    for (int i = 0; i < lanes_; ++i)
        out[static_cast<size_t>(i)] =
            static_cast<float>(counts_[static_cast<size_t>(i)]) /
            timesteps * lambda;
    return out;
}

void
AccumulatorUnit::reset()
{
    std::fill(counts_.begin(), counts_.end(), 0);
    additions_ = 0;
    window_ = 0;
}

} // namespace nebula
