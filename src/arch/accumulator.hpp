/**
 * @file
 * Digital Accumulator Unit (paper Fig. 6c, Table III): 1024 lanes of
 * 8-bit adder + 16-bit register that count boundary-layer spikes over a
 * time window in hybrid mode, before scaling hands the values to the
 * ANN cores.
 */

#ifndef NEBULA_ARCH_ACCUMULATOR_HPP
#define NEBULA_ARCH_ACCUMULATOR_HPP

#include <cstdint>
#include <vector>

namespace nebula {

/** Functional + energy model of one AU array. */
class AccumulatorUnit
{
  public:
    /** @param lanes Counter lanes (paper: 1024 per AU). */
    explicit AccumulatorUnit(int lanes = 1024);

    /**
     * Accumulate one timestep of spikes; entries beyond the lane count
     * are rejected (callers shard wide layers over several AUs).
     */
    void accumulate(const std::vector<uint8_t> &spikes);

    /** Counter value of lane i. */
    int count(int i) const;

    /** Scaled continuous outputs: count / timesteps * lambda. */
    std::vector<float> scaledValues(int timesteps, float lambda) const;

    /** Clear all counters for the next inference. */
    void reset();

    /** Adds performed since construction (energy accounting). */
    long long additions() const { return additions_; }

    /** Timesteps observed since the last reset. */
    int window() const { return window_; }

    int lanes() const { return lanes_; }

    /** 16-bit registers saturate (paper register width). */
    static constexpr int kMaxCount = 65535;

  private:
    int lanes_;
    std::vector<int> counts_;
    long long additions_ = 0;
    int window_ = 0;
};

} // namespace nebula

#endif // NEBULA_ARCH_ACCUMULATOR_HPP
