#include "arch/chip.hpp"

#include <algorithm>
#include <cmath>

#include "arch/pipeline.hpp"
#include "circuit/driver.hpp"
#include "common/logging.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "snn/encoder.hpp"

namespace nebula {

namespace {

/**
 * Publish the static shape of a freshly programmed network into the
 * global metrics registry: fabric occupancy gauges plus per-layer
 * utilization and pipeline depth. Program time only -- never on the
 * inference path.
 */
void
publishMappingMetrics(const char *mode, const NebulaConfig &config,
                      const NetworkMapping &mapping)
{
    auto &registry = obs::MetricsRegistry::global();
    registry.gauge("chip.layers").set(
        static_cast<double>(mapping.layers.size()));
    registry.gauge("chip.cores").set(
        static_cast<double>(mapping.totalCores()));
    registry.gauge("chip.crossbars").set(
        static_cast<double>(mapping.totalAcs()));

    PipelineModel pipeline(config);
    for (const LayerMapping &layer : mapping.layers) {
        const obs::Labels labels = {
            {"layer", std::to_string(layer.layerIndex)}};
        registry.gauge("chip.layer.utilization", labels)
            .set(layer.utilization);
        registry.gauge("chip.layer.pipeline_stages", labels)
            .set(static_cast<double>(pipeline.stagesFor(layer)));
    }
    NEBULA_DEBUG("chip", mode, " programmed: ", mapping.layers.size(),
                 " weight layers on ", mapping.totalCores(), " cores / ",
                 mapping.totalAcs(), " crossbars");
}

} // namespace

void
ChipStats::merge(const ChipStats &other)
{
    crossbarEvals += other.crossbarEvals;
    adcConversions += other.adcConversions;
    spikes += other.spikes;
    crossbarEnergy += other.crossbarEnergy;
    nocPackets += other.nocPackets;
    nocEnergy += other.nocEnergy;
}

NebulaChip::NebulaChip(const NebulaConfig &config, double variation_sigma,
                       uint64_t seed)
    : config_(config), variationSigma_(variation_sigma), seed_(seed),
      mapper_(config), runSeeds_(seed ^ 0xc41bu)
{
    NocConfig noc_cfg;
    noc_cfg.width = config_.meshWidth;
    noc_cfg.height = config_.meshHeight;
    noc_ = MeshNoc(noc_cfg);
}

void
NebulaChip::programCrossbar(CrossbarArray &xbar,
                            const std::vector<float> &cells)
{
    if (rel_.faults) {
        FaultMap map(xbar.rows(), xbar.cols() + xbar.params().spareCols);
        rel_.faults->sampleInto(
            map, deriveFaultSeed(rel_.faultSeed,
                                 static_cast<uint64_t>(crossbarIndex_)));
        xbar.injectFaults(std::move(map));
    }
    ++crossbarIndex_;

    ProgrammingConfig pc;
    pc.writeVerify = rel_.writeVerify;
    pc.repair = rel_.repair;
    programReport_.merge(xbar.program(cells, pc));
}

NebulaChip::MappedLayer
NebulaChip::mapWeightLayer(const Layer &layer, int index,
                           float weight_scale, Mode mode)
{
    MappedLayer mapped;
    mapped.source = &layer;
    mapped.map = mapper_.mapLayer(layer, index);
    mapped.weightScale = weight_scale > 0 ? weight_scale : 1.0f;

    CrossbarParams xp;
    xp.levels = 1 << config_.precisionBits;
    xp.readVoltage = mode == Mode::ANN ? 0.75 : 0.25;
    xp.variationSigma = variationSigma_;
    xp.variationSeed = seed_ + static_cast<uint64_t>(index) * 977;
    xp.spareCols = rel_.spareCols;

    const int m = config_.atomicSize;
    const auto params = layer.constParameters();
    const Tensor &w = *params[0];
    if (params.size() > 1) {
        const Tensor &b = *params[1];
        mapped.bias.assign(b.data(), b.data() + b.size());
    } else {
        mapped.bias.assign(static_cast<size_t>(layer.numKernels()), 0.0f);
    }

    const int rf = layer.receptiveField();
    const int kernels = layer.numKernels();

    if (layer.kind() == LayerKind::DwConv && rf <= m) {
        // Diagonal packing: kpa kernels per crossbar, disjoint row blocks.
        const int kpa = std::max(1, m / rf);
        mapped.dwKernelsPerAc = kpa;
        const int groups = (kernels + kpa - 1) / kpa;
        for (int g = 0; g < groups; ++g) {
            const int local = std::min(kpa, kernels - g * kpa);
            xp.rows = local * rf;
            xp.cols = local;
            std::vector<float> cells(
                static_cast<size_t>(xp.rows) * xp.cols, 0.0f);
            for (int j = 0; j < local; ++j) {
                const int kernel = g * kpa + j;
                for (int r = 0; r < rf; ++r) {
                    cells[static_cast<size_t>(j * rf + r) * xp.cols + j] =
                        w[static_cast<long long>(kernel) * rf + r] /
                        mapped.weightScale;
                }
            }
            auto xbar = std::make_unique<CrossbarArray>(xp);
            programCrossbar(*xbar, cells);
            mapped.groups.push_back(std::move(xbar));
        }
    } else {
        const int groups = (kernels + m - 1) / m;
        for (int g = 0; g < groups; ++g) {
            const int local = std::min(m, kernels - g * m);
            xp.rows = rf;
            xp.cols = local;
            std::vector<float> cells(static_cast<size_t>(rf) * local, 0.0f);
            for (int r = 0; r < rf; ++r)
                for (int j = 0; j < local; ++j)
                    cells[static_cast<size_t>(r) * local + j] =
                        w[static_cast<long long>(g * m + j) * rf + r] /
                        mapped.weightScale;
            auto xbar = std::make_unique<CrossbarArray>(xp);
            programCrossbar(*xbar, cells);
            mapped.groups.push_back(std::move(xbar));
        }
    }
    return mapped;
}

void
NebulaChip::programAnn(Network &net, const QuantizationResult &quant)
{
    annNet_ = &net;
    snnModel_ = nullptr;
    layers_.clear();
    mapping_ = mapper_.map(net);
    clearStats();
    programReport_ = ProgramReport();
    crossbarIndex_ = 0;

    for (const LayerQuantInfo &info : quant.layers) {
        Layer &layer = net.layer(info.layerIndex);
        MappedLayer mapped = mapWeightLayer(layer, info.layerIndex,
                                            info.weightMax, Mode::ANN);
        mapped.inputCeiling = info.actCeiling;

        // Output ceiling: the next ClippedRelu before another weight
        // layer, if any.
        for (int j = info.layerIndex + 1; j < net.numLayers(); ++j) {
            if (net.layer(j).isWeightLayer())
                break;
            NEBULA_ASSERT(net.layer(j).kind() != LayerKind::Relu,
                          "programAnn requires a quantized network");
            if (net.layer(j).kind() == LayerKind::ClippedRelu) {
                mapped.outputCeiling =
                    static_cast<ClippedRelu &>(net.layer(j)).ceiling();
                mapped.hasActivation = true;
                break;
            }
        }

        // One saturating-ReLU neuron unit per column group.
        if (mapped.hasActivation) {
            const double ceiling_alg =
                mapped.outputCeiling /
                (mapped.weightScale * mapped.inputCeiling);
            for (auto &group : mapped.groups) {
                NeuronUnitParams np;
                np.count = group->cols();
                np.levels = 1 << config_.precisionBits;
                np.window = config_.cycleTime;
                auto nu = std::make_unique<ReluNeuronUnit>(np);
                nu->calibrate(group->currentScale(), ceiling_alg);
                mapped.nus.push_back(std::move(nu));
            }
        }
        layers_.push_back(std::move(mapped));
    }
    publishMappingMetrics("ann", config_, mapping_);
}

Tensor
NebulaChip::evaluateLayer(MappedLayer &layer, const Tensor &input,
                          bool binary)
{
    obs::TraceSpan span("chip", "layer.eval", config_.traceChip);
    span.arg("layer", static_cast<double>(layer.map.layerIndex));
    const long long evals_before = stats_.crossbarEvals;

    const Layer &src = *layer.source;
    const DacDriver dac(config_.precisionBits, 0.75);
    const float in_ceiling = binary ? 1.0f : layer.inputCeiling;
    const int levels = 1 << config_.precisionBits;
    const float step = layer.hasActivation
                           ? layer.outputCeiling / (levels - 1)
                           : 0.0f;

    auto normalize = [&](float v) {
        double x =
            std::clamp(static_cast<double>(v) / in_ceiling, 0.0, 1.0);
        if (!binary)
            x = dac.normalizedOutput(dac.quantize(x));
        return x;
    };

    /**
     * Evaluate one column group for one input window and emit
     * (kernel, value) pairs. With a following activation the column
     * currents (plus the periphery bias injection) pass through the
     * group's saturating-ReLU neuron unit; otherwise the raw weighted
     * sum is reconstructed in real units for the ADC/RU path.
     */
    auto evalGroup = [&](size_t g, int group_offset, bool use_nu,
                         const std::vector<double> &window, auto &&emit) {
        CrossbarArray &xbar = *layer.groups[g];
        auto eval = xbar.evaluateIdeal(window, config_.cycleTime);
        ++stats_.crossbarEvals;
        stats_.crossbarEnergy += eval.energy;
        const double kappa = xbar.currentScale();
        if (use_nu) {
            std::vector<double> currents = eval.currents;
            for (int j = 0; j < xbar.cols(); ++j)
                currents[static_cast<size_t>(j)] +=
                    kappa *
                    layer.bias[static_cast<size_t>(group_offset + j)] /
                    (layer.weightScale * in_ceiling);
            const auto codes = layer.nus[g]->evaluate(currents);
            for (int j = 0; j < xbar.cols(); ++j)
                emit(group_offset + j,
                     codes[static_cast<size_t>(j)] * step);
        } else {
            for (int j = 0; j < xbar.cols(); ++j) {
                const double sum_norm =
                    eval.currents[static_cast<size_t>(j)] / kappa;
                emit(group_offset + j,
                     static_cast<float>(
                         sum_norm * layer.weightScale * in_ceiling +
                         layer.bias[static_cast<size_t>(group_offset + j)]));
            }
        }
    };

    const bool use_nu = layer.hasActivation && !binary;
    const int kernels = src.numKernels();
    Tensor output;

    if (src.kind() == LayerKind::Linear) {
        const auto &fc = static_cast<const Linear &>(src);
        NEBULA_ASSERT(input.size() == fc.inFeatures(),
                      "linear input mismatch on chip");
        std::vector<double> window(static_cast<size_t>(fc.inFeatures()));
        for (long long i = 0; i < input.size(); ++i)
            window[static_cast<size_t>(i)] = normalize(input[i]);

        output = Tensor({1, kernels});
        for (size_t g = 0; g < layer.groups.size(); ++g)
            evalGroup(g, static_cast<int>(g) * config_.atomicSize, use_nu,
                      window, [&](int kernel, float value) {
                          output.at(0, kernel) = value;
                      });
    } else if (src.kind() == LayerKind::Conv) {
        const auto &conv = static_cast<const Conv2d &>(src);
        const int k = conv.kernel(), stride = conv.stride(),
                  pad = conv.padding();
        const int in_c = conv.inChannels();
        const int in_h = input.dim(2), in_w = input.dim(3);
        const int out_h = (in_h + 2 * pad - k) / stride + 1;
        const int out_w = (in_w + 2 * pad - k) / stride + 1;

        output = Tensor({1, kernels, out_h, out_w});
        std::vector<double> window(
            static_cast<size_t>(conv.receptiveField()));

        for (int oh = 0; oh < out_h; ++oh) {
            for (int ow = 0; ow < out_w; ++ow) {
                size_t r = 0;
                for (int c = 0; c < in_c; ++c)
                    for (int kh = 0; kh < k; ++kh)
                        for (int kw = 0; kw < k; ++kw, ++r) {
                            const int ih = oh * stride - pad + kh;
                            const int iw = ow * stride - pad + kw;
                            window[r] = (ih < 0 || ih >= in_h || iw < 0 ||
                                         iw >= in_w)
                                            ? 0.0
                                            : normalize(
                                                  input.at(0, c, ih, iw));
                        }
                for (size_t g = 0; g < layer.groups.size(); ++g)
                    evalGroup(g, static_cast<int>(g) * config_.atomicSize,
                              use_nu, window,
                              [&](int kernel, float value) {
                                  output.at(0, kernel, oh, ow) = value;
                              });
            }
        }
    } else if (src.kind() == LayerKind::DwConv) {
        const auto &conv = static_cast<const DwConv2d &>(src);
        const int k = conv.kernel(), stride = conv.stride(),
                  pad = conv.padding();
        const int channels = conv.channels();
        const int in_h = input.dim(2), in_w = input.dim(3);
        const int out_h = (in_h + 2 * pad - k) / stride + 1;
        const int out_w = (in_w + 2 * pad - k) / stride + 1;
        const int kpa = layer.dwKernelsPerAc;
        NEBULA_ASSERT(kpa > 0, "depthwise layer not diagonal-packed");

        output = Tensor({1, channels, out_h, out_w});
        for (int oh = 0; oh < out_h; ++oh) {
            for (int ow = 0; ow < out_w; ++ow) {
                for (size_t g = 0; g < layer.groups.size(); ++g) {
                    CrossbarArray &xbar = *layer.groups[g];
                    const int local = xbar.cols();
                    std::vector<double> window(
                        static_cast<size_t>(xbar.rows()), 0.0);
                    for (int j = 0; j < local; ++j) {
                        const int c = static_cast<int>(g) * kpa + j;
                        size_t r = static_cast<size_t>(j) * k * k;
                        for (int kh = 0; kh < k; ++kh)
                            for (int kw = 0; kw < k; ++kw, ++r) {
                                const int ih = oh * stride - pad + kh;
                                const int iw = ow * stride - pad + kw;
                                window[r] = (ih < 0 || ih >= in_h ||
                                             iw < 0 || iw >= in_w)
                                                ? 0.0
                                                : normalize(input.at(
                                                      0, c, ih, iw));
                            }
                    }
                    evalGroup(g, static_cast<int>(g) * kpa, use_nu, window,
                              [&](int kernel, float value) {
                                  output.at(0, kernel, oh, ow) = value;
                              });
                }
            }
        }
    } else {
        NEBULA_PANIC("unsupported weight layer on chip: ", src.name());
    }
    span.arg("crossbar_evals",
             static_cast<double>(stats_.crossbarEvals - evals_before));
    return output;
}

Tensor
NebulaChip::runAnn(const Tensor &image)
{
    NEBULA_ASSERT(annNet_, "no ANN programmed");
    Network &net = *annNet_;

    std::vector<int> batched;
    batched.push_back(1);
    for (int d = 0; d < image.rank(); ++d)
        batched.push_back(image.dim(d));
    Tensor x = image.reshaped(batched);

    const long long evals_before = stats_.crossbarEvals;
    const long long adc_before = stats_.adcConversions;

    size_t next_mapped = 0;
    for (int i = 0; i < net.numLayers(); ++i) {
        Layer &layer = net.layer(i);
        if (layer.isWeightLayer()) {
            NEBULA_ASSERT(next_mapped < layers_.size(),
                          "unmapped weight layer");
            MappedLayer &mapped = layers_[next_mapped++];
            x = evaluateLayer(mapped, x, false);
            if (!mapped.hasActivation) {
                // Output layer: partial sums digitized by the ADC.
                stats_.adcConversions += x.size();
                obs::recordInstant("chip", "adc.convert",
                                   config_.traceChip);
            }
            // Inter-layer traffic: 4-bit activations to the next core.
            obs::TraceSpan noc_span("noc", "transfer", config_.traceChip);
            noc_span.arg("bits", static_cast<double>(
                                     x.size() * config_.precisionBits));
            stats_.nocPackets++;
            stats_.nocEnergy += noc_.transferEnergy(
                {0, 0}, {1, 0}, x.size() * config_.precisionBits);
        } else if (layer.kind() == LayerKind::ClippedRelu) {
            // Already applied by the preceding layer's neuron units.
            continue;
        } else {
            x = layer.forward(x, false);
        }
    }
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("chip.crossbar_evals")
        .inc(static_cast<double>(stats_.crossbarEvals - evals_before));
    registry.counter("chip.adc_conversions")
        .inc(static_cast<double>(stats_.adcConversions - adc_before));
    return x;
}

void
NebulaChip::programSnn(SpikingModel &model)
{
    snnModel_ = &model;
    annNet_ = nullptr;
    layers_.clear();
    mapping_ = mapper_.map(model.net);
    clearStats();
    programReport_ = ProgramReport();
    crossbarIndex_ = 0;

    for (int i = 0; i < model.net.numLayers(); ++i) {
        Layer &layer = model.net.layer(i);
        if (!layer.isWeightLayer())
            continue;
        const Tensor &w = *layer.parameters()[0];
        const float scale = std::max(w.maxAbs(), 1e-6f);
        MappedLayer mapped = mapWeightLayer(layer, i, scale, Mode::SNN);
        mapped.inputCeiling = 1.0f; // binary spike inputs
        layers_.push_back(std::move(mapped));
    }
    publishMappingMetrics("snn", config_, mapping_);
}

SnnRunResult
NebulaChip::runSnn(const Tensor &image, int timesteps)
{
    return runSnn(image, timesteps, runSeeds_.next());
}

SnnRunResult
NebulaChip::runSnn(const Tensor &image, int timesteps,
                   uint64_t encoder_seed)
{
    NEBULA_ASSERT(snnModel_, "no SNN programmed");
    NEBULA_ASSERT(timesteps > 0, "need at least one timestep");
    SpikingModel &model = *snnModel_;
    model.resetState();

    PoissonEncoder encoder(1.0, encoder_seed);

    std::vector<int> batched;
    batched.push_back(1);
    for (int d = 0; d < image.rank(); ++d)
        batched.push_back(image.dim(d));

    SnnRunResult result;
    result.timesteps = timesteps;
    long long input_spikes = 0;
    const long long evals_before = stats_.crossbarEvals;

    for (int t = 0; t < timesteps; ++t) {
        obs::TraceSpan step_span("chip", "timestep", config_.traceChip);
        step_span.arg("t", static_cast<double>(t));

        Tensor spikes;
        {
            obs::TraceSpan encode_span("snn", "encode", config_.traceChip);
            spikes = encoder.encode(image);
        }
        input_spikes += static_cast<long long>(spikes.sum());
        Tensor x = spikes.reshaped(batched);

        size_t next_mapped = 0;
        for (int i = 0; i < model.net.numLayers(); ++i) {
            Layer &layer = model.net.layer(i);
            if (layer.isWeightLayer()) {
                NEBULA_ASSERT(next_mapped < layers_.size(),
                              "unmapped weight layer");
                x = evaluateLayer(layers_[next_mapped++], x, true);
                obs::TraceSpan noc_span("noc", "transfer",
                                        config_.traceChip);
                noc_span.arg("bits", static_cast<double>(x.size()));
                stats_.nocPackets++;
                stats_.nocEnergy +=
                    noc_.transferEnergy({0, 0}, {1, 0}, x.size());
            } else {
                x = layer.forward(x, false);
            }
        }
        obs::TraceSpan acc_span("snn", "accumulate", config_.traceChip);
        if (t == 0)
            result.logits = x;
        else
            result.logits.add(x);
    }

    result.inputRate =
        static_cast<double>(input_spikes) / (image.size() * timesteps);
    for (size_t k = 0; k < model.ifLayerIndices.size(); ++k) {
        IfLayer &layer = model.ifLayer(static_cast<int>(k));
        result.ifSpikes.push_back(layer.spikeCount());
        result.ifNeurons.push_back(layer.neuronCount());
        result.totalSpikes += layer.spikeCount();
        const double neurons = std::max<long long>(layer.neuronCount(), 1);
        result.ifActivity.push_back(layer.spikeCount() /
                                    (neurons * timesteps));
    }
    stats_.spikes += result.totalSpikes;
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("chip.crossbar_evals")
        .inc(static_cast<double>(stats_.crossbarEvals - evals_before));
    registry.counter("chip.spikes")
        .inc(static_cast<double>(result.totalSpikes));
    return result;
}

} // namespace nebula
