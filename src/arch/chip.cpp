#include "arch/chip.hpp"

#include <algorithm>
#include <cmath>

#include "arch/pipeline.hpp"
#include "circuit/driver.hpp"
#include "common/logging.hpp"
#include "common/simd.hpp"
#include "nn/activations.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "snn/encoder.hpp"

namespace nebula {

namespace {

/**
 * Publish the static shape of a freshly programmed network into the
 * global metrics registry: fabric occupancy gauges plus per-layer
 * utilization and pipeline depth. Program time only -- never on the
 * inference path.
 */
void
publishMappingMetrics(const char *mode, const NebulaConfig &config,
                      const NetworkMapping &mapping)
{
    auto &registry = obs::MetricsRegistry::global();
    registry.gauge("chip.layers").set(
        static_cast<double>(mapping.layers.size()));
    registry.gauge("chip.cores").set(
        static_cast<double>(mapping.totalCores()));
    registry.gauge("chip.crossbars").set(
        static_cast<double>(mapping.totalAcs()));

    PipelineModel pipeline(config);
    for (const LayerMapping &layer : mapping.layers) {
        const obs::Labels labels = {
            {"layer", std::to_string(layer.layerIndex)}};
        registry.gauge("chip.layer.utilization", labels)
            .set(layer.utilization);
        registry.gauge("chip.layer.pipeline_stages", labels)
            .set(static_cast<double>(pipeline.stagesFor(layer)));
    }
    NEBULA_DEBUG("chip", mode, " programmed: ", mapping.layers.size(),
                 " weight layers on ", mapping.totalCores(), " cores / ",
                 mapping.totalAcs(), " crossbars");
}

/**
 * Reconstruct real-unit pre-activations from one column group's
 * normalized sums: out[j] = currents[j] / kappa * scale + bias[j].
 * The division by kappa is kept a division (not a reciprocal multiply)
 * so the result stays bit-identical to the generic walk's emit.
 */
NEBULA_TARGET_CLONES void
emitAffine(float *out, const float *bias, const double *currents, int n,
           double kappa, double scale)
{
    for (int j = 0; j < n; ++j)
        out[j] =
            static_cast<float>(currents[j] / kappa * scale + bias[j]);
}

} // namespace

void
ChipStats::merge(const ChipStats &other)
{
    crossbarEvals += other.crossbarEvals;
    adcConversions += other.adcConversions;
    spikes += other.spikes;
    crossbarEnergy += other.crossbarEnergy;
    nocPackets += other.nocPackets;
    nocEnergy += other.nocEnergy;
    abftChecks += other.abftChecks;
    abftViolations += other.abftViolations;
}

EnergyBreakdown
estimateEnergyBreakdown(const ChipStats &before, const ChipStats &after,
                        Mode mode)
{
    const ComponentDb &db = componentDb();
    const double cycle = db.cycleTime();
    const double evals =
        static_cast<double>(after.crossbarEvals - before.crossbarEvals);
    const double conversions =
        static_cast<double>(after.adcConversions - before.adcConversions);

    EnergyBreakdown out;
    out.crossbarJ = after.crossbarEnergy - before.crossbarEnergy;
    out.nocJ = after.nocEnergy - before.nocEnergy;
    // One crossbar evaluation keeps its 1/crossbarsPerCore share of the
    // core's driver bank (ANN DAC array vs. SNN spike drivers) and
    // neuron units busy for one cycle; one ADC conversion is one ADC
    // active for one cycle.
    const double driver_power =
        mode == Mode::ANN ? db.annDacPower() : db.snnDriverPower();
    out.driverJ = evals * driver_power / db.crossbarsPerCore() * cycle;
    out.neuronJ = evals * db.neuronUnitPower() / db.crossbarsPerCore() * cycle;
    out.adcJ = conversions * db.adcPower() * cycle;
    return out;
}

NebulaChip::NebulaChip(const NebulaConfig &config, double variation_sigma,
                       uint64_t seed)
    : config_(config), variationSigma_(variation_sigma), seed_(seed),
      mapper_(config), runSeeds_(seed ^ 0xc41bu)
{
    NocConfig noc_cfg;
    noc_cfg.width = config_.meshWidth;
    noc_cfg.height = config_.meshHeight;
    noc_ = MeshNoc(noc_cfg);
}

void
NebulaChip::programCrossbar(CrossbarArray &xbar,
                            const std::vector<float> &cells)
{
    if (rel_.faults) {
        FaultMap map(xbar.rows(), xbar.cols() + xbar.params().spareCols);
        rel_.faults->sampleInto(
            map, deriveFaultSeed(rel_.faultSeed,
                                 static_cast<uint64_t>(crossbarIndex_)));
        xbar.injectFaults(std::move(map));
    }
    ++crossbarIndex_;

    ProgrammingConfig pc;
    pc.writeVerify = rel_.writeVerify;
    pc.repair = rel_.repair;
    programReport_.merge(xbar.program(cells, pc));
}

float
NebulaChip::mappedWeightScale(int k) const
{
    NEBULA_ASSERT(k >= 0 && k < mappedLayerCount(),
                  "mapped layer index out of range: ", k);
    return layers_[static_cast<size_t>(k)].weightScale;
}

UpdateReport
NebulaChip::updateMappedLayer(int k,
                              const std::vector<WeightCellUpdate> &ups,
                              const ProgrammingConfig &config)
{
    NEBULA_ASSERT(k >= 0 && k < mappedLayerCount(),
                  "mapped layer index out of range: ", k);
    MappedLayer &layer = layers_[static_cast<size_t>(k)];
    NEBULA_ASSERT(layer.dwKernelsPerAc == 0,
                  "incremental updates not supported for diagonal-packed "
                  "depthwise layers");
    obs::TraceSpan span("learning", "layer.update", config_.traceChip);
    span.arg("layer", static_cast<double>(layer.map.layerIndex));

    const int m = config_.atomicSize;
    const int rf = layer.source->receptiveField();
    const int kernels = layer.source->numKernels();
    const int top = mappedLevels() - 1;

    // Bucket the updates per column group so each crossbar gets one
    // updateCells pass (one cache invalidation per touched group).
    std::vector<std::vector<CellUpdate>> per_group(layer.groups.size());
    for (const WeightCellUpdate &u : ups) {
        NEBULA_ASSERT(u.kernel >= 0 && u.kernel < kernels && u.r >= 0 &&
                          u.r < rf,
                      "weight cell update out of range: kernel ", u.kernel,
                      " r ", u.r);
        const size_t g = static_cast<size_t>(u.kernel / m);
        CrossbarArray &xbar = *layer.groups[g];
        const int col = u.kernel % m;
        const int target = std::clamp(u.targetLevel, 0, top);
        const int delta = target - xbar.levelAt(u.r, col);
        if (delta == 0)
            continue;
        per_group[g].push_back(CellUpdate{u.r, col, delta});
    }

    UpdateReport report;
    for (size_t g = 0; g < per_group.size(); ++g) {
        if (per_group[g].empty())
            continue;
        report.merge(layer.groups[g]->updateCells(per_group[g], config));
    }

    // Bias lives in the digital periphery: re-sync it from the source
    // network so host-side bias learning takes effect pulse-free.
    const auto params = layer.source->constParameters();
    if (params.size() > 1) {
        const Tensor &b = *params[1];
        layer.bias.assign(b.data(), b.data() + b.size());
    }

    updateReport_.merge(report);
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("learning.update.cells")
        .inc(static_cast<double>(report.cells));
    registry.counter("learning.update.pulses")
        .inc(static_cast<double>(report.pulses));
    registry.counter("learning.update.energy_j").inc(report.updateEnergy);
    span.arg("cells", static_cast<double>(report.cells));
    span.arg("pulses", static_cast<double>(report.pulses));
    return report;
}

NebulaChip::MappedLayer
NebulaChip::mapWeightLayer(const Layer &layer, int index,
                           float weight_scale, Mode mode)
{
    MappedLayer mapped;
    mapped.source = &layer;
    mapped.map = mapper_.mapLayer(layer, index);
    mapped.weightScale = weight_scale > 0 ? weight_scale : 1.0f;

    CrossbarParams xp;
    xp.levels = 1 << config_.precisionBits;
    xp.readVoltage = mode == Mode::ANN ? 0.75 : 0.25;
    xp.variationSigma = variationSigma_;
    xp.variationSeed = seed_ + static_cast<uint64_t>(index) * 977;
    xp.spareCols = rel_.spareCols;
    xp.fastEval = config_.fastEval;
    xp.abft = config_.abft;

    const int m = config_.atomicSize;
    const auto params = layer.constParameters();
    const Tensor &w = *params[0];
    if (params.size() > 1) {
        const Tensor &b = *params[1];
        mapped.bias.assign(b.data(), b.data() + b.size());
    } else {
        mapped.bias.assign(static_cast<size_t>(layer.numKernels()), 0.0f);
    }

    const int rf = layer.receptiveField();
    const int kernels = layer.numKernels();

    if (layer.kind() == LayerKind::DwConv && rf <= m) {
        // Diagonal packing: kpa kernels per crossbar, disjoint row blocks.
        const int kpa = std::max(1, m / rf);
        mapped.dwKernelsPerAc = kpa;
        const int groups = (kernels + kpa - 1) / kpa;
        for (int g = 0; g < groups; ++g) {
            const int local = std::min(kpa, kernels - g * kpa);
            xp.rows = local * rf;
            xp.cols = local;
            std::vector<float> cells(
                static_cast<size_t>(xp.rows) * xp.cols, 0.0f);
            for (int j = 0; j < local; ++j) {
                const int kernel = g * kpa + j;
                for (int r = 0; r < rf; ++r) {
                    cells[static_cast<size_t>(j * rf + r) * xp.cols + j] =
                        w[static_cast<long long>(kernel) * rf + r] /
                        mapped.weightScale;
                }
            }
            auto xbar = std::make_unique<CrossbarArray>(xp);
            programCrossbar(*xbar, cells);
            mapped.groups.push_back(std::move(xbar));
        }
    } else {
        const int groups = (kernels + m - 1) / m;
        for (int g = 0; g < groups; ++g) {
            const int local = std::min(m, kernels - g * m);
            xp.rows = rf;
            xp.cols = local;
            std::vector<float> cells(static_cast<size_t>(rf) * local, 0.0f);
            for (int r = 0; r < rf; ++r)
                for (int j = 0; j < local; ++j)
                    cells[static_cast<size_t>(r) * local + j] =
                        w[static_cast<long long>(g * m + j) * rf + r] /
                        mapped.weightScale;
            auto xbar = std::make_unique<CrossbarArray>(xp);
            programCrossbar(*xbar, cells);
            mapped.groups.push_back(std::move(xbar));
        }
    }
    return mapped;
}

void
NebulaChip::programAnn(Network &net, const QuantizationResult &quant)
{
    annNet_ = &net;
    snnModel_ = nullptr;
    layers_.clear();
    fastPlan_ = SnnFastPlan();
    mapping_ = mapper_.map(net);
    clearStats();
    programReport_ = ProgramReport();
    updateReport_ = UpdateReport();
    crossbarIndex_ = 0;

    for (const LayerQuantInfo &info : quant.layers) {
        Layer &layer = net.layer(info.layerIndex);
        MappedLayer mapped = mapWeightLayer(layer, info.layerIndex,
                                            info.weightMax, Mode::ANN);
        mapped.inputCeiling = info.actCeiling;

        // Output ceiling: the next ClippedRelu before another weight
        // layer, if any.
        for (int j = info.layerIndex + 1; j < net.numLayers(); ++j) {
            if (net.layer(j).isWeightLayer())
                break;
            NEBULA_ASSERT(net.layer(j).kind() != LayerKind::Relu,
                          "programAnn requires a quantized network");
            if (net.layer(j).kind() == LayerKind::ClippedRelu) {
                mapped.outputCeiling =
                    static_cast<ClippedRelu &>(net.layer(j)).ceiling();
                mapped.hasActivation = true;
                break;
            }
        }

        // One saturating-ReLU neuron unit per column group.
        if (mapped.hasActivation) {
            const double ceiling_alg =
                mapped.outputCeiling /
                (mapped.weightScale * mapped.inputCeiling);
            for (auto &group : mapped.groups) {
                NeuronUnitParams np;
                np.count = group->cols();
                np.levels = 1 << config_.precisionBits;
                np.window = config_.cycleTime;
                auto nu = std::make_unique<ReluNeuronUnit>(np);
                nu->calibrate(group->currentScale(), ceiling_alg);
                mapped.nus.push_back(std::move(nu));
            }
        }
        layers_.push_back(std::move(mapped));
    }
    publishMappingMetrics("ann", config_, mapping_);
}

Tensor
NebulaChip::evaluateLayer(MappedLayer &layer, const Tensor &input,
                          bool binary)
{
    obs::TraceSpan span("chip", "layer.eval", config_.traceChip);
    span.arg("layer", static_cast<double>(layer.map.layerIndex));
    const long long evals_before = stats_.crossbarEvals;

    const Layer &src = *layer.source;
    const DacDriver dac(config_.precisionBits, 0.75);
    const float in_ceiling = binary ? 1.0f : layer.inputCeiling;
    const int levels = 1 << config_.precisionBits;
    const float step = layer.hasActivation
                           ? layer.outputCeiling / (levels - 1)
                           : 0.0f;

    // DAC code -> voltage-factor table: the second half of the
    // normalize chain depends only on the 4-bit code, so the divide is
    // hoisted to one table build per layer (same expression per entry).
    std::vector<double> dac_out(static_cast<size_t>(levels));
    for (int c = 0; c < levels; ++c)
        dac_out[static_cast<size_t>(c)] = dac.normalizedOutput(c);

    auto normalize = [&](float v) {
        double x =
            std::clamp(static_cast<double>(v) / in_ceiling, 0.0, 1.0);
        if (!binary)
            x = dac_out[static_cast<size_t>(dac.quantize(x))];
        return x;
    };

    const bool fast = config_.fastEval;

    // Per-column periphery bias drive, window-invariant: hoisted so the
    // divide runs once per column per layer instead of once per column
    // per window (the expression is kept verbatim, so injected values
    // are bit-identical).
    std::vector<std::vector<double>> bias_drive(layer.groups.size());
    auto biasDrive = [&](size_t g, int group_offset,
                         double kappa) -> const double * {
        auto &bd = bias_drive[g];
        if (bd.empty()) {
            const int cols = layer.groups[g]->cols();
            bd.resize(static_cast<size_t>(cols));
            for (int j = 0; j < cols; ++j)
                bd[static_cast<size_t>(j)] =
                    kappa *
                    layer.bias[static_cast<size_t>(group_offset + j)] /
                    (layer.weightScale * in_ceiling);
        }
        return bd.data();
    };
    // Output-level scratch shared by every neuron-unit call this layer.
    std::vector<int> codes;

    // Fast path: a conv input element is gathered into up to k*k
    // overlapping windows; run the clamp + DAC quantization once per
    // element instead of once per gather. Same values, fewer ops.
    std::vector<double> norm;
    if (fast) {
        norm.resize(static_cast<size_t>(input.size()));
        for (long long i = 0; i < input.size(); ++i)
            norm[static_cast<size_t>(i)] = normalize(input[i]);
    }
    auto normAt = [&](long long i) {
        return fast ? norm[static_cast<size_t>(i)] : normalize(input[i]);
    };

    /**
     * Collect the ascending active-row list of a spike window for the
     * sparse driver path. Returns false (dense fallback) if any nonzero
     * entry is not exactly 1.0 -- e.g. fractional values downstream of
     * an averaging layer -- since evaluateSparse assumes unit drivers.
     */
    auto binaryActive = [](const std::vector<double> &window,
                           SpikeVector &active) {
        active.clear();
        for (size_t r = 0; r < window.size(); ++r) {
            if (window[r] == 0.0)
                continue;
            if (window[r] != 1.0)
                return false;
            active.push_back(static_cast<int>(r));
        }
        return true;
    };

    /**
     * Evaluate one column group for one input window and emit
     * (kernel, value) pairs. With a following activation the column
     * currents (plus the periphery bias injection) pass through the
     * group's saturating-ReLU neuron unit; otherwise the raw weighted
     * sum is reconstructed in real units for the ADC/RU path.
     */
    auto evalGroup = [&](size_t g, int group_offset, bool use_nu,
                         const std::vector<double> &window,
                         const SpikeVector *active, auto &&emit) {
        CrossbarArray &xbar = *layer.groups[g];
        auto eval = active != nullptr
                        ? xbar.evaluateSparse(*active, config_.cycleTime)
                        : xbar.evaluateIdeal(window, config_.cycleTime);
        ++stats_.crossbarEvals;
        stats_.crossbarEnergy += eval.energy;
        if (config_.abft) {
            stats_.abftChecks += eval.check.checks;
            stats_.abftViolations += eval.check.violations;
            // The checksum column read-out is digitized alongside the
            // data columns: one extra conversion per checked eval.
            stats_.adcConversions += eval.check.checks;
        }
        const double kappa = xbar.currentScale();
        if (use_nu) {
            // The eval result is ours by value: inject the periphery
            // bias current in place instead of copying the column.
            std::vector<double> &currents = eval.currents;
            const double *bias_cur = biasDrive(g, group_offset, kappa);
            const int cols = xbar.cols();
            for (int j = 0; j < cols; ++j)
                currents[static_cast<size_t>(j)] += bias_cur[j];
            codes.resize(static_cast<size_t>(cols));
            layer.nus[g]->evaluateInto(currents.data(), cols,
                                       codes.data());
            for (int j = 0; j < cols; ++j)
                emit(group_offset + j,
                     codes[static_cast<size_t>(j)] * step);
        } else {
            for (int j = 0; j < xbar.cols(); ++j) {
                const double sum_norm =
                    eval.currents[static_cast<size_t>(j)] / kappa;
                emit(group_offset + j,
                     static_cast<float>(
                         sum_norm * layer.weightScale * in_ceiling +
                         layer.bias[static_cast<size_t>(group_offset + j)]));
            }
        }
    };

    /**
     * Batched form of evalGroup: @p batch windows (row-major
     * batch x rows) through one evaluateIdealBatch call, emitting
     * (window, kernel, value). Per-window arithmetic is the same
     * expression sequence as evalGroup, so results are bit-identical to
     * @p batch separate calls -- only the matrix traffic is amortized.
     */
    std::vector<double> batch_currents;
    auto evalGroupBatch = [&](size_t g, int group_offset, bool use_nu,
                              const std::vector<double> &windows,
                              int batch, auto &&emit) {
        CrossbarArray &xbar = *layer.groups[g];
        const CrossbarBatchEval eval =
            xbar.evaluateIdealBatch(windows, batch, config_.cycleTime);
        stats_.crossbarEvals += batch;
        stats_.crossbarEnergy += eval.energy;
        if (config_.abft) {
            for (const CrossbarCheck &check : eval.checks) {
                stats_.abftChecks += check.checks;
                stats_.abftViolations += check.violations;
                stats_.adcConversions += check.checks;
            }
        }
        const double kappa = xbar.currentScale();
        const int cols = xbar.cols();
        std::vector<double> &currents = batch_currents;
        currents.resize(static_cast<size_t>(cols));
        for (int b = 0; b < batch; ++b) {
            const double *cur =
                eval.currents.data() + static_cast<size_t>(b) * cols;
            if (use_nu) {
                const double *bias_cur =
                    biasDrive(g, group_offset, kappa);
                for (int j = 0; j < cols; ++j)
                    currents[static_cast<size_t>(j)] =
                        cur[j] + bias_cur[j];
                codes.resize(static_cast<size_t>(cols));
                layer.nus[g]->evaluateInto(currents.data(), cols,
                                           codes.data());
                for (int j = 0; j < cols; ++j)
                    emit(b, group_offset + j,
                         codes[static_cast<size_t>(j)] * step);
            } else {
                for (int j = 0; j < cols; ++j) {
                    const double sum_norm = cur[j] / kappa;
                    emit(b, group_offset + j,
                         static_cast<float>(
                             sum_norm * layer.weightScale * in_ceiling +
                             layer.bias[static_cast<size_t>(group_offset +
                                                            j)]));
                }
            }
        }
    };

    const bool use_nu = layer.hasActivation && !binary;
    const int kernels = src.numKernels();
    Tensor output;

    if (src.kind() == LayerKind::Linear) {
        const auto &fc = static_cast<const Linear &>(src);
        NEBULA_ASSERT(input.size() == fc.inFeatures(),
                      "linear input mismatch on chip");
        std::vector<double> window(static_cast<size_t>(fc.inFeatures()));
        for (long long i = 0; i < input.size(); ++i)
            window[static_cast<size_t>(i)] = normAt(i);

        SpikeVector active;
        const SpikeVector *spikes =
            fast && binary && binaryActive(window, active) ? &active
                                                           : nullptr;
        output = Tensor({1, kernels});
        float *out_p = output.data();
        for (size_t g = 0; g < layer.groups.size(); ++g)
            evalGroup(g, static_cast<int>(g) * config_.atomicSize, use_nu,
                      window, spikes, [&](int kernel, float value) {
                          out_p[kernel] = value;
                      });
    } else if (src.kind() == LayerKind::Conv) {
        const auto &conv = static_cast<const Conv2d &>(src);
        const int k = conv.kernel(), stride = conv.stride(),
                  pad = conv.padding();
        const int in_c = conv.inChannels();
        const int in_h = input.dim(2), in_w = input.dim(3);
        const int out_h = (in_h + 2 * pad - k) / stride + 1;
        const int out_w = (in_w + 2 * pad - k) / stride + 1;

        output = Tensor({1, kernels, out_h, out_w});
        float *out_p = output.data();
        const int rf_conv = conv.receptiveField();

        auto gatherWindow = [&](int oh, int ow, double *window) {
            size_t r = 0;
            for (int c = 0; c < in_c; ++c)
                for (int kh = 0; kh < k; ++kh)
                    for (int kw = 0; kw < k; ++kw, ++r) {
                        const int ih = oh * stride - pad + kh;
                        const int iw = ow * stride - pad + kw;
                        window[r] =
                            (ih < 0 || ih >= in_h || iw < 0 || iw >= in_w)
                                ? 0.0
                                : normAt((static_cast<long long>(c) *
                                              in_h +
                                          ih) *
                                             in_w +
                                         iw);
                    }
        };

        if (fast && !binary) {
            // ANN mode: batch one output row of windows per crossbar
            // call so the cached conductance matrix streams once per
            // out_w windows instead of once per window.
            std::vector<double> windows(
                static_cast<size_t>(out_w) * rf_conv);
            for (int oh = 0; oh < out_h; ++oh) {
                for (int ow = 0; ow < out_w; ++ow)
                    gatherWindow(oh, ow,
                                 windows.data() +
                                     static_cast<size_t>(ow) * rf_conv);
                for (size_t g = 0; g < layer.groups.size(); ++g)
                    evalGroupBatch(
                        g, static_cast<int>(g) * config_.atomicSize,
                        use_nu, windows, out_w,
                        [&](int ow, int kernel, float value) {
                            out_p[(static_cast<size_t>(kernel) * out_h +
                                   oh) *
                                      out_w +
                                  ow] = value;
                        });
            }
        } else {
            std::vector<double> window(static_cast<size_t>(rf_conv));
            SpikeVector active;
            for (int oh = 0; oh < out_h; ++oh) {
                for (int ow = 0; ow < out_w; ++ow) {
                    gatherWindow(oh, ow, window.data());
                    const SpikeVector *spikes =
                        fast && binary && binaryActive(window, active)
                            ? &active
                            : nullptr;
                    for (size_t g = 0; g < layer.groups.size(); ++g)
                        evalGroup(g,
                                  static_cast<int>(g) * config_.atomicSize,
                                  use_nu, window, spikes,
                                  [&](int kernel, float value) {
                                      out_p[(static_cast<size_t>(kernel) *
                                                 out_h +
                                             oh) *
                                                out_w +
                                            ow] = value;
                                  });
                }
            }
        }
    } else if (src.kind() == LayerKind::DwConv) {
        const auto &conv = static_cast<const DwConv2d &>(src);
        const int k = conv.kernel(), stride = conv.stride(),
                  pad = conv.padding();
        const int channels = conv.channels();
        const int in_h = input.dim(2), in_w = input.dim(3);
        const int out_h = (in_h + 2 * pad - k) / stride + 1;
        const int out_w = (in_w + 2 * pad - k) / stride + 1;
        const int kpa = layer.dwKernelsPerAc;
        NEBULA_ASSERT(kpa > 0, "depthwise layer not diagonal-packed");

        output = Tensor({1, channels, out_h, out_w});
        float *out_p = output.data();
        SpikeVector active;
        for (int oh = 0; oh < out_h; ++oh) {
            for (int ow = 0; ow < out_w; ++ow) {
                for (size_t g = 0; g < layer.groups.size(); ++g) {
                    CrossbarArray &xbar = *layer.groups[g];
                    const int local = xbar.cols();
                    std::vector<double> window(
                        static_cast<size_t>(xbar.rows()), 0.0);
                    for (int j = 0; j < local; ++j) {
                        const int c = static_cast<int>(g) * kpa + j;
                        size_t r = static_cast<size_t>(j) * k * k;
                        for (int kh = 0; kh < k; ++kh)
                            for (int kw = 0; kw < k; ++kw, ++r) {
                                const int ih = oh * stride - pad + kh;
                                const int iw = ow * stride - pad + kw;
                                window[r] =
                                    (ih < 0 || ih >= in_h || iw < 0 ||
                                     iw >= in_w)
                                        ? 0.0
                                        : normAt((static_cast<long long>(
                                                      c) *
                                                      in_h +
                                                  ih) *
                                                     in_w +
                                                 iw);
                            }
                    }
                    const SpikeVector *spikes =
                        fast && binary && binaryActive(window, active)
                            ? &active
                            : nullptr;
                    evalGroup(g, static_cast<int>(g) * kpa, use_nu, window,
                              spikes, [&](int kernel, float value) {
                                  out_p[(static_cast<size_t>(kernel) *
                                             out_h +
                                         oh) *
                                            out_w +
                                        ow] = value;
                              });
                }
            }
        }
    } else {
        NEBULA_PANIC("unsupported weight layer on chip: ", src.name());
    }
    span.arg("crossbar_evals",
             static_cast<double>(stats_.crossbarEvals - evals_before));
    return output;
}

Tensor
NebulaChip::runAnn(const Tensor &image)
{
    NEBULA_ASSERT(annNet_, "no ANN programmed");
    Network &net = *annNet_;

    std::vector<int> batched;
    batched.push_back(1);
    for (int d = 0; d < image.rank(); ++d)
        batched.push_back(image.dim(d));
    Tensor x = image.reshaped(batched);

    const long long evals_before = stats_.crossbarEvals;
    const long long adc_before = stats_.adcConversions;
    const long long checks_before = stats_.abftChecks;
    const long long violations_before = stats_.abftViolations;

    size_t next_mapped = 0;
    for (int i = 0; i < net.numLayers(); ++i) {
        Layer &layer = net.layer(i);
        if (layer.isWeightLayer()) {
            NEBULA_ASSERT(next_mapped < layers_.size(),
                          "unmapped weight layer");
            MappedLayer &mapped = layers_[next_mapped++];
            x = evaluateLayer(mapped, x, false);
            if (!mapped.hasActivation) {
                // Output layer: partial sums digitized by the ADC.
                stats_.adcConversions += x.size();
                obs::recordInstant("chip", "adc.convert",
                                   config_.traceChip);
            }
            // Inter-layer traffic: 4-bit activations to the next core.
            obs::TraceSpan noc_span("noc", "transfer", config_.traceChip);
            noc_span.arg("bits", static_cast<double>(
                                     x.size() * config_.precisionBits));
            stats_.nocPackets++;
            stats_.nocEnergy += noc_.transferEnergy(
                {0, 0}, {1, 0}, x.size() * config_.precisionBits);
        } else if (layer.kind() == LayerKind::ClippedRelu) {
            // Already applied by the preceding layer's neuron units.
            continue;
        } else {
            x = layer.forward(x, false);
        }
    }
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("chip.crossbar_evals")
        .inc(static_cast<double>(stats_.crossbarEvals - evals_before));
    registry.counter("chip.adc_conversions")
        .inc(static_cast<double>(stats_.adcConversions - adc_before));
    if (config_.abft) {
        registry.counter("abft.checks")
            .inc(static_cast<double>(stats_.abftChecks - checks_before));
        registry.counter("abft.violations")
            .inc(static_cast<double>(stats_.abftViolations -
                                     violations_before));
    }
    return x;
}

void
NebulaChip::evaluateLayerBatch(MappedLayer &layer, std::vector<Tensor> &xs,
                               std::vector<ChipStats> &per_image)
{
    const int nimg = static_cast<int>(xs.size());
    NEBULA_ASSERT(per_image.size() == xs.size(),
                  "per-image stats vector mismatch");
    if (nimg == 1 || !config_.fastEval) {
        // Nothing to amortize (or the fast crossbar path is off):
        // solo walk per image, splitting the stats delta per image.
        for (int b = 0; b < nimg; ++b) {
            const ChipStats before = stats_;
            xs[static_cast<size_t>(b)] =
                evaluateLayer(layer, xs[static_cast<size_t>(b)], false);
            ChipStats &ps = per_image[static_cast<size_t>(b)];
            ps.crossbarEvals +=
                stats_.crossbarEvals - before.crossbarEvals;
            ps.crossbarEnergy +=
                stats_.crossbarEnergy - before.crossbarEnergy;
            ps.abftChecks += stats_.abftChecks - before.abftChecks;
            ps.abftViolations +=
                stats_.abftViolations - before.abftViolations;
            ps.adcConversions +=
                stats_.adcConversions - before.adcConversions;
        }
        return;
    }

    obs::TraceSpan span("chip", "layer.eval", config_.traceChip);
    span.arg("layer", static_cast<double>(layer.map.layerIndex));
    span.arg("batch", static_cast<double>(nimg));
    const long long evals_before = stats_.crossbarEvals;

    const Layer &src = *layer.source;
    const DacDriver dac(config_.precisionBits, 0.75);
    const float in_ceiling = layer.inputCeiling;
    const int levels = 1 << config_.precisionBits;
    const float step = layer.hasActivation
                           ? layer.outputCeiling / (levels - 1)
                           : 0.0f;

    // The DAC has only `levels` distinct outputs: tabulate them once
    // so the per-element normalize is a clamp + quantize + load.
    std::vector<double> dac_out(static_cast<size_t>(levels));
    for (int c = 0; c < levels; ++c)
        dac_out[static_cast<size_t>(c)] = dac.normalizedOutput(c);
    auto normalize = [&](float v) {
        double x =
            std::clamp(static_cast<double>(v) / in_ceiling, 0.0, 1.0);
        return dac_out[static_cast<size_t>(dac.quantize(x))];
    };
    // Clamp + DAC quantization once per input element per image, the
    // same precompute the solo fast path runs.
    std::vector<std::vector<double>> norm(static_cast<size_t>(nimg));
    for (int b = 0; b < nimg; ++b) {
        const Tensor &x = xs[static_cast<size_t>(b)];
        auto &n = norm[static_cast<size_t>(b)];
        n.resize(static_cast<size_t>(x.size()));
        for (long long i = 0; i < x.size(); ++i)
            n[static_cast<size_t>(i)] = normalize(x[i]);
    }

    // Per-column bias drive is window-invariant: hoist its divide out
    // of the per-window loop. Lazily built per group on first use with
    // the exact expression the per-window code ran, so the added
    // currents are bit-identical.
    std::vector<std::vector<double>> bias_drive(layer.groups.size());
    auto biasDrive = [&](size_t g, int group_offset,
                         double kappa) -> const double * {
        auto &bd = bias_drive[g];
        if (bd.empty()) {
            const int cols = layer.groups[g]->cols();
            bd.resize(static_cast<size_t>(cols));
            for (int j = 0; j < cols; ++j)
                bd[static_cast<size_t>(j)] =
                    kappa *
                    layer.bias[static_cast<size_t>(group_offset + j)] /
                    (layer.weightScale * in_ceiling);
        }
        return bd.data();
    };
    // Scratch shared across windows/groups (grow-only, no per-window
    // allocation).
    std::vector<int> codes;
    std::vector<double> batch_currents;

    /**
     * Evaluate one column group for @p batch windows spanning the
     * whole image batch (@p per_img consecutive windows per image,
     * image-major) and emit (window, kernel, value). The per-window
     * arithmetic is the identical expression sequence as the solo
     * evalGroup/evalGroupBatch lambdas in evaluateLayer, so values are
     * bit-identical to per-image evaluation; per-image crossbar
     * evals/energy come from the batch eval's per-window energies.
     */
    auto evalGroupBatch = [&](size_t g, int group_offset, bool use_nu,
                              const std::vector<double> &windows,
                              int batch, int per_img, auto &&emit) {
        CrossbarArray &xbar = *layer.groups[g];
        const CrossbarBatchEval eval =
            xbar.evaluateIdealBatch(windows, batch, config_.cycleTime);
        stats_.crossbarEvals += batch;
        stats_.crossbarEnergy += eval.energy;
        for (int b = 0; b < batch; ++b) {
            ChipStats &ps = per_image[static_cast<size_t>(b / per_img)];
            ++ps.crossbarEvals;
            ps.crossbarEnergy += eval.energies[static_cast<size_t>(b)];
            if (config_.abft) {
                // Per-window verdicts attribute to the image whose
                // window raised them, so a batched violation flags
                // only the affected request.
                const CrossbarCheck &check =
                    eval.checks[static_cast<size_t>(b)];
                stats_.abftChecks += check.checks;
                stats_.abftViolations += check.violations;
                stats_.adcConversions += check.checks;
                ps.abftChecks += check.checks;
                ps.abftViolations += check.violations;
                ps.adcConversions += check.checks;
            }
        }
        const double kappa = xbar.currentScale();
        const int cols = xbar.cols();
        std::vector<double> &currents = batch_currents;
        currents.resize(static_cast<size_t>(cols));
        for (int b = 0; b < batch; ++b) {
            const double *cur =
                eval.currents.data() + static_cast<size_t>(b) * cols;
            if (use_nu) {
                const double *bias_cur =
                    biasDrive(g, group_offset, kappa);
                for (int j = 0; j < cols; ++j)
                    currents[static_cast<size_t>(j)] =
                        cur[j] + bias_cur[j];
                codes.resize(static_cast<size_t>(cols));
                layer.nus[g]->evaluateInto(currents.data(), cols,
                                           codes.data());
                for (int j = 0; j < cols; ++j)
                    emit(b, group_offset + j,
                         static_cast<float>(
                             codes[static_cast<size_t>(j)] * step));
            } else {
                for (int j = 0; j < cols; ++j) {
                    const double sum_norm = cur[j] / kappa;
                    emit(b, group_offset + j,
                         static_cast<float>(
                             sum_norm * layer.weightScale * in_ceiling +
                             layer.bias[static_cast<size_t>(group_offset +
                                                            j)]));
                }
            }
        }
    };

    const bool use_nu = layer.hasActivation;
    const int kernels = src.numKernels();
    std::vector<Tensor> outs;
    outs.reserve(static_cast<size_t>(nimg));

    if (src.kind() == LayerKind::Linear) {
        const auto &fc = static_cast<const Linear &>(src);
        const long long in_f = fc.inFeatures();
        std::vector<double> windows(static_cast<size_t>(nimg) * in_f);
        for (int b = 0; b < nimg; ++b) {
            NEBULA_ASSERT(xs[static_cast<size_t>(b)].size() == in_f,
                          "linear input mismatch on chip");
            std::copy(norm[static_cast<size_t>(b)].begin(),
                      norm[static_cast<size_t>(b)].end(),
                      windows.begin() + static_cast<size_t>(b) * in_f);
        }
        for (int b = 0; b < nimg; ++b)
            outs.emplace_back(Tensor({1, kernels}));
        std::vector<float *> out_ptrs(static_cast<size_t>(nimg));
        for (int b = 0; b < nimg; ++b)
            out_ptrs[static_cast<size_t>(b)] =
                outs[static_cast<size_t>(b)].data();
        for (size_t g = 0; g < layer.groups.size(); ++g)
            evalGroupBatch(g, static_cast<int>(g) * config_.atomicSize,
                           use_nu, windows, nimg, 1,
                           [&](int b, int kernel, float value) {
                               out_ptrs[static_cast<size_t>(b)][kernel] =
                                   value;
                           });
    } else if (src.kind() == LayerKind::Conv) {
        const auto &conv = static_cast<const Conv2d &>(src);
        const int k = conv.kernel(), stride = conv.stride(),
                  pad = conv.padding();
        const int in_c = conv.inChannels();
        const int in_h = xs[0].dim(2), in_w = xs[0].dim(3);
        const int out_h = (in_h + 2 * pad - k) / stride + 1;
        const int out_w = (in_w + 2 * pad - k) / stride + 1;
        const int rf_conv = conv.receptiveField();

        for (int b = 0; b < nimg; ++b) {
            NEBULA_ASSERT(xs[static_cast<size_t>(b)].dim(2) == in_h &&
                              xs[static_cast<size_t>(b)].dim(3) == in_w,
                          "mixed image shapes in one micro-batch");
            outs.emplace_back(Tensor({1, kernels, out_h, out_w}));
        }
        std::vector<float *> out_ptrs(static_cast<size_t>(nimg));
        for (int b = 0; b < nimg; ++b)
            out_ptrs[static_cast<size_t>(b)] =
                outs[static_cast<size_t>(b)].data();

        auto gatherWindow = [&](const std::vector<double> &n, int oh,
                                int ow, double *window) {
            size_t r = 0;
            for (int c = 0; c < in_c; ++c)
                for (int kh = 0; kh < k; ++kh)
                    for (int kw = 0; kw < k; ++kw, ++r) {
                        const int ih = oh * stride - pad + kh;
                        const int iw = ow * stride - pad + kw;
                        window[r] =
                            (ih < 0 || ih >= in_h || iw < 0 || iw >= in_w)
                                ? 0.0
                                : n[static_cast<size_t>(
                                      (static_cast<long long>(c) * in_h +
                                       ih) *
                                          in_w +
                                      iw)];
                    }
        };

        // One output row of windows per image per crossbar call,
        // image-major: the cached conductance matrix streams once per
        // nimg * out_w windows.
        std::vector<double> windows(static_cast<size_t>(nimg) * out_w *
                                    rf_conv);
        for (int oh = 0; oh < out_h; ++oh) {
            for (int b = 0; b < nimg; ++b)
                for (int ow = 0; ow < out_w; ++ow)
                    gatherWindow(norm[static_cast<size_t>(b)], oh, ow,
                                 windows.data() +
                                     (static_cast<size_t>(b) * out_w + ow) *
                                         rf_conv);
            for (size_t g = 0; g < layer.groups.size(); ++g)
                evalGroupBatch(
                    g, static_cast<int>(g) * config_.atomicSize, use_nu,
                    windows, nimg * out_w, out_w,
                    [&](int w, int kernel, float value) {
                        out_ptrs[static_cast<size_t>(w / out_w)]
                                [(static_cast<size_t>(kernel) * out_h +
                                  oh) *
                                     out_w +
                                 w % out_w] = value;
                    });
        }
    } else if (src.kind() == LayerKind::DwConv) {
        const auto &conv = static_cast<const DwConv2d &>(src);
        const int k = conv.kernel(), stride = conv.stride(),
                  pad = conv.padding();
        const int channels = conv.channels();
        const int in_h = xs[0].dim(2), in_w = xs[0].dim(3);
        const int out_h = (in_h + 2 * pad - k) / stride + 1;
        const int out_w = (in_w + 2 * pad - k) / stride + 1;
        const int kpa = layer.dwKernelsPerAc;
        NEBULA_ASSERT(kpa > 0, "depthwise layer not diagonal-packed");

        for (int b = 0; b < nimg; ++b) {
            NEBULA_ASSERT(xs[static_cast<size_t>(b)].dim(2) == in_h &&
                              xs[static_cast<size_t>(b)].dim(3) == in_w,
                          "mixed image shapes in one micro-batch");
            outs.emplace_back(Tensor({1, channels, out_h, out_w}));
        }
        std::vector<float *> out_ptrs(static_cast<size_t>(nimg));
        for (int b = 0; b < nimg; ++b)
            out_ptrs[static_cast<size_t>(b)] =
                outs[static_cast<size_t>(b)].data();

        std::vector<double> windows;
        for (int oh = 0; oh < out_h; ++oh) {
            for (int ow = 0; ow < out_w; ++ow) {
                for (size_t g = 0; g < layer.groups.size(); ++g) {
                    CrossbarArray &xbar = *layer.groups[g];
                    const int local = xbar.cols();
                    const int rows = xbar.rows();
                    windows.assign(static_cast<size_t>(nimg) * rows,
                                   0.0);
                    for (int b = 0; b < nimg; ++b) {
                        const auto &n = norm[static_cast<size_t>(b)];
                        double *window =
                            windows.data() +
                            static_cast<size_t>(b) * rows;
                        for (int j = 0; j < local; ++j) {
                            const int c = static_cast<int>(g) * kpa + j;
                            size_t r = static_cast<size_t>(j) * k * k;
                            for (int kh = 0; kh < k; ++kh)
                                for (int kw = 0; kw < k; ++kw, ++r) {
                                    const int ih = oh * stride - pad + kh;
                                    const int iw = ow * stride - pad + kw;
                                    window[r] =
                                        (ih < 0 || ih >= in_h || iw < 0 ||
                                         iw >= in_w)
                                            ? 0.0
                                            : n[static_cast<size_t>(
                                                  (static_cast<long long>(
                                                       c) *
                                                       in_h +
                                                   ih) *
                                                      in_w +
                                                  iw)];
                                }
                        }
                    }
                    evalGroupBatch(g, static_cast<int>(g) * kpa, use_nu,
                                   windows, nimg, 1,
                                   [&](int b, int kernel, float value) {
                                       out_ptrs[static_cast<size_t>(b)]
                                               [(static_cast<size_t>(
                                                     kernel) *
                                                     out_h +
                                                 oh) *
                                                    out_w +
                                                ow] = value;
                                   });
                }
            }
        }
    } else {
        NEBULA_PANIC("unsupported weight layer on chip: ", src.name());
    }
    span.arg("crossbar_evals",
             static_cast<double>(stats_.crossbarEvals - evals_before));
    xs = std::move(outs);
}

AnnBatchResult
NebulaChip::runAnnBatch(const std::vector<Tensor> &images)
{
    NEBULA_ASSERT(annNet_, "no ANN programmed");
    AnnBatchResult result;
    const int nimg = static_cast<int>(images.size());

    // Kernel-friendly block size: the batched crossbar kernels already
    // amortize the conductance stream across 4-window register tiles,
    // so wider layer walks buy no further arithmetic -- they only grow
    // the per-layer window/current buffers past L1. Blocks of 8 images
    // measured fastest on the development host; splitting is exact
    // (each block is an independent full-precision walk).
    constexpr int kImageBlock = 8;
    if (nimg > kImageBlock) {
        result.perImage.reserve(static_cast<size_t>(nimg));
        result.logits.reserve(static_cast<size_t>(nimg));
        for (int s = 0; s < nimg; s += kImageBlock) {
            const int n = std::min(kImageBlock, nimg - s);
            std::vector<Tensor> block(images.begin() + s,
                                      images.begin() + s + n);
            AnnBatchResult part = runAnnBatch(block);
            for (auto &t : part.logits)
                result.logits.push_back(std::move(t));
            for (auto &ps : part.perImage)
                result.perImage.push_back(ps);
        }
        return result;
    }

    result.perImage.assign(static_cast<size_t>(nimg), ChipStats());
    if (nimg == 0)
        return result;
    Network &net = *annNet_;

    std::vector<Tensor> xs;
    xs.reserve(static_cast<size_t>(nimg));
    for (const Tensor &image : images) {
        std::vector<int> batched;
        batched.push_back(1);
        for (int d = 0; d < image.rank(); ++d)
            batched.push_back(image.dim(d));
        xs.push_back(image.reshaped(batched));
    }

    const long long evals_before = stats_.crossbarEvals;
    const long long adc_before = stats_.adcConversions;
    const long long checks_before = stats_.abftChecks;
    const long long violations_before = stats_.abftViolations;

    size_t next_mapped = 0;
    for (int i = 0; i < net.numLayers(); ++i) {
        Layer &layer = net.layer(i);
        if (layer.isWeightLayer()) {
            NEBULA_ASSERT(next_mapped < layers_.size(),
                          "unmapped weight layer");
            MappedLayer &mapped = layers_[next_mapped++];
            evaluateLayerBatch(mapped, xs, result.perImage);
            if (!mapped.hasActivation) {
                // Output layer: partial sums digitized by the ADC.
                for (int b = 0; b < nimg; ++b) {
                    const long long n = xs[static_cast<size_t>(b)].size();
                    stats_.adcConversions += n;
                    result.perImage[static_cast<size_t>(b)]
                        .adcConversions += n;
                }
                obs::recordInstant("chip", "adc.convert",
                                   config_.traceChip);
            }
            // Inter-layer traffic: 4-bit activations to the next core,
            // one packet per image exactly as the solo walk bills.
            obs::TraceSpan noc_span("noc", "transfer", config_.traceChip);
            long long bits = 0;
            for (int b = 0; b < nimg; ++b) {
                const long long image_bits =
                    xs[static_cast<size_t>(b)].size() *
                    config_.precisionBits;
                bits += image_bits;
                const double joules =
                    noc_.transferEnergy({0, 0}, {1, 0}, image_bits);
                stats_.nocPackets++;
                stats_.nocEnergy += joules;
                ChipStats &ps = result.perImage[static_cast<size_t>(b)];
                ps.nocPackets++;
                ps.nocEnergy += joules;
            }
            noc_span.arg("bits", static_cast<double>(bits));
        } else if (layer.kind() == LayerKind::ClippedRelu) {
            // Already applied by the preceding layer's neuron units.
            continue;
        } else {
            for (int b = 0; b < nimg; ++b)
                xs[static_cast<size_t>(b)] =
                    layer.forward(xs[static_cast<size_t>(b)], false);
        }
    }
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("chip.crossbar_evals")
        .inc(static_cast<double>(stats_.crossbarEvals - evals_before));
    registry.counter("chip.adc_conversions")
        .inc(static_cast<double>(stats_.adcConversions - adc_before));
    if (config_.abft) {
        registry.counter("abft.checks")
            .inc(static_cast<double>(stats_.abftChecks - checks_before));
        registry.counter("abft.violations")
            .inc(static_cast<double>(stats_.abftViolations -
                                     violations_before));
    }
    result.logits = std::move(xs);
    return result;
}

void
NebulaChip::programSnn(SpikingModel &model)
{
    snnModel_ = &model;
    annNet_ = nullptr;
    layers_.clear();
    mapping_ = mapper_.map(model.net);
    clearStats();
    programReport_ = ProgramReport();
    updateReport_ = UpdateReport();
    crossbarIndex_ = 0;

    for (int i = 0; i < model.net.numLayers(); ++i) {
        Layer &layer = model.net.layer(i);
        if (!layer.isWeightLayer())
            continue;
        const Tensor &w = *layer.parameters()[0];
        const float scale = std::max(w.maxAbs(), 1e-6f);
        MappedLayer mapped = mapWeightLayer(layer, i, scale, Mode::SNN);
        mapped.inputCeiling = 1.0f; // binary spike inputs
        layers_.push_back(std::move(mapped));
    }
    buildSnnFastPlan();
    publishMappingMetrics("snn", config_, mapping_);
}

void
NebulaChip::buildSnnFastPlan()
{
    fastPlan_ = SnnFastPlan();
    if (!snnModel_)
        return;
    Network &net = snnModel_->net;

    std::vector<SnnFastStage> stages;
    size_t next_mapped = 0;
    long long in_features = -1;
    long long prev_features = -1;
    for (int i = 0; i < net.numLayers(); ++i) {
        Layer &layer = net.layer(i);
        switch (layer.kind()) {
        case LayerKind::Flatten:
            // Shape-only; spike values pass through untouched.
            break;
        case LayerKind::Linear: {
            const auto &fc = static_cast<const Linear &>(layer);
            // Every stage but the last must feed an IF layer: only then
            // is the next stage's input a binary spike map the sparse
            // driver path may assume.
            if (!stages.empty() && stages.back().ifAfter == nullptr)
                return;
            if (prev_features >= 0 && fc.inFeatures() != prev_features)
                return;
            if (in_features < 0)
                in_features = fc.inFeatures();
            SnnFastStage stage;
            stage.layerIndex = next_mapped++;
            stage.features = fc.numKernels();
            stage.nocEnergy =
                noc_.transferEnergy({0, 0}, {1, 0}, stage.features);
            stage.preAct = Tensor({1, stage.features});
            prev_features = stage.features;
            stages.push_back(std::move(stage));
            break;
        }
        case LayerKind::If: {
            if (stages.empty() || stages.back().ifAfter != nullptr)
                return;
            auto &neuron = static_cast<IfLayer &>(layer);
            stages.back().ifAfter = &neuron;
            stages.back().plainIf = neuron.options().leak == 0.0f &&
                                    neuron.options().refractory == 0;
            stages.back().spikes = Tensor({1, stages.back().features});
            break;
        }
        default:
            return; // unsupported topology: keep the generic walk
        }
    }
    if (stages.empty() || next_mapped != layers_.size())
        return;

    fastPlan_.inFeatures = in_features;
    fastPlan_.stages = std::move(stages);
    fastPlan_.usable = true;
}

long long
NebulaChip::snnFastStep(PoissonEncoder &encoder, int t,
                        SnnRunResult &result)
{
    SnnFastPlan &plan = fastPlan_;
    encoder.encodeActive(plan.encPlan, plan.active);
    const long long input_spikes =
        static_cast<long long>(plan.active.size());

    const Tensor *stage_out = nullptr;
    for (SnnFastStage &stage : plan.stages) {
        MappedLayer &layer = layers_[stage.layerIndex];
        // Same expression sequence as evalGroup's non-NU emit with
        // binary drivers: in_ceiling == 1 exactly, so folding it away
        // leaves emitAffine() bit-identical to the generic walk.
        // differential_test and the SNN golden vectors pin this.
        float *out = stage.preAct.data();
        for (size_t g = 0; g < layer.groups.size(); ++g) {
            CrossbarArray &xbar = *layer.groups[g];
            xbar.evaluateSparseInto(plan.active, config_.cycleTime,
                                    plan.evalWs);
            ++stats_.crossbarEvals;
            stats_.crossbarEnergy += plan.evalWs.energy;
            if (config_.abft) {
                stats_.abftChecks += plan.evalWs.check.checks;
                stats_.abftViolations += plan.evalWs.check.violations;
                stats_.adcConversions += plan.evalWs.check.checks;
            }
            const int group_offset =
                static_cast<int>(g) * config_.atomicSize;
            emitAffine(out + group_offset, layer.bias.data() + group_offset,
                       plan.evalWs.currents.data(), xbar.cols(),
                       xbar.currentScale(),
                       static_cast<double>(layer.weightScale));
        }
        stats_.nocPackets++;
        stats_.nocEnergy += stage.nocEnergy;

        if (stage.ifAfter) {
            if (stage.plainIf)
                stage.ifAfter->stepPlain(stage.preAct.data(),
                                         stage.spikes.data(),
                                         stage.features);
            else
                stage.ifAfter->step(stage.preAct.data(),
                                    stage.spikes.data(), stage.features);
            plan.active.clear();
            const float *sp = stage.spikes.data();
            for (int i = 0; i < stage.features; ++i)
                if (sp[i] != 0.0f)
                    plan.active.push_back(i);
            stage_out = &stage.spikes;
        } else {
            stage_out = &stage.preAct;
        }
    }

    if (t == 0)
        result.logits = *stage_out;
    else
        result.logits.add(*stage_out);
    return input_spikes;
}

SnnRunResult
NebulaChip::runSnn(const Tensor &image, int timesteps)
{
    return runSnn(image, timesteps, runSeeds_.next());
}

SnnRunResult
NebulaChip::runSnn(const Tensor &image, int timesteps,
                   uint64_t encoder_seed)
{
    NEBULA_ASSERT(snnModel_, "no SNN programmed");
    NEBULA_ASSERT(timesteps > 0, "need at least one timestep");
    SpikingModel &model = *snnModel_;
    model.resetState();

    PoissonEncoder encoder(1.0, encoder_seed);

    std::vector<int> batched;
    batched.push_back(1);
    for (int d = 0; d < image.rank(); ++d)
        batched.push_back(image.dim(d));

    SnnRunResult result;
    result.timesteps = timesteps;
    long long input_spikes = 0;
    const long long evals_before = stats_.crossbarEvals;
    const long long checks_before = stats_.abftChecks;
    const long long violations_before = stats_.abftViolations;

    // The preplanned pipeline runs the same arithmetic without the
    // per-step tensor churn; an actively recording trace session keeps
    // the instrumented walk so its spans stay complete.
    const bool use_plan =
        config_.fastEval && fastPlan_.usable &&
        !(config_.traceChip && obs::TraceSession::enabled());
    if (use_plan) {
        NEBULA_ASSERT(image.size() == fastPlan_.inFeatures,
                      "image size does not match the programmed SNN");
        for (SnnFastStage &stage : fastPlan_.stages)
            if (stage.ifAfter)
                stage.ifAfter->ensureState({1, stage.features});
        encoder.buildPlan(image, fastPlan_.encPlan);
    }

    for (int t = 0; t < timesteps; ++t) {
        if (use_plan) {
            input_spikes += snnFastStep(encoder, t, result);
            continue;
        }
        obs::TraceSpan step_span("chip", "timestep", config_.traceChip);
        step_span.arg("t", static_cast<double>(t));

        Tensor spikes;
        {
            obs::TraceSpan encode_span("snn", "encode", config_.traceChip);
            spikes = encoder.encode(image);
        }
        input_spikes += static_cast<long long>(spikes.sum());
        Tensor x = spikes.reshaped(batched);

        size_t next_mapped = 0;
        for (int i = 0; i < model.net.numLayers(); ++i) {
            Layer &layer = model.net.layer(i);
            if (layer.isWeightLayer()) {
                NEBULA_ASSERT(next_mapped < layers_.size(),
                              "unmapped weight layer");
                x = evaluateLayer(layers_[next_mapped++], x, true);
                obs::TraceSpan noc_span("noc", "transfer",
                                        config_.traceChip);
                noc_span.arg("bits", static_cast<double>(x.size()));
                stats_.nocPackets++;
                stats_.nocEnergy +=
                    noc_.transferEnergy({0, 0}, {1, 0}, x.size());
            } else {
                x = layer.forward(x, false);
            }
        }
        obs::TraceSpan acc_span("snn", "accumulate", config_.traceChip);
        if (t == 0)
            result.logits = x;
        else
            result.logits.add(x);
    }

    result.inputRate =
        static_cast<double>(input_spikes) / (image.size() * timesteps);
    for (size_t k = 0; k < model.ifLayerIndices.size(); ++k) {
        IfLayer &layer = model.ifLayer(static_cast<int>(k));
        result.ifSpikes.push_back(layer.spikeCount());
        result.ifNeurons.push_back(layer.neuronCount());
        result.totalSpikes += layer.spikeCount();
        const double neurons = std::max<long long>(layer.neuronCount(), 1);
        result.ifActivity.push_back(layer.spikeCount() /
                                    (neurons * timesteps));
    }
    stats_.spikes += result.totalSpikes;
    auto &registry = obs::MetricsRegistry::global();
    registry.counter("chip.crossbar_evals")
        .inc(static_cast<double>(stats_.crossbarEvals - evals_before));
    registry.counter("chip.spikes")
        .inc(static_cast<double>(result.totalSpikes));
    if (config_.abft) {
        registry.counter("abft.checks")
            .inc(static_cast<double>(stats_.abftChecks - checks_before));
        registry.counter("abft.violations")
            .inc(static_cast<double>(stats_.abftViolations -
                                     violations_before));
    }
    return result;
}

} // namespace nebula
