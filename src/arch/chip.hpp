/**
 * @file
 * Functional on-chip inference: executes a quantized ANN or a converted
 * SNN through the actual circuit models -- programmed DW-MTJ crossbar
 * arrays (with quantized conductances, optional device variation),
 * multi-level DAC / 1-bit spike drivers, and saturating-ReLU neuron
 * units -- following the layer mapping the LayerMapper produces.
 *
 * The spiking path computes column currents through the crossbars and
 * integrates membranes with the algorithmic IF model; circuit-level
 * tests (NeuronUnitCircuit.*) establish that the DW-MTJ neuron device
 * matches that model to within pinning quantization, so the chip
 * simulator does not instantiate per-output-position device objects.
 *
 * Used by the integration tests and the quickstart example to show the
 * full device -> circuit -> architecture -> algorithm stack agreeing
 * with the functional simulator.
 */

#ifndef NEBULA_ARCH_CHIP_HPP
#define NEBULA_ARCH_CHIP_HPP

#include <memory>
#include <vector>

#include "arch/energy_breakdown.hpp"
#include "arch/energy_model.hpp"
#include "arch/mapping.hpp"
#include "circuit/crossbar.hpp"
#include "circuit/neuron_unit.hpp"
#include "nn/quantize.hpp"
#include "noc/noc.hpp"
#include "reliability/mitigation.hpp"
#include "snn/convert.hpp"
#include "snn/snn_sim.hpp"

namespace nebula {

/** Counters gathered while running on the chip model. */
struct ChipStats
{
    long long crossbarEvals = 0;   //!< column-group evaluations
    long long adcConversions = 0;  //!< output-layer + spill conversions
    long long spikes = 0;          //!< SNN spikes emitted
    double crossbarEnergy = 0.0;   //!< device-level ohmic energy (J)
    long long nocPackets = 0;      //!< inter-layer transfers
    double nocEnergy = 0.0;        //!< J
    long long abftChecks = 0;      //!< checksum-column comparisons
    long long abftViolations = 0;  //!< comparisons exceeding tolerance

    /**
     * Accumulate another chip's counters into this one. Every field is
     * an additive total, so merging per-replica stats equals the stats
     * one chip would have gathered serving all requests itself; the
     * inference runtime uses this to aggregate worker-local counters
     * without locking the per-request path.
     */
    void merge(const ChipStats &other);
};

/**
 * Attribute the activity between two ChipStats snapshots (taken around
 * one inference on a worker-owned chip) to components as joules.
 * Crossbar/NoC energy is the measured delta; ADC, driver and neuron
 * joules price the delta's op counts at Table III powers over one
 * cycle (per-crossbar-eval share of a core's driver bank and neuron
 * units, per-conversion ADC activity) -- the energy_model methodology
 * applied to live counters instead of projected layer walks.
 */
EnergyBreakdown estimateEnergyBreakdown(const ChipStats &before,
                                        const ChipStats &after, Mode mode);

/**
 * Result of one micro-batched ANN run: per-image logits plus the
 * per-image slice of the chip activity, so callers can attribute
 * energy/metrics to individual requests after a shared batched
 * evaluation. Summing perImage equals the chip's stats() delta for
 * the whole batch.
 */
struct AnnBatchResult
{
    std::vector<Tensor> logits;      //!< one (1, classes) row per image
    std::vector<ChipStats> perImage; //!< per-image activity deltas
};

/** The NEBULA chip functional model. */
class NebulaChip
{
  public:
    explicit NebulaChip(const NebulaConfig &config = {},
                        double variation_sigma = 0.0, uint64_t seed = 5);

    /**
     * Program a quantized ANN (output of quantizeNetwork) onto ANN-mode
     * crossbars. The network must contain no plain (unclipped) ReLUs.
     */
    void programAnn(Network &net, const QuantizationResult &quant);

    /** Run one (C, H, W) image through the programmed ANN. */
    Tensor runAnn(const Tensor &image);

    /**
     * Run a micro-batch of same-shape images through the programmed
     * ANN in one layer-by-layer walk. Weight layers stream each cached
     * conductance matrix once per batch (GEMM-style multi-window
     * kernels) instead of once per image, so the matrix traffic is
     * amortized across the batch. Per-image logits are bit-identical
     * to runAnn() on the same chip state: every window goes through
     * the identical clamp/DAC/crossbar/neuron-unit expression
     * sequence, only grouped differently. Per-image activity is
     * returned alongside so callers can split energy attribution.
     */
    AnnBatchResult runAnnBatch(const std::vector<Tensor> &images);

    /** Program a converted spiking model onto SNN-mode crossbars. */
    void programSnn(SpikingModel &model);

    /**
     * Run one image for T timesteps through the programmed SNN, using
     * the chip's internal seed stream for the Poisson input encoder
     * (results depend on how many runs preceded this one).
     */
    SnnRunResult runSnn(const Tensor &image, int timesteps);

    /**
     * Run one image for T timesteps with an explicit encoder seed.
     * Output is a pure function of (programmed state, image, timesteps,
     * seed) -- the call-order-independent form the concurrent runtime
     * uses so results stay bit-exact across worker replicas.
     */
    SnnRunResult runSnn(const Tensor &image, int timesteps,
                        uint64_t encoder_seed);

    /**
     * Attach a reliability scenario; takes effect at the next
     * programAnn/programSnn. Every crossbar then samples a private
     * FaultMap from ReliabilityConfig::faultSeed (decorrelated per
     * array, reproducible given the seed and the network shape) and is
     * programmed with the configured mitigations. Reprogramming the
     * same network resamples identical maps.
     */
    void setReliability(ReliabilityConfig rel) { rel_ = std::move(rel); }
    const ReliabilityConfig &reliability() const { return rel_; }

    /**
     * Aggregate programming accounting (pulses, failed cells, repairs,
     * program energy) of the last programAnn/programSnn.
     */
    const ProgramReport &programReport() const { return programReport_; }

    /**
     * One weight-cell update at network granularity: move the cell that
     * holds weight element (kernel, r) of a mapped layer to an absolute
     * conductance level (clamped to the device range). The chip resolves
     * the crossbar group and logical column the mapper placed it on.
     */
    struct WeightCellUpdate
    {
        int kernel = 0;      //!< output kernel index in the layer
        int r = 0;           //!< receptive-field (input) index
        int targetLevel = 0; //!< absolute level in [0, levels-1]
    };

    /** Number of mapped weight layers (programming order). */
    int mappedLayerCount() const { return static_cast<int>(layers_.size()); }

    /** |w| normalization used on mapped layer @p k's cells. */
    float mappedWeightScale(int k) const;

    /** Conductance levels per cell (1 << precisionBits). */
    int mappedLevels() const { return 1 << config_.precisionBits; }

    /**
     * Incrementally reprogram cells of mapped weight layer @p k through
     * CrossbarArray::updateCells -- faults/remap respected, EvalCache
     * invalidated, every pulse billed. Also re-reads the layer's bias
     * from the source network (bias lives in the digital periphery, so
     * host-side bias updates take effect without pulses). Not supported
     * for diagonal-packed depthwise layers.
     */
    UpdateReport updateMappedLayer(int k,
                                   const std::vector<WeightCellUpdate> &ups,
                                   const ProgrammingConfig &config = {});

    /** Aggregate incremental-update accounting since the last program. */
    const UpdateReport &updateReport() const { return updateReport_; }

    const ChipStats &stats() const { return stats_; }
    void clearStats() { stats_ = ChipStats(); }

    /** Mapping of the currently programmed network. */
    const NetworkMapping &mapping() const { return mapping_; }

    const NebulaConfig &config() const { return config_; }

  private:
    /** One weight layer programmed onto crossbar column groups. */
    struct MappedLayer
    {
        const Layer *source = nullptr;  //!< layer in the programmed net
        LayerMapping map;
        std::vector<std::unique_ptr<CrossbarArray>> groups;
        std::vector<std::unique_ptr<ReluNeuronUnit>> nus; //!< per group
        std::vector<float> bias;  //!< real-unit bias per kernel
        float weightScale = 1.0f; //!< |w| normalization used on the cells
        float inputCeiling = 1.0f;  //!< a_max of the incoming activation
        float outputCeiling = 0.0f; //!< a_max after the following ReLU
        bool hasActivation = false;
        int dwKernelsPerAc = 0;     //!< >0 for diagonal-packed depthwise
    };

    /** Program one weight layer's crossbars. */
    MappedLayer mapWeightLayer(const Layer &layer, int index,
                               float weight_scale, Mode mode);

    /**
     * Sample this crossbar's fault map (if a fault model is attached)
     * and program it with the configured mitigations, accumulating the
     * report. Crossbars are numbered in programming order, so the maps
     * are deterministic for a given network and faultSeed.
     */
    void programCrossbar(CrossbarArray &xbar,
                         const std::vector<float> &cells);

    /**
     * Evaluate a mapped weight layer on a real-unit input tensor,
     * returning real-unit pre-activations (1, K, H', W') or (1, K).
     * @param binary True when inputs are spike maps (SNN drivers).
     */
    Tensor evaluateLayer(MappedLayer &layer, const Tensor &input,
                         bool binary);

    /**
     * Batched ANN form of evaluateLayer: replace each xs[b] with the
     * layer's real-unit output, evaluating all images' windows of a
     * column group through one evaluateIdealBatch call. Per-image
     * crossbar evals/energy are accumulated into @p per_image (and
     * into stats_) using the batch eval's per-window energies, in the
     * same per-image order the solo walk would. Falls back to
     * per-image evaluateLayer when fastEval is off.
     */
    void evaluateLayerBatch(MappedLayer &layer, std::vector<Tensor> &xs,
                            std::vector<ChipStats> &per_image);

    /**
     * One stage of the pre-resolved fast SNN pipeline: a mapped Linear
     * layer plus the IF layer that consumes its pre-activations (null
     * for the logits stage), with reusable output buffers and the
     * per-step NoC transfer energy precomputed.
     */
    struct SnnFastStage
    {
        size_t layerIndex = 0;      //!< into layers_
        IfLayer *ifAfter = nullptr; //!< IF consuming this stage's output
        bool plainIf = false;       //!< ifAfter qualifies for stepPlain()
        int features = 0;           //!< output kernels
        double nocEnergy = 0.0;     //!< per-step inter-layer transfer (J)
        Tensor preAct;              //!< (1, features) pre-activations
        Tensor spikes;              //!< (1, features) IF spike map
    };

    /**
     * Fast SNN execution plan, built at programSnn() time for pure
     * Flatten/Linear/IF pipelines (the paper's MLP topologies). Runs
     * the identical per-timestep arithmetic as the generic layer walk
     * -- sparse spike-driven crossbar evaluation, the same affine
     * reconstruction expression, the same IF update via IfLayer::step()
     * -- but through preallocated buffers with no per-step tensor
     * churn. differential_test and golden_test pin it to the generic
     * path bit-for-bit; anything not matching the pattern keeps the
     * generic walk (usable == false).
     */
    struct SnnFastPlan
    {
        bool usable = false;
        long long inFeatures = 0;  //!< flattened input size expected
        std::vector<SnnFastStage> stages;
        Tensor spikeBuf;           //!< encoder output workspace
        SpikeVector active;        //!< active-row workspace
        CrossbarEval evalWs;       //!< crossbar result workspace
        PoissonEncoder::EncodePlan encPlan; //!< per-run encode plan
    };

    /** Build fastPlan_ for the programmed SNN (or mark it unusable). */
    void buildSnnFastPlan();

    /**
     * One fast-plan timestep: encode (from the plan built for this
     * run's image), run every stage sparsely, fold the logits into
     * @p result. Returns the input spike count.
     */
    long long snnFastStep(PoissonEncoder &encoder, int t,
                          SnnRunResult &result);

    NebulaConfig config_;
    double variationSigma_;
    uint64_t seed_;
    ReliabilityConfig rel_;
    ProgramReport programReport_;
    UpdateReport updateReport_;
    int crossbarIndex_ = 0; //!< programming-order counter for fault seeds
    LayerMapper mapper_;
    MeshNoc noc_;

    Network *annNet_ = nullptr;
    SpikingModel *snnModel_ = nullptr;
    std::vector<MappedLayer> layers_; //!< one per weight layer, in order
    SnnFastPlan fastPlan_;
    NetworkMapping mapping_;
    ChipStats stats_;
    Rng runSeeds_;
};

} // namespace nebula

#endif // NEBULA_ARCH_CHIP_HPP
