/**
 * @file
 * Top-level NEBULA architecture configuration (paper Sec. IV, Table III).
 */

#ifndef NEBULA_ARCH_CONFIG_HPP
#define NEBULA_ARCH_CONFIG_HPP

#include "circuit/component_db.hpp"
#include "common/units.hpp"

namespace nebula {

/** Chip-level architectural parameters. */
struct NebulaConfig
{
    /** Atomic crossbar dimension M (rows == cols). */
    int atomicSize = 128;

    /** Atomic crossbars per morphable tile (2 x 2). */
    int acsPerTile = 4;

    /** Morphable tiles per super-tile (2 x 2). */
    int tilesPerSupertile = 4;

    /** Pipeline stage / crossbar evaluation time (s). */
    double cycleTime = 110 * units::ns;

    /** Weight/activation precision (bits). */
    int precisionBits = 4;

    /**
     * Physical spare columns per atomic crossbar for defect repair
     * (0 = none provisioned). Spares are extra columns beyond the M
     * logical ones; faulty columns are remapped onto them at program
     * time (src/reliability). They cost area/utilization, not cycles.
     */
    int spareColsPerAc = 0;

    /** Mesh geometry (14 x 14 NCs: 14 ANN + 182 SNN + AUs). */
    int meshWidth = 14;
    int meshHeight = 14;
    int annCores = 14;
    int snnCores = 14 * 13;

    /**
     * Average ANN driver activity: mean activation level as a fraction
     * of full scale, used to scale crossbar read energy. Calibrated per
     * network from the functional simulator when available.
     */
    double defaultAnnActivity = 0.5;

    // -- Access-energy constants (32 nm class) ----------------------------
    //
    // The buffers and eDRAM are charged per access (their Table III
    // powers correspond to sustained-bandwidth operation) plus a small
    // always-on leakage while a layer's cores are active. This is what
    // lets the event-driven SNN mode's energy scale with spike activity
    // (paper Sec. VI-C1).

    /** eDRAM energy per bit moved. */
    double edramBitEnergy = 0.8e-12;

    /** Input/output SRAM buffer energy per bit moved. */
    double sramBitEnergy = 0.15e-12;

    /** Leakage per active ANN core (W). */
    double annCoreLeakage = 1.5e-3;

    /** Leakage per active SNN core (W); SNN cores are smaller. */
    double snnCoreLeakage = 0.8e-3;

    /**
     * Emit chip-level trace spans (layer evaluations, SNN timesteps,
     * ADC/NoC events) when a TraceSession is active. Off-path cost when
     * no session is active is one relaxed atomic load per span site.
     */
    bool traceChip = true;

    /**
     * Use the fast evaluation paths: cached crossbar conductance views,
     * sparse spike-driven evaluation in SNN mode, per-row window
     * batching in ANN mode, input normalization precomputed per tensor
     * element. False selects the original per-window scalar loops on
     * uncached crossbars -- numerically identical (guarded by
     * tests/differential_test.cpp), kept as the measurable
     * pre-optimization baseline for the throughput benchmarks.
     */
    bool fastEval = true;

    /**
     * Online ABFT integrity checking: program one checksum column per
     * crossbar and compare every evaluation's data-column current sum
     * against the input-weighted checksum expectation within an
     * ADC-quantization-derived tolerance. Violations are counted into
     * ChipStats::abftViolations (and surfaced per request by the
     * runtime); the checksum read-out's ohmic energy and ADC
     * conversion are billed with the rest of the array. Off (default)
     * keeps every output byte-identical to a chip without the column.
     */
    bool abft = false;

    /** Atomic crossbars per neural core. */
    int acsPerCore() const { return acsPerTile * tilesPerSupertile; }

    /** Max receptive field the NU hierarchy sums in-core (16M). */
    int maxInCoreRf() const { return acsPerCore() * atomicSize; }

    /** Crossbar cells per core. */
    long long cellsPerCore() const
    {
        return static_cast<long long>(acsPerCore()) * atomicSize *
               atomicSize;
    }
};

} // namespace nebula

#endif // NEBULA_ARCH_CONFIG_HPP
