/**
 * @file
 * Per-request energy attribution record. Deliberately a tiny
 * standalone header: InferenceResult carries one of these from the
 * chip replica up through the engine into the serving layer, and
 * runtime/request.hpp must not pull in the whole chip model for it.
 *
 * The crossbar and NoC joules are *measured* by the functional model
 * (ohmic read energy, per-hop transfer energy); the ADC, driver and
 * neuron-unit joules are analytical estimates -- per-operation activity
 * counts priced at the paper's Table III component powers over one
 * 110 ns cycle, the same methodology arch/energy_model.hpp uses for
 * whole-network projections.
 */

#ifndef NEBULA_ARCH_ENERGY_BREAKDOWN_HPP
#define NEBULA_ARCH_ENERGY_BREAKDOWN_HPP

namespace nebula {

/** Joules one inference spent, by chip component. */
struct EnergyBreakdown
{
    double crossbarJ = 0.0; //!< ohmic read energy (measured)
    double driverJ = 0.0;   //!< ANN DACs / SNN spike drivers (estimated)
    double adcJ = 0.0;      //!< output conversions (estimated)
    double neuronJ = 0.0;   //!< IF neuron-unit updates (estimated)
    double nocJ = 0.0;      //!< inter-layer transfers (measured)

    double total() const
    {
        return crossbarJ + driverJ + adcJ + neuronJ + nocJ;
    }

    bool empty() const { return total() <= 0.0; }

    void merge(const EnergyBreakdown &other)
    {
        crossbarJ += other.crossbarJ;
        driverJ += other.driverJ;
        adcJ += other.adcJ;
        neuronJ += other.neuronJ;
        nocJ += other.nocJ;
    }
};

} // namespace nebula

#endif // NEBULA_ARCH_ENERGY_BREAKDOWN_HPP
