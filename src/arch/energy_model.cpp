#include "arch/energy_model.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

double
InferenceEnergy::componentShare(const std::string &name) const
{
    auto it = byComponent.find(name);
    if (it == byComponent.end() || totalEnergy <= 0.0)
        return 0.0;
    return it->second / totalEnergy;
}

ActivityProfile
ActivityProfile::uniform(size_t layers, double activity)
{
    ActivityProfile profile;
    profile.inputActivity.assign(layers, activity);
    return profile;
}

ActivityProfile
ActivityProfile::decaying(size_t layers, double front, double decay,
                          double floor)
{
    ActivityProfile profile;
    double a = front;
    for (size_t i = 0; i < layers; ++i) {
        profile.inputActivity.push_back(std::max(a, floor));
        a *= decay;
    }
    return profile;
}

EnergyModel::EnergyModel(const NebulaConfig &config)
    : config_(config), db_(componentDb())
{
}

namespace {

/** Average NoC hop distance assumed for bulk traffic accounting. */
constexpr double kAvgHops = 2.0;
/** NoC energy per flit per hop (32-bit flits, 32 nm). */
constexpr double kNocFlitHopEnergy = 0.15e-12;
double
nocEnergyForBits(double bits)
{
    return bits / 32.0 * kAvgHops * kNocFlitHopEnergy;
}

} // namespace

double
EnergyModel::layerActivePower(const LayerMapping &layer, Mode mode,
                              double input_activity) const
{
    const double alpha = std::clamp(input_activity, 0.0, 1.0);

    // Leakage of the cores the layer occupies.
    double power = layer.coresNeeded * (mode == Mode::ANN
                                            ? config_.annCoreLeakage
                                            : config_.snnCoreLeakage);

    // Drivers: one per active row.
    const double driver_unit =
        (mode == Mode::ANN ? db_.annDacPower() : db_.snnDriverPower()) /
        (16.0 * 128.0);
    power += driver_unit * static_cast<double>(layer.dacRowsPerEval) * alpha;

    // Crossbar read power scales with programmed-cell utilization and
    // input activity.
    const double xbar_unit = db_.crossbarPower(mode) / 16.0;
    power += xbar_unit * static_cast<double>(layer.acsNeeded) *
             layer.utilization * alpha;

    // Neuron units: one NU row of 128 neurons per active column group.
    const double nu_row = db_.neuronUnitPower() / 23.0;
    power += nu_row * static_cast<double>(layer.columnGroups);

    // Buffer/eDRAM bandwidth power at this activity level.
    const double bits_per_eval =
        (mode == Mode::ANN)
            ? (static_cast<double>(layer.rf) + layer.kernels) *
                  config_.precisionBits
            : (static_cast<double>(layer.rf) + layer.kernels) * alpha;
    power += bits_per_eval *
             (config_.sramBitEnergy + config_.edramBitEnergy) /
             config_.cycleTime;

    // Per-core ADC is powered only when partial sums leave the core.
    if (layer.needsAdc)
        power += db_.adcPower() * layer.coresNeeded;

    return power;
}

LayerEnergy
EnergyModel::evaluateLayer(const LayerMapping &layer, Mode mode,
                           double input_activity, int timesteps) const
{
    const double alpha = std::clamp(input_activity, 0.0, 1.0);
    const double t_cycle = config_.cycleTime;

    LayerEnergy out;
    out.layerIndex = layer.layerIndex;
    out.name = layer.name;

    const long long evals_per_pass = layer.positions;
    const long long passes = (mode == Mode::SNN) ? timesteps : 1;
    out.cycles = evals_per_pass * passes;

    // Event gating (SNN): an evaluation whose input window carries no
    // spike is skipped; only leakage is burned. The probability that at
    // least one of the Rf inputs spiked this step:
    double executed_fraction = 1.0;
    if (mode == Mode::SNN) {
        executed_fraction =
            1.0 - std::pow(1.0 - alpha, static_cast<double>(layer.rf));
        executed_fraction = std::clamp(executed_fraction, 0.0, 1.0);
    }

    const double active_cycles =
        static_cast<double>(out.cycles) * executed_fraction;

    const double driver_unit =
        (mode == Mode::ANN ? db_.annDacPower() : db_.snnDriverPower()) /
        (16.0 * 128.0);
    const double driver_energy = driver_unit * layer.dacRowsPerEval * alpha *
                                 active_cycles * t_cycle;
    const double xbar_energy =
        (db_.crossbarPower(mode) / 16.0) * layer.acsNeeded *
        layer.utilization * alpha * active_cycles * t_cycle;
    const double nu_energy = db_.neuronUnitPower() / 23.0 *
                             layer.columnGroups * active_cycles * t_cycle;

    // Buffers and eDRAM: per-access energy. ANN moves Rf 4-bit inputs
    // in and `kernels` 4-bit outputs out per evaluation; SNN moves only
    // the spikes that occurred (1 bit each). Leakage accrues on every
    // cycle of the layer's occupancy, gated or not.
    const double bits_per_eval =
        (mode == Mode::ANN)
            ? (static_cast<double>(layer.rf) + layer.kernels) *
                  config_.precisionBits
            : (static_cast<double>(layer.rf) + layer.kernels) * alpha;
    // Spilled kernels (Rf > 16M) stage their digitized partial sums
    // through eDRAM and the RU reduction tree: extra occupancy cycles
    // and a 4-bit eDRAM round trip per partial sum (paper Fig. 8,
    // dashed stages).
    const double reduction_cycles =
        layer.needsAdc ? static_cast<double>(out.cycles) : 0.0;
    const double partial_sum_bits =
        static_cast<double>(layer.adcConversions) * passes *
        config_.precisionBits * 2.0;

    const double leakage =
        (mode == Mode::ANN ? config_.annCoreLeakage
                           : config_.snnCoreLeakage) *
        layer.coresNeeded *
        (static_cast<double>(out.cycles) + reduction_cycles) * t_cycle;
    const double sram_energy =
        bits_per_eval * config_.sramBitEnergy * active_cycles +
        0.4 * leakage;
    const double edram_energy =
        bits_per_eval * config_.edramBitEnergy * active_cycles +
        partial_sum_bits * config_.edramBitEnergy + 0.6 * leakage;

    // ADC + RU reduction (per pass; SNN repeats every timestep).
    const double adc_conversion = db_.adcPower() / db_.digitalClock();
    double adc_energy = layer.adcConversions * passes * adc_conversion;
    if (layer.needsAdc)
        adc_energy += db_.adcPower() * layer.coresNeeded * active_cycles *
                      t_cycle;
    const double ru_energy = layer.ruAdditions * passes *
                             (db_.accumulatorAdderPower() / 1024.0) /
                             db_.digitalClock();

    // NoC: output activations (4-bit each; binary spikes in SNN mode)
    // plus digitized partial sums.
    double traffic_bits;
    if (mode == Mode::SNN) {
        traffic_bits = static_cast<double>(layer.outputElements) * alpha *
                       passes; // 1-bit spikes
    } else {
        traffic_bits = static_cast<double>(layer.outputElements) *
                       config_.precisionBits;
    }
    traffic_bits += static_cast<double>(layer.adcConversions) * passes *
                    config_.precisionBits;
    const double noc_energy = nocEnergyForBits(traffic_bits);

    out.byComponent["driver/dac"] = driver_energy;
    out.byComponent["crossbar"] = xbar_energy;
    out.byComponent["neuron"] = nu_energy;
    out.byComponent["sram"] = sram_energy;
    out.byComponent["edram"] = edram_energy;
    out.byComponent["adc"] = adc_energy;
    out.byComponent["ru"] = ru_energy;
    out.byComponent["noc"] = noc_energy;

    out.energy = driver_energy + xbar_energy + nu_energy + sram_energy +
                 edram_energy + adc_energy + ru_energy + noc_energy;

    // Peak power: ANN drives everything at full scale; SNN peaks are
    // bounded by the spatial spike sparsity (paper Fig. 14).
    out.peakPower = (mode == Mode::ANN)
                        ? layerActivePower(layer, Mode::ANN, 1.0)
                        : layerActivePower(layer, Mode::SNN, alpha);
    return out;
}

namespace {

InferenceEnergy
finalize(std::vector<LayerEnergy> layers, double cycle_time)
{
    InferenceEnergy out;
    long long cycles = 0;
    for (auto &layer : layers) {
        out.totalEnergy += layer.energy;
        out.peakPower = std::max(out.peakPower, layer.peakPower);
        cycles += layer.cycles;
        for (const auto &kv : layer.byComponent)
            out.byComponent[kv.first] += kv.second;
    }
    out.latency = static_cast<double>(cycles) * cycle_time;
    out.avgPower = out.latency > 0 ? out.totalEnergy / out.latency : 0.0;
    out.layers = std::move(layers);
    return out;
}

} // namespace

InferenceEnergy
EnergyModel::evaluateAnn(const NetworkMapping &mapping,
                         const ActivityProfile &activity) const
{
    NEBULA_ASSERT(activity.inputActivity.size() == mapping.layers.size(),
                  "activity profile size mismatch: ",
                  activity.inputActivity.size(), " vs ",
                  mapping.layers.size());
    std::vector<LayerEnergy> layers;
    for (size_t i = 0; i < mapping.layers.size(); ++i)
        layers.push_back(evaluateLayer(mapping.layers[i], Mode::ANN,
                                       activity.inputActivity[i], 1));
    return finalize(std::move(layers), config_.cycleTime);
}

InferenceEnergy
EnergyModel::evaluateSnn(const NetworkMapping &mapping,
                         const ActivityProfile &activity,
                         int timesteps) const
{
    NEBULA_ASSERT(activity.inputActivity.size() == mapping.layers.size(),
                  "activity profile size mismatch");
    NEBULA_ASSERT(timesteps > 0, "need at least one timestep");
    std::vector<LayerEnergy> layers;
    for (size_t i = 0; i < mapping.layers.size(); ++i)
        layers.push_back(evaluateLayer(mapping.layers[i], Mode::SNN,
                                       activity.inputActivity[i],
                                       timesteps));
    return finalize(std::move(layers), config_.cycleTime);
}

InferenceEnergy
EnergyModel::evaluateHybrid(const NetworkMapping &mapping,
                            const ActivityProfile &activity, int split,
                            int timesteps, long long boundary_neurons,
                            long long boundary_spikes) const
{
    NEBULA_ASSERT(split >= 1 &&
                      split < static_cast<int>(mapping.layers.size()),
                  "hybrid split out of range");
    std::vector<LayerEnergy> layers;
    for (size_t i = 0; i < mapping.layers.size(); ++i) {
        const bool spiking = static_cast<int>(i) < split;
        layers.push_back(evaluateLayer(
            mapping.layers[i], spiking ? Mode::SNN : Mode::ANN,
            activity.inputActivity[i], spiking ? timesteps : 1));
    }

    // Accumulator Unit: one add + register write per boundary spike,
    // plus register static power over the accumulation window.
    const double per_add = (db_.accumulatorAdderPower() +
                            db_.accumulatorRegisterPower()) /
                           1024.0 / db_.digitalClock();
    LayerEnergy au;
    au.layerIndex = -2;
    au.name = "accumulator-unit";
    au.energy = boundary_spikes * per_add +
                (static_cast<double>(boundary_neurons) / 1024.0) *
                    db_.accumulatorPower() * timesteps * config_.cycleTime;
    au.byComponent["accumulator"] = au.energy;
    au.peakPower = db_.accumulatorPower() *
                   std::ceil(static_cast<double>(boundary_neurons) / 1024.0);
    layers.push_back(au);

    return finalize(std::move(layers), config_.cycleTime);
}

} // namespace nebula
