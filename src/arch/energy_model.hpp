/**
 * @file
 * Analytical energy / power / latency model for NEBULA (paper Sec. V-C,
 * VI). Mirrors the paper's methodology: component power and area come
 * from Table III (circuit/component_db); activity counts come from the
 * layer mapping plus measured (or synthetic) activation statistics.
 *
 * ANN mode: one crossbar evaluation per output position; all Rf rows
 * are driven with multi-bit DACs each cycle.
 *
 * SNN mode: the same evaluation repeats every algorithmic timestep, but
 * only rows that carry a spike consume driver/crossbar read energy, and
 * the 1-bit 0.25 V drivers are ~30x cheaper than the ANN DACs. The MTJ
 * neurons hold the membrane potential between timesteps, so -- unlike
 * INXS -- no SRAM read-modify-write is charged per timestep.
 *
 * Hybrid mode: SNN prefix + Accumulator Units + ANN suffix.
 */

#ifndef NEBULA_ARCH_ENERGY_MODEL_HPP
#define NEBULA_ARCH_ENERGY_MODEL_HPP

#include <map>
#include <string>
#include <vector>

#include "arch/mapping.hpp"
#include "circuit/component_db.hpp"

namespace nebula {

/** Energy accounting for one layer, per inference. */
struct LayerEnergy
{
    int layerIndex = -1;
    std::string name;
    double energy = 0.0;       //!< J per inference
    double peakPower = 0.0;    //!< W while the layer is active
    long long cycles = 0;      //!< evaluation cycles per inference
    std::map<std::string, double> byComponent; //!< J per component class
};

/** Whole-network energy accounting, per inference. */
struct InferenceEnergy
{
    std::vector<LayerEnergy> layers;
    double totalEnergy = 0.0;   //!< J
    double latency = 0.0;       //!< s (sequential layer execution)
    double avgPower = 0.0;      //!< W == totalEnergy / latency
    double peakPower = 0.0;     //!< max over layers
    std::map<std::string, double> byComponent;

    /** Fraction of total energy attributed to a component class. */
    double componentShare(const std::string &name) const;
};

/** Per-layer activity statistics driving the dynamic-energy scaling. */
struct ActivityProfile
{
    /**
     * For each mapped layer, the average input activity:
     *  - ANN: mean driven level as a fraction of full scale (0..1);
     *  - SNN: average spikes per input neuron per timestep (0..1).
     */
    std::vector<double> inputActivity;

    /** Uniform profile. */
    static ActivityProfile uniform(size_t layers, double activity);

    /**
     * Depth-decaying spiking profile mirroring paper Fig. 4: activity
     * starts at @p front and decays geometrically to @p floor.
     */
    static ActivityProfile decaying(size_t layers, double front = 0.25,
                                    double decay = 0.82,
                                    double floor = 0.01);
};

/** The analytical model. */
class EnergyModel
{
  public:
    explicit EnergyModel(const NebulaConfig &config = {});

    /** ANN-mode accounting for a mapped network. */
    InferenceEnergy evaluateAnn(const NetworkMapping &mapping,
                                const ActivityProfile &activity) const;

    /**
     * SNN-mode accounting.
     * @param timesteps Evidence-integration window T.
     */
    InferenceEnergy evaluateSnn(const NetworkMapping &mapping,
                                const ActivityProfile &activity,
                                int timesteps) const;

    /**
     * Hybrid accounting: layers [0, split) of @p mapping run in SNN mode
     * for @p timesteps, the rest in ANN mode once, with AU energy for
     * the boundary accumulation.
     *
     * @param boundary_neurons Width of the SNN->ANN interface.
     * @param boundary_spikes  Spikes accumulated at the AU per inference.
     */
    InferenceEnergy evaluateHybrid(const NetworkMapping &mapping,
                                   const ActivityProfile &activity,
                                   int split, int timesteps,
                                   long long boundary_neurons,
                                   long long boundary_spikes) const;

    /** Per-evaluation active power of one layer (W). */
    double layerActivePower(const LayerMapping &layer, Mode mode,
                            double input_activity) const;

    const NebulaConfig &config() const { return config_; }

  private:
    LayerEnergy evaluateLayer(const LayerMapping &layer, Mode mode,
                              double input_activity, int timesteps) const;

    NebulaConfig config_;
    const ComponentDb &db_;
};

} // namespace nebula

#endif // NEBULA_ARCH_ENERGY_MODEL_HPP
