#include "arch/mapping.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

long long
NetworkMapping::totalCores() const
{
    long long total = 0;
    for (const auto &m : layers)
        total += m.coresNeeded;
    return total;
}

long long
NetworkMapping::totalAcs() const
{
    long long total = 0;
    for (const auto &m : layers)
        total += m.acsNeeded;
    return total;
}

long long
NetworkMapping::totalSpareColumns() const
{
    long long total = 0;
    for (const auto &m : layers)
        total += m.spareColumns;
    return total;
}

bool
NetworkMapping::anyAdc() const
{
    for (const auto &m : layers)
        if (m.needsAdc)
            return true;
    return false;
}

LayerMapper::LayerMapper(const NebulaConfig &config,
                         const MapperOptions &options)
    : config_(config), options_(options)
{
}

LayerMapping
LayerMapper::mapLayer(const Layer &layer, int index) const
{
    NEBULA_ASSERT(layer.isWeightLayer(), "can only map weight layers");
    const int m = config_.atomicSize;
    const int max_rf = config_.maxInCoreRf();

    LayerMapping out;
    out.layerIndex = index;
    out.name = layer.name();
    out.kind = layer.kind();
    out.rf = layer.receptiveField();
    out.kernels = layer.numKernels();
    out.positions = std::max<long long>(layer.outputPositions(), 1);
    out.outputElements = layer.outputElements();
    NEBULA_ASSERT(out.rf > 0 && out.kernels > 0,
                  "layer has no geometry; run a forward pass first");

    if (out.kind == LayerKind::DwConv && out.rf <= m) {
        // Depthwise kernels occupy disjoint rows: pack several kernels
        // per AC diagonally.
        const int kernels_per_ac =
            std::max(1, std::min(m, m / out.rf));
        out.chain = 1;
        out.hierarchyLevel = 0;
        out.columnGroups =
            (out.kernels + kernels_per_ac - 1) / kernels_per_ac;
        out.acsNeeded = out.columnGroups;
        // Every kernel's Rf rows carry distinct inputs (diagonal blocks),
        // so the driven-row count is Rf per kernel.
        out.dacRowsPerEval = static_cast<long long>(out.rf) * out.kernels;
    } else if (out.rf <= max_rf) {
        // Chain 1/2/4/8/16 ACs vertically; NU hierarchy aggregates the
        // source-line currents (no ADC).
        int chain = 1;
        while (chain * m < out.rf)
            chain *= 2;
        if (!options_.morphableTiles)
            chain = config_.acsPerCore(); // rigid full-super-tile kernels
        out.chain = chain;
        out.hierarchyLevel = chain <= 1 ? 0 : (chain <= 4 ? 1 : 2);
        out.columnGroups = (out.kernels + m - 1) / m;
        out.acsNeeded = out.columnGroups * chain;
        out.dacRowsPerEval =
            static_cast<long long>(out.rf) * out.columnGroups;
        if (!options_.nuHierarchy && chain > 1) {
            // No in-current aggregation: every chained AC's partial sum
            // is digitized and reduced digitally, every evaluation.
            out.needsAdc = true;
            out.adcConversions = out.positions *
                                 static_cast<long long>(out.kernels) *
                                 chain;
            out.ruAdditions = out.positions *
                              static_cast<long long>(out.kernels) *
                              (chain - 1);
        }
    } else {
        // Kernel spills over multiple NCs: each core contributes a
        // 16M-row slice, digitizes its partial sums (4-bit ADC) and the
        // RU tree reduces them (paper Fig. 8, dashed stages).
        out.coreSplit = (out.rf + max_rf - 1) / max_rf;
        out.chain = config_.acsPerCore();
        out.hierarchyLevel = 2;
        out.needsAdc = true;
        out.columnGroups = (out.kernels + m - 1) / m;
        out.acsNeeded =
            out.columnGroups * static_cast<long long>(out.chain) *
            out.coreSplit;
        out.dacRowsPerEval =
            static_cast<long long>(out.rf) * out.columnGroups;
        out.adcConversions = out.positions *
                             static_cast<long long>(out.kernels) *
                             out.coreSplit;
        out.ruAdditions = out.positions *
                          static_cast<long long>(out.kernels) *
                          (out.coreSplit - 1);
    }

    out.coresNeeded =
        (out.acsNeeded + config_.acsPerCore() - 1) / config_.acsPerCore();
    out.spareColumns = out.acsNeeded * config_.spareColsPerAc;
    // Spare columns are allocated area a defect-free array never uses,
    // so they dilute utilization when provisioned.
    out.utilization =
        static_cast<double>(out.rf) * out.kernels /
        (static_cast<double>(out.acsNeeded) * m *
         (m + config_.spareColsPerAc));
    NEBULA_ASSERT(out.utilization <= 1.0 + 1e-9, "utilization > 1 for ",
                  out.name);
    return out;
}

NetworkMapping
LayerMapper::map(const Network &net) const
{
    NetworkMapping mapping;
    for (int i = 0; i < net.numLayers(); ++i) {
        const Layer &layer = net.layer(i);
        if (layer.isWeightLayer())
            mapping.layers.push_back(mapLayer(layer, i));
    }
    return mapping;
}

} // namespace nebula
