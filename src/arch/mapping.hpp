/**
 * @file
 * Layer-to-crossbar mapping (paper Sec. IV-B2/IV-B3, Fig. 5 and 7).
 *
 * A KH x KW x C kernel flattens to Rf crossbar rows; each kernel takes
 * one column. The morphable tile chains 1, 2 or 4 atomic crossbars
 * vertically (and the super-tile up to 16) so the partial sums stay in
 * the current domain and are thresholded by a neuron unit at hierarchy
 * level H0/H1/H2 -- no ADC involved. Only kernels with Rf > 16M spill
 * across neural cores and need the per-core ADC plus RU reduction.
 *
 * Depthwise kernels read disjoint input channels, so they pack
 * diagonally: floor(M / Rf) kernels per atomic crossbar, which is what
 * makes separable convolutions cheap on NEBULA (low row activity) but
 * low-utilization.
 */

#ifndef NEBULA_ARCH_MAPPING_HPP
#define NEBULA_ARCH_MAPPING_HPP

#include <string>
#include <vector>

#include "arch/config.hpp"
#include "nn/network.hpp"

namespace nebula {

/** How one layer maps onto the NEBULA fabric. */
struct LayerMapping
{
    int layerIndex = -1;
    std::string name;
    LayerKind kind = LayerKind::Conv;

    int rf = 0;                //!< receptive field (crossbar rows/kernel)
    int kernels = 0;           //!< kernel count (crossbar columns)
    long long positions = 1;   //!< crossbar evaluations per image

    int chain = 1;             //!< ACs chained vertically per kernel
    int hierarchyLevel = 0;    //!< NU level: 0 = H0, 1 = H1, 2 = H2
    int coreSplit = 1;         //!< NCs one kernel spans (Rf > 16M)
    bool needsAdc = false;     //!< partial sums leave the core

    long long columnGroups = 1;   //!< independent kernel groups of <= M
    long long acsNeeded = 1;      //!< atomic crossbars holding weights
    long long coresNeeded = 1;    //!< neural cores allocated
    long long spareColumns = 0;   //!< repair spares provisioned (all ACs)
    double utilization = 0.0;     //!< programmed cells / allocated cells
                                  //!< (spare columns count as allocated)

    long long dacRowsPerEval = 0; //!< drivers active per evaluation
    long long adcConversions = 0; //!< per image
    long long ruAdditions = 0;    //!< partial-sum adds at RUs per image
    long long outputElements = 0; //!< activations produced per image
};

/** Whole-network mapping summary. */
struct NetworkMapping
{
    std::vector<LayerMapping> layers;

    long long totalCores() const;
    long long totalAcs() const;
    long long totalSpareColumns() const;
    bool anyAdc() const;
};

/**
 * Design-space knobs for the mapper ablations (paper design choices):
 * morphable tiles (Sec. IV-B2) and the in-current NU hierarchy
 * (Sec. IV-B3) can each be disabled to quantify their contribution.
 */
struct MapperOptions
{
    /** Adaptive AC chaining; false = every kernel occupies a full
     *  16-AC super-tile chain regardless of Rf. */
    bool morphableTiles = true;

    /** Current-domain partial-sum aggregation; false = every chained
     *  AC's partial sum is digitized and merged digitally (the
     *  ISAAC/INXS-style ADC-per-crossbar organization). */
    bool nuHierarchy = true;
};

/** Maps network layers onto the NEBULA fabric. */
class LayerMapper
{
  public:
    explicit LayerMapper(const NebulaConfig &config = {},
                         const MapperOptions &options = {});

    /**
     * Map every weight layer of @p net. The network must have been run
     * forward at least once so output geometry is known.
     */
    NetworkMapping map(const Network &net) const;

    /** Map a single layer (exposed for tests and ablations). */
    LayerMapping mapLayer(const Layer &layer, int index) const;

    const NebulaConfig &config() const { return config_; }
    const MapperOptions &options() const { return options_; }

  private:
    NebulaConfig config_;
    MapperOptions options_;
};

} // namespace nebula

#endif // NEBULA_ARCH_MAPPING_HPP
