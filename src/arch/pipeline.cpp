#include "arch/pipeline.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

PipelineModel::PipelineModel(const NebulaConfig &config) : config_(config)
{
}

int
PipelineModel::stagesFor(const LayerMapping &layer) const
{
    // fetch -> evaluate -> writeback.
    int stages = 3;
    if (layer.needsAdc) {
        // ADC digitization plus a log2-depth RU reduction tree and the
        // final activation application.
        const int reduction_hops = std::max(
            1, static_cast<int>(
                   std::ceil(std::log2(std::max(2, layer.coreSplit)))));
        stages += 1 + reduction_hops + 1;
    }
    return stages;
}

long long
PipelineModel::layerLatencyCycles(const LayerMapping &layer) const
{
    return stagesFor(layer) + layer.positions - 1;
}

long long
PipelineModel::networkLatencyCycles(const NetworkMapping &mapping) const
{
    long long cycles = 0;
    for (const auto &layer : mapping.layers)
        cycles += layerLatencyCycles(layer);
    return cycles;
}

double
PipelineModel::networkLatency(const NetworkMapping &mapping,
                              int timesteps) const
{
    NEBULA_ASSERT(timesteps >= 1, "bad timestep count");
    return static_cast<double>(networkLatencyCycles(mapping)) * timesteps *
           config_.cycleTime;
}

double
PipelineModel::throughput(const NetworkMapping &mapping,
                          int timesteps) const
{
    long long slowest = 1;
    for (const auto &layer : mapping.layers)
        slowest = std::max(slowest, layerLatencyCycles(layer));
    const double seconds =
        static_cast<double>(slowest) * timesteps * config_.cycleTime;
    return seconds > 0 ? 1.0 / seconds : 0.0;
}

long long
PipelineModel::layerBatchLatencyCycles(const LayerMapping &layer,
                                       int batch) const
{
    NEBULA_ASSERT(batch >= 1, "bad batch size");
    return stagesFor(layer) +
           static_cast<long long>(batch) * layer.positions - 1;
}

double
PipelineModel::batchedThroughput(const NetworkMapping &mapping, int batch,
                                 int timesteps) const
{
    NEBULA_ASSERT(batch >= 1, "bad batch size");
    long long slowest = 1;
    for (const auto &layer : mapping.layers)
        slowest = std::max(slowest, layerBatchLatencyCycles(layer, batch));
    const double seconds =
        static_cast<double>(slowest) * timesteps * config_.cycleTime;
    return seconds > 0 ? batch / seconds : 0.0;
}

} // namespace nebula
