/**
 * @file
 * NEBULA pipeline timing model (paper Sec. IV-B5, Fig. 8). Every stage
 * is one 110 ns cycle: eDRAM->IB fetch, crossbar evaluation (+ in-core
 * NU thresholding), OB->eDRAM writeback. Kernels that spill over
 * multiple NCs add ADC digitization and a log-depth RU reduction tree
 * before activation (the dashed stages in Fig. 8).
 */

#ifndef NEBULA_ARCH_PIPELINE_HPP
#define NEBULA_ARCH_PIPELINE_HPP

#include "arch/mapping.hpp"

namespace nebula {

/** Latency/throughput model of the NC pipeline. */
class PipelineModel
{
  public:
    explicit PipelineModel(const NebulaConfig &config = {});

    /** Pipeline depth (stages) for one layer's evaluations. */
    int stagesFor(const LayerMapping &layer) const;

    /**
     * Cycles to stream all of a layer's positions through its pipeline:
     * depth + positions - 1.
     */
    long long layerLatencyCycles(const LayerMapping &layer) const;

    /** Sequential whole-network latency (cycles) for one image. */
    long long networkLatencyCycles(const NetworkMapping &mapping) const;

    /** Same in seconds; SNN mode multiplies by timesteps. */
    double networkLatency(const NetworkMapping &mapping,
                          int timesteps = 1) const;

    /**
     * Steady-state throughput (images/s) if layers are pipelined across
     * cores: bounded by the slowest layer.
     */
    double throughput(const NetworkMapping &mapping,
                      int timesteps = 1) const;

    /**
     * Cycles for a micro-batch of @p batch images streamed back to
     * back through one layer's pipeline: the pipeline fills once and
     * then every further image only pays its positions, so the
     * per-image cost amortizes the fill. batch == 1 reduces to
     * layerLatencyCycles.
     */
    long long layerBatchLatencyCycles(const LayerMapping &layer,
                                      int batch) const;

    /**
     * Steady-state throughput (images/s) for micro-batches of
     * @p batch images: the slowest layer streams batch * positions
     * windows per fill instead of one image's worth, which is the
     * timing-model counterpart of the batched GEMM evaluation path.
     */
    double batchedThroughput(const NetworkMapping &mapping, int batch,
                             int timesteps = 1) const;

    const NebulaConfig &config() const { return config_; }

  private:
    NebulaConfig config_;
};

} // namespace nebula

#endif // NEBULA_ARCH_PIPELINE_HPP
