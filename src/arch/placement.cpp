#include "arch/placement.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/logging.hpp"

namespace nebula {

ChipPlacer::ChipPlacer(const NebulaConfig &config) : config_(config)
{
}

int
ChipPlacer::coreBudget(Mode mode) const
{
    return mode == Mode::ANN ? config_.annCores : config_.snnCores;
}

NodeId
ChipPlacer::coreLocation(int index, Mode mode) const
{
    NEBULA_ASSERT(index >= 0, "negative core index");
    if (mode == Mode::ANN) {
        // The ANN cores occupy the first column (paper Fig. 6b shows
        // the A-cores along one edge of the mesh).
        return {0, index % config_.meshHeight};
    }
    // SNN cores fill the remaining columns row-major.
    const int snn_columns = config_.meshWidth - 1;
    const int wrapped = index % (snn_columns * config_.meshHeight);
    return {1 + wrapped % snn_columns, wrapped / snn_columns};
}

PlacementResult
ChipPlacer::place(const NetworkMapping &mapping, Mode mode) const
{
    PlacementResult result;
    result.mode = mode;

    const int budget = coreBudget(mode);
    int next_core = 0;
    std::set<std::pair<int, int>> used;

    for (const auto &layer : mapping.layers) {
        LayerPlacement placement;
        placement.layerIndex = layer.layerIndex;
        for (long long c = 0; c < layer.coresNeeded; ++c) {
            const NodeId node = coreLocation(next_core % budget, mode);
            placement.cores.push_back(node);
            used.insert({node.x, node.y});
            ++next_core;
        }
        result.spareColumns += layer.spareColumns;
        result.layers.push_back(std::move(placement));
    }
    result.coresUsed = static_cast<long long>(used.size());
    result.fits = next_core <= budget;
    return result;
}

TrafficStats
simulateInferenceTraffic(const NetworkMapping &mapping,
                         const PlacementResult &placement, MeshNoc &noc,
                         Mode mode, const ActivityProfile &activity,
                         int timesteps)
{
    NEBULA_ASSERT(mapping.layers.size() == placement.layers.size(),
                  "placement does not match mapping");
    NEBULA_ASSERT(activity.inputActivity.size() == mapping.layers.size(),
                  "activity profile does not match mapping");
    NEBULA_ASSERT(timesteps >= 1, "bad timestep count");

    noc.reset();
    long long packet_id = 0;

    const int rounds = mode == Mode::SNN ? timesteps : 1;
    for (int round = 0; round < rounds; ++round) {
        // Stagger rounds so they do not all collide at cycle zero; a
        // round corresponds to one algorithmic timestep.
        const long long base_cycle = static_cast<long long>(round) * 64;

        for (size_t l = 0; l + 1 < mapping.layers.size(); ++l) {
            const auto &src_layer = mapping.layers[l];
            const auto &producers = placement.layers[l].cores;
            const auto &consumers = placement.layers[l + 1].cores;
            NEBULA_ASSERT(!producers.empty() && !consumers.empty(),
                          "layer with no cores");

            // Payload of this layer boundary for one round.
            double bits;
            if (mode == Mode::SNN) {
                // Spike events: 1 bit per active output neuron.
                bits = static_cast<double>(src_layer.outputElements) *
                       std::clamp(activity.inputActivity[l + 1], 0.0, 1.0);
            } else {
                bits = static_cast<double>(src_layer.outputElements) * 4;
            }
            // Stripe outputs over producers; every consumer needs the
            // full map (windows overlap), so each producer multicasts
            // its stripe to all consumers.
            const double bits_per_pair =
                bits / static_cast<double>(producers.size());
            for (size_t p = 0; p < producers.size(); ++p) {
                for (size_t c = 0; c < consumers.size(); ++c) {
                    Packet packet;
                    packet.id = packet_id++;
                    packet.src = producers[p];
                    packet.dst = consumers[c];
                    packet.sizeBits = std::max(
                        1, static_cast<int>(std::lround(bits_per_pair)));
                    packet.injectCycle =
                        base_cycle + static_cast<long long>(p);
                    noc.inject(packet);
                }
            }

            // Spilled kernels: digitized partial sums converge on the
            // layer's first core, which hosts the reduction RU.
            if (src_layer.needsAdc && producers.size() > 1) {
                const double partial_bits =
                    static_cast<double>(src_layer.kernels) * 4;
                for (size_t p = 1; p < producers.size(); ++p) {
                    Packet packet;
                    packet.id = packet_id++;
                    packet.src = producers[p];
                    packet.dst = producers[0];
                    packet.sizeBits = std::max(
                        1, static_cast<int>(std::lround(partial_bits)));
                    packet.injectCycle =
                        base_cycle + static_cast<long long>(p);
                    noc.inject(packet);
                }
            }
        }
    }

    const auto traces = noc.drain();
    TrafficStats stats;
    stats.packets = static_cast<long long>(traces.size());
    stats.energy = noc.dynamicEnergy();
    double hops = 0.0, latency = 0.0;
    for (const auto &trace : traces) {
        hops += trace.hops;
        latency += static_cast<double>(trace.latency);
        stats.worstLatency = std::max(stats.worstLatency, trace.latency);
    }
    if (!traces.empty()) {
        stats.avgHops = hops / traces.size();
        stats.avgLatency = latency / traces.size();
    }
    stats.flits =
        static_cast<long long>(noc.stats().scalarAt("noc.flits").sum());
    return stats;
}

} // namespace nebula
