/**
 * @file
 * Chip-level placement and traffic: assigns each mapped layer's neural
 * cores to mesh coordinates (paper Fig. 6b -- one column of ANN cores,
 * the rest SNN cores, AUs along the edge) and drives the mesh NoC with
 * the inter-layer activation and partial-sum traffic of one inference,
 * so congestion, hop counts and network energy come from the simulated
 * mesh rather than the analytic average-hop estimate.
 */

#ifndef NEBULA_ARCH_PLACEMENT_HPP
#define NEBULA_ARCH_PLACEMENT_HPP

#include <vector>

#include "arch/energy_model.hpp"
#include "arch/mapping.hpp"
#include "noc/noc.hpp"

namespace nebula {

/** Where one layer's cores sit on the mesh. */
struct LayerPlacement
{
    int layerIndex = -1;
    std::vector<NodeId> cores;
};

/** A whole network placed onto the chip. */
struct PlacementResult
{
    std::vector<LayerPlacement> layers;
    long long coresUsed = 0;   //!< distinct physical cores touched
    long long spareColumns = 0; //!< repair spares across placed layers
    bool fits = false;         //!< true if no core is time-multiplexed
    Mode mode = Mode::SNN;
};

/** NoC statistics of one simulated inference. */
struct TrafficStats
{
    long long packets = 0;
    long long flits = 0;
    double energy = 0.0;        //!< J
    double avgLatency = 0.0;    //!< cycles
    long long worstLatency = 0; //!< cycles
    double avgHops = 0.0;
};

/** Places mapped layers onto the NEBULA mesh. */
class ChipPlacer
{
  public:
    explicit ChipPlacer(const NebulaConfig &config = {});

    /**
     * Assign cores to every layer, in layer order. ANN-mode layers use
     * the dedicated ANN column (x == 0); SNN-mode layers use the
     * remaining columns. When the network needs more cores than the
     * chip has of that type, allocation wraps (time-multiplexing) and
     * `fits` is false.
     */
    PlacementResult place(const NetworkMapping &mapping, Mode mode) const;

    /** Mesh coordinate of physical core @p index for a mode. */
    NodeId coreLocation(int index, Mode mode) const;

    /** Number of physical cores available to a mode. */
    int coreBudget(Mode mode) const;

    const NebulaConfig &config() const { return config_; }

  private:
    NebulaConfig config_;
};

/**
 * Simulate the NoC traffic of one inference over a placed network.
 *
 * Every layer ships its activations from each of its cores to each of
 * the next layer's cores (outputs are striped over producers and
 * broadcast windows overlap consumers); spilled layers additionally
 * ship digitized partial sums to their reduction core. In SNN mode the
 * per-timestep payload is the spike bitmap scaled by the layer's
 * activity, and @p timesteps rounds are injected.
 *
 * @param noc A mesh sized like the chip; reset before use.
 */
TrafficStats simulateInferenceTraffic(const NetworkMapping &mapping,
                                      const PlacementResult &placement,
                                      MeshNoc &noc, Mode mode,
                                      const ActivityProfile &activity,
                                      int timesteps = 1);

} // namespace nebula

#endif // NEBULA_ARCH_PLACEMENT_HPP
