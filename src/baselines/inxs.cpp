#include "baselines/inxs.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

InxsModel::InxsModel(const InxsConfig &config) : config_(config)
{
}

InxsLayerEnergy
InxsModel::evaluateLayer(const LayerMapping &layer, double input_activity,
                         int timesteps) const
{
    NEBULA_ASSERT(timesteps > 0, "need at least one timestep");
    const double alpha = std::clamp(input_activity, 0.0, 1.0);

    InxsLayerEnergy out;
    out.layerIndex = layer.layerIndex;
    out.name = layer.name;

    // Output neurons of this layer (each holds a membrane potential).
    const long long neurons = layer.outputElements;

    // Every timestep, every neuron's increment is digitized, shipped
    // and merged into the SRAM-resident membrane.
    out.neuronUpdates = neurons * timesteps;
    out.adcEnergy = static_cast<double>(out.neuronUpdates) *
                    config_.adcConversionEnergy;
    out.membraneEnergy =
        static_cast<double>(out.neuronUpdates) *
        (config_.sramReadEnergy + config_.sramWriteEnergy +
         config_.addCompareEnergy);
    const double noc_energy = static_cast<double>(out.neuronUpdates) *
                              config_.nocTransferEnergy;

    // Crossbar evaluations: positions per timestep; read energy scales
    // with active cells.
    const double cells =
        static_cast<double>(layer.rf) * layer.kernels;
    const double xbar_energy = cells * alpha * config_.cellReadEnergy *
                               static_cast<double>(layer.positions) *
                               timesteps;
    const long long crossbars =
        ((layer.rf + config_.crossbarSize - 1) / config_.crossbarSize) *
        ((layer.kernels + config_.crossbarSize - 1) /
         config_.crossbarSize);
    const double periphery_energy =
        static_cast<double>(crossbars) * config_.crossbarPeripheryPower *
        static_cast<double>(layer.positions) * timesteps *
        config_.cycleTime;

    out.energy = out.adcEnergy + out.membraneEnergy + noc_energy +
                 xbar_energy + periphery_energy;
    return out;
}

InxsEnergy
InxsModel::evaluate(const NetworkMapping &mapping,
                    const std::vector<double> &activity,
                    int timesteps) const
{
    NEBULA_ASSERT(activity.size() == mapping.layers.size(),
                  "activity profile size mismatch");
    InxsEnergy out;
    for (size_t i = 0; i < mapping.layers.size(); ++i) {
        out.layers.push_back(
            evaluateLayer(mapping.layers[i], activity[i], timesteps));
        out.totalEnergy += out.layers.back().energy;
    }
    return out;
}

} // namespace nebula
