/**
 * @file
 * Analytical energy model of INXS (Narayanan et al., IJCNN 2017), the
 * SNN accelerator NEBULA's SNN mode is compared against (paper
 * Sec. VI-B, Fig. 13b).
 *
 * INXS performs the weighted spike accumulation on crossbars but then,
 * every algorithmic timestep, (1) digitizes the membrane-potential
 * increments with an ADC, (2) ships them over the on-chip network to a
 * neuron unit, and (3) performs an SRAM read-modify-write against the
 * stored membrane potential before thresholding. NEBULA eliminates all
 * three: the DW-MTJ neuron integrates the analog column current
 * directly and *is* the membrane storage (paper Sec. VI-B lists exactly
 * these two overheads as the source of the ~45x gap).
 *
 * The INXS publication reports component choices but not a complete
 * per-op energy table, so the per-event energies below are
 * reconstructed from typical 32 nm figures for the named structures
 * (8-bit SAR ADC conversion, multi-megabit SRAM membrane store, mesh
 * hop energy). They are exposed as configuration for sensitivity
 * studies.
 */

#ifndef NEBULA_BASELINES_INXS_HPP
#define NEBULA_BASELINES_INXS_HPP

#include "arch/mapping.hpp"
#include "common/units.hpp"

namespace nebula {

/** INXS configuration. */
struct InxsConfig
{
    double cycleTime = 100 * units::ns;

    /** 8-bit ADC conversion of one membrane increment. */
    double adcConversionEnergy = 2.0 * units::pJ;

    /** NoC transfer of one digitized increment to its neuron unit. */
    double nocTransferEnergy = 50.0 * units::pJ;

    /** Membrane-potential SRAM read / write (large central arrays). */
    double sramReadEnergy = 75.0 * units::pJ;
    double sramWriteEnergy = 75.0 * units::pJ;

    /** Digital accumulate + threshold compare. */
    double addCompareEnergy = 0.3 * units::pJ;

    /** Crossbar read energy per active cell per evaluation. */
    double cellReadEnergy = 0.002 * units::pJ;

    /** Per-crossbar peripheral power while a layer evaluates. */
    double crossbarPeripheryPower = 1.0 * units::mW;

    int crossbarSize = 128;
};

/** Per-layer INXS result. */
struct InxsLayerEnergy
{
    int layerIndex = -1;
    std::string name;
    double energy = 0.0;          //!< J per inference (all timesteps)
    double adcEnergy = 0.0;
    double membraneEnergy = 0.0;  //!< SRAM RMW share
    long long neuronUpdates = 0;  //!< membrane updates performed
};

/** Whole-network INXS result. */
struct InxsEnergy
{
    std::vector<InxsLayerEnergy> layers;
    double totalEnergy = 0.0;
};

/** The INXS analytical model. */
class InxsModel
{
  public:
    explicit InxsModel(const InxsConfig &config = {});

    /**
     * Energy of running a mapped network for @p timesteps.
     * @param activity Per-layer input spike activity (same profile the
     *                 NEBULA SNN model uses).
     */
    InxsEnergy evaluate(const NetworkMapping &mapping,
                        const std::vector<double> &activity,
                        int timesteps) const;

    /** Single-layer accounting (exposed for tests). */
    InxsLayerEnergy evaluateLayer(const LayerMapping &layer,
                                  double input_activity,
                                  int timesteps) const;

    const InxsConfig &config() const { return config_; }

  private:
    InxsConfig config_;
};

} // namespace nebula

#endif // NEBULA_BASELINES_INXS_HPP
