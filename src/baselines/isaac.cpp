#include "baselines/isaac.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

IsaacConfig
IsaacConfig::original16bit()
{
    IsaacConfig cfg;
    cfg.weightBits = 16;
    cfg.inputBits = 16;
    // Full 8-bit ADC budget: ~58% of a ~41 mW IMA+share budget.
    cfg.imaActivePower = 41 * units::mW;
    cfg.adcShare = 0.58;
    cfg.dacShare = 0.08;
    cfg.crossbarShare = 0.06;
    cfg.digitalShare = 0.10;
    cfg.bufferShare = 0.18;
    return cfg;
}

IsaacModel::IsaacModel(const IsaacConfig &config) : config_(config)
{
    NEBULA_ASSERT(config_.weightBits % config_.bitsPerCell == 0,
                  "weight bits must be a multiple of cell bits");
}

long long
IsaacModel::crossbarsFor(const LayerMapping &layer) const
{
    const int m = config_.crossbarSize;
    if (layer.kind == LayerKind::DwConv && layer.rf <= m) {
        // Depthwise kernels read disjoint channels, so kernels sharing a
        // crossbar must be packed diagonally: each kernel occupies its
        // own Rf rows and `slices` adjacent columns.
        const long long by_rows = m / layer.rf;
        const long long by_cols = m / config_.weightSlices();
        const long long per_xbar = std::max<long long>(
            1, std::min(by_rows, by_cols));
        return (layer.kernels + per_xbar - 1) / per_xbar;
    }
    const long long row_chunks = (layer.rf + m - 1) / m;
    const long long columns =
        static_cast<long long>(layer.kernels) * config_.weightSlices();
    const long long col_chunks = (columns + m - 1) / m;
    return row_chunks * col_chunks;
}

IsaacLayerEnergy
IsaacModel::evaluateLayer(const LayerMapping &layer,
                          double input_activity) const
{
    const double alpha = std::clamp(input_activity, 0.0, 1.0);

    IsaacLayerEnergy out;
    out.layerIndex = layer.layerIndex;
    out.name = layer.name;
    out.crossbars = crossbarsFor(layer);
    out.imas = (out.crossbars + config_.crossbarsPerIma - 1) /
               config_.crossbarsPerIma;
    out.cycles = layer.positions * config_.inputBits;

    // Active power at crossbar granularity: each active crossbar brings
    // its ADC sweep, DAC rows and S&A share. The ADC/digital slice runs
    // every cycle regardless of utilization; the crossbar-read and DAC
    // shares scale with input activity.
    const double p_xbar =
        config_.imaActivePower / config_.crossbarsPerIma;
    const double scale =
        (1.0 - config_.dynamicFraction) + config_.dynamicFraction * alpha;
    const double power = static_cast<double>(out.crossbars) * p_xbar * scale;

    out.energy = power * static_cast<double>(out.cycles) *
                 config_.cycleTime;
    out.adcEnergy = out.energy * config_.adcShare /
                    (config_.adcShare + config_.dacShare +
                     config_.crossbarShare + config_.digitalShare +
                     config_.bufferShare);
    return out;
}

IsaacEnergy
IsaacModel::evaluate(const NetworkMapping &mapping,
                     double input_activity) const
{
    IsaacEnergy out;
    long long cycles = 0;
    for (const auto &layer : mapping.layers) {
        out.layers.push_back(evaluateLayer(layer, input_activity));
        out.totalEnergy += out.layers.back().energy;
        cycles += out.layers.back().cycles;
    }
    out.latency = static_cast<double>(cycles) * config_.cycleTime;
    return out;
}

} // namespace nebula
