/**
 * @file
 * Analytical energy model of ISAAC (Shafiee et al., ISCA 2016), the
 * memristive CNN accelerator NEBULA's ANN mode is compared against
 * (paper Sec. VI-A, Figs. 12/13a).
 *
 * ISAAC stores a W-bit weight as W/2 two-bit slices spread across
 * adjacent crossbar columns, feeds inputs one bit at a time (bit-serial,
 * W cycles) and digitizes EVERY column current with the per-crossbar
 * 8-bit 1.28 GS/s ADC every cycle, merging slices with shift-and-add.
 * The ADC sweeps and the multi-cycle occupancy of all components are the
 * dominant energy terms NEBULA's in-current aggregation avoids.
 *
 * The model is calibrated at IMA granularity from the ISAAC paper's
 * published budget (chip 65.8 W, 168 tiles, 12 IMAs of 8 128x128
 * crossbars per tile, ADCs ~58% of IMA power) rather than per-op
 * energies, then adapted to 4-bit computation exactly as the NEBULA
 * authors describe: 4 bit-serial cycles instead of 16, 2 weight slices
 * instead of 8, and ADC power scaled to the reduced resolution.
 */

#ifndef NEBULA_BASELINES_ISAAC_HPP
#define NEBULA_BASELINES_ISAAC_HPP

#include "arch/mapping.hpp"
#include "common/units.hpp"

namespace nebula {

/** ISAAC configuration (defaults: the 4-bit adapted variant). */
struct IsaacConfig
{
    int crossbarSize = 128;       //!< rows == cols
    int crossbarsPerIma = 8;
    int bitsPerCell = 2;
    int weightBits = 4;           //!< 16 in original ISAAC
    int inputBits = 4;            //!< bit-serial cycles per position
    double cycleTime = 100 * units::ns;

    /**
     * Active power of one IMA (crossbars + 8 ADCs + DACs + S&A + IR/OR)
     * plus its share of the tile (eDRAM, bus, sigmoid). ISAAC chip
     * budget: 65.8 W / (168 tiles x 12 IMAs) ~ 32.6 mW, plus ~8 mW tile
     * share. The 4-bit adaptation halves the ADC slice of that budget
     * (8-bit -> 4-bit conversions), leaving ~31 mW.
     */
    double imaActivePower = 45 * units::mW;

    /** Fraction of IMA power that is input-activity-dependent. */
    double dynamicFraction = 0.55;

    /** Component shares of the IMA budget (for breakdown reporting). */
    double adcShare = 0.45;   //!< after 4-bit scaling
    double dacShare = 0.10;
    double crossbarShare = 0.08;
    double digitalShare = 0.12; //!< shift-and-add, IR/OR
    double bufferShare = 0.25;  //!< eDRAM + bus share

    /** Original 16-bit ISAAC configuration. */
    static IsaacConfig original16bit();

    /** Weight slices (adjacent columns) per logical weight. */
    int weightSlices() const { return weightBits / bitsPerCell; }
};

/** Per-layer ISAAC energy result. */
struct IsaacLayerEnergy
{
    int layerIndex = -1;
    std::string name;
    double energy = 0.0;      //!< J per inference
    double adcEnergy = 0.0;   //!< ADC share of the above
    long long crossbars = 0;  //!< arrays holding this layer's weights
    long long imas = 0;
    long long cycles = 0;     //!< total evaluation cycles per inference
};

/** Whole-network ISAAC result. */
struct IsaacEnergy
{
    std::vector<IsaacLayerEnergy> layers;
    double totalEnergy = 0.0;
    double latency = 0.0;     //!< sequential layer execution (s)
};

/** The ISAAC analytical model. */
class IsaacModel
{
  public:
    explicit IsaacModel(const IsaacConfig &config = {});

    /**
     * Energy for a network mapped with NEBULA's LayerMapper (only the
     * layer geometry -- Rf, kernels, positions -- is used).
     *
     * @param input_activity Mean driven input level (same meaning as in
     *                       NEBULA's ANN model).
     */
    IsaacEnergy evaluate(const NetworkMapping &mapping,
                         double input_activity = 0.5) const;

    /** Single-layer accounting (exposed for tests). */
    IsaacLayerEnergy evaluateLayer(const LayerMapping &layer,
                                   double input_activity) const;

    /** Crossbars required to hold one layer's weights. */
    long long crossbarsFor(const LayerMapping &layer) const;

    const IsaacConfig &config() const { return config_; }

  private:
    IsaacConfig config_;
};

} // namespace nebula

#endif // NEBULA_BASELINES_ISAAC_HPP
