#include "circuit/adc.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

Adc::Adc(int bits, double fullScale) : bits_(bits), fullScale_(fullScale)
{
    NEBULA_ASSERT(bits_ >= 1 && bits_ <= 16, "unsupported ADC resolution");
    NEBULA_ASSERT(fullScale_ > 0.0, "ADC full scale must be positive");
}

void
Adc::setFullScale(double fullScale)
{
    NEBULA_ASSERT(fullScale > 0.0, "ADC full scale must be positive");
    fullScale_ = fullScale;
}

int
Adc::convert(double value)
{
    ++conversions_;
    const int hi = (1 << (bits_ - 1)) - 1;
    const int lo = -(1 << (bits_ - 1));
    const double normalized = value / fullScale_; // [-1, 1] nominal
    int code = static_cast<int>(std::lround(normalized * hi));
    return std::clamp(code, lo, hi);
}

std::vector<int>
Adc::convertAll(const std::vector<double> &values)
{
    std::vector<int> codes(values.size());
    for (size_t i = 0; i < values.size(); ++i)
        codes[i] = convert(values[i]);
    return codes;
}

double
Adc::reconstruct(int code) const
{
    const int hi = (1 << (bits_ - 1)) - 1;
    return fullScale_ * static_cast<double>(code) / hi;
}

} // namespace nebula
