/**
 * @file
 * The sparingly-used 4-bit ADC (paper Sec. IV-B3/IV-B5). NEBULA only
 * digitizes column currents when a kernel's receptive field overflows the
 * super-tile (Rf > 16M) and partial sums must cross the NoC. One ADC per
 * NC, time-multiplexed across at most 128 columns per 110 ns stage.
 */

#ifndef NEBULA_CIRCUIT_ADC_HPP
#define NEBULA_CIRCUIT_ADC_HPP

#include <cstdint>
#include <vector>

namespace nebula {

/** Successive-approximation style signed current-input ADC model. */
class Adc
{
  public:
    /**
     * @param bits       Resolution (paper: 4).
     * @param fullScale  Full-scale input magnitude; signed inputs span
     *                   [-fullScale, +fullScale].
     */
    Adc(int bits = 4, double fullScale = 1.0);

    /** Convert one sample to a signed code in [-(2^(b-1)), 2^(b-1)-1]. */
    int convert(double value);

    /** Convert a vector of samples (counts conversions). */
    std::vector<int> convertAll(const std::vector<double> &values);

    /** Reconstruct the analog value a code represents. */
    double reconstruct(int code) const;

    /** Number of conversions performed so far. */
    long long conversions() const { return conversions_; }

    /** Max conversions available in one pipeline stage (paper: 128). */
    int conversionsPerStage() const { return 128; }

    int bits() const { return bits_; }
    double fullScale() const { return fullScale_; }

    /** Update the full-scale range (per-layer ranging). */
    void setFullScale(double fullScale);

  private:
    int bits_;
    double fullScale_;
    long long conversions_ = 0;
};

} // namespace nebula

#endif // NEBULA_CIRCUIT_ADC_HPP
