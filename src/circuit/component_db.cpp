#include "circuit/component_db.hpp"

#include "common/logging.hpp"

namespace nebula {

const char *
modeName(Mode mode)
{
    return mode == Mode::ANN ? "ANN" : "SNN";
}

ComponentDb::ComponentDb()
{
    using namespace units;
    auto add = [&](const std::string &name, const std::string &scope,
                   long long count, double power_w, double area_mm2) {
        rows_.push_back({name, scope, count, power_w, area_mm2});
    };

    // Neural core level (per NC).
    add("eDRAM 32KB", "core", 1, 9.55 * mW, 0.02523);
    add("ADC 4-bit", "core", 1, 0.43 * mW, 0.005);
    add("ANN Super-Tile 128KB", "core", 1, 98.87 * mW, 0.4247);
    add("SNN Super-Tile 128KB", "core", 1, 8.46 * mW, 0.3822);
    add("ANN Input Buffer 16KB", "core", 1, 4.36 * mW, 0.06462);
    add("SNN Input Buffer 4KB", "core", 1, 1.08 * mW, 0.01615);
    add("ANN Output Buffer 2KB", "core", 1, 0.545 * mW, 0.00808);
    add("SNN Output Buffer 0.5KB", "core", 1, 0.136 * mW, 0.00202);

    // Super-tile internals (all instances within one NC).
    add("ANN DAC 16x128 0.75V 4-bit", "supertile", 16 * 128, 26.56 * mW,
        0.04848);
    add("ANN Crossbar 16x 128x128 4b", "supertile", 16, 72.16 * mW, 0.376);
    add("SNN Driver 16x128 0.25V 1-bit", "supertile", 16 * 128, 0.904 * mW,
        0.00606);
    add("SNN Crossbar 16x 128x128 4b", "supertile", 16, 7.4 * mW, 0.376);
    add("Neuron Unit 23x128", "supertile", 23 * 128, 0.151 * mW, 0.000189);

    // Digital accumulator unit.
    add("AU Adder 1024x 8-bit", "accumulator", 1024, 0.355 * mW, 0.00588);
    add("AU Register 1024x 16-bit", "accumulator", 1024, 0.545 * mW,
        0.00808);

    // Chip level.
    add("ANN Cores", "chip", 14, 1.593, 7.392);
    add("SNN Cores", "chip", 14 * 13, 3.578, 78.4);
    add("Accumulators", "chip", 14, 12.6 * mW, 0.937);
}

double
ComponentDb::superTilePower(Mode mode) const
{
    return mode == Mode::ANN ? 98.87 * units::mW : 8.46 * units::mW;
}

double
ComponentDb::inputBufferPower(Mode mode) const
{
    return mode == Mode::ANN ? 4.36 * units::mW : 1.08 * units::mW;
}

double
ComponentDb::outputBufferPower(Mode mode) const
{
    return mode == Mode::ANN ? 0.545 * units::mW : 0.136 * units::mW;
}

double
ComponentDb::corePower(Mode mode) const
{
    // Paper: ANN core total 113.8 mW, SNN core total 19.66 mW; these are
    // the sums of the constituent rows.
    return edramPower() + adcPower() + superTilePower(mode) +
           inputBufferPower(mode) + outputBufferPower(mode);
}

double
ComponentDb::crossbarPower(Mode mode) const
{
    return mode == Mode::ANN ? 72.16 * units::mW : 7.4 * units::mW;
}

Table
ComponentDb::toTable() const
{
    Table table("NEBULA component specifications (paper Table III)",
                {"component", "scope", "count", "power (mW)", "area (mm^2)"});
    for (const auto &row : rows_) {
        table.row()
            .add(row.name)
            .add(row.scope)
            .add(row.count)
            .add(toMw(row.power), 3)
            .add(row.area, 5);
    }
    table.row()
        .add("Core Total (ANN)")
        .add("core")
        .add(1LL)
        .add(toMw(corePower(Mode::ANN)), 3)
        .add(0.528, 5);
    table.row()
        .add("Core Total (SNN)")
        .add("core")
        .add(1LL)
        .add(toMw(corePower(Mode::SNN)), 3)
        .add(0.431, 5);
    table.row()
        .add("Chip Total")
        .add("chip")
        .add(1LL)
        .add(toMw(chipPower()), 1)
        .add(chipArea(), 3);
    return table;
}

const ComponentDb &
componentDb()
{
    static const ComponentDb db;
    return db;
}

} // namespace nebula
