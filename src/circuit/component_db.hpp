/**
 * @file
 * Component power/area database transcribed from the paper's Table III
 * ("Component Specifications for NEBULA"). Every architectural energy and
 * power number in the benchmark harness is derived from these values plus
 * activity counts, exactly as the paper's analytical model does.
 *
 * Power values are average operating power of the component when active;
 * energies are derived as power * cycle time unless a per-op energy is
 * listed. The pipeline stage (cycle) is 110 ns (Sec. IV-B5); digital
 * components run at 1.2 GHz within a stage.
 */

#ifndef NEBULA_CIRCUIT_COMPONENT_DB_HPP
#define NEBULA_CIRCUIT_COMPONENT_DB_HPP

#include <string>
#include <vector>

#include "common/table.hpp"
#include "common/units.hpp"

namespace nebula {

/** One row of Table III. */
struct ComponentSpec
{
    std::string name;      //!< component name as in the paper
    std::string scope;     //!< "core", "supertile", "accumulator", "chip"
    long long count = 1;   //!< instances within the scope
    double power = 0.0;    //!< active power of the whole row (W)
    double area = 0.0;     //!< area of the whole row (mm^2)

    /** Power of a single instance. */
    double unitPower() const { return power / count; }
};

/** Operating mode of a neural core. */
enum class Mode { ANN, SNN };

/** Short human-readable mode name. */
const char *modeName(Mode mode);

/**
 * The NEBULA component database (paper Table III) with derived
 * convenience accessors used by the energy model.
 */
class ComponentDb
{
  public:
    ComponentDb();

    /** Pipeline stage duration (s); 110 ns per Sec. IV-B5. */
    double cycleTime() const { return 110 * units::ns; }

    /** Digital component clock (Hz). */
    double digitalClock() const { return 1.2e9; }

    // -- Neural-core level (power in W, per single NC) -------------------

    double edramPower() const { return 9.55 * units::mW; }
    double adcPower() const { return 0.43 * units::mW; }
    double superTilePower(Mode mode) const;
    double inputBufferPower(Mode mode) const;
    double outputBufferPower(Mode mode) const;
    double corePower(Mode mode) const;

    // -- Super-tile internals (power of all instances in one NC) ---------

    /** ANN DAC drivers (16 x 128 @ 0.75 V, 4-bit). */
    double annDacPower() const { return 26.56 * units::mW; }
    /** SNN spike drivers (16 x 128 @ 0.25 V, 1-bit). */
    double snnDriverPower() const { return 0.904 * units::mW; }
    /** All 16 crossbars of one NC. */
    double crossbarPower(Mode mode) const;
    /** All 23 x 128 neuron units of one NC. */
    double neuronUnitPower() const { return 0.151 * units::mW; }

    // -- Accumulator unit -------------------------------------------------

    double accumulatorAdderPower() const { return 0.355 * units::mW; }
    double accumulatorRegisterPower() const { return 0.545 * units::mW; }
    double accumulatorPower() const { return 0.9 * units::mW; }

    // -- Chip level --------------------------------------------------------

    int annCoreCount() const { return 14; }
    int snnCoreCount() const { return 14 * 13; }
    int accumulatorCount() const { return 14; }
    double chipPower() const { return 5.2 * units::watt; }
    double chipArea() const { return 86.729; } // mm^2

    // -- Geometry ----------------------------------------------------------

    /** Atomic crossbar dimension M (rows == cols == 128). */
    int atomicSize() const { return 128; }
    /** Atomic crossbars per NC (2x2 tiles of 2x2 ACs). */
    int crossbarsPerCore() const { return 16; }
    /** Largest receptive field a super-tile can aggregate (16M). */
    int maxInCoreReceptiveField() const { return 16 * atomicSize(); }
    /** Weight / activation precision (bits). */
    int precisionBits() const { return 4; }
    /** NU rows per NC (16 at H0 + 4 at H1 + 2 at H2 + spare = 23). */
    int neuronUnitRows() const { return 23; }

    /** All Table III rows (for the Table III regeneration bench). */
    const std::vector<ComponentSpec> &rows() const { return rows_; }

    /** Render the database in the shape of the paper's Table III. */
    Table toTable() const;

  private:
    std::vector<ComponentSpec> rows_;
};

/** Singleton accessor (the DB is immutable). */
const ComponentDb &componentDb();

} // namespace nebula

#endif // NEBULA_CIRCUIT_COMPONENT_DB_HPP
