#include "circuit/crossbar.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

CrossbarArray::CrossbarArray(const CrossbarParams &params)
    : p_(params), cell_(params.mtj)
{
    NEBULA_ASSERT(p_.rows > 0 && p_.cols > 0, "bad crossbar geometry");
    NEBULA_ASSERT(p_.levels >= 2, "need at least 2 conductance levels");
    gMid_ = 0.5 * (cell_.conductanceP() + cell_.conductanceAp());
    gHalfSwing_ = 0.5 * (cell_.conductanceP() - cell_.conductanceAp());
    // cols + 1: the extra column is the shared reference column at G_mid.
    conductance_.assign(static_cast<size_t>(p_.rows) * (p_.cols + 1), gMid_);
}

void
CrossbarArray::programWeights(const std::vector<float> &weights)
{
    NEBULA_ASSERT(weights.size() ==
                      static_cast<size_t>(p_.rows) * p_.cols,
                  "weight matrix size mismatch: got ", weights.size(),
                  " want ", p_.rows * p_.cols);

    VariabilityModel variation(p_.variationSigma, p_.variationSeed);
    const int top = p_.levels - 1;

    for (int i = 0; i < p_.rows; ++i) {
        for (int j = 0; j < p_.cols; ++j) {
            double w = std::clamp<double>(
                weights[static_cast<size_t>(i) * p_.cols + j], -1.0, 1.0);
            // Quantize to the discrete DW pinning states.
            const int level =
                static_cast<int>(std::lround((w + 1.0) / 2.0 * top));
            const double wq = 2.0 * level / top - 1.0;
            double g = gMid_ + wq * gHalfSwing_;
            if (p_.variationSigma > 0.0)
                g *= variation.sampleFactor();
            g = std::clamp(g, 0.25 * cell_.conductanceAp(),
                           2.0 * cell_.conductanceP());
            conductance_[static_cast<size_t>(i) * (p_.cols + 1) + j] = g;
        }
        // Reference column stays at G_mid (possibly with variation too).
        double gref = gMid_;
        if (p_.variationSigma > 0.0)
            gref *= variation.sampleFactor();
        conductance_[static_cast<size_t>(i) * (p_.cols + 1) + p_.cols] = gref;
    }
}

double
CrossbarArray::conductanceAt(int row, int col) const
{
    NEBULA_ASSERT(row >= 0 && row < p_.rows && col >= 0 && col <= p_.cols,
                  "conductanceAt out of range");
    return conductance_[static_cast<size_t>(row) * (p_.cols + 1) + col];
}

double
CrossbarArray::weightAt(int row, int col) const
{
    return (conductanceAt(row, col) - gMid_) / gHalfSwing_;
}

double
CrossbarArray::currentScale() const
{
    return p_.readVoltage * gHalfSwing_;
}

double
CrossbarArray::maxColumnCurrent() const
{
    return p_.readVoltage * cell_.conductanceP() * p_.rows;
}

CrossbarEval
CrossbarArray::evaluateIdeal(const std::vector<double> &inputs,
                             double duration) const
{
    NEBULA_ASSERT(inputs.size() == static_cast<size_t>(p_.rows),
                  "input vector size mismatch");

    CrossbarEval eval;
    eval.currents.assign(p_.cols, 0.0);

    double ref_current = 0.0;
    double power = 0.0;
    for (int i = 0; i < p_.rows; ++i) {
        const double v = std::clamp(inputs[i], 0.0, 1.0) * p_.readVoltage;
        if (v == 0.0)
            continue;
        const double *row =
            &conductance_[static_cast<size_t>(i) * (p_.cols + 1)];
        double row_g = 0.0;
        for (int j = 0; j < p_.cols; ++j) {
            eval.currents[j] += v * row[j];
            row_g += row[j];
        }
        ref_current += v * row[p_.cols];
        row_g += row[p_.cols];
        power += v * v * row_g;
    }
    for (auto &current : eval.currents)
        current -= ref_current;
    eval.energy = power * duration;
    return eval;
}

CrossbarEval
CrossbarArray::evaluateParasitic(const std::vector<double> &inputs,
                                 double duration, int max_iters,
                                 double tolerance) const
{
    NEBULA_ASSERT(inputs.size() == static_cast<size_t>(p_.rows),
                  "input vector size mismatch");

    const int rows = p_.rows;
    const int cols = p_.cols + 1; // includes the reference column
    const double gw = 1.0 / p_.wireResistance;

    // Node voltages: vr (bit-line side) and vc (source-line side).
    std::vector<double> vr(static_cast<size_t>(rows) * cols, 0.0);
    std::vector<double> vc(static_cast<size_t>(rows) * cols, 0.0);
    std::vector<double> source(rows);
    for (int i = 0; i < rows; ++i)
        source[i] = std::clamp(inputs[i], 0.0, 1.0) * p_.readVoltage;

    auto g = [&](int i, int j) {
        return conductance_[static_cast<size_t>(i) * cols + j];
    };
    auto idx = [&](int i, int j) {
        return static_cast<size_t>(i) * cols + j;
    };

    // Initial guess: ideal voltages (sources on rows, ground on columns).
    for (int i = 0; i < rows; ++i)
        for (int j = 0; j < cols; ++j)
            vr[idx(i, j)] = source[i];

    double delta = 0.0;
    for (int iter = 0; iter < max_iters; ++iter) {
        delta = 0.0;
        for (int i = 0; i < rows; ++i) {
            for (int j = 0; j < cols; ++j) {
                // Row node (i, j): neighbors are the driver (j == 0),
                // adjacent row nodes, and the cell to the column node.
                double num = g(i, j) * vc[idx(i, j)];
                double den = g(i, j);
                if (j == 0) {
                    num += gw * source[i];
                    den += gw;
                } else {
                    num += gw * vr[idx(i, j - 1)];
                    den += gw;
                }
                if (j + 1 < cols) {
                    num += gw * vr[idx(i, j + 1)];
                    den += gw;
                }
                const double nv = num / den;
                delta = std::max(delta, std::abs(nv - vr[idx(i, j)]));
                vr[idx(i, j)] = nv;

                // Column node (i, j): neighbors are adjacent column nodes
                // and ground (the spin neuron's magneto-metallic input)
                // at the bottom (i == rows - 1).
                double cnum = g(i, j) * vr[idx(i, j)];
                double cden = g(i, j);
                if (i > 0) {
                    cnum += gw * vc[idx(i - 1, j)];
                    cden += gw;
                }
                if (i + 1 < rows) {
                    cnum += gw * vc[idx(i + 1, j)];
                    cden += gw;
                } else {
                    // bottom node tied to ground through one wire segment
                    cden += gw;
                }
                const double ncv = cnum / cden;
                delta = std::max(delta, std::abs(ncv - vc[idx(i, j)]));
                vc[idx(i, j)] = ncv;
            }
        }
        if (delta < tolerance)
            break;
    }

    CrossbarEval eval;
    eval.currents.assign(p_.cols, 0.0);
    // Column output current = bottom node voltage / wire segment to gnd.
    const double ref = vc[idx(rows - 1, p_.cols)] * gw;
    for (int j = 0; j < p_.cols; ++j)
        eval.currents[j] = vc[idx(rows - 1, j)] * gw - ref;

    // Power delivered by the row drivers.
    double power = 0.0;
    for (int i = 0; i < rows; ++i)
        power += source[i] * (source[i] - vr[idx(i, 0)]) * gw;
    eval.energy = power * duration;
    return eval;
}

} // namespace nebula
