#include "circuit/crossbar.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"
#include "common/simd.hpp"
#include "device/synapse_device.hpp"

namespace nebula {

namespace {

/**
 * Accumulate four crossbar rows into the per-column current totals.
 * Each column's partial sum stays in a register across the four adds
 * instead of round-tripping through memory once per row, and the adds
 * still happen in ascending row order per column -- bit-identical to
 * four passes of accumulateRow().
 */
NEBULA_TARGET_CLONES void
accumulateRows4(double *out, int cols, double v, const double *r0,
                const double *r1, const double *r2, const double *r3)
{
    for (int j = 0; j < cols; ++j) {
        double s = out[j];
        s += v * r0[j];
        s += v * r1[j];
        s += v * r2[j];
        s += v * r3[j];
        out[j] = s;
    }
}

/** Accumulate one crossbar row into the per-column current totals. */
NEBULA_TARGET_CLONES void
accumulateRow(double *out, int cols, double v, const double *row)
{
    for (int j = 0; j < cols; ++j)
        out[j] += v * row[j];
}

/**
 * Register-tiled single-window kernel: one tile of up to 16 column
 * accumulators lives in registers across the whole active-row walk, so
 * the inner loop issues one conductance load per 4 columns instead of a
 * load+store round-trip on the output row per crossbar row. Each
 * column's partial sum still grows in ascending active-row order --
 * bit-identical to a row-major accumulateRow walk -- because FP
 * addition order per output element is unchanged; only where the
 * partial lives (register vs memory) differs.
 *
 * @param dense   Dense conductance cache, row-major with @p stride.
 * @param active  Ascending row indices with nonzero drive voltage.
 * @param va      Drive voltage per active row (parallel to @p active).
 * @param out     Output columns [j0, j0+width); width <= 16.
 */
NEBULA_TARGET_CLONES void
soloColsTile16(const double *dense, size_t stride, const int *active,
               int n_active, const double *va, int j0, double *out)
{
    // Two 8-wide accumulator streams rather than one flat 16-element
    // tile: this is the loop shape GCC's vectorizer reliably maps onto
    // one full-width register per stream across every clone ISA.
    double acc0[8] = {};
    double acc1[8] = {};
    for (int a = 0; a < n_active; ++a) {
        const double v = va[a];
        const double *g =
            dense + static_cast<size_t>(active[a]) * stride + j0;
        for (int t = 0; t < 8; ++t) {
            acc0[t] += v * g[t];
            acc1[t] += v * g[8 + t];
        }
    }
    for (int t = 0; t < 8; ++t) {
        out[j0 + t] = acc0[t];
        out[j0 + 8 + t] = acc1[t];
    }
}

/** Remainder-width variant of soloColsTile16 (width < 16). */
NEBULA_TARGET_CLONES void
soloColsTileN(const double *dense, size_t stride, const int *active,
              int n_active, const double *va, int j0, int width,
              double *out)
{
    double acc[16] = {};
    for (int a = 0; a < n_active; ++a) {
        const double v = va[a];
        const double *g =
            dense + static_cast<size_t>(active[a]) * stride + j0;
        for (int t = 0; t < width; ++t)
            acc[t] += v * g[t];
    }
    for (int t = 0; t < width; ++t)
        out[j0 + t] = acc[t];
}

/**
 * Register-tiled four-window kernel (the GEMM-style micro-kernel of the
 * batched evaluation): a 4-window x 8-column accumulator tile is held
 * in registers across the whole row walk, so each conductance element
 * is loaded once per tile and feeds four multiply-add streams with no
 * output traffic in the inner loop. Per (window, column) the partial
 * sum still grows in ascending active-row order, and rows every window
 * leaves dark are skipped -- a zero drive voltage only ever contributes
 * an exact +0.0 to the non-negative partials -- so every window remains
 * bit-identical to a standalone accumulateRow walk.
 *
 * @param active Ascending row indices where at least one window drives.
 * @param va     Packed per-active-row voltages: va[4*a + w] for window w.
 * @param out    Window 0's output columns [j0, j0+width); windows 1..3
 *               follow at +out_stride each. width <= 8.
 */
NEBULA_TARGET_CLONES void
windowColsTile4x8(const double *dense, size_t stride, const int *active,
                  int n_active, const double *va, int j0, double *out,
                  size_t out_stride)
{
    double acc[4][8] = {};
    for (int a = 0; a < n_active; ++a) {
        const double v0 = va[4 * a + 0];
        const double v1 = va[4 * a + 1];
        const double v2 = va[4 * a + 2];
        const double v3 = va[4 * a + 3];
        const double *g =
            dense + static_cast<size_t>(active[a]) * stride + j0;
        for (int t = 0; t < 8; ++t) {
            const double gg = g[t];
            acc[0][t] += v0 * gg;
            acc[1][t] += v1 * gg;
            acc[2][t] += v2 * gg;
            acc[3][t] += v3 * gg;
        }
    }
    for (int w = 0; w < 4; ++w)
        for (int t = 0; t < 8; ++t)
            out[static_cast<size_t>(w) * out_stride + j0 + t] =
                acc[w][t];
}

/** Remainder-width variant of windowColsTile4x8 (width < 8). */
NEBULA_TARGET_CLONES void
windowColsTile4xN(const double *dense, size_t stride, const int *active,
                  int n_active, const double *va, int j0, int width,
                  double *out, size_t out_stride)
{
    double acc[4][8] = {};
    for (int a = 0; a < n_active; ++a) {
        const double v0 = va[4 * a + 0];
        const double v1 = va[4 * a + 1];
        const double v2 = va[4 * a + 2];
        const double v3 = va[4 * a + 3];
        const double *g =
            dense + static_cast<size_t>(active[a]) * stride + j0;
        for (int t = 0; t < width; ++t) {
            const double gg = g[t];
            acc[0][t] += v0 * gg;
            acc[1][t] += v1 * gg;
            acc[2][t] += v2 * gg;
            acc[3][t] += v3 * gg;
        }
    }
    for (int w = 0; w < 4; ++w)
        for (int t = 0; t < width; ++t)
            out[static_cast<size_t>(w) * out_stride + j0 + t] =
                acc[w][t];
}

/** Energy of one full-drive program pulse (paper device parameters). */
double
programPulseEnergy()
{
    static const double energy = SynapseDevice().pulseEnergy();
    return energy;
}

} // namespace

CrossbarArray::CrossbarArray(const CrossbarParams &params)
    : p_(params), cell_(params.mtj),
      updateRng_(params.variationSeed ^ 0x757064ull)
{
    NEBULA_ASSERT(p_.rows > 0 && p_.cols > 0, "bad crossbar geometry");
    NEBULA_ASSERT(p_.spareCols >= 0, "negative spare column count");
    NEBULA_ASSERT(p_.levels >= 2, "need at least 2 conductance levels");
    gMid_ = 0.5 * (cell_.conductanceP() + cell_.conductanceAp());
    gHalfSwing_ = 0.5 * (cell_.conductanceP() - cell_.conductanceAp());
    // +1: the extra column is the shared reference column at G_mid.
    // With abft a second extra column holds the row checksum; every
    // cell at G_mid encodes zero weight, whose row-sum checksum is
    // also G_mid, so the blank array satisfies the identity.
    conductance_.assign(static_cast<size_t>(p_.rows) * physicalStride(),
                        gMid_);
    remap_.resize(static_cast<size_t>(p_.cols));
    std::iota(remap_.begin(), remap_.end(), 0);
}

double &
CrossbarArray::cellAt(int row, int phys_col)
{
    return conductance_[static_cast<size_t>(row) * physicalStride() +
                        phys_col];
}

double
CrossbarArray::cellAt(int row, int phys_col) const
{
    return conductance_[static_cast<size_t>(row) * physicalStride() +
                        phys_col];
}

void
CrossbarArray::injectFaults(FaultMap faults)
{
    NEBULA_ASSERT(faults.rows() == p_.rows &&
                      faults.cols() == physicalDataCols(),
                  "fault map geometry mismatch: got ", faults.rows(), "x",
                  faults.cols(), " want ", p_.rows, "x", physicalDataCols());
    faults_ = std::move(faults);
    // Open lines change what evaluation reads even without reprogramming.
    invalidateCache();
}

const CellFault &
CrossbarArray::faultAt(int row, int phys_col) const
{
    static const CellFault kNone{};
    return faults_.empty() ? kNone : faults_.cell(row, phys_col);
}

bool
CrossbarArray::openAt(int row, int phys_col) const
{
    return !faults_.empty() &&
           (faults_.rowOpen(row) || faults_.colOpen(phys_col));
}

void
CrossbarArray::planRepair(const ProgrammingConfig &config,
                          ProgramReport &report)
{
    std::iota(remap_.begin(), remap_.end(), 0);
    if (!config.repair.enabled || p_.spareCols <= 0 || faults_.empty())
        return;

    // Post-manufacture test knows the defect map; rank physical columns
    // by the defects the selected programming flow cannot correct.
    const int phys = physicalDataCols();
    std::vector<int> defects(static_cast<size_t>(phys));
    for (int p = 0; p < phys; ++p)
        defects[static_cast<size_t>(p)] =
            faults_.columnDefectCount(p, config.writeVerify.enabled);

    std::vector<char> spare_free(static_cast<size_t>(phys), 0);
    for (int s = p_.cols; s < phys; ++s)
        spare_free[static_cast<size_t>(s)] = 1;

    // Worst logical columns pick their spare first.
    std::vector<int> order(static_cast<size_t>(p_.cols));
    std::iota(order.begin(), order.end(), 0);
    std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
        return defects[static_cast<size_t>(a)] >
               defects[static_cast<size_t>(b)];
    });

    for (int j : order) {
        const int victim = defects[static_cast<size_t>(j)];
        if (victim <= config.repair.faultThreshold)
            break; // sorted: nothing worse follows
        int best = -1;
        for (int s = p_.cols; s < phys; ++s) {
            if (!spare_free[static_cast<size_t>(s)])
                continue;
            if (best < 0 || defects[static_cast<size_t>(s)] <
                                defects[static_cast<size_t>(best)])
                best = s;
        }
        // A spare is only worth taking when strictly healthier.
        if (best >= 0 && defects[static_cast<size_t>(best)] < victim) {
            spare_free[static_cast<size_t>(best)] = 0;
            remap_[static_cast<size_t>(j)] = best;
            ++report.repairedColumns;
        } else {
            ++report.irreparableColumns;
        }
    }
}

void
CrossbarArray::programCell(int row, int phys_col, int level,
                           const ProgrammingConfig &config,
                           const GaussianVariabilityModel &noise, Rng &rng,
                           ProgramReport &report)
{
    const int top = p_.levels - 1;
    const double step = 2.0 * gHalfSwing_ / top;
    const double g_lo = 0.25 * cell_.conductanceAp();
    const double g_hi = 2.0 * cell_.conductanceP();
    const double g_target = gMid_ + (2.0 * level / top - 1.0) * gHalfSwing_;
    ++report.cells;

    if (openAt(row, phys_col)) {
        // Unwritable either way; closed loop detects the open line on
        // the first verify read and gives up.
        ++report.pulses;
        report.programEnergy += programPulseEnergy();
        if (config.writeVerify.enabled)
            ++report.failedCells;
        cellAt(row, phys_col) = 0.0;
        return;
    }

    const CellFault fault = faultAt(row, phys_col);
    const double stuck_value = fault.kind == FaultKind::StuckHigh
                                   ? cell_.conductanceP()
                                   : cell_.conductanceAp();

    if (!config.writeVerify.enabled) {
        // Open loop: one pulse, take whatever the device lands on.
        ++report.pulses;
        report.programEnergy += programPulseEnergy();
        double g;
        if (fault.stuck()) {
            g = stuck_value;
        } else {
            int level_eff = level;
            if (fault.kind == FaultKind::Drift)
                level_eff = std::clamp(level + fault.drift, 0, top);
            g = gMid_ + (2.0 * level_eff / top - 1.0) * gHalfSwing_;
            if (p_.variationSigma > 0.0)
                g *= noise.programFactor(rng);
            if (fault.kind == FaultKind::Decay)
                g = gMid_ + (g - gMid_) * fault.decay;
            g = std::clamp(g, g_lo, g_hi);
        }
        cellAt(row, phys_col) = g;
        return;
    }

    // Closed loop: program -> sense -> trim. The controller corrects the
    // aim point by the sensed error, so systematic offsets (pinning
    // drift) cancel; per-pulse write noise shrinks as 1/pulse (trim
    // pulses displace the wall less). Retry pulses give a softly pinned
    // wall a depin chance; hard stuck cells and opens never converge.
    const WriteVerifyConfig &wv = config.writeVerify;
    const double tolerance = wv.toleranceLevels * step;
    double aim = g_target;
    double landed = stuck_value;
    bool freed = !fault.stuck();
    bool ok = false;

    for (int pulse = 1; pulse <= wv.maxPulses; ++pulse) {
        ++report.pulses;
        report.programEnergy += programPulseEnergy();
        if (!freed && pulse > 1 && !fault.hard &&
            rng.bernoulli(wv.depinProbability))
            freed = true;
        if (!freed) {
            landed = stuck_value;
        } else {
            const double factor =
                1.0 + (noise.programFactor(rng) - 1.0) / pulse;
            landed = aim * factor;
            if (fault.kind == FaultKind::Drift)
                landed += fault.drift * step;
            landed = std::clamp(landed, g_lo, g_hi);
        }
        if (std::abs(landed - g_target) <= tolerance) {
            ok = true;
            break;
        }
        aim = std::clamp(aim + (g_target - landed), g_lo, g_hi);
    }
    if (!ok)
        ++report.failedCells;

    // Retention decay acts after programming; verification cannot see it.
    if (fault.kind == FaultKind::Decay)
        landed = gMid_ + (landed - gMid_) * fault.decay;
    cellAt(row, phys_col) = landed;
}

bool
CrossbarArray::updateCell(int row, int phys_col, int current, int target,
                          const ProgrammingConfig &config,
                          const GaussianVariabilityModel &noise,
                          UpdateReport &report)
{
    const int top = p_.levels - 1;
    const double step = 2.0 * gHalfSwing_ / top;
    const double g_lo = 0.25 * cell_.conductanceAp();
    const double g_hi = 2.0 * cell_.conductanceP();
    const double g_target = gMid_ + (2.0 * target / top - 1.0) * gHalfSwing_;

    if (openAt(row, phys_col)) {
        // The line is broken: the pulse is spent, nothing moves.
        ++report.pulses;
        report.updateEnergy += programPulseEnergy();
        ++report.blockedCells;
        return false;
    }
    const CellFault fault = faultAt(row, phys_col);
    if (fault.stuck()) {
        // The single-level update pulse is gentler than the full program
        // waveform, so a pinned wall stays pinned (no depin escalation
        // on the incremental path; program() is the repair tool).
        ++report.pulses;
        report.updateEnergy += programPulseEnergy();
        ++report.blockedCells;
        return false;
    }

    const int moved = std::abs(target - current);
    if (moved == 0)
        return false;

    if (!config.writeVerify.enabled) {
        // Open loop: one pulse per level step, and the final pulse lands
        // exactly as programCell()'s open-loop write of the same target
        // level would -- drift offset, variation, decay, clamp in the
        // same order, so the differential tests can pin updateCells() to
        // a whole-array re-program().
        report.pulses += moved;
        report.updateEnergy += moved * programPulseEnergy();
        int level_eff = target;
        if (fault.kind == FaultKind::Drift)
            level_eff = std::clamp(target + fault.drift, 0, top);
        double g = gMid_ + (2.0 * level_eff / top - 1.0) * gHalfSwing_;
        if (p_.variationSigma > 0.0)
            g *= noise.programFactor(updateRng_);
        if (fault.kind == FaultKind::Decay)
            g = gMid_ + (g - gMid_) * fault.decay;
        g = std::clamp(g, g_lo, g_hi);
        cellAt(row, phys_col) = g;
        return true;
    }

    // Closed loop: the traversal steps are open pulses, the arrival
    // pulse starts programCell()'s program -> sense -> trim controller
    // (same aim correction, same 1/pulse noise shrink, same budget).
    report.pulses += moved - 1;
    report.updateEnergy += (moved - 1) * programPulseEnergy();

    const WriteVerifyConfig &wv = config.writeVerify;
    const double tolerance = wv.toleranceLevels * step;
    double aim = g_target;
    double landed = g_target;
    bool ok = false;
    for (int pulse = 1; pulse <= wv.maxPulses; ++pulse) {
        ++report.pulses;
        report.updateEnergy += programPulseEnergy();
        const double factor =
            1.0 + (noise.programFactor(updateRng_) - 1.0) / pulse;
        landed = aim * factor;
        if (fault.kind == FaultKind::Drift)
            landed += fault.drift * step;
        landed = std::clamp(landed, g_lo, g_hi);
        if (std::abs(landed - g_target) <= tolerance) {
            ok = true;
            break;
        }
        aim = std::clamp(aim + (g_target - landed), g_lo, g_hi);
    }
    if (!ok)
        ++report.failedCells;

    // Retention decay acts after programming; verification cannot see it.
    if (fault.kind == FaultKind::Decay)
        landed = gMid_ + (landed - gMid_) * fault.decay;
    cellAt(row, phys_col) = landed;
    return true;
}

UpdateReport
CrossbarArray::updateCells(const std::vector<CellUpdate> &updates,
                           const ProgrammingConfig &config)
{
    UpdateReport report;
    const GaussianVariabilityModel noise(p_.variationSigma);
    const int top = p_.levels - 1;
    bool touched = false;
    // Per-row sum of intended level movement, for the checksum column.
    std::vector<long long> row_delta;
    if (p_.abft)
        row_delta.assign(static_cast<size_t>(p_.rows), 0);
    for (const CellUpdate &u : updates) {
        NEBULA_ASSERT(u.row >= 0 && u.row < p_.rows && u.col >= 0 &&
                          u.col < p_.cols,
                      "cell update out of range: (", u.row, ", ", u.col,
                      ") on ", p_.rows, "x", p_.cols);
        if (u.delta == 0)
            continue;
        ++report.cells;
        const int current = levelAt(u.row, u.col);
        int target = current + u.delta;
        if (target < 0 || target > top) {
            target = std::clamp(target, 0, top);
            ++report.clampedCells;
        }
        report.levelSteps += std::abs(target - current);
        if (p_.abft)
            row_delta[static_cast<size_t>(u.row)] += target - current;
        if (updateCell(u.row, remap_[static_cast<size_t>(u.col)], current,
                       target, config, noise, report))
            touched = true;
    }
    if (p_.abft) {
        // Keep the checksum column tracking the *intended* state: one
        // exact verification write per touched row, billed like any
        // other pulse. A stuck/open data cell that swallowed its update
        // leaves the array deviating from intent, so the divergence the
        // checksum now reports is a true corruption, not a bookkeeping
        // artifact.
        const int chk = physicalDataCols() + 1;
        for (int i = 0; i < p_.rows; ++i) {
            const long long d = row_delta[static_cast<size_t>(i)];
            if (d == 0)
                continue;
            ++report.pulses;
            report.updateEnergy += programPulseEnergy();
            cellAt(i, chk) +=
                (2.0 * d / top / p_.cols) * gHalfSwing_;
            touched = true;
        }
    }
    if (touched)
        invalidateCache();
    return report;
}

UpdateReport
CrossbarArray::applyDelta(int row, int col, int delta,
                          const ProgrammingConfig &config)
{
    return updateCells({CellUpdate{row, col, delta}}, config);
}

int
CrossbarArray::levelAt(int row, int col) const
{
    const double norm = (conductanceAt(row, col) - gMid_) / gHalfSwing_;
    const int top = p_.levels - 1;
    const int level = static_cast<int>(std::lround((norm + 1.0) / 2.0 * top));
    return std::clamp(level, 0, top);
}

ProgramReport
CrossbarArray::program(const std::vector<float> &weights,
                       const ProgrammingConfig &config)
{
    NEBULA_ASSERT(weights.size() ==
                      static_cast<size_t>(p_.rows) * p_.cols,
                  "weight matrix size mismatch: got ", weights.size(),
                  " want ", p_.rows * p_.cols);

    ProgramReport report;
    invalidateCache();
    planRepair(config, report);

    const GaussianVariabilityModel noise(p_.variationSigma);
    Rng rng(p_.variationSeed);
    const int top = p_.levels - 1;
    const int ref = physicalDataCols();

    for (int i = 0; i < p_.rows; ++i) {
        double wq_sum = 0.0;
        for (int j = 0; j < p_.cols; ++j) {
            const double w = std::clamp<double>(
                weights[static_cast<size_t>(i) * p_.cols + j], -1.0, 1.0);
            // Quantize to the discrete DW pinning states.
            const int level =
                static_cast<int>(std::lround((w + 1.0) / 2.0 * top));
            wq_sum += 2.0 * level / top - 1.0;
            programCell(i, remap_[static_cast<size_t>(j)], level, config,
                        noise, rng, report);
        }
        // Reference column stays at G_mid (possibly with variation too).
        double gref = gMid_;
        if (p_.variationSigma > 0.0)
            gref *= noise.programFactor(rng);
        if (!faults_.empty() && faults_.rowOpen(i))
            gref = 0.0;
        cellAt(i, ref) = gref;
        if (p_.abft) {
            // Checksum column: the row-sum of the intended quantized
            // weights, scaled into the cell swing so it can be sensed
            // as one ordinary column current. Written through the
            // closed verification loop with an uncapped pulse budget
            // (one column per array can afford it), so it lands on
            // target exactly -- detection compares the noisy data
            // columns against this trusted expectation. A broken row
            // line is driven from the dedicated verification driver,
            // so the checksum cell is NOT zeroed with the data cells:
            // the dead row then reads 0 on the data side but keeps a
            // nonzero expectation, which is exactly the violation.
            ++report.pulses;
            report.programEnergy += programPulseEnergy();
            cellAt(i, ref + 1) =
                gMid_ + (wq_sum / p_.cols) * gHalfSwing_;
        }
    }
    return report;
}

void
CrossbarArray::programWeights(const std::vector<float> &weights)
{
    program(weights, ProgrammingConfig{});
}

int
CrossbarArray::physicalColumn(int col) const
{
    NEBULA_ASSERT(col >= 0 && col < p_.cols, "column out of range");
    return remap_[static_cast<size_t>(col)];
}

int
CrossbarArray::sparesUsed() const
{
    int used = 0;
    for (int p : remap_)
        used += p >= p_.cols;
    return used;
}

double
CrossbarArray::conductanceAt(int row, int col) const
{
    NEBULA_ASSERT(row >= 0 && row < p_.rows && col >= 0 && col <= p_.cols,
                  "conductanceAt out of range");
    const int phys = col == p_.cols ? physicalDataCols()
                                    : remap_[static_cast<size_t>(col)];
    return cellAt(row, phys);
}

double
CrossbarArray::weightAt(int row, int col) const
{
    return (conductanceAt(row, col) - gMid_) / gHalfSwing_;
}

double
CrossbarArray::physicalConductanceAt(int row, int phys_col) const
{
    NEBULA_ASSERT(row >= 0 && row < p_.rows && phys_col >= 0 &&
                      phys_col < physicalStride(),
                  "physicalConductanceAt out of range");
    return cellAt(row, phys_col);
}

double
CrossbarArray::currentScale() const
{
    return p_.readVoltage * gHalfSwing_;
}

double
CrossbarArray::maxColumnCurrent() const
{
    return p_.readVoltage * cell_.conductanceP() * p_.rows;
}

const CrossbarArray::EvalCache &
CrossbarArray::evalCache() const
{
    EvalCache &c = cache_;
    if (c.valid)
        return c;

    const int rows = p_.rows;
    const int cols = p_.cols;
    const int ref = physicalDataCols();
    c.dense.resize(static_cast<size_t>(rows) * cols);
    c.refCol.resize(static_cast<size_t>(rows));
    c.rowGsum.resize(static_cast<size_t>(rows));
    for (int i = 0; i < rows; ++i) {
        const double *row =
            &conductance_[static_cast<size_t>(i) * physicalStride()];
        double *dense = &c.dense[static_cast<size_t>(i) * cols];
        // Summation order (logical columns, then reference) matches the
        // scalar loop so the cached energy term is bit-identical.
        double row_g = 0.0;
        for (int j = 0; j < cols; ++j) {
            const double g = row[remap_[static_cast<size_t>(j)]];
            dense[j] = g;
            row_g += g;
        }
        c.refCol[static_cast<size_t>(i)] = row[ref];
        c.rowGsum[static_cast<size_t>(i)] = row_g + row[ref];
    }
    if (p_.abft) {
        // Checksum column view, and its read dissipation folded into
        // the per-row conductance totals: the column is sensed on
        // every evaluation, so its ohmic energy is billed with the
        // data and reference columns.
        c.chkCol.resize(static_cast<size_t>(rows));
        for (int i = 0; i < rows; ++i) {
            const double g_chk =
                conductance_[static_cast<size_t>(i) * physicalStride() +
                             ref + 1];
            c.chkCol[static_cast<size_t>(i)] = g_chk;
            c.rowGsum[static_cast<size_t>(i)] += g_chk;
        }
    }

    c.colOpen.assign(static_cast<size_t>(cols), 0);
    c.anyColOpen = false;
    if (!faults_.empty()) {
        for (int j = 0; j < cols; ++j) {
            if (faults_.colOpen(remap_[static_cast<size_t>(j)])) {
                c.colOpen[static_cast<size_t>(j)] = 1;
                c.anyColOpen = true;
            }
        }
    }
    c.valid = true;
    return c;
}

CrossbarEval
CrossbarArray::evaluateIdeal(const std::vector<double> &inputs,
                             double duration) const
{
    NEBULA_ASSERT(inputs.size() == static_cast<size_t>(p_.rows),
                  "input vector size mismatch");
    if (!p_.fastEval)
        return evaluateIdealScalar(inputs, duration);

    const EvalCache &c = evalCache();
    const int cols = p_.cols;
    CrossbarEval eval;
    eval.currents.assign(cols, 0.0);

    // Active-row gather: the tiles below walk only driven rows, and the
    // voltage expression matches evaluateIdealScalar exactly.
    std::vector<int> active;
    std::vector<double> va;
    active.reserve(static_cast<size_t>(p_.rows));
    va.reserve(static_cast<size_t>(p_.rows));
    for (int i = 0; i < p_.rows; ++i) {
        const double v = std::clamp(inputs[i], 0.0, 1.0) * p_.readVoltage;
        if (v == 0.0)
            continue;
        active.push_back(i);
        va.push_back(v);
    }
    const int n_active = static_cast<int>(active.size());

    // Column currents through the register-tiled kernel: per column the
    // partial sum accumulates in the same ascending row order as the
    // scalar reference walk, so results stay bit-identical.
    double *out = eval.currents.data();
    int j = 0;
    for (; j + 16 <= cols; j += 16)
        soloColsTile16(c.dense.data(), static_cast<size_t>(cols),
                       active.data(), n_active, va.data(), j, out);
    if (j < cols)
        soloColsTileN(c.dense.data(), static_cast<size_t>(cols),
                      active.data(), n_active, va.data(), j, cols - j,
                      out);

    // Reference column and dissipation: same ascending-row accumulation
    // chains as before, just split from the column-current walk.
    double ref_current = 0.0;
    double power = 0.0;
    for (int a = 0; a < n_active; ++a) {
        const double v = va[static_cast<size_t>(a)];
        const size_t i = static_cast<size_t>(active[static_cast<size_t>(a)]);
        ref_current += v * c.refCol[i];
        power += v * v * c.rowGsum[i];
    }
    for (auto &current : eval.currents)
        current -= ref_current;
    if (c.anyColOpen) {
        for (int j = 0; j < cols; ++j)
            if (c.colOpen[static_cast<size_t>(j)])
                eval.currents[static_cast<size_t>(j)] = 0.0;
    }
    eval.energy = power * duration;
    if (p_.abft) {
        // Checksum read-out: same ascending active-row chain as the
        // reference column, so the verdict is bit-identical to the
        // scalar path's.
        double chk_current = 0.0;
        double vsq = 0.0;
        for (int a = 0; a < n_active; ++a) {
            const double v = va[static_cast<size_t>(a)];
            const size_t i =
                static_cast<size_t>(active[static_cast<size_t>(a)]);
            chk_current += v * c.chkCol[i];
            vsq += v * v;
        }
        eval.check =
            makeCheck(eval.currents.data(), chk_current, ref_current, vsq);
    }
    return eval;
}

CrossbarEval
CrossbarArray::evaluateSparse(const SpikeVector &active,
                              double duration) const
{
    if (!p_.fastEval) {
        // Baseline fallback: densify and take the scalar loop.
        std::vector<double> inputs(static_cast<size_t>(p_.rows), 0.0);
        for (int i : active)
            inputs[static_cast<size_t>(i)] = 1.0;
        return evaluateIdealScalar(inputs, duration);
    }

    CrossbarEval eval;
    evaluateSparseInto(active, duration, eval);
    return eval;
}

void
CrossbarArray::evaluateSparseInto(const SpikeVector &active,
                                  double duration, CrossbarEval &eval) const
{
    NEBULA_ASSERT(p_.fastEval,
                  "evaluateSparseInto requires the fast-eval cache");
    const EvalCache &c = evalCache();
    const int cols = p_.cols;
    const double v = p_.readVoltage;
    eval.currents.assign(cols, 0.0);

    double ref_current = 0.0;
    double power = 0.0;
    double *out = eval.currents.data();
    const size_t n_active = active.size();
    size_t a = 0;
    for (; a + 4 <= n_active; a += 4) {
        const int i0 = active[a], i1 = active[a + 1];
        const int i2 = active[a + 2], i3 = active[a + 3];
        NEBULA_ASSERT(i0 >= 0 && i3 < p_.rows, "active row out of range");
        accumulateRows4(out, cols, v,
                        &c.dense[static_cast<size_t>(i0) * cols],
                        &c.dense[static_cast<size_t>(i1) * cols],
                        &c.dense[static_cast<size_t>(i2) * cols],
                        &c.dense[static_cast<size_t>(i3) * cols]);
        ref_current += v * c.refCol[static_cast<size_t>(i0)];
        ref_current += v * c.refCol[static_cast<size_t>(i1)];
        ref_current += v * c.refCol[static_cast<size_t>(i2)];
        ref_current += v * c.refCol[static_cast<size_t>(i3)];
        power += v * v * c.rowGsum[static_cast<size_t>(i0)];
        power += v * v * c.rowGsum[static_cast<size_t>(i1)];
        power += v * v * c.rowGsum[static_cast<size_t>(i2)];
        power += v * v * c.rowGsum[static_cast<size_t>(i3)];
    }
    for (; a < n_active; ++a) {
        const int i = active[a];
        NEBULA_ASSERT(i >= 0 && i < p_.rows, "active row out of range");
        accumulateRow(out, cols, v,
                      &c.dense[static_cast<size_t>(i) * cols]);
        ref_current += v * c.refCol[static_cast<size_t>(i)];
        power += v * v * c.rowGsum[static_cast<size_t>(i)];
    }
    for (auto &current : eval.currents)
        current -= ref_current;
    if (c.anyColOpen) {
        for (int j = 0; j < cols; ++j)
            if (c.colOpen[static_cast<size_t>(j)])
                eval.currents[static_cast<size_t>(j)] = 0.0;
    }
    eval.energy = power * duration;
    eval.check = CrossbarCheck{};
    if (p_.abft) {
        // Separate ascending walk keeps the hot accumulation loop
        // above untouched; the chain order matches evaluateIdeal on
        // the densified vector, so verdicts stay bit-identical.
        double chk_current = 0.0;
        double vsq = 0.0;
        for (size_t k = 0; k < n_active; ++k) {
            chk_current +=
                v * c.chkCol[static_cast<size_t>(active[k])];
            vsq += v * v;
        }
        eval.check =
            makeCheck(eval.currents.data(), chk_current, ref_current, vsq);
    }
}

CrossbarBatchEval
CrossbarArray::evaluateIdealBatch(const std::vector<double> &inputs,
                                  int batch, double duration) const
{
    NEBULA_ASSERT(batch > 0, "empty evaluation batch");
    NEBULA_ASSERT(inputs.size() ==
                      static_cast<size_t>(batch) * p_.rows,
                  "batched input size mismatch");

    const int cols = p_.cols;
    const int rows = p_.rows;
    CrossbarBatchEval eval;
    if (!p_.fastEval) {
        // Baseline fallback: B separate scalar evaluations.
        eval.currents.resize(static_cast<size_t>(batch) * cols);
        eval.energies.reserve(static_cast<size_t>(batch));
        std::vector<double> window(static_cast<size_t>(rows));
        for (int b = 0; b < batch; ++b) {
            std::copy_n(inputs.begin() + static_cast<size_t>(b) * rows,
                        rows, window.begin());
            CrossbarEval one = evaluateIdealScalar(window, duration);
            std::copy(one.currents.begin(), one.currents.end(),
                      eval.currents.begin() +
                          static_cast<size_t>(b) * cols);
            eval.energies.push_back(one.energy);
            eval.energy += one.energy;
            if (p_.abft)
                eval.checks.push_back(one.check);
        }
        return eval;
    }

    const EvalCache &c = evalCache();
    eval.currents.assign(static_cast<size_t>(batch) * cols, 0.0);
    eval.energies.assign(static_cast<size_t>(batch), 0.0);

    // Pre-scale every window's drive voltages once, with the exact
    // clamp + supply expression of evaluateIdeal().
    std::vector<double> volts(static_cast<size_t>(batch) * rows);
    for (size_t n = 0; n < volts.size(); ++n)
        volts[n] = std::clamp(inputs[n], 0.0, 1.0) * p_.readVoltage;

    // Register-tiled groups of four windows (the batched GEMM-style
    // path): gather the rows at least one window drives, pack the four
    // voltages per active row, then walk column tiles whose 4x8
    // accumulator block lives in registers across the whole row walk.
    // Per (window, column) the partial sum still grows in ascending row
    // order -- a zero-voltage row only ever contributes an exact +0.0
    // to the non-negative partials -- so each window stays bit-identical
    // to a standalone evaluateIdeal. Image windows share a lot of dark
    // rows (blank borders, post-ReLU zeros), so the shared active list
    // also skips most of the work the solo path skips.
    std::vector<int> active;
    std::vector<double> va;
    active.reserve(static_cast<size_t>(rows));
    va.reserve(static_cast<size_t>(rows) * 4);
    int b = 0;
    for (; b + 4 <= batch; b += 4) {
        const double *v0 = &volts[static_cast<size_t>(b) * rows];
        const double *v1 = v0 + rows;
        const double *v2 = v1 + rows;
        const double *v3 = v2 + rows;
        active.clear();
        va.clear();
        for (int i = 0; i < rows; ++i) {
            if (v0[i] == 0.0 && v1[i] == 0.0 && v2[i] == 0.0 &&
                v3[i] == 0.0)
                continue;
            active.push_back(i);
            va.push_back(v0[i]);
            va.push_back(v1[i]);
            va.push_back(v2[i]);
            va.push_back(v3[i]);
        }
        const int n_active = static_cast<int>(active.size());
        double *out = &eval.currents[static_cast<size_t>(b) * cols];
        int j = 0;
        for (; j + 8 <= cols; j += 8)
            windowColsTile4x8(c.dense.data(), static_cast<size_t>(cols),
                              active.data(), n_active, va.data(), j, out,
                              static_cast<size_t>(cols));
        if (j < cols)
            windowColsTile4xN(c.dense.data(), static_cast<size_t>(cols),
                              active.data(), n_active, va.data(), j,
                              cols - j, out, static_cast<size_t>(cols));
    }
    for (; b < batch; ++b) {
        double *out = &eval.currents[static_cast<size_t>(b) * cols];
        const double *v = &volts[static_cast<size_t>(b) * rows];
        for (int i = 0; i < rows; ++i) {
            if (v[i] == 0.0)
                continue;
            accumulateRow(out, cols, v[i],
                          &c.dense[static_cast<size_t>(i) * cols]);
        }
    }

    // Reference subtraction, open-column masking and per-window energy:
    // separate accumulation chains from the column currents, walked in
    // the same ascending row order as evaluateIdeal.
    for (b = 0; b < batch; ++b) {
        const double *v = &volts[static_cast<size_t>(b) * rows];
        double ref_current = 0.0;
        double power = 0.0;
        for (int i = 0; i < rows; ++i) {
            const double vi = v[i];
            if (vi == 0.0)
                continue;
            ref_current += vi * c.refCol[static_cast<size_t>(i)];
            power += vi * vi * c.rowGsum[static_cast<size_t>(i)];
        }
        double *out = &eval.currents[static_cast<size_t>(b) * cols];
        for (int j = 0; j < cols; ++j) {
            out[j] -= ref_current;
            if (c.anyColOpen && c.colOpen[static_cast<size_t>(j)])
                out[j] = 0.0;
        }
        eval.energies[static_cast<size_t>(b)] = power * duration;
        eval.energy += eval.energies[static_cast<size_t>(b)];
        if (p_.abft) {
            // Per-window checksum comparison: same ascending-row chain
            // as the solo path on this window, so each verdict is
            // bit-identical to a standalone evaluateIdeal().
            double chk_current = 0.0;
            double vsq = 0.0;
            for (int i = 0; i < rows; ++i) {
                const double vi = v[i];
                if (vi == 0.0)
                    continue;
                chk_current += vi * c.chkCol[static_cast<size_t>(i)];
                vsq += vi * vi;
            }
            eval.checks.push_back(
                makeCheck(out, chk_current, ref_current, vsq));
        }
    }
    return eval;
}

CrossbarEval
CrossbarArray::evaluateIdealScalar(const std::vector<double> &inputs,
                                   double duration) const
{
    CrossbarEval eval;
    eval.currents.assign(p_.cols, 0.0);

    const int ref = physicalDataCols();
    double ref_current = 0.0;
    double chk_current = 0.0;
    double vsq = 0.0;
    double power = 0.0;
    for (int i = 0; i < p_.rows; ++i) {
        const double v = std::clamp(inputs[i], 0.0, 1.0) * p_.readVoltage;
        if (v == 0.0)
            continue;
        const double *row =
            &conductance_[static_cast<size_t>(i) * physicalStride()];
        double row_g = 0.0;
        for (int j = 0; j < p_.cols; ++j) {
            const double g = row[remap_[static_cast<size_t>(j)]];
            eval.currents[static_cast<size_t>(j)] += v * g;
            row_g += g;
        }
        ref_current += v * row[ref];
        row_g += row[ref];
        if (p_.abft) {
            chk_current += v * row[ref + 1];
            vsq += v * v;
            row_g += row[ref + 1];
        }
        power += v * v * row_g;
    }
    for (auto &current : eval.currents)
        current -= ref_current;
    if (!faults_.empty()) {
        // An open source-line disconnects the neuron input entirely: it
        // integrates nothing, rather than the bare reference current.
        for (int j = 0; j < p_.cols; ++j)
            if (faults_.colOpen(remap_[static_cast<size_t>(j)]))
                eval.currents[static_cast<size_t>(j)] = 0.0;
    }
    eval.energy = power * duration;
    if (p_.abft)
        eval.check =
            makeCheck(eval.currents.data(), chk_current, ref_current, vsq);
    return eval;
}

CrossbarCheck
CrossbarArray::makeCheck(const double *currents, double chk_current,
                         double ref_current, double vsq_sum) const
{
    CrossbarCheck check;
    check.checks = 1;

    // ABFT identity: every data cell holds G_mid + wq*dG/2 and the
    // checksum cell holds G_mid + (sum_j wq)/cols * dG/2, so on a clean
    // array  sum_j I_j(raw) == cols * I_chk  exactly. The reference
    // current appears cols times on both sides of the subtracted form
    // and cancels algebraically, taking its programming noise with it.
    double observed = 0.0;
    for (int j = 0; j < p_.cols; ++j)
        observed += currents[j];
    const double expected =
        static_cast<double>(p_.cols) * (chk_current - ref_current);
    check.residual = std::abs(observed - expected);

    // Tolerance floor: half a conductance LSB at full read drive --
    // the same quantum the column ADC resolves, so anything under it
    // is invisible to the readout anyway. On top, 6 sigma of the
    // accumulated programming variation: per-cell noise is an
    // independent zero-mean factor of spread sigma on a conductance
    // bounded by G_max, and the residual sums cols cells per driven
    // row, giving Var <= sigma^2 * G_max^2 * cols * sum_i v_i^2.
    const double step_g = 2.0 * gHalfSwing_ / (p_.levels - 1);
    double tol = 0.5 * p_.readVoltage * step_g;
    if (p_.variationSigma > 0.0) {
        const double g_max = gMid_ + gHalfSwing_;
        tol += 6.0 * p_.variationSigma * g_max *
               std::sqrt(static_cast<double>(p_.cols) * vsq_sum);
    }
    check.tolerance = tol;
    check.violations = check.residual > tol ? 1 : 0;
    return check;
}

CrossbarEval
CrossbarArray::evaluateParasitic(const std::vector<double> &inputs,
                                 double duration, int max_iters,
                                 double tolerance) const
{
    NEBULA_ASSERT(inputs.size() == static_cast<size_t>(p_.rows),
                  "input vector size mismatch");

    const int rows = p_.rows;
    const int cols = physicalStride(); // data + spares + reference
    const double gw = 1.0 / p_.wireResistance;

    // Node voltages: vr (bit-line side) and vc (source-line side). The
    // solver workspace lives in the eval cache so repeated solves (the
    // supply-voltage ablation sweeps) stop churning the allocator; it
    // is fully re-initialized below, so results are unchanged.
    std::vector<double> local_vr, local_vc, local_source;
    std::vector<double> &vr = p_.fastEval ? cache_.vr : local_vr;
    std::vector<double> &vc = p_.fastEval ? cache_.vc : local_vc;
    std::vector<double> &source = p_.fastEval ? cache_.source : local_source;
    vr.assign(static_cast<size_t>(rows) * cols, 0.0);
    vc.assign(static_cast<size_t>(rows) * cols, 0.0);
    source.resize(static_cast<size_t>(rows));
    for (int i = 0; i < rows; ++i)
        source[static_cast<size_t>(i)] =
            std::clamp(inputs[i], 0.0, 1.0) * p_.readVoltage;

    auto g = [&](int i, int j) {
        return conductance_[static_cast<size_t>(i) * cols + j];
    };
    auto idx = [&](int i, int j) {
        return static_cast<size_t>(i) * cols + j;
    };

    // Initial guess: ideal voltages (sources on rows, ground on columns).
    for (int i = 0; i < rows; ++i)
        for (int j = 0; j < cols; ++j)
            vr[idx(i, j)] = source[i];

    double delta = 0.0;
    for (int iter = 0; iter < max_iters; ++iter) {
        delta = 0.0;
        for (int i = 0; i < rows; ++i) {
            for (int j = 0; j < cols; ++j) {
                // Row node (i, j): neighbors are the driver (j == 0),
                // adjacent row nodes, and the cell to the column node.
                double num = g(i, j) * vc[idx(i, j)];
                double den = g(i, j);
                if (j == 0) {
                    num += gw * source[i];
                    den += gw;
                } else {
                    num += gw * vr[idx(i, j - 1)];
                    den += gw;
                }
                if (j + 1 < cols) {
                    num += gw * vr[idx(i, j + 1)];
                    den += gw;
                }
                const double nv = num / den;
                delta = std::max(delta, std::abs(nv - vr[idx(i, j)]));
                vr[idx(i, j)] = nv;

                // Column node (i, j): neighbors are adjacent column nodes
                // and ground (the spin neuron's magneto-metallic input)
                // at the bottom (i == rows - 1).
                double cnum = g(i, j) * vr[idx(i, j)];
                double cden = g(i, j);
                if (i > 0) {
                    cnum += gw * vc[idx(i - 1, j)];
                    cden += gw;
                }
                if (i + 1 < rows) {
                    cnum += gw * vc[idx(i + 1, j)];
                    cden += gw;
                } else {
                    // bottom node tied to ground through one wire segment
                    cden += gw;
                }
                const double ncv = cnum / cden;
                delta = std::max(delta, std::abs(ncv - vc[idx(i, j)]));
                vc[idx(i, j)] = ncv;
            }
        }
        if (delta < tolerance)
            break;
    }

    CrossbarEval eval;
    eval.currents.assign(p_.cols, 0.0);
    // Column output current = bottom node voltage / wire segment to gnd.
    const double ref = vc[idx(rows - 1, physicalDataCols())] * gw;
    for (int j = 0; j < p_.cols; ++j) {
        const int p = remap_[static_cast<size_t>(j)];
        if (!faults_.empty() && faults_.colOpen(p)) {
            eval.currents[static_cast<size_t>(j)] = 0.0;
            continue;
        }
        eval.currents[static_cast<size_t>(j)] =
            vc[idx(rows - 1, p)] * gw - ref;
    }

    // Power delivered by the row drivers.
    double power = 0.0;
    for (int i = 0; i < rows; ++i)
        power += source[i] * (source[i] - vr[idx(i, 0)]) * gw;
    eval.energy = power * duration;
    return eval;
}

} // namespace nebula
