/**
 * @file
 * Behavioural model of the all-spin neuromorphic crossbar (paper Fig. 3).
 *
 * Synaptic DW-MTJ cells sit at the row/column intersections; input
 * voltages driven on the bit-lines are weighted by the programmed cell
 * conductances and the resulting currents sum along the source-lines
 * (Kirchhoff's current law), evaluating a full matrix-vector product in
 * one 110 ns stage.
 *
 * Signed weights use a reference-column scheme: each cell stores
 * G = G_mid + w * dG/2 (w in [-1, 1]) and a shared reference column
 * programmed to G_mid is subtracted from every column current, so the
 * differential current is proportional to the signed dot product. The
 * current-driven spin neurons integrate that signed current directly --
 * no I-to-V conversion is needed (Sec. II-C).
 *
 * Two evaluation modes are provided:
 *  - ideal: exact Kirchhoff summation;
 *  - parasitic: wire resistance along rows/columns is included via a
 *    full nodal Gauss-Seidel solve (slow, for validation and the supply
 *    voltage ablation) or a fast per-cell attenuation approximation.
 *
 * Fast evaluation: the array keeps an EvalCache of derived read-path
 * state -- the logical-column (remap-resolved) dense conductance view,
 * the per-row reference conductance and total row conductance used for
 * energy accounting, the open-column mask, and the parasitic solver
 * workspace. The cache is invalidated whenever the programmed state can
 * change (program, injectFaults) and rebuilt lazily on the next
 * evaluation, so the per-evaluation inner loop is a pure multiply-add
 * over a contiguous matrix with no remap gathers and no per-row
 * conductance re-summation. evaluateSparse() exploits SNN spike
 * sparsity by walking only the active rows of that view; results are
 * bit-identical to evaluateIdeal() on the densified spike vector.
 * CrossbarParams::fastEval == false falls back to the original scalar
 * loops (the pre-cache behaviour), kept as a measurable baseline.
 *
 * Reliability: the array can carry an explicit FaultMap (stuck cells,
 * pinning drift, retention decay, line opens) injected before
 * programming, and the program() entry point supports the mitigation
 * flow of src/reliability -- closed-loop write-verify and spare-column
 * repair over CrossbarParams::spareCols physical spares. Logical
 * columns are indirected through a remap table so a repaired column
 * reads its spare transparently.
 */

#ifndef NEBULA_CIRCUIT_CROSSBAR_HPP
#define NEBULA_CIRCUIT_CROSSBAR_HPP

#include <vector>

#include "device/dw_params.hpp"
#include "device/mtj.hpp"
#include "reliability/fault_model.hpp"
#include "reliability/mitigation.hpp"

namespace nebula {

/** Crossbar electrical configuration. */
struct CrossbarParams
{
    int rows = 128;
    int cols = 128;

    /** Physical spare columns available for repair (0 = none). */
    int spareCols = 0;

    /** Read supply voltage on the bit-lines (V). SNN 0.25, ANN 0.75. */
    double readVoltage = 0.25;

    /** Number of programmable conductance levels per cell. */
    int levels = 16;

    /** MTJ stack of the synaptic cells. */
    MtjParams mtj;

    /** Wire resistance between adjacent cells on a row/column (ohm). */
    double wireResistance = 2.5;

    /** Relative device-to-device conductance variation (0 = none). */
    double variationSigma = 0.0;
    uint64_t variationSeed = 7;

    /**
     * Use the cached fast evaluation paths (default). False selects the
     * original scalar per-cell loops -- numerically identical, kept as
     * the measurable pre-optimization baseline for benchmarks.
     */
    bool fastEval = true;

    /**
     * Program and read an ABFT checksum column: one extra physical
     * column whose per-row conductance encodes the row-sum of the
     * *intended* quantized data weights, G_chk[i] = G_mid +
     * (sum_j wq_ij / cols) * dG/2. On every ideal evaluation the
     * observed data-column current sum is compared against
     * cols * (I_chk - I_ref) within an ADC-quantization-derived
     * tolerance; a mismatch flags the result as corrupt. Off (default)
     * leaves layout, arithmetic and energy byte-identical to an array
     * without the column.
     */
    bool abft = false;
};

/**
 * Outcome of the ABFT checksum-column comparison attached to one
 * evaluation. `checks` is 0 when no check ran (abft off, or a path
 * where the checksum identity does not hold, e.g. the parasitic solve).
 */
struct CrossbarCheck
{
    int checks = 0;        //!< 1 when the checksum column was compared
    int violations = 0;    //!< 1 when the residual exceeded tolerance
    double residual = 0.0; //!< |observed - expected| current (A)
    double tolerance = 0.0; //!< detection threshold used (A)
};

/** Result of one crossbar evaluation. */
struct CrossbarEval
{
    /** Differential (signed) column currents (A), one per column. */
    std::vector<double> currents;

    /** Total ohmic energy dissipated in the array this evaluation (J). */
    double energy = 0.0;

    /** ABFT checksum verdict (checks == 0 unless CrossbarParams::abft). */
    CrossbarCheck check;
};

/**
 * Active-row list for the 1-bit spike driver path: indices of the rows
 * whose bit-line carries a spike this cycle, in ascending order.
 */
using SpikeVector = std::vector<int>;

/** Result of one batched crossbar evaluation (B input windows). */
struct CrossbarBatchEval
{
    /** B x cols differential column currents, row-major (A). */
    std::vector<double> currents;

    /** Ohmic energy summed over the batch (J). */
    double energy = 0.0;

    /**
     * Per-window ohmic energy (J), one entry per input window. Each
     * entry is bit-identical to the energy a standalone evaluateIdeal()
     * of that window reports, so callers serving coalesced requests can
     * attribute array energy to individual requests exactly; `energy`
     * is their ascending-order sum.
     */
    std::vector<double> energies;

    /**
     * Per-window ABFT verdicts (empty unless CrossbarParams::abft).
     * Each entry is bit-identical to the check a standalone
     * evaluateIdeal() of that window reports.
     */
    std::vector<CrossbarCheck> checks;
};

/** A single M x N analog crossbar array. */
class CrossbarArray
{
  public:
    explicit CrossbarArray(const CrossbarParams &params);

    /**
     * Overlay device faults before programming. The map must cover the
     * physical data columns: rows x (cols + spareCols).
     */
    void injectFaults(FaultMap faults);

    /** The injected fault map (empty if none). */
    const FaultMap &faults() const { return faults_; }

    /**
     * Program signed normalized weights with the selected mitigations:
     * optional spare-column repair (columns whose uncorrectable defect
     * count exceeds the threshold are remapped onto the healthiest
     * spares before programming) and optional closed-loop write-verify
     * (program -> sense -> trim per cell within a pulse budget).
     *
     * @param weights Row-major rows x cols matrix, entries in [-1, 1];
     *                values are quantized to the cell's discrete levels.
     * @return pulse / energy / failure / repair accounting.
     */
    ProgramReport program(const std::vector<float> &weights,
                          const ProgrammingConfig &config);

    /**
     * Legacy single-pulse programming path (no mitigation): quantize,
     * apply device variation if configured, write each cell once.
     */
    void programWeights(const std::vector<float> &weights);

    /**
     * Incremental per-cell updates -- the on-device learning write path.
     * Each CellUpdate moves one logical cell by a signed number of
     * conductance levels from its *sensed* current level (read path, no
     * disturb), issuing one programming pulse per level step traversed.
     * Semantics match program() cell for cell: the landing conductance
     * of the final pulse follows the same fault model (open-loop pinning
     * drift offset, retention decay applied after the write, device
     * variation when configured), write-verify trims within the same
     * pulse budget, and the spare-column remap is respected. Stuck cells
     * and open lines swallow the pulse without moving (the incremental
     * single-level pulse has no depin escalation -- reprogramming via
     * program() is the repair tool) and are counted blockedCells.
     * Targets landing outside [0, levels-1] are clamped and counted.
     *
     * The EvalCache is invalidated whenever any cell changed, so the
     * next evaluation reads the learned conductances.
     */
    UpdateReport updateCells(const std::vector<CellUpdate> &updates,
                             const ProgrammingConfig &config = {});

    /** Single-cell convenience form of updateCells(). */
    UpdateReport applyDelta(int row, int col, int delta,
                            const ProgrammingConfig &config = {});

    /**
     * Sensed discrete level of logical cell (row, col): the nearest
     * programmable level to the cell's read conductance, clamped to
     * [0, levels-1]. Uses the ordinary sense path (read-disturb-free);
     * decayed or drifted cells report the level they *read as*, not the
     * one that was addressed.
     */
    int levelAt(int row, int col) const;

    /**
     * Evaluate the ideal dot product for normalized inputs in [0, 1]
     * (inputs are quantized to the driver resolution by the caller).
     *
     * @param inputs     One normalized voltage factor per row.
     * @param duration   Evaluation window (s), for energy accounting.
     */
    CrossbarEval evaluateIdeal(const std::vector<double> &inputs,
                               double duration) const;

    /**
     * Spike-driven sparse evaluation: only the rows listed in
     * @p active (ascending row indices, each driven at full read
     * voltage) contribute. Bit-identical to evaluateIdeal() on the
     * equivalent dense 0/1 vector, but the cost is linear in the number
     * of *active* rows -- the event-driven current-domain accumulation
     * the SNN mode's efficiency argument rests on.
     */
    CrossbarEval evaluateSparse(const SpikeVector &active,
                                double duration) const;

    /**
     * evaluateSparse() into a caller-owned result so per-timestep inner
     * loops reuse one allocation. Requires fastEval (the dense fallback
     * lives in the by-value form); values are identical to it.
     */
    void evaluateSparseInto(const SpikeVector &active, double duration,
                            CrossbarEval &eval) const;

    /**
     * Evaluate @p batch input windows (row-major batch x rows) in one
     * call. Windows are processed in register-blocked groups of four: a
     * cached conductance row is streamed once per group and multiplied
     * into four windows' accumulators (GEMM-style), amortizing the
     * matrix traffic across windows; per-window results -- currents and
     * energies -- are bit-identical to @p batch separate
     * evaluateIdeal() calls.
     */
    CrossbarBatchEval evaluateIdealBatch(const std::vector<double> &inputs,
                                         int batch, double duration) const;

    /**
     * Evaluate with interconnect parasitics using a nodal Gauss-Seidel
     * solve of the full resistive network. Accurate but O(rows*cols*iters);
     * intended for validation and small ablation sweeps.
     */
    CrossbarEval evaluateParasitic(const std::vector<double> &inputs,
                                   double duration, int max_iters = 400,
                                   double tolerance = 1e-9) const;

    /**
     * Signed dot-product scale: current per unit (w * x) where w, x are
     * the normalized weight/input. currents = kappa * (W^T x).
     */
    double currentScale() const;

    /**
     * Conductance of logical column @p col at @p row (repair remap
     * applied); col == cols() addresses the shared reference column.
     */
    double conductanceAt(int row, int col) const;

    /** Normalized signed weight recovered from the programmed cell. */
    double weightAt(int row, int col) const;

    /**
     * Raw physical-cell conductance (no remap; spares and the reference
     * column at physical index cols()+spareCols addressable). For the
     * reference-model validation harness -- inference code wants the
     * logical view of conductanceAt().
     */
    double physicalConductanceAt(int row, int phys_col) const;

    /** Worst-case (all cells on, all inputs max) column current (A). */
    double maxColumnCurrent() const;

    /** Physical column serving logical column @p col. */
    int physicalColumn(int col) const;

    /** Columns currently remapped onto spares. */
    int sparesUsed() const;

    int rows() const { return p_.rows; }
    int cols() const { return p_.cols; }
    const CrossbarParams &params() const { return p_; }

  private:
    /**
     * Derived read-path state, rebuilt lazily after any event that can
     * change the programmed conductances or the column remap (program,
     * injectFaults). Single-threaded per array, like every other
     * mutable member: worker replicas each own their crossbars.
     */
    struct EvalCache
    {
        bool valid = false;

        /** rows x cols remapped data conductances, logical order. */
        std::vector<double> dense;

        /** Per-row reference-column conductance. */
        std::vector<double> refCol;

        /** Per-row checksum-column conductance (abft only, else empty). */
        std::vector<double> chkCol;

        /**
         * Per-row total conductance for energy accounting: data +
         * reference, plus the checksum column when abft is on (its
         * read current is sensed every evaluation, so its dissipation
         * is billed with the rest of the array).
         */
        std::vector<double> rowGsum;

        /** Per-logical-column open-line flag. */
        std::vector<uint8_t> colOpen;
        bool anyColOpen = false;

        /** Gauss-Seidel node-voltage workspace (parasitic solve). */
        std::vector<double> vr, vc, source;
    };

    /** The cache, built if stale. */
    const EvalCache &evalCache() const;

    /** Mark every derived view stale (programmed state changed). */
    void invalidateCache() { cache_.valid = false; }

    /** Original scalar evaluation loop (fastEval == false baseline). */
    CrossbarEval evaluateIdealScalar(const std::vector<double> &inputs,
                                     double duration) const;

    /** Physical data columns (logical + spares). */
    int physicalDataCols() const { return p_.cols + p_.spareCols; }

    /**
     * Physical columns per row in conductance_: data + reference, plus
     * the ABFT checksum column (at physicalDataCols() + 1) when abft.
     */
    int physicalStride() const
    {
        return physicalDataCols() + (p_.abft ? 2 : 1);
    }

    /**
     * ABFT residual comparison from one evaluation's aggregates, all
     * accumulated in ascending row/column order so the fast and scalar
     * paths produce bit-identical verdicts.
     *
     * @param currents    Final (reference-subtracted, open-masked)
     *                    data-column currents.
     * @param chk_current Checksum-column current sum_i v_i * G_chk[i].
     * @param ref_current Reference-column current sum_i v_i * G_ref[i].
     * @param vsq_sum     sum_i v_i^2 over the driven rows (V^2), for
     *                    the variation term of the tolerance.
     */
    CrossbarCheck makeCheck(const double *currents, double chk_current,
                            double ref_current, double vsq_sum) const;

    double &cellAt(int row, int phys_col);
    double cellAt(int row, int phys_col) const;

    /** Decide the spare remap from the fault map (worst columns first). */
    void planRepair(const ProgrammingConfig &config, ProgramReport &report);

    /** Program one data cell; appends pulse/failure accounting. */
    void programCell(int row, int phys_col, int level,
                     const ProgrammingConfig &config,
                     const GaussianVariabilityModel &noise, Rng &rng,
                     ProgramReport &report);

    /**
     * Move one physical data cell from sensed level @p current to
     * @p target with per-level-step pulses. Returns true when the
     * stored conductance may have changed (caller invalidates cache).
     */
    bool updateCell(int row, int phys_col, int current, int target,
                    const ProgrammingConfig &config,
                    const GaussianVariabilityModel &noise,
                    UpdateReport &report);

    const CellFault &faultAt(int row, int phys_col) const;
    bool openAt(int row, int phys_col) const;

    CrossbarParams p_;
    MtjStack cell_;
    std::vector<double> conductance_; //!< rows x physicalStride, row-major
    FaultMap faults_;                 //!< empty when fault-free
    std::vector<int> remap_;          //!< logical col -> physical col
    double gMid_;
    double gHalfSwing_;
    Rng updateRng_; //!< variation stream of the incremental update path
    mutable EvalCache cache_;
};

} // namespace nebula

#endif // NEBULA_CIRCUIT_CROSSBAR_HPP
