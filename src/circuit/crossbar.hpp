/**
 * @file
 * Behavioural model of the all-spin neuromorphic crossbar (paper Fig. 3).
 *
 * Synaptic DW-MTJ cells sit at the row/column intersections; input
 * voltages driven on the bit-lines are weighted by the programmed cell
 * conductances and the resulting currents sum along the source-lines
 * (Kirchhoff's current law), evaluating a full matrix-vector product in
 * one 110 ns stage.
 *
 * Signed weights use a reference-column scheme: each cell stores
 * G = G_mid + w * dG/2 (w in [-1, 1]) and a shared reference column
 * programmed to G_mid is subtracted from every column current, so the
 * differential current is proportional to the signed dot product. The
 * current-driven spin neurons integrate that signed current directly --
 * no I-to-V conversion is needed (Sec. II-C).
 *
 * Two evaluation modes are provided:
 *  - ideal: exact Kirchhoff summation;
 *  - parasitic: wire resistance along rows/columns is included via a
 *    full nodal Gauss-Seidel solve (slow, for validation and the supply
 *    voltage ablation) or a fast per-cell attenuation approximation.
 */

#ifndef NEBULA_CIRCUIT_CROSSBAR_HPP
#define NEBULA_CIRCUIT_CROSSBAR_HPP

#include <vector>

#include "device/dw_params.hpp"
#include "device/mtj.hpp"
#include "device/variability.hpp"

namespace nebula {

/** Crossbar electrical configuration. */
struct CrossbarParams
{
    int rows = 128;
    int cols = 128;

    /** Read supply voltage on the bit-lines (V). SNN 0.25, ANN 0.75. */
    double readVoltage = 0.25;

    /** Number of programmable conductance levels per cell. */
    int levels = 16;

    /** MTJ stack of the synaptic cells. */
    MtjParams mtj;

    /** Wire resistance between adjacent cells on a row/column (ohm). */
    double wireResistance = 2.5;

    /** Relative device-to-device conductance variation (0 = none). */
    double variationSigma = 0.0;
    uint64_t variationSeed = 7;
};

/** Result of one crossbar evaluation. */
struct CrossbarEval
{
    /** Differential (signed) column currents (A), one per column. */
    std::vector<double> currents;

    /** Total ohmic energy dissipated in the array this evaluation (J). */
    double energy = 0.0;
};

/** A single M x N analog crossbar array. */
class CrossbarArray
{
  public:
    explicit CrossbarArray(const CrossbarParams &params);

    /**
     * Program signed normalized weights.
     *
     * @param weights Row-major rows x cols matrix, entries in [-1, 1];
     *                values are quantized to the cell's discrete levels
     *                and perturbed by device variation if configured.
     */
    void programWeights(const std::vector<float> &weights);

    /**
     * Evaluate the ideal dot product for normalized inputs in [0, 1]
     * (inputs are quantized to the driver resolution by the caller).
     *
     * @param inputs     One normalized voltage factor per row.
     * @param duration   Evaluation window (s), for energy accounting.
     */
    CrossbarEval evaluateIdeal(const std::vector<double> &inputs,
                               double duration) const;

    /**
     * Evaluate with interconnect parasitics using a nodal Gauss-Seidel
     * solve of the full resistive network. Accurate but O(rows*cols*iters);
     * intended for validation and small ablation sweeps.
     */
    CrossbarEval evaluateParasitic(const std::vector<double> &inputs,
                                   double duration, int max_iters = 400,
                                   double tolerance = 1e-9) const;

    /**
     * Signed dot-product scale: current per unit (w * x) where w, x are
     * the normalized weight/input. currents = kappa * (W^T x).
     */
    double currentScale() const;

    /** Conductance actually programmed at (row, col). */
    double conductanceAt(int row, int col) const;

    /** Normalized signed weight recovered from the programmed cell. */
    double weightAt(int row, int col) const;

    /** Worst-case (all cells on, all inputs max) column current (A). */
    double maxColumnCurrent() const;

    int rows() const { return p_.rows; }
    int cols() const { return p_.cols; }
    const CrossbarParams &params() const { return p_; }

  private:
    CrossbarParams p_;
    MtjStack cell_;
    std::vector<double> conductance_; //!< rows x cols, row-major
    double gMid_;
    double gHalfSwing_;
};

} // namespace nebula

#endif // NEBULA_CIRCUIT_CROSSBAR_HPP
