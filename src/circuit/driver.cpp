#include "circuit/driver.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

DacDriver::DacDriver(int bits, double supplyVoltage)
    : bits_(bits), levels_(1 << bits), supply_(supplyVoltage)
{
    NEBULA_ASSERT(bits_ >= 1 && bits_ <= 12, "unsupported DAC resolution");
}

std::vector<double>
DacDriver::drive(const std::vector<double> &normalized) const
{
    std::vector<double> out(normalized.size());
    for (size_t i = 0; i < normalized.size(); ++i)
        out[i] = normalizedOutput(quantize(normalized[i]));
    return out;
}

std::vector<double>
SpikeDriver::drive(const std::vector<uint8_t> &spikes) const
{
    std::vector<double> out(spikes.size());
    for (size_t i = 0; i < spikes.size(); ++i)
        out[i] = spikes[i] ? 1.0 : 0.0;
    return out;
}

} // namespace nebula
