/**
 * @file
 * Bit-line drivers. ANN neural cores use multi-level (4-bit, 0.75 V)
 * drivers so a multi-bit activation is applied in a single cycle
 * (Sec. IV-B1); SNN cores use 1-bit 0.25 V spike drivers.
 */

#ifndef NEBULA_CIRCUIT_DRIVER_HPP
#define NEBULA_CIRCUIT_DRIVER_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "common/logging.hpp"
#include "common/units.hpp"

namespace nebula {

/** Multi-level DAC driver for ANN inputs. */
class DacDriver
{
  public:
    /**
     * @param bits          Resolution (4 -> 16 levels).
     * @param supplyVoltage Full-scale voltage (0.75 V).
     */
    DacDriver(int bits = 4, double supplyVoltage = 0.75);

    /**
     * Quantize a normalized activation in [0, 1] to a level code.
     * Inline: called once per input element per ANN layer.
     */
    int quantize(double normalized) const
    {
        const double clipped = std::clamp(normalized, 0.0, 1.0);
        return static_cast<int>(std::lround(clipped * (levels_ - 1)));
    }

    /** Normalized voltage factor (voltage / readVoltage) for a code. */
    double normalizedOutput(int code) const
    {
        NEBULA_ASSERT(code >= 0 && code < levels_, "DAC code out of range");
        return static_cast<double>(code) / (levels_ - 1);
    }

    /** Quantize a whole input vector in place, returning voltage factors. */
    std::vector<double> drive(const std::vector<double> &normalized) const;

    int levels() const { return levels_; }
    double supplyVoltage() const { return supply_; }

  private:
    int bits_;
    int levels_;
    double supply_;
};

/** 1-bit spike driver for SNN inputs. */
class SpikeDriver
{
  public:
    explicit SpikeDriver(double supplyVoltage = 0.25) : supply_(supplyVoltage)
    {
    }

    /** Convert a spike bitmap into voltage factors (0 or 1). */
    std::vector<double> drive(const std::vector<uint8_t> &spikes) const;

    double supplyVoltage() const { return supply_; }

  private:
    double supply_;
};

} // namespace nebula

#endif // NEBULA_CIRCUIT_DRIVER_HPP
