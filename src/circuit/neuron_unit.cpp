#include "circuit/neuron_unit.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace nebula {

namespace {

/**
 * Compute the periphery gain that maps an algorithmic sum equal to
 * @p full_scale onto a full-track traversal within one window, given the
 * crossbar's current scale. Returns the gain applied to the column
 * current and the signed depinning bias added when the input is nonzero.
 */
void
computeScaling(const NeuronDeviceParams &device, double window,
               double current_scale, double full_scale, double &gain,
               double &bias)
{
    NEBULA_ASSERT(current_scale > 0.0, "current scale must be positive");
    NEBULA_ASSERT(full_scale > 0.0, "algorithmic full scale must be > 0");

    const DwTrackParams &track = device.track;
    // Velocity needed to cross the track in one window when the
    // algorithmic sum equals full_scale.
    const double v_full = track.length / window;
    NEBULA_ASSERT(v_full <= track.saturationVelocity,
                  "window too short: full-scale velocity ", v_full,
                  " exceeds saturation ", track.saturationVelocity);
    // v = mobility * (J - Jc); at full scale we need
    //   J - Jc = v_full / mobility.
    const double overdrive_density = v_full / track.mobility;
    const double full_current =
        overdrive_density * track.hmCrossSection();

    gain = full_current / (current_scale * full_scale);
    bias = track.criticalDensity * track.hmCrossSection();
}

} // namespace

SpikingNeuronUnit::SpikingNeuronUnit(const NeuronUnitParams &params)
    : p_(params)
{
    NEBULA_ASSERT(p_.count > 0, "neuron unit must have neurons");
    neurons_.reserve(p_.count);
    for (int i = 0; i < p_.count; ++i)
        neurons_.emplace_back(p_.device);
}

void
SpikingNeuronUnit::calibrate(double current_scale, double threshold)
{
    computeScaling(p_.device, p_.window, current_scale, threshold,
                   currentGain_, biasCurrent_);
}

std::vector<uint8_t>
SpikingNeuronUnit::step(const std::vector<double> &currents, Rng *rng)
{
    NEBULA_ASSERT(currents.size() == static_cast<size_t>(p_.count),
                  "column current count mismatch");
    std::vector<uint8_t> spikes(p_.count, 0);
    for (int i = 0; i < p_.count; ++i) {
        const double drive =
            detail::nuDeviceCurrent(currents[i], currentGain_,
                                    biasCurrent_);
        if (neurons_[i].integrate(drive, p_.window, rng))
            spikes[i] = 1;
    }
    return spikes;
}

void
SpikingNeuronUnit::reset()
{
    for (auto &neuron : neurons_)
        neuron.reset();
}

double
SpikingNeuronUnit::membraneFraction(int i) const
{
    NEBULA_ASSERT(i >= 0 && i < p_.count, "neuron index out of range");
    return neurons_[i].membraneFraction();
}

double
SpikingNeuronUnit::energy() const
{
    double total = 0.0;
    for (const auto &neuron : neurons_)
        total += neuron.energy();
    return total;
}

long long
SpikingNeuronUnit::spikeCount() const
{
    long long total = 0;
    for (const auto &neuron : neurons_)
        total += neuron.spikeCount();
    return total;
}

ReluNeuronUnit::ReluNeuronUnit(const NeuronUnitParams &params) : p_(params)
{
    NEBULA_ASSERT(p_.count > 0, "neuron unit must have neurons");
    neurons_.reserve(p_.count);
    for (int i = 0; i < p_.count; ++i)
        neurons_.emplace_back(p_.device);
    // One readout table serves the whole unit: every device is built
    // from the same track parameters and the unit's output resolution.
    lut_ = neurons_.front().buildReadoutLut(p_.levels);
}

void
ReluNeuronUnit::calibrate(double current_scale, double ceiling)
{
    computeScaling(p_.device, p_.window, current_scale, ceiling,
                   currentGain_, biasCurrent_);
}

double
ReluNeuronUnit::energy() const
{
    double total = 0.0;
    for (const auto &neuron : neurons_)
        total += neuron.energy();
    return total;
}

} // namespace nebula
