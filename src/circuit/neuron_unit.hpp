/**
 * @file
 * A Neuron Unit (NU): the column-side array of M spin neurons attached to
 * an atomic crossbar (paper Fig. 7). The NU periphery scales the signed
 * differential column currents onto the neuron devices so that the
 * algorithmic threshold (SNN) or activation ceiling (ANN) corresponds to
 * a full domain-wall traversal in one 110 ns window.
 *
 * The velocity law of the track has a depinning offset (no motion below
 * J_crit), so the periphery adds a signed bias current at the critical
 * level whenever the input is non-zero; displacement is then linear in
 * the algorithmic sum, which is what Fig. 1(b) reports for the device.
 */

#ifndef NEBULA_CIRCUIT_NEURON_UNIT_HPP
#define NEBULA_CIRCUIT_NEURON_UNIT_HPP

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "device/neuron_device.hpp"

namespace nebula {

namespace detail {

/**
 * Device drive current for a signed column current: the periphery gain
 * plus the signed depinning bias injected whenever the input is nonzero
 * (keeps displacement linear in the algorithmic sum despite the
 * velocity law's J_crit offset). Inline: one call per neuron per cycle.
 */
inline double
nuDeviceCurrent(double column_current, double gain, double bias)
{
    if (column_current == 0.0)
        return 0.0;
    const double scaled = gain * column_current;
    return scaled >= 0.0 ? scaled + bias : scaled - bias;
}

} // namespace detail

/** Configuration of one neuron unit. */
struct NeuronUnitParams
{
    int count = 128;             //!< neurons (one per column)
    double window = 110e-9;      //!< integration window (s)
    NeuronDeviceParams device;   //!< underlying DW-MTJ neuron
    int levels = 16;             //!< ANN output resolution
};

/** NU operating as spiking (IF) neurons. */
class SpikingNeuronUnit
{
  public:
    explicit SpikingNeuronUnit(const NeuronUnitParams &params);

    /**
     * Set the algorithmic-to-device scaling.
     *
     * @param current_scale Crossbar current per unit algorithmic sum
     *                      (CrossbarArray::currentScale()).
     * @param threshold     Algorithmic firing threshold (in units of the
     *                      normalized weighted sum).
     */
    void calibrate(double current_scale, double threshold);

    /**
     * Integrate one timestep of column currents.
     *
     * @param currents Signed differential column currents (A).
     * @param rng      Optional RNG for thermal jitter.
     * @return one bit per neuron: fired this step or not.
     */
    std::vector<uint8_t> step(const std::vector<double> &currents,
                              Rng *rng = nullptr);

    /** Reset all membranes (start of a new inference). */
    void reset();

    /** Membrane potential of neuron @p i as a fraction of threshold. */
    double membraneFraction(int i) const;

    /** Total energy consumed by the devices so far (J). */
    double energy() const;

    /** Total spikes fired so far. */
    long long spikeCount() const;

    int count() const { return p_.count; }

  private:
    NeuronUnitParams p_;
    std::vector<SpikingNeuronDevice> neurons_;
    double currentGain_ = 1.0;
    double biasCurrent_ = 0.0;
};

/** NU operating as saturating-ReLU (ANN) neurons. */
class ReluNeuronUnit
{
  public:
    explicit ReluNeuronUnit(const NeuronUnitParams &params);

    /**
     * Set the algorithmic-to-device scaling.
     *
     * @param current_scale Crossbar current per unit algorithmic sum.
     * @param ceiling       Algorithmic sum that saturates the output
     *                      (the layer's clipped activation maximum).
     */
    void calibrate(double current_scale, double ceiling);

    /**
     * Evaluate one cycle of column currents into a caller-owned level
     * buffer (the batched ANN path calls this once per window per
     * column group, so the scratch lives with the caller instead of
     * being allocated per call).
     *
     * Inline so the per-neuron device physics folds into this loop --
     * one evaluation per output element is the ANN periphery hot path.
     * The devices all share the unit's parameters, so a single
     * readout table (built once in the constructor) serves every
     * neuron; results are bit-identical to the direct device path.
     */
    void evaluateInto(const double *currents, int n, int *out,
                      Rng *rng = nullptr)
    {
        NEBULA_ASSERT(n == p_.count, "column current count mismatch");
        for (int i = 0; i < n; ++i) {
            // ReLU: negative sums cannot move the wall forward.
            const double drive = detail::nuDeviceCurrent(
                std::max(currents[i], 0.0), currentGain_, biasCurrent_);
            out[i] = neurons_[i].evaluate(drive, p_.window, lut_, rng);
        }
    }

    /**
     * Evaluate one cycle of column currents.
     * @return one output level in [0, levels-1] per neuron.
     */
    std::vector<int> evaluate(const std::vector<double> &currents,
                              Rng *rng = nullptr)
    {
        NEBULA_ASSERT(currents.size() == static_cast<size_t>(p_.count),
                      "column current count mismatch");
        std::vector<int> levels(p_.count, 0);
        evaluateInto(currents.data(), p_.count, levels.data(), rng);
        return levels;
    }

    double energy() const;
    int count() const { return p_.count; }
    int levels() const { return p_.levels; }

  private:
    NeuronUnitParams p_;
    std::vector<ReluNeuronDevice> neurons_;
    ReluReadoutLut lut_;
    double currentGain_ = 1.0;
    double biasCurrent_ = 0.0;
};

} // namespace nebula

#endif // NEBULA_CIRCUIT_NEURON_UNIT_HPP
