#include "circuit/sense.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

SenseCircuit::SenseCircuit(const MtjParams &neuron_mtj, double reference,
                           double supply, double inverterThreshold)
    : neuronMtj_(neuron_mtj), supply_(supply),
      inverterThreshold_(inverterThreshold)
{
    NEBULA_ASSERT(reference >= 0.0 && reference <= 1.0,
                  "reference fraction out of range");
    NEBULA_ASSERT(supply_ > 0.0, "sense supply must be positive");
    NEBULA_ASSERT(inverterThreshold_ > 0.0 && inverterThreshold_ < 1.0,
                  "inverter threshold must be a supply fraction");
    referenceResistance_ = neuronMtj_.resistanceAt(reference);
}

double
SenseCircuit::dividerVoltage(double neuron_parallel_fraction) const
{
    // Supply -> neuron MTJ -> midpoint -> reference MTJ -> ground.
    const double r_neuron =
        neuronMtj_.resistanceAt(neuron_parallel_fraction);
    return supply_ * referenceResistance_ /
           (r_neuron + referenceResistance_);
}

bool
SenseCircuit::spikeDetected(double neuron_parallel_fraction) const
{
    return dividerVoltage(neuron_parallel_fraction) >=
           inverterThreshold_ * supply_;
}

double
SenseCircuit::tripFraction() const
{
    // Solve V_mid(f) == vth * supply for f via the monotone divider.
    double lo = 0.0, hi = 1.0;
    if (spikeDetected(lo))
        return 0.0;
    if (!spikeDetected(hi))
        return 1.0;
    for (int iter = 0; iter < 60; ++iter) {
        const double mid = 0.5 * (lo + hi);
        if (spikeDetected(mid))
            hi = mid;
        else
            lo = mid;
    }
    return hi;
}

double
SenseCircuit::saturatingOutput(double neuron_parallel_fraction) const
{
    // Transistor in saturation: output tracks (V_mid - V_cutin) linearly
    // and clamps at full scale. Cut-in at the fully-AP divider voltage.
    const double v = dividerVoltage(neuron_parallel_fraction);
    const double v_cutin = dividerVoltage(0.0);
    const double v_full = dividerVoltage(1.0);
    if (v_full <= v_cutin)
        return 0.0;
    return std::clamp((v - v_cutin) / (v_full - v_cutin), 0.0, 1.0);
}

double
SenseCircuit::staticPower(double neuron_parallel_fraction) const
{
    const double r_total =
        neuronMtj_.resistanceAt(neuron_parallel_fraction) +
        referenceResistance_;
    return supply_ * supply_ / r_total;
}

} // namespace nebula
