/**
 * @file
 * Spike-detection interface circuit (paper Fig. 2a): the neuron's edge
 * MTJ forms a resistive divider with a reference MTJ; when the domain
 * wall arrives under the edge MTJ its state flips from anti-parallel to
 * parallel, the divider midpoint crosses the inverter's switching
 * threshold, and the inverter rail-to-rail output is the spike.
 *
 * For the non-spiking (ANN) neuron the same divider drives a transistor
 * in saturation instead, producing an output current proportional to
 * the divider voltage (the Saturating Rectified Linear transfer of
 * Fig. 2b).
 */

#ifndef NEBULA_CIRCUIT_SENSE_HPP
#define NEBULA_CIRCUIT_SENSE_HPP

#include "device/mtj.hpp"

namespace nebula {

/** Divider + inverter (SNN) / saturating transistor (ANN) interface. */
class SenseCircuit
{
  public:
    /**
     * @param neuron_mtj       Edge MTJ of the neuron track.
     * @param reference        Reference-MTJ parallel fraction: the
     *                         divider is balanced when the neuron MTJ
     *                         matches this state (0.5 = mid-resistance).
     * @param supply           Sense supply voltage (V).
     * @param inverterThreshold Inverter switching point as a fraction
     *                         of the supply.
     */
    explicit SenseCircuit(const MtjParams &neuron_mtj = {},
                          double reference = 0.5, double supply = 0.25,
                          double inverterThreshold = 0.5);

    /**
     * Divider midpoint voltage for a neuron-MTJ parallel fraction.
     * The neuron MTJ is the high side: as the wall arrives (fraction
     * -> 1) its resistance drops and the midpoint rises.
     */
    double dividerVoltage(double neuron_parallel_fraction) const;

    /** True when the inverter input crosses threshold (a spike). */
    bool spikeDetected(double neuron_parallel_fraction) const;

    /**
     * Smallest neuron parallel fraction that trips the inverter --
     * the electrical margin of the spike detector.
     */
    double tripFraction() const;

    /**
     * ANN readout: saturating-transistor output as a fraction of full
     * scale, linear in the divider voltage above the cut-in point and
     * clamped at 1 (the Saturating ReLU of Fig. 2b).
     */
    double saturatingOutput(double neuron_parallel_fraction) const;

    /** Static power burned in the divider branch (W). */
    double staticPower(double neuron_parallel_fraction) const;

    double supply() const { return supply_; }

  private:
    MtjStack neuronMtj_;
    double referenceResistance_;
    double supply_;
    double inverterThreshold_;
};

} // namespace nebula

#endif // NEBULA_CIRCUIT_SENSE_HPP
