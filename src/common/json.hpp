/**
 * @file
 * Minimal JSON serialization helpers shared by the stats / metrics /
 * trace writers. Emission only -- the repo never parses JSON, it hands
 * machine-readable summaries (BENCH_*.json, metric snapshots, Chrome
 * trace files) to external tooling.
 */

#ifndef NEBULA_COMMON_JSON_HPP
#define NEBULA_COMMON_JSON_HPP

#include <cmath>
#include <cstdio>
#include <string>
#include <string_view>

namespace nebula {
namespace json {

/** Append @p s to @p out with JSON string escaping (no quotes added). */
inline void
appendEscaped(std::string &out, std::string_view s)
{
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
}

/** "s" with escaping. */
inline std::string
quoted(std::string_view s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out += '"';
    appendEscaped(out, s);
    out += '"';
    return out;
}

/**
 * Render a double as a valid JSON number. Non-finite values (min/max of
 * an empty stat, a division by zero in a bench) have no JSON spelling
 * and degrade to 0.
 */
inline std::string
number(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace json
} // namespace nebula

#endif // NEBULA_COMMON_JSON_HPP
