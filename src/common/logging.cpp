#include "common/logging.hpp"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <iostream>
#include <mutex>
#include <set>

namespace nebula {

namespace {

bool g_quiet = false;

// Debug-component state. The hot path (a disabled NEBULA_DEBUG) is one
// relaxed atomic load; the component set itself is mutex-guarded and
// only consulted once some component is enabled. Function-local static
// so it is safe from other translation units' static initializers
// (the NEBULA_TRACE auto-start runs before main).
struct DebugState
{
    std::atomic<bool> any{false};
    std::mutex mutex;
    std::set<std::string> components;
    bool all = false;
    std::once_flag envOnce;
};

DebugState &
debugState()
{
    static DebugState state;
    return state;
}

/** Parse "chip,noc" / "all" into the component set (caller holds lock). */
void
parseComponentsLocked(DebugState &state, const std::string &components)
{
    state.components.clear();
    state.all = false;
    std::string token;
    auto flush = [&] {
        if (token.empty())
            return;
        if (token == "all" || token == "*" || token == "1")
            state.all = true;
        else
            state.components.insert(token);
        token.clear();
    };
    for (char c : components) {
        if (c == ',' || c == ' ')
            flush();
        else
            token += c;
    }
    flush();
    state.any.store(state.all || !state.components.empty(),
                    std::memory_order_release);
}

/** One-time pickup of the NEBULA_DEBUG environment variable. */
void
initDebugFromEnv()
{
    DebugState &state = debugState();
    std::call_once(state.envOnce, [&] {
        const char *env = std::getenv("NEBULA_DEBUG");
        if (env && *env) {
            std::lock_guard<std::mutex> lock(state.mutex);
            parseComponentsLocked(state, env);
        }
    });
}

/**
 * The single sink every non-terminating level routes through, so
 * setLogQuiet covers debug/inform/warn uniformly.
 */
void
sink(LogLevel level, const char *component, const std::string &msg)
{
    if (g_quiet)
        return;
    // One pre-formatted insertion per line so concurrent threads (e.g.
    // engine workers) never interleave mid-line.
    std::string line;
    switch (level) {
      case LogLevel::Debug:
        line = std::string("debug: [") + (component ? component : "?") +
               "] " + msg + "\n";
        break;
      case LogLevel::Inform:
        line = "info: " + msg + "\n";
        break;
      case LogLevel::Warn:
        line = "warn: " + msg + "\n";
        break;
    }
    std::cerr << line << std::flush;
}

} // namespace

bool
logQuiet()
{
    return g_quiet;
}

void
setLogQuiet(bool quiet)
{
    g_quiet = quiet;
}

void
setDebugComponents(const std::string &components)
{
    // Consume the env var first so an explicit call always wins over it.
    initDebugFromEnv();
    DebugState &state = debugState();
    std::lock_guard<std::mutex> lock(state.mutex);
    parseComponentsLocked(state, components);
}

bool
debugEnabled(const char *component)
{
    DebugState &state = debugState();
    initDebugFromEnv();
    if (!state.any.load(std::memory_order_acquire))
        return false;
    std::lock_guard<std::mutex> lock(state.mutex);
    return state.all ||
           state.components.count(component ? component : "") > 0;
}

std::vector<std::string>
debugComponents()
{
    initDebugFromEnv();
    DebugState &state = debugState();
    std::lock_guard<std::mutex> lock(state.mutex);
    if (state.all)
        return {"*"};
    return {state.components.begin(), state.components.end()};
}

namespace detail {

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "panic: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::cerr << "fatal: " << msg << "\n  at " << file << ":" << line
              << std::endl;
    std::exit(1);
}

void
warnImpl(const std::string &msg)
{
    sink(LogLevel::Warn, nullptr, msg);
}

void
informImpl(const std::string &msg)
{
    sink(LogLevel::Inform, nullptr, msg);
}

void
debugImpl(const char *component, const std::string &msg)
{
    sink(LogLevel::Debug, component, msg);
}

} // namespace detail
} // namespace nebula
