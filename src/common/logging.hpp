/**
 * @file
 * Status-message and error-reporting helpers in the gem5 idiom.
 *
 * Two error paths are provided and they are not interchangeable:
 *  - panic()  : an internal invariant was violated (a simulator bug).
 *               Prints the message and calls std::abort().
 *  - fatal()  : the simulation cannot continue because of a user-level
 *               problem (bad configuration, impossible parameters).
 *               Prints the message and calls std::exit(1).
 *
 * Non-terminating status messages:
 *  - warn()   : something may be modelled imprecisely.
 *  - inform() : normal operating status the user may want to see.
 */

#ifndef NEBULA_COMMON_LOGGING_HPP
#define NEBULA_COMMON_LOGGING_HPP

#include <sstream>
#include <string>

namespace nebula {

namespace detail {

/** Terminate with an "abort" after printing a panic message. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Terminate with exit(1) after printing a fatal message. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a non-fatal warning message to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Concatenate a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** True once quietMode() has been called; suppresses warn/inform output. */
bool logQuiet();

/** Suppress (or re-enable) warn()/inform() output, e.g. inside tests. */
void setLogQuiet(bool quiet);

} // namespace nebula

#define NEBULA_PANIC(...)                                                     \
    ::nebula::detail::panicImpl(__FILE__, __LINE__,                           \
                                ::nebula::detail::concat(__VA_ARGS__))

#define NEBULA_FATAL(...)                                                     \
    ::nebula::detail::fatalImpl(__FILE__, __LINE__,                           \
                                ::nebula::detail::concat(__VA_ARGS__))

#define NEBULA_WARN(...)                                                      \
    ::nebula::detail::warnImpl(::nebula::detail::concat(__VA_ARGS__))

#define NEBULA_INFORM(...)                                                    \
    ::nebula::detail::informImpl(::nebula::detail::concat(__VA_ARGS__))

/** panic() unless the given condition holds. */
#define NEBULA_ASSERT(cond, ...)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::nebula::detail::panicImpl(                                      \
                __FILE__, __LINE__,                                           \
                ::nebula::detail::concat("assertion '", #cond, "' failed: ", \
                                         ##__VA_ARGS__));                     \
        }                                                                     \
    } while (0)

#endif // NEBULA_COMMON_LOGGING_HPP
