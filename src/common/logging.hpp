/**
 * @file
 * Status-message and error-reporting helpers in the gem5 idiom.
 *
 * Two error paths are provided and they are not interchangeable:
 *  - panic()  : an internal invariant was violated (a simulator bug).
 *               Prints the message and calls std::abort().
 *  - fatal()  : the simulation cannot continue because of a user-level
 *               problem (bad configuration, impossible parameters).
 *               Prints the message and calls std::exit(1).
 *
 * Non-terminating status messages route through one leveled sink (so
 * setLogQuiet() covers every level uniformly):
 *  - warn()         : something may be modelled imprecisely.
 *  - inform()       : normal operating status the user may want to see.
 *  - NEBULA_DEBUG() : per-component developer tracing in the gem5
 *                     DPRINTF idiom. Off by default; enabled per
 *                     component with setDebugComponents("chip,noc") or
 *                     the NEBULA_DEBUG environment variable ("all"
 *                     enables every component). Disabled components
 *                     cost one atomic load and never evaluate the
 *                     message arguments.
 */

#ifndef NEBULA_COMMON_LOGGING_HPP
#define NEBULA_COMMON_LOGGING_HPP

#include <sstream>
#include <string>
#include <vector>

namespace nebula {

/** Severity of a non-terminating log message. */
enum class LogLevel { Debug = 0, Inform = 1, Warn = 2 };

namespace detail {

/** Terminate with an "abort" after printing a panic message. */
[[noreturn]] void panicImpl(const char *file, int line, const std::string &msg);

/** Terminate with exit(1) after printing a fatal message. */
[[noreturn]] void fatalImpl(const char *file, int line, const std::string &msg);

/** Print a non-fatal warning message to stderr. */
void warnImpl(const std::string &msg);

/** Print an informational message to stderr. */
void informImpl(const std::string &msg);

/** Print a per-component debug message to stderr. */
void debugImpl(const char *component, const std::string &msg);

/** Concatenate a parameter pack into one string via ostringstream. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace detail

/** True once setLogQuiet(true) was called; suppresses every log level. */
bool logQuiet();

/**
 * Suppress (or re-enable) warn()/inform()/NEBULA_DEBUG() output, e.g.
 * inside tests. All non-terminating levels share one sink, so quiet
 * mode covers them uniformly.
 */
void setLogQuiet(bool quiet);

/**
 * Enable NEBULA_DEBUG output for a comma-separated component list,
 * e.g. "chip,noc" ("all" or "1" enables everything, "" disables).
 * Overrides whatever the NEBULA_DEBUG environment variable selected.
 */
void setDebugComponents(const std::string &components);

/** True when NEBULA_DEBUG(component, ...) would print. */
bool debugEnabled(const char *component);

/** The currently enabled debug components, sorted ("*" for all). */
std::vector<std::string> debugComponents();

} // namespace nebula

#define NEBULA_PANIC(...)                                                     \
    ::nebula::detail::panicImpl(__FILE__, __LINE__,                           \
                                ::nebula::detail::concat(__VA_ARGS__))

#define NEBULA_FATAL(...)                                                     \
    ::nebula::detail::fatalImpl(__FILE__, __LINE__,                           \
                                ::nebula::detail::concat(__VA_ARGS__))

#define NEBULA_WARN(...)                                                      \
    ::nebula::detail::warnImpl(::nebula::detail::concat(__VA_ARGS__))

#define NEBULA_INFORM(...)                                                    \
    ::nebula::detail::informImpl(::nebula::detail::concat(__VA_ARGS__))

/**
 * Per-component leveled debug output (gem5 DPRINTF style). The message
 * arguments are evaluated only when the component is enabled.
 */
#define NEBULA_DEBUG(component, ...)                                          \
    do {                                                                      \
        if (::nebula::debugEnabled(component)) {                              \
            ::nebula::detail::debugImpl(                                      \
                component, ::nebula::detail::concat(__VA_ARGS__));            \
        }                                                                     \
    } while (0)

/** panic() unless the given condition holds. */
#define NEBULA_ASSERT(cond, ...)                                              \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::nebula::detail::panicImpl(                                      \
                __FILE__, __LINE__,                                           \
                ::nebula::detail::concat("assertion '", #cond, "' failed: ", \
                                         ##__VA_ARGS__));                     \
        }                                                                     \
    } while (0)

#endif // NEBULA_COMMON_LOGGING_HPP
