#include "common/rng.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace nebula {

namespace {

/** SplitMix64 step, used only to expand seeds. */
uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

} // namespace

Rng::Rng(uint64_t seed)
{
    reseed(seed);
}

void
Rng::reseed(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : state_)
        s = splitmix64(sm);
    hasSpare_ = false;
    spare_ = 0.0;
}

int
Rng::uniformInt(int lo, int hi)
{
    NEBULA_ASSERT(hi >= lo, "uniformInt range inverted: ", lo, " > ", hi);
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int>(next() % span);
}

double
Rng::gaussian()
{
    if (hasSpare_) {
        hasSpare_ = false;
        return spare_;
    }
    double u, v, s;
    do {
        u = uniform(-1.0, 1.0);
        v = uniform(-1.0, 1.0);
        s = u * u + v * v;
    } while (s >= 1.0 || s == 0.0);
    const double mul = std::sqrt(-2.0 * std::log(s) / s);
    spare_ = v * mul;
    hasSpare_ = true;
    return u * mul;
}

double
Rng::gaussian(double mean, double sigma)
{
    return mean + sigma * gaussian();
}

int
Rng::poisson(double lambda)
{
    if (lambda <= 0.0)
        return 0;
    if (lambda < 30.0) {
        // Knuth's multiplication method.
        const double limit = std::exp(-lambda);
        double prod = uniform();
        int n = 0;
        while (prod > limit) {
            prod *= uniform();
            ++n;
        }
        return n;
    }
    // Gaussian approximation for large rates.
    const double draw = gaussian(lambda, std::sqrt(lambda));
    return draw < 0.0 ? 0 : static_cast<int>(draw + 0.5);
}

void
Rng::shuffle(std::vector<int> &values)
{
    for (size_t i = values.size(); i > 1; --i) {
        size_t j = next() % i;
        std::swap(values[i - 1], values[j]);
    }
}

Rng
Rng::fork()
{
    return Rng(next() ^ 0xd1b54a32d192ed03ull);
}

} // namespace nebula
