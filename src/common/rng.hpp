/**
 * @file
 * Deterministic random number generation for simulation components.
 *
 * Every stochastic component in the simulator draws from an Rng instance
 * seeded explicitly, so whole-chip simulations are reproducible bit-for-bit
 * given a seed. The generator is xoshiro256** which is fast, tiny and has
 * no global state.
 */

#ifndef NEBULA_COMMON_RNG_HPP
#define NEBULA_COMMON_RNG_HPP

#include <cstdint>
#include <vector>

namespace nebula {

/**
 * Small deterministic PRNG (xoshiro256**) with the distribution helpers
 * simulation code needs: uniforms, Gaussians, Bernoulli and Poisson draws.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (SplitMix64 expansion of the seed). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /**
     * Reset to the stream of a freshly constructed Rng(seed). Also drops
     * any cached Gaussian spare so the reseeded stream is independent of
     * draws made before the reseed.
     */
    void reseed(uint64_t seed);

    /**
     * Next raw 64-bit value. Defined inline (as are uniform() and
     * bernoulli()) so per-element hot loops -- the Poisson rate encoder
     * draws one Bernoulli per pixel per timestep -- pay no call
     * overhead. The generated stream is identical to the historical
     * out-of-line definition.
     */
    uint64_t next()
    {
        const uint64_t result = rotl64(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;

        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl64(state_[3], 45);

        return result;
    }

    /** Uniform double in [0, 1). */
    double uniform()
    {
        // 53 high bits -> double in [0, 1).
        return (next() >> 11) * 0x1.0p-53;
    }

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi)
    {
        return lo + (hi - lo) * uniform();
    }

    /** Uniform integer in [lo, hi] inclusive. */
    int uniformInt(int lo, int hi);

    /** Standard normal draw (Marsaglia polar method with caching). */
    double gaussian();

    /** Normal draw with the given mean and standard deviation. */
    double gaussian(double mean, double sigma);

    /** Bernoulli draw: true with probability p (p clamped to [0,1]). */
    bool bernoulli(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Poisson draw with the given rate (Knuth for small, normal approx). */
    int poisson(double lambda);

    /** Fisher-Yates shuffle of an index vector. */
    void shuffle(std::vector<int> &values);

    /** Fork a child generator with a decorrelated seed stream. */
    Rng fork();

  private:
    static constexpr uint64_t rotl64(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    uint64_t state_[4];
    bool hasSpare_ = false;
    double spare_ = 0.0;
};

} // namespace nebula

#endif // NEBULA_COMMON_RNG_HPP
