/**
 * @file
 * Function multi-versioning for the handful of numeric hot loops on the
 * fast evaluation paths (sparse crossbar accumulation, pre-activation
 * reconstruction).
 */

#ifndef NEBULA_COMMON_SIMD_HPP
#define NEBULA_COMMON_SIMD_HPP

#if defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define NEBULA_SANITIZED 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define NEBULA_SANITIZED 1
#endif
#endif

#if defined(__x86_64__) && defined(__ELF__) && !defined(NEBULA_SANITIZED) && \
    (defined(__GNUC__) || defined(__clang__))
/**
 * Compile the annotated function three times -- baseline ISA, AVX2 and
 * AVX-512F -- and pick the widest the CPU supports at load time (GNU
 * ifunc dispatch). The AVX2 clone widens the column loops from 2 to 4
 * doubles per instruction, the AVX-512 clone to 8. The clones
 * deliberately do NOT enable FMA: fused multiply-adds round
 * differently, and the fast paths are pinned bit-for-bit to the scalar
 * reference loops by the differential tests. Vector width alone never
 * changes results -- each output element sees the same mul-then-add
 * sequence regardless of how many neighbours share the instruction.
 *
 * Not under TSan/ASan: the ifunc resolvers run before the sanitizer
 * runtime is initialized and crash the binary at load.
 */
#define NEBULA_TARGET_CLONES \
    __attribute__((target_clones("default", "avx2", "avx512f")))
#else
#define NEBULA_TARGET_CLONES
#endif

#endif // NEBULA_COMMON_SIMD_HPP
