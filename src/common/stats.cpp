#include "common/stats.hpp"

#include <algorithm>
#include <fstream>

#include "common/json.hpp"
#include "common/logging.hpp"

namespace nebula {

namespace {

/** CSV cell for a double: compact, locale-free, deterministic. */
std::string
csvNum(double v)
{
    if (!std::isfinite(v))
        return "0";
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%.9g", v);
    return buf;
}

} // namespace

void
ScalarStat::sample(double value)
{
    sum_ += value;
    ++count_;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
ScalarStat::add(double value)
{
    sum_ += value;
}

void
ScalarStat::reset()
{
    *this = ScalarStat();
}

void
ScalarStat::merge(const ScalarStat &other)
{
    sum_ += other.sum_;
    count_ += other.count_;
    // min_/max_ start at +/-inf, so merging an unsampled stat (or into
    // one) degrades gracefully without special cases.
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), bins_(static_cast<size_t>(std::max(1, buckets)), 0)
{
    NEBULA_ASSERT(hi > lo, "histogram range inverted");
}

void
Histogram::sample(double value)
{
    const int n = static_cast<int>(bins_.size());
    double t = (value - lo_) / (hi_ - lo_) * n;
    int idx = static_cast<int>(t);
    idx = std::clamp(idx, 0, n - 1);
    ++bins_[static_cast<size_t>(idx)];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

double
Histogram::binLow(int i) const
{
    return lo_ + (hi_ - lo_) * i / static_cast<double>(bins_.size());
}

double
Histogram::binHigh(int i) const
{
    return lo_ + (hi_ - lo_) * (i + 1) / static_cast<double>(bins_.size());
}

double
Histogram::quantile(double q) const
{
    if (count_ == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const double pos = q * static_cast<double>(count_);
    double cum = 0.0;
    for (size_t i = 0; i < bins_.size(); ++i) {
        const double n = static_cast<double>(bins_[i]);
        if (n > 0.0 && cum + n >= pos) {
            const double frac =
                std::clamp((pos - cum) / n, 0.0, 1.0);
            const int idx = static_cast<int>(i);
            const double est =
                binLow(idx) + frac * (binHigh(idx) - binLow(idx));
            return std::clamp(est, min_, max_);
        }
        cum += n;
    }
    return max_;
}

void
Histogram::merge(const Histogram &other)
{
    if (other.count_ == 0)
        return;
    if (lo_ == other.lo_ && hi_ == other.hi_ &&
        bins_.size() == other.bins_.size()) {
        for (size_t i = 0; i < bins_.size(); ++i)
            bins_[i] += other.bins_[i];
    } else {
        // Shape mismatch: re-bin the other histogram's bucket midpoints.
        // Counts and the exact sum/min/max survive; positions quantize.
        const int n = static_cast<int>(bins_.size());
        for (size_t i = 0; i < other.bins_.size(); ++i) {
            if (other.bins_[i] == 0)
                continue;
            const int src = static_cast<int>(i);
            const double mid =
                0.5 * (other.binLow(src) + other.binHigh(src));
            int idx = static_cast<int>((mid - lo_) / (hi_ - lo_) * n);
            idx = std::clamp(idx, 0, n - 1);
            bins_[static_cast<size_t>(idx)] += other.bins_[i];
        }
    }
    count_ += other.count_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    count_ = 0;
    sum_ = 0.0;
    min_ = std::numeric_limits<double>::infinity();
    max_ = -std::numeric_limits<double>::infinity();
}

ScalarStat &
StatGroup::scalar(const std::string &name)
{
    return scalars_[name];
}

bool
StatGroup::hasScalar(const std::string &name) const
{
    return scalars_.count(name) > 0;
}

const ScalarStat &
StatGroup::scalarAt(const std::string &name) const
{
    auto it = scalars_.find(name);
    NEBULA_ASSERT(it != scalars_.end(), "unknown stat '", name, "' in group '",
                  name_, "'");
    return it->second;
}

std::vector<std::string>
StatGroup::scalarNames() const
{
    std::vector<std::string> names;
    names.reserve(scalars_.size());
    for (const auto &kv : scalars_)
        names.push_back(kv.first);
    return names;
}

Histogram &
StatGroup::histogram(const std::string &name, double lo, double hi,
                     int buckets)
{
    auto it = histograms_.find(name);
    if (it == histograms_.end())
        it = histograms_.emplace(name, Histogram(lo, hi, buckets)).first;
    return it->second;
}

bool
StatGroup::hasHistogram(const std::string &name) const
{
    return histograms_.count(name) > 0;
}

const Histogram &
StatGroup::histogramAt(const std::string &name) const
{
    auto it = histograms_.find(name);
    NEBULA_ASSERT(it != histograms_.end(), "unknown histogram '", name,
                  "' in group '", name_, "'");
    return it->second;
}

std::vector<std::string>
StatGroup::histogramNames() const
{
    std::vector<std::string> names;
    names.reserve(histograms_.size());
    for (const auto &kv : histograms_)
        names.push_back(kv.first);
    return names;
}

Table
StatGroup::toTable() const
{
    Table table(name_, {"stat", "sum", "count", "mean", "min", "max"});
    for (const auto &kv : scalars_) {
        const ScalarStat &s = kv.second;
        table.row()
            .add(kv.first)
            .add(s.sum(), 4)
            .add(static_cast<long long>(s.count()))
            .add(s.mean(), 4)
            .add(s.min(), 4)
            .add(s.max(), 4);
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        table.row()
            .add(kv.first)
            .add(h.sum(), 4)
            .add(static_cast<long long>(h.count()))
            .add(h.mean(), 4)
            .add(h.min(), 4)
            .add(h.max(), 4);
    }
    return table;
}

Table
StatGroup::histogramTable() const
{
    Table table(name_ + " quantiles",
                {"hist", "count", "mean", "p50", "p95", "p99"});
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        table.row()
            .add(kv.first)
            .add(static_cast<long long>(h.count()))
            .add(h.mean(), 4)
            .add(h.p50(), 4)
            .add(h.p95(), 4)
            .add(h.p99(), 4);
    }
    return table;
}

std::string
StatGroup::toCsv() const
{
    std::string out =
        "kind,stat,sum,count,mean,min,max,p50,p95,p99\n";
    for (const auto &kv : scalars_) {
        const ScalarStat &s = kv.second;
        out += "scalar," + kv.first + "," + csvNum(s.sum()) + "," +
               std::to_string(s.count()) + "," + csvNum(s.mean()) + "," +
               csvNum(s.min()) + "," + csvNum(s.max()) + ",,,\n";
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        out += "histogram," + kv.first + "," + csvNum(h.sum()) + "," +
               std::to_string(h.count()) + "," + csvNum(h.mean()) + "," +
               csvNum(h.min()) + "," + csvNum(h.max()) + "," +
               csvNum(h.p50()) + "," + csvNum(h.p95()) + "," +
               csvNum(h.p99()) + "\n";
    }
    return out;
}

std::string
StatGroup::toJson() const
{
    std::string out = "{\n  \"group\": " + json::quoted(name_) +
                      ",\n  \"scalars\": {";
    bool first = true;
    for (const auto &kv : scalars_) {
        const ScalarStat &s = kv.second;
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json::quoted(kv.first) + ": {\"sum\": " +
               json::number(s.sum()) +
               ", \"count\": " + std::to_string(s.count()) +
               ", \"mean\": " + json::number(s.mean()) +
               ", \"min\": " + json::number(s.min()) +
               ", \"max\": " + json::number(s.max()) + "}";
    }
    out += first ? "},\n" : "\n  },\n";
    out += "  \"histograms\": {";
    first = true;
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json::quoted(kv.first) + ": {\"count\": " +
               std::to_string(h.count()) +
               ", \"sum\": " + json::number(h.sum()) +
               ", \"mean\": " + json::number(h.mean()) +
               ", \"min\": " + json::number(h.min()) +
               ", \"max\": " + json::number(h.max()) +
               ", \"p50\": " + json::number(h.p50()) +
               ", \"p95\": " + json::number(h.p95()) +
               ", \"p99\": " + json::number(h.p99()) +
               ", \"lo\": " + json::number(h.lo()) +
               ", \"hi\": " + json::number(h.hi()) + ", \"bins\": [";
        for (size_t i = 0; i < h.bins().size(); ++i) {
            if (i)
                out += ", ";
            out += std::to_string(h.bins()[i]);
        }
        out += "]}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

bool
StatGroup::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toCsv();
    return static_cast<bool>(out);
}

bool
StatGroup::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    out << toJson();
    return static_cast<bool>(out);
}

void
StatGroup::reset()
{
    for (auto &kv : scalars_)
        kv.second.reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &kv : other.scalars_)
        scalars_[kv.first].merge(kv.second);
    for (const auto &kv : other.histograms_) {
        const Histogram &h = kv.second;
        histogram(kv.first, h.lo(), h.hi(),
                  static_cast<int>(h.bins().size()))
            .merge(h);
    }
}

} // namespace nebula
