#include "common/stats.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace nebula {

void
ScalarStat::sample(double value)
{
    sum_ += value;
    ++count_;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
}

void
ScalarStat::add(double value)
{
    sum_ += value;
}

void
ScalarStat::reset()
{
    *this = ScalarStat();
}

void
ScalarStat::merge(const ScalarStat &other)
{
    sum_ += other.sum_;
    count_ += other.count_;
    // min_/max_ start at +/-inf, so merging an unsampled stat (or into
    // one) degrades gracefully without special cases.
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

Histogram::Histogram(double lo, double hi, int buckets)
    : lo_(lo), hi_(hi), bins_(static_cast<size_t>(std::max(1, buckets)), 0)
{
    NEBULA_ASSERT(hi > lo, "histogram range inverted");
}

void
Histogram::sample(double value)
{
    const int n = static_cast<int>(bins_.size());
    double t = (value - lo_) / (hi_ - lo_) * n;
    int idx = static_cast<int>(t);
    idx = std::clamp(idx, 0, n - 1);
    ++bins_[static_cast<size_t>(idx)];
    ++count_;
}

double
Histogram::binLow(int i) const
{
    return lo_ + (hi_ - lo_) * i / static_cast<double>(bins_.size());
}

double
Histogram::binHigh(int i) const
{
    return lo_ + (hi_ - lo_) * (i + 1) / static_cast<double>(bins_.size());
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    count_ = 0;
}

ScalarStat &
StatGroup::scalar(const std::string &name)
{
    return scalars_[name];
}

bool
StatGroup::hasScalar(const std::string &name) const
{
    return scalars_.count(name) > 0;
}

const ScalarStat &
StatGroup::scalarAt(const std::string &name) const
{
    auto it = scalars_.find(name);
    NEBULA_ASSERT(it != scalars_.end(), "unknown stat '", name, "' in group '",
                  name_, "'");
    return it->second;
}

std::vector<std::string>
StatGroup::scalarNames() const
{
    std::vector<std::string> names;
    names.reserve(scalars_.size());
    for (const auto &kv : scalars_)
        names.push_back(kv.first);
    return names;
}

Table
StatGroup::toTable() const
{
    Table table(name_, {"stat", "sum", "count", "mean", "min", "max"});
    for (const auto &kv : scalars_) {
        const ScalarStat &s = kv.second;
        table.row()
            .add(kv.first)
            .add(s.sum(), 4)
            .add(static_cast<long long>(s.count()))
            .add(s.mean(), 4)
            .add(s.min(), 4)
            .add(s.max(), 4);
    }
    return table;
}

void
StatGroup::reset()
{
    for (auto &kv : scalars_)
        kv.second.reset();
}

void
StatGroup::merge(const StatGroup &other)
{
    for (const auto &kv : other.scalars_)
        scalars_[kv.first].merge(kv.second);
}

} // namespace nebula
