/**
 * @file
 * Lightweight named-statistics registry in the spirit of gem5's stats
 * package. Components register scalar counters and histograms against a
 * StatGroup; the group can be rendered as a table, CSV or JSON at the
 * end of a run, and worker-local groups merge losslessly (scalars and
 * histograms both) so concurrent hot paths stay lock-free.
 */

#ifndef NEBULA_COMMON_STATS_HPP
#define NEBULA_COMMON_STATS_HPP

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace nebula {

/** A running scalar statistic (sum / count / min / max). */
class ScalarStat
{
  public:
    /** Add one sample. */
    void sample(double value);

    /** Add @p value to the running sum without counting a sample. */
    void add(double value);

    /** Increment the sum by one. */
    void inc() { add(1.0); }

    double sum() const { return sum_; }
    uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Reset to the initial state. */
    void reset();

    /**
     * Fold another scalar into this one, as if every sample of
     * @p other had been sampled here. Merging an empty stat is a
     * no-op; merging into an empty stat copies @p other.
     */
    void merge(const ScalarStat &other);

  private:
    double sum_ = 0.0;
    uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * A fixed-bucket histogram statistic with exact sum/min/max tracking
 * and in-bucket-interpolated quantile estimation.
 */
class Histogram
{
  public:
    /** Create with @p buckets equal-width bins spanning [lo, hi). */
    Histogram(double lo = 0.0, double hi = 1.0, int buckets = 10);

    /** Add one sample (out-of-range samples clamp to the edge bins). */
    void sample(double value);

    uint64_t count() const { return count_; }
    const std::vector<uint64_t> &bins() const { return bins_; }
    double binLow(int i) const;
    double binHigh(int i) const;
    double lo() const { return lo_; }
    double hi() const { return hi_; }

    double sum() const { return sum_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /**
     * Estimate the @p q quantile (q in [0, 1]) by linear interpolation
     * inside the covering bucket, clamped to the exact observed
     * [min, max] so edge-bucket clamping cannot widen the estimate.
     * Returns 0 when the histogram is empty.
     */
    double quantile(double q) const;
    double p50() const { return quantile(0.50); }
    double p95() const { return quantile(0.95); }
    double p99() const { return quantile(0.99); }

    /**
     * Fold another histogram into this one. Identically-shaped
     * histograms (same range and bucket count -- the worker-local merge
     * case) merge bin-exactly; mismatched shapes fall back to re-binning
     * the other histogram's bucket midpoints, which preserves counts and
     * the exact sum/min/max but quantizes sample positions to the other
     * histogram's bucket width.
     */
    void merge(const Histogram &other);

    /** Reset all bins and the sample accumulators. */
    void reset();

  private:
    double lo_, hi_;
    std::vector<uint64_t> bins_;
    uint64_t count_ = 0;
    double sum_ = 0.0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * A named collection of statistics. Lookup creates on first use, so
 * components can write `group.scalar("adc.conversions").inc()` without
 * registration boilerplate.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "stats") : name_(std::move(name)) {}

    /** Scalar stat by name (created on first use). */
    ScalarStat &scalar(const std::string &name);

    /** True if the named scalar exists. */
    bool hasScalar(const std::string &name) const;

    /** Read-only access; panics if the stat does not exist. */
    const ScalarStat &scalarAt(const std::string &name) const;

    /** All scalar names in sorted order. */
    std::vector<std::string> scalarNames() const;

    /**
     * Histogram by name. The shape arguments apply on first use only;
     * later lookups return the existing histogram unchanged.
     */
    Histogram &histogram(const std::string &name, double lo = 0.0,
                         double hi = 1.0, int buckets = 10);

    /** True if the named histogram exists. */
    bool hasHistogram(const std::string &name) const;

    /** Read-only access; panics if the histogram does not exist. */
    const Histogram &histogramAt(const std::string &name) const;

    /** All histogram names in sorted order. */
    std::vector<std::string> histogramNames() const;

    /**
     * Render all stats as a table: scalar rows first, then one
     * sum/count/mean/min/max row per histogram.
     */
    Table toTable() const;

    /** Quantile view of the histograms (count, mean, p50/p95/p99). */
    Table histogramTable() const;

    /**
     * Render as CSV: one `kind,stat,sum,count,mean,min,max,p50,p95,p99`
     * line per stat (quantile columns empty for scalars). Deterministic
     * for a given set of samples.
     */
    std::string toCsv() const;

    /**
     * Render as a JSON object with "scalars" and "histograms" sections;
     * deterministic (names sorted) so snapshots diff cleanly.
     */
    std::string toJson() const;

    /** Write toCsv()/toJson() to a file; false on I/O error. */
    bool writeCsv(const std::string &path) const;
    bool writeJson(const std::string &path) const;

    /** Reset every stat in the group. */
    void reset();

    /**
     * Merge another group's scalars and histograms into this one by
     * name (used to aggregate worker-local stat groups after a run;
     * keeps worker hot paths lock-free).
     */
    void merge(const StatGroup &other);

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, ScalarStat> scalars_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace nebula

#endif // NEBULA_COMMON_STATS_HPP
