/**
 * @file
 * Lightweight named-statistics registry in the spirit of gem5's stats
 * package. Components register scalar counters, distributions and
 * per-bucket vectors against a StatGroup; the group can be rendered as a
 * table or CSV at the end of a run.
 */

#ifndef NEBULA_COMMON_STATS_HPP
#define NEBULA_COMMON_STATS_HPP

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "common/table.hpp"

namespace nebula {

/** A running scalar statistic (sum / count / min / max). */
class ScalarStat
{
  public:
    /** Add one sample. */
    void sample(double value);

    /** Add @p value to the running sum without counting a sample. */
    void add(double value);

    /** Increment the sum by one. */
    void inc() { add(1.0); }

    double sum() const { return sum_; }
    uint64_t count() const { return count_; }
    double mean() const { return count_ ? sum_ / count_ : 0.0; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    /** Reset to the initial state. */
    void reset();

    /**
     * Fold another scalar into this one, as if every sample of
     * @p other had been sampled here. Merging an empty stat is a
     * no-op; merging into an empty stat copies @p other.
     */
    void merge(const ScalarStat &other);

  private:
    double sum_ = 0.0;
    uint64_t count_ = 0;
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/** A fixed-bucket histogram statistic. */
class Histogram
{
  public:
    /** Create with @p buckets equal-width bins spanning [lo, hi). */
    Histogram(double lo = 0.0, double hi = 1.0, int buckets = 10);

    /** Add one sample (out-of-range samples clamp to the edge bins). */
    void sample(double value);

    uint64_t count() const { return count_; }
    const std::vector<uint64_t> &bins() const { return bins_; }
    double binLow(int i) const;
    double binHigh(int i) const;

    /** Reset all bins. */
    void reset();

  private:
    double lo_, hi_;
    std::vector<uint64_t> bins_;
    uint64_t count_ = 0;
};

/**
 * A named collection of statistics. Lookup creates on first use, so
 * components can write `group.scalar("adc.conversions").inc()` without
 * registration boilerplate.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "stats") : name_(std::move(name)) {}

    /** Scalar stat by name (created on first use). */
    ScalarStat &scalar(const std::string &name);

    /** True if the named scalar exists. */
    bool hasScalar(const std::string &name) const;

    /** Read-only access; panics if the stat does not exist. */
    const ScalarStat &scalarAt(const std::string &name) const;

    /** All scalar names in sorted order. */
    std::vector<std::string> scalarNames() const;

    /** Render all scalar stats as a table. */
    Table toTable() const;

    /** Reset every stat in the group. */
    void reset();

    /**
     * Merge another group's scalars into this one by name (used to
     * aggregate worker-local stat groups after a run; keeps worker hot
     * paths lock-free).
     */
    void merge(const StatGroup &other);

    const std::string &name() const { return name_; }

  private:
    std::string name_;
    std::map<std::string, ScalarStat> scalars_;
};

} // namespace nebula

#endif // NEBULA_COMMON_STATS_HPP
