#include "common/table.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "common/logging.hpp"

namespace nebula {

std::string
formatDouble(double value, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << value;
    return oss.str();
}

std::string
formatRatio(double value, int precision)
{
    return formatDouble(value, precision) + "x";
}

Table::Table(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
}

Table &
Table::row()
{
    rows_.emplace_back();
    return *this;
}

Table &
Table::add(const std::string &cell)
{
    NEBULA_ASSERT(!rows_.empty(), "add() before row()");
    NEBULA_ASSERT(rows_.back().size() < headers_.size(),
                  "row has more cells than headers in table '", title_, "'");
    rows_.back().push_back(cell);
    return *this;
}

Table &
Table::add(double value, int precision)
{
    return add(formatDouble(value, precision));
}

Table &
Table::add(long long value)
{
    return add(std::to_string(value));
}

namespace {

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!(std::isdigit(static_cast<unsigned char>(c)) || c == '.' ||
              c == '-' || c == '+' || c == 'e' || c == 'x' || c == '%'))
            return false;
    }
    return true;
}

} // namespace

void
Table::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size(), 0);
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    size_t total = headers_.size() * 3 + 1;
    for (size_t w : widths)
        total += w;

    os << "\n== " << title_ << " ==\n";
    auto rule = [&]() { os << std::string(total, '-') << "\n"; };

    rule();
    os << "|";
    for (size_t c = 0; c < headers_.size(); ++c)
        os << " " << std::setw(static_cast<int>(widths[c])) << std::left
           << headers_[c] << " |";
    os << "\n";
    rule();
    for (const auto &row : rows_) {
        os << "|";
        for (size_t c = 0; c < headers_.size(); ++c) {
            const std::string cell = c < row.size() ? row[c] : "";
            os << " " << std::setw(static_cast<int>(widths[c]));
            if (looksNumeric(cell))
                os << std::right;
            else
                os << std::left;
            os << cell << " |";
        }
        os << "\n";
    }
    rule();
}

void
Table::printCsv(std::ostream &os) const
{
    auto emit = [&](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            // Quote cells containing commas.
            if (cells[c].find(',') != std::string::npos)
                os << '"' << cells[c] << '"';
            else
                os << cells[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

bool
Table::writeCsv(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    printCsv(out);
    return static_cast<bool>(out);
}

} // namespace nebula
