/**
 * @file
 * ASCII and CSV table rendering used by the benchmark harness to print
 * the paper's tables and figure series in a uniform format.
 */

#ifndef NEBULA_COMMON_TABLE_HPP
#define NEBULA_COMMON_TABLE_HPP

#include <ostream>
#include <string>
#include <vector>

namespace nebula {

/**
 * Simple row/column table. Cells are stored as strings; numeric helpers
 * format with a fixed precision. Rendering right-aligns numeric-looking
 * cells and left-aligns text.
 */
class Table
{
  public:
    /** Create a table with the given title and column headers. */
    Table(std::string title, std::vector<std::string> headers);

    /** Begin a new row; subsequent add* calls append cells to it. */
    Table &row();

    /** Append a text cell to the current row. */
    Table &add(const std::string &cell);

    /** Append a formatted numeric cell (fixed, @p precision decimals). */
    Table &add(double value, int precision = 3);

    /** Append an integer cell. */
    Table &add(long long value);

    /** Number of data rows so far. */
    size_t numRows() const { return rows_.size(); }

    /** Render as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Render as CSV (header row + data rows). */
    void printCsv(std::ostream &os) const;

    /** Write the CSV rendering to a file; returns false on I/O error. */
    bool writeCsv(const std::string &path) const;

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

/** Format a double with the given number of significant decimals. */
std::string formatDouble(double value, int precision = 3);

/** Format a ratio as e.g. "7.9x". */
std::string formatRatio(double value, int precision = 2);

} // namespace nebula

#endif // NEBULA_COMMON_TABLE_HPP
