/**
 * @file
 * Physical-unit helpers. All simulator-internal quantities are SI doubles
 * (seconds, amperes, volts, joules, watts, metres); these constants and
 * conversion helpers keep call sites readable and conversion-error free.
 */

#ifndef NEBULA_COMMON_UNITS_HPP
#define NEBULA_COMMON_UNITS_HPP

namespace nebula {
namespace units {

// Time.
constexpr double sec = 1.0;
constexpr double ms = 1e-3;
constexpr double us = 1e-6;
constexpr double ns = 1e-9;
constexpr double ps = 1e-12;

// Electrical.
constexpr double volt = 1.0;
constexpr double mV = 1e-3;
constexpr double amp = 1.0;
constexpr double mA = 1e-3;
constexpr double uA = 1e-6;
constexpr double nA = 1e-9;
constexpr double ohm = 1.0;
constexpr double kOhm = 1e3;
constexpr double MOhm = 1e6;
constexpr double siemens = 1.0;
constexpr double uS = 1e-6;

// Energy / power.
constexpr double joule = 1.0;
constexpr double mJ = 1e-3;
constexpr double uJ = 1e-6;
constexpr double nJ = 1e-9;
constexpr double pJ = 1e-12;
constexpr double fJ = 1e-15;
constexpr double watt = 1.0;
constexpr double mW = 1e-3;
constexpr double uW = 1e-6;

// Geometry.
constexpr double metre = 1.0;
constexpr double um = 1e-6;
constexpr double nm = 1e-9;
constexpr double mm2 = 1e-6; // square metres in one mm^2

} // namespace units

/** Convert joules to picojoules (for reporting). */
constexpr double toPj(double joules) { return joules / units::pJ; }

/** Convert joules to nanojoules (for reporting). */
constexpr double toNj(double joules) { return joules / units::nJ; }

/** Convert joules to microjoules (for reporting). */
constexpr double toUj(double joules) { return joules / units::uJ; }

/** Convert watts to milliwatts (for reporting). */
constexpr double toMw(double watts) { return watts / units::mW; }

} // namespace nebula

#endif // NEBULA_COMMON_UNITS_HPP
