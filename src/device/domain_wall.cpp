#include "device/domain_wall.hpp"

#include "common/logging.hpp"

namespace nebula {

DomainWallTrack::DomainWallTrack(const DwTrackParams &params) : p_(params)
{
    NEBULA_ASSERT(p_.length > 0 && p_.pinPitch > 0,
                  "invalid domain-wall track geometry");
    NEBULA_ASSERT(p_.numStates() >= 2, "track must have at least 2 states");
}

void
DomainWallTrack::setPosition(double position)
{
    position_ = std::clamp(position, 0.0, p_.length);
}

} // namespace nebula
