#include "device/domain_wall.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

DomainWallTrack::DomainWallTrack(const DwTrackParams &params) : p_(params)
{
    NEBULA_ASSERT(p_.length > 0 && p_.pinPitch > 0,
                  "invalid domain-wall track geometry");
    NEBULA_ASSERT(p_.numStates() >= 2, "track must have at least 2 states");
}

double
DomainWallTrack::densityFor(double current) const
{
    return current / p_.hmCrossSection();
}

double
DomainWallTrack::velocityAt(double density) const
{
    const double mag = std::abs(density);
    if (mag <= p_.criticalDensity)
        return 0.0;
    double v = p_.mobility * (mag - p_.criticalDensity);
    v = std::min(v, p_.saturationVelocity);
    return density >= 0 ? v : -v;
}

double
DomainWallTrack::applyCurrent(double current, double duration, Rng *rng)
{
    const double before = position_;
    const double v = velocityAt(densityFor(current));
    double next = position_ + v * duration;
    if (rng && p_.thermalJitter > 0.0 && v != 0.0)
        next += rng->gaussian(0.0, p_.thermalJitter * p_.pinPitch);
    position_ = std::clamp(next, 0.0, p_.length);
    return position_ - before;
}

double
DomainWallTrack::pinnedPosition() const
{
    const double snapped =
        std::round(position_ / p_.pinPitch) * p_.pinPitch;
    return std::clamp(snapped, 0.0, p_.length);
}

int
DomainWallTrack::stateIndex() const
{
    return static_cast<int>(std::round(pinnedPosition() / p_.pinPitch));
}

void
DomainWallTrack::setPosition(double position)
{
    position_ = std::clamp(position, 0.0, p_.length);
}

} // namespace nebula
