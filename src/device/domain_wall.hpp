/**
 * @file
 * 1-D collective-coordinate model of spin-Hall-driven domain-wall motion.
 *
 * This replaces the paper's MuMax micromagnetic simulation with the
 * standard rigid-wall approximation: below the critical current density
 * the wall stays pinned; above it the velocity grows linearly with
 * overdrive and saturates at the Walker ceiling. Stable positions are
 * quantized to a pinning grid (notch array), which is what gives the
 * synapse its 16 discrete conductance states.
 *
 * The per-pulse methods are defined inline: every ANN output element
 * and every SNN membrane update goes through them, so they must inline
 * into the neuron-device loops rather than pay a cross-TU call each.
 */

#ifndef NEBULA_DEVICE_DOMAIN_WALL_HPP
#define NEBULA_DEVICE_DOMAIN_WALL_HPP

#include <algorithm>
#include <cmath>

#include "common/rng.hpp"
#include "device/dw_params.hpp"

namespace nebula {

/**
 * One domain-wall track. Position 0 means the track is fully
 * anti-parallel under the read MTJ; position == length means fully
 * parallel.
 */
class DomainWallTrack
{
  public:
    explicit DomainWallTrack(const DwTrackParams &params);

    /**
     * Apply a current pulse through the heavy metal.
     *
     * @param current  Signed charge current (A); sign selects direction.
     * @param duration Pulse width (s).
     * @param rng      Optional RNG for thermal jitter (may be null).
     * @return displacement actually achieved (m, signed).
     */
    double applyCurrent(double current, double duration, Rng *rng = nullptr)
    {
        const double before = position_;
        const double v = velocityAt(densityFor(current));
        double next = position_ + v * duration;
        if (rng && p_.thermalJitter > 0.0 && v != 0.0)
            next += rng->gaussian(0.0, p_.thermalJitter * p_.pinPitch);
        position_ = std::clamp(next, 0.0, p_.length);
        return position_ - before;
    }

    /** DW velocity (m/s) for a given current density (A/m^2), signed. */
    double velocityAt(double density) const
    {
        const double mag = std::abs(density);
        if (mag <= p_.criticalDensity)
            return 0.0;
        double v = p_.mobility * (mag - p_.criticalDensity);
        v = std::min(v, p_.saturationVelocity);
        return density >= 0 ? v : -v;
    }

    /** Convert a charge current (A) to a current density (A/m^2). */
    double densityFor(double current) const
    {
        return current / p_.hmCrossSection();
    }

    /** Continuous wall position in [0, length]. */
    double position() const { return position_; }

    /** Position snapped to the pinning grid (what a read sees). */
    double pinnedPosition() const
    {
        const double snapped =
            std::round(position_ / p_.pinPitch) * p_.pinPitch;
        return std::clamp(snapped, 0.0, p_.length);
    }

    /** Discrete state index in [0, numStates]. */
    int stateIndex() const
    {
        return static_cast<int>(std::round(pinnedPosition() / p_.pinPitch));
    }

    /** Fraction of the track in the parallel configuration, [0, 1]. */
    double parallelFraction() const { return pinnedPosition() / p_.length; }

    /** Force the wall to a given position (used by reset circuitry). */
    void setPosition(double position);

    /** Reset the wall to the start of the track. */
    void reset() { position_ = 0.0; }

    const DwTrackParams &params() const { return p_; }

  private:
    DwTrackParams p_;
    double position_ = 0.0;
};

} // namespace nebula

#endif // NEBULA_DEVICE_DOMAIN_WALL_HPP
