/**
 * @file
 * 1-D collective-coordinate model of spin-Hall-driven domain-wall motion.
 *
 * This replaces the paper's MuMax micromagnetic simulation with the
 * standard rigid-wall approximation: below the critical current density
 * the wall stays pinned; above it the velocity grows linearly with
 * overdrive and saturates at the Walker ceiling. Stable positions are
 * quantized to a pinning grid (notch array), which is what gives the
 * synapse its 16 discrete conductance states.
 */

#ifndef NEBULA_DEVICE_DOMAIN_WALL_HPP
#define NEBULA_DEVICE_DOMAIN_WALL_HPP

#include "common/rng.hpp"
#include "device/dw_params.hpp"

namespace nebula {

/**
 * One domain-wall track. Position 0 means the track is fully
 * anti-parallel under the read MTJ; position == length means fully
 * parallel.
 */
class DomainWallTrack
{
  public:
    explicit DomainWallTrack(const DwTrackParams &params);

    /**
     * Apply a current pulse through the heavy metal.
     *
     * @param current  Signed charge current (A); sign selects direction.
     * @param duration Pulse width (s).
     * @param rng      Optional RNG for thermal jitter (may be null).
     * @return displacement actually achieved (m, signed).
     */
    double applyCurrent(double current, double duration, Rng *rng = nullptr);

    /** DW velocity (m/s) for a given current density (A/m^2), signed. */
    double velocityAt(double density) const;

    /** Convert a charge current (A) to a current density (A/m^2). */
    double densityFor(double current) const;

    /** Continuous wall position in [0, length]. */
    double position() const { return position_; }

    /** Position snapped to the pinning grid (what a read sees). */
    double pinnedPosition() const;

    /** Discrete state index in [0, numStates]. */
    int stateIndex() const;

    /** Fraction of the track in the parallel configuration, [0, 1]. */
    double parallelFraction() const { return pinnedPosition() / p_.length; }

    /** Force the wall to a given position (used by reset circuitry). */
    void setPosition(double position);

    /** Reset the wall to the start of the track. */
    void reset() { position_ = 0.0; }

    const DwTrackParams &params() const { return p_; }

  private:
    DwTrackParams p_;
    double position_ = 0.0;
};

} // namespace nebula

#endif // NEBULA_DEVICE_DOMAIN_WALL_HPP
