/**
 * @file
 * Calibration parameters for the domain-wall MTJ (DW-MTJ) device models.
 *
 * The paper simulates the magnetization dynamics in MuMax calibrated to
 * the spin-Hall torque magnetometry measurements of Emori et al. and the
 * MTJ transport in a NEGF framework. The architecture above consumes only
 * the resulting transfer curves, so this reproduction models the device
 * with a 1-D collective-coordinate domain-wall model:
 *
 *   v = mobility * (J - Jcrit)   for J > Jcrit, saturating at vSat,
 *
 * a discrete pinning grid that quantizes the stable DW positions (20 nm
 * pitch on a 320 nm track -> 16 programmable states, paper Sec. V-C), and
 * a parallel-conduction MTJ resistance model with a configurable TMR
 * ratio (7x demonstrated experimentally, paper Sec. IV-C).
 */

#ifndef NEBULA_DEVICE_DW_PARAMS_HPP
#define NEBULA_DEVICE_DW_PARAMS_HPP

#include "common/units.hpp"

namespace nebula {

/** Geometry and dynamics of one ferromagnet/heavy-metal DW track. */
struct DwTrackParams
{
    /** Track length along which the DW moves (paper: 320 nm). */
    double length = 320 * units::nm;

    /**
     * DW pinning-notch pitch. The paper's 320 nm track encodes 16
     * resistance states at a >= 20 nm minimum programmable resolution;
     * placing the 16 notches uniformly across the full track gives a
     * 320/15 ~ 21.3 nm pitch, which keeps the device's discrete levels
     * and the crossbar's 16-level weight grid exactly aligned.
     */
    double pinPitch = 320.0 / 15.0 * units::nm;

    /** Track width. Synapse ~20 nm; neuron scaled to 200 nm (Sec. V-C). */
    double width = 20 * units::nm;

    /** Ferromagnet thickness (paper Fig. 1: 0.6 nm). */
    double thickness = 0.6 * units::nm;

    /**
     * DW mobility in the linear SHE-driven regime,
     * (m/s) per (A/m^2). Calibrated so a full-scale write current moves
     * the wall across the track within one 110 ns pipeline stage.
     */
    double mobility = 6.0e-10;

    /** Critical (depinning) current density, A/m^2. */
    double criticalDensity = 4.0e9;

    /** Saturation DW velocity, m/s (Walker-breakdown ceiling). */
    double saturationVelocity = 120.0;

    /**
     * Std-dev of thermal position jitter per pulse as a fraction of the
     * pin pitch. Zero disables stochastic behaviour (default for the
     * deterministic functional path; Monte-Carlo studies turn it on).
     */
    double thermalJitter = 0.0;

    /** Heavy-metal write-path resistance seen by programming pulses. */
    double writePathResistance = 500.0 * units::ohm;

    /** Cross-sectional area of the heavy-metal layer (width x HM thick). */
    double hmCrossSection() const { return width * 3.0 * units::nm; }

    /** Number of discrete programmable states on this track. */
    int numStates() const
    {
        return static_cast<int>(length / pinPitch + 0.5) + 1;
    }
};

/** MTJ stack electrical parameters. */
struct MtjParams
{
    /**
     * Resistance-area product of the parallel state, ohm * m^2.
     * 10 Ohm*um^2 is typical of low-RA MgO junctions.
     */
    double raProductP = 10.0 * units::ohm * units::um * units::um;

    /** TMR-derived AP/P resistance ratio (7x observed, Sec. IV-C). */
    double apOverP = 7.0;

    /** Nominal MgO barrier thickness, used by the exponential RA model. */
    double oxideThickness = 1.0 * units::nm;

    /** RA doubles roughly every 0.2 nm of added barrier. */
    double oxideLambda = 0.29 * units::nm;

    /** Junction area (overlap of the MTJ pillar with the track). */
    double area = 20 * units::nm * 20 * units::nm;
};

/** Parameters of the full synapse device (track + read MTJ). */
struct SynapseDeviceParams
{
    DwTrackParams track;
    MtjParams mtj;

    /** Programming pulse width (one pipeline stage). */
    double pulseWidth = 110 * units::ns;

    /** Programming voltage across the heavy metal (paper: ~100 mV). */
    double programVoltage = 100 * units::mV;
};

/** Parameters of the spiking / non-spiking neuron device. */
struct NeuronDeviceParams
{
    DwTrackParams track;
    MtjParams mtj;

    /** Reset pulse energy (reverse current pulse after each spike). */
    double resetEnergy = 30 * units::fJ;

    /** Static power of the MTJ divider + inverter/transistor interface. */
    double interfacePower = 40.0 * 1e-9 * units::watt;

    NeuronDeviceParams()
    {
        // Neuron tracks are widened to 200 nm (Sec. V-C) to keep the
        // device resistance low relative to the crossbar columns.
        track.width = 200 * units::nm;
    }
};

} // namespace nebula

#endif // NEBULA_DEVICE_DW_PARAMS_HPP
