#include "device/mtj.hpp"

#include <cmath>

#include "common/logging.hpp"

namespace nebula {

MtjStack::MtjStack(const MtjParams &params) : p_(params)
{
    NEBULA_ASSERT(p_.area > 0, "MTJ area must be positive");
    NEBULA_ASSERT(p_.apOverP > 1.0, "AP/P ratio must exceed 1");
    const double ra = raForThickness(p_, p_.oxideThickness);
    const double rP = ra / p_.area;
    gP_ = 1.0 / rP;
    gAp_ = gP_ / p_.apOverP;
}

double
MtjStack::raForThickness(const MtjParams &params, double thickness)
{
    // Exponential tunnelling-barrier dependence around the nominal point.
    const double delta = thickness - params.oxideThickness;
    return params.raProductP * std::exp(delta / params.oxideLambda);
}

double
MtjStack::conductanceAt(double parallel_fraction) const
{
    NEBULA_ASSERT(parallel_fraction >= -1e-9 && parallel_fraction <= 1 + 1e-9,
                  "parallel fraction out of range: ", parallel_fraction);
    const double f = parallel_fraction < 0   ? 0.0
                     : parallel_fraction > 1 ? 1.0
                                             : parallel_fraction;
    return f * gP_ + (1.0 - f) * gAp_;
}

double
MtjStack::resistanceAt(double parallel_fraction) const
{
    return 1.0 / conductanceAt(parallel_fraction);
}

} // namespace nebula
