/**
 * @file
 * Electrical model of the read MTJ stack sitting on a domain-wall track.
 *
 * The free layer under the pillar is split by the domain wall into a
 * parallel and an anti-parallel fraction which conduct in parallel:
 *
 *   G(x) = f * G_P + (1 - f) * G_AP,   f = parallel fraction.
 *
 * G_P comes from the RA product (scaled exponentially with barrier
 * thickness, the NEGF-lite approximation); G_AP = G_P / (AP/P ratio).
 */

#ifndef NEBULA_DEVICE_MTJ_HPP
#define NEBULA_DEVICE_MTJ_HPP

#include "device/dw_params.hpp"

namespace nebula {

/** Read-path MTJ with a domain-wall-controlled intermediate conductance. */
class MtjStack
{
  public:
    explicit MtjStack(const MtjParams &params);

    /** Conductance of the fully parallel state (S). */
    double conductanceP() const { return gP_; }

    /** Conductance of the fully anti-parallel state (S). */
    double conductanceAp() const { return gAp_; }

    /** Conductance at a given parallel fraction in [0, 1]. */
    double conductanceAt(double parallel_fraction) const;

    /** Resistance at a given parallel fraction. */
    double resistanceAt(double parallel_fraction) const;

    /** ON/OFF conductance ratio (== AP/P resistance ratio). */
    double onOffRatio() const { return p_.apOverP; }

    const MtjParams &params() const { return p_; }

    /**
     * RA product after adjusting the barrier thickness; used by design
     * sweeps that trade read current against dot-product fidelity.
     */
    static double raForThickness(const MtjParams &params, double thickness);

  private:
    MtjParams p_;
    double gP_;
    double gAp_;
};

} // namespace nebula

#endif // NEBULA_DEVICE_MTJ_HPP
