#include "device/neuron_device.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

namespace {

/**
 * Inverse of the track's velocity law: current that produces a given
 * displacement within @p duration.
 */
double
currentForDisplacement(const DwTrackParams &track, double displacement,
                       double duration)
{
    const double v = displacement / duration;
    NEBULA_ASSERT(v <= track.saturationVelocity,
                  "requested displacement exceeds saturation velocity");
    const double density = v / track.mobility + track.criticalDensity;
    return density * track.hmCrossSection();
}

} // namespace

SpikingNeuronDevice::SpikingNeuronDevice(const NeuronDeviceParams &params)
    : p_(params), track_(params.track), mtj_(params.mtj)
{
}

double
SpikingNeuronDevice::thresholdCurrent(double duration) const
{
    return currentForDisplacement(p_.track, p_.track.length, duration);
}

double
SpikingNeuronDevice::membraneFraction() const
{
    return track_.position() / p_.track.length;
}

void
SpikingNeuronDevice::reset()
{
    track_.reset();
}

void
SpikingNeuronDevice::clearStats()
{
    spikes_ = 0;
    energy_ = 0.0;
}

ReluNeuronDevice::ReluNeuronDevice(const NeuronDeviceParams &params)
    : p_(params), track_(params.track), mtj_(params.mtj)
{
}

double
ReluNeuronDevice::thresholdCurrent(double duration) const
{
    return currentForDisplacement(p_.track, p_.track.length, duration);
}

} // namespace nebula
