#include "device/neuron_device.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

namespace {

/**
 * Inverse of the track's velocity law: current that produces a given
 * displacement within @p duration.
 */
double
currentForDisplacement(const DwTrackParams &track, double displacement,
                       double duration)
{
    const double v = displacement / duration;
    NEBULA_ASSERT(v <= track.saturationVelocity,
                  "requested displacement exceeds saturation velocity");
    const double density = v / track.mobility + track.criticalDensity;
    return density * track.hmCrossSection();
}

} // namespace

SpikingNeuronDevice::SpikingNeuronDevice(const NeuronDeviceParams &params)
    : p_(params), track_(params.track), mtj_(params.mtj)
{
}

double
SpikingNeuronDevice::thresholdCurrent(double duration) const
{
    return currentForDisplacement(p_.track, p_.track.length, duration);
}

bool
SpikingNeuronDevice::integrate(double current, double duration, Rng *rng)
{
    // Negative (inhibitory) drive moves the wall back toward zero; the
    // clamp in DomainWallTrack enforces the IF floor at rest.
    track_.applyCurrent(current, duration, rng);

    // Ohmic loss of the column current across the device write path plus
    // the static divider/inverter interface.
    energy_ += current * current * p_.track.writePathResistance * duration;
    energy_ += p_.interfacePower * duration;

    if (track_.position() >= p_.track.length - p_.track.pinPitch * 0.25) {
        // Edge MTJ flipped -> divider trips the inverter -> spike; the
        // spike drives the reverse reset pulse.
        track_.reset();
        ++spikes_;
        energy_ += p_.resetEnergy;
        return true;
    }
    return false;
}

double
SpikingNeuronDevice::membraneFraction() const
{
    return track_.position() / p_.track.length;
}

void
SpikingNeuronDevice::reset()
{
    track_.reset();
}

void
SpikingNeuronDevice::clearStats()
{
    spikes_ = 0;
    energy_ = 0.0;
}

ReluNeuronDevice::ReluNeuronDevice(const NeuronDeviceParams &params)
    : p_(params), track_(params.track), mtj_(params.mtj)
{
}

double
ReluNeuronDevice::thresholdCurrent(double duration) const
{
    return currentForDisplacement(p_.track, p_.track.length, duration);
}

int
ReluNeuronDevice::evaluate(double current, double duration, int levels,
                           Rng *rng)
{
    NEBULA_ASSERT(levels >= 2, "need at least two output levels");
    track_.reset();
    track_.applyCurrent(current, duration, rng);

    lastOutput_ = track_.pinnedPosition() / p_.track.length;
    energy_ += std::abs(current) * std::abs(current) *
               p_.track.writePathResistance * duration;
    energy_ += p_.interfacePower * duration;
    // Reset pulse returns the wall for the next evaluation.
    energy_ += p_.resetEnergy;
    track_.reset();

    return static_cast<int>(std::round(lastOutput_ * (levels - 1)));
}

} // namespace nebula
