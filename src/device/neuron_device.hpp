/**
 * @file
 * DW-MTJ neuron devices (paper Fig. 2).
 *
 * Spiking neuron: column current through the heavy metal moves the wall;
 * the membrane potential *is* the wall position, so no SRAM read/write is
 * needed between timesteps. When the wall reaches the far edge, the edge
 * MTJ flips, the MTJ/reference-MTJ resistive divider trips the inverter
 * and a spike is emitted; a reverse pulse then resets the wall.
 *
 * Non-spiking (ANN) neuron: the same track read out through a transistor
 * biased in saturation yields a Saturating Rectified Linear transfer --
 * output proportional to wall displacement, clipped at the track end,
 * with negative drive unable to move the wall below zero (ReLU).
 */

#ifndef NEBULA_DEVICE_NEURON_DEVICE_HPP
#define NEBULA_DEVICE_NEURON_DEVICE_HPP

#include "device/domain_wall.hpp"
#include "device/mtj.hpp"

namespace nebula {

/** Integrate-and-fire spiking neuron device. */
class SpikingNeuronDevice
{
  public:
    explicit SpikingNeuronDevice(const NeuronDeviceParams &params = {});

    /**
     * Integrate a column current for one pipeline stage.
     *
     * @param current  Input current (A); negative currents (inhibitory
     *                 columns) move the wall backwards but not below 0.
     * @param duration Integration window (s), one 110 ns stage.
     * @param rng      Optional RNG for thermal jitter.
     * @return true if the neuron fired (and auto-reset) this step.
     */
    bool integrate(double current, double duration, Rng *rng = nullptr);

    /** Membrane potential as a fraction of threshold, in [0, 1). */
    double membraneFraction() const;

    /** Explicitly reset the wall (start of a new inference). */
    void reset();

    /** Spikes fired since construction or clearStats(). */
    long long spikeCount() const { return spikes_; }

    /** Energy consumed so far (integration + resets + interface) (J). */
    double energy() const { return energy_; }

    /** Clear spike and energy accounting. */
    void clearStats();

    /**
     * Current that moves the wall across the full track in exactly one
     * integration window -- the device's "threshold current". Inputs are
     * scaled against this by the neuron-unit periphery.
     */
    double thresholdCurrent(double duration) const;

    const DomainWallTrack &track() const { return track_; }
    const NeuronDeviceParams &params() const { return p_; }

  private:
    NeuronDeviceParams p_;
    DomainWallTrack track_;
    MtjStack mtj_;
    long long spikes_ = 0;
    double energy_ = 0.0;
};

/** Saturating rectified-linear (ANN) neuron device. */
class ReluNeuronDevice
{
  public:
    explicit ReluNeuronDevice(const NeuronDeviceParams &params = {});

    /**
     * Evaluate one crossbar cycle: drive the wall with the column
     * current for @p duration, read out the displacement as a
     * multi-level output, then reset for the next evaluation.
     *
     * @return output level in [0, levels-1] (saturating ReLU of input).
     */
    int evaluate(double current, double duration, int levels = 16,
                 Rng *rng = nullptr);

    /** Continuous output in [0, 1] for the most recent evaluation. */
    double lastOutput() const { return lastOutput_; }

    /** Energy consumed so far (J). */
    double energy() const { return energy_; }

    double thresholdCurrent(double duration) const;

    const NeuronDeviceParams &params() const { return p_; }

  private:
    NeuronDeviceParams p_;
    DomainWallTrack track_;
    MtjStack mtj_;
    double lastOutput_ = 0.0;
    double energy_ = 0.0;
};

} // namespace nebula

#endif // NEBULA_DEVICE_NEURON_DEVICE_HPP
