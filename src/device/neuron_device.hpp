/**
 * @file
 * DW-MTJ neuron devices (paper Fig. 2).
 *
 * Spiking neuron: column current through the heavy metal moves the wall;
 * the membrane potential *is* the wall position, so no SRAM read/write is
 * needed between timesteps. When the wall reaches the far edge, the edge
 * MTJ flips, the MTJ/reference-MTJ resistive divider trips the inverter
 * and a spike is emitted; a reverse pulse then resets the wall.
 *
 * Non-spiking (ANN) neuron: the same track read out through a transistor
 * biased in saturation yields a Saturating Rectified Linear transfer --
 * output proportional to wall displacement, clipped at the track end,
 * with negative drive unable to move the wall below zero (ReLU).
 */

#ifndef NEBULA_DEVICE_NEURON_DEVICE_HPP
#define NEBULA_DEVICE_NEURON_DEVICE_HPP

#include <cmath>
#include <vector>

#include "common/logging.hpp"
#include "device/domain_wall.hpp"
#include "device/mtj.hpp"

namespace nebula {

/**
 * Precomputed readout of the pinning states of a ReluNeuronDevice:
 * state index k = round(position / pinPitch) maps to the normalized
 * output and the quantized level. Built once per (track, levels) pair
 * with exactly the pinnedPosition() + rounding expressions of the
 * direct evaluate() path, so looked-up results are bit-identical --
 * the table only removes the per-element divides and rounds that
 * recompute the same handful of discrete values.
 */
struct ReluReadoutLut
{
    std::vector<double> out;  //!< normalized output per pinning state
    std::vector<int> level;   //!< quantized output level per state
};

/** Integrate-and-fire spiking neuron device. */
class SpikingNeuronDevice
{
  public:
    explicit SpikingNeuronDevice(const NeuronDeviceParams &params = {});

    /**
     * Integrate a column current for one pipeline stage.
     *
     * @param current  Input current (A); negative currents (inhibitory
     *                 columns) move the wall backwards but not below 0.
     * @param duration Integration window (s), one 110 ns stage.
     * @param rng      Optional RNG for thermal jitter.
     * @return true if the neuron fired (and auto-reset) this step.
     *
     * Inline: one call per neuron per timestep is the SNN hot loop.
     */
    bool integrate(double current, double duration, Rng *rng = nullptr)
    {
        // Negative (inhibitory) drive moves the wall back toward zero;
        // the clamp in DomainWallTrack enforces the IF floor at rest.
        track_.applyCurrent(current, duration, rng);

        // Ohmic loss of the column current across the device write path
        // plus the static divider/inverter interface.
        energy_ += current * current * p_.track.writePathResistance *
                   duration;
        energy_ += p_.interfacePower * duration;

        if (track_.position() >=
            p_.track.length - p_.track.pinPitch * 0.25) {
            // Edge MTJ flipped -> divider trips the inverter -> spike;
            // the spike drives the reverse reset pulse.
            track_.reset();
            ++spikes_;
            energy_ += p_.resetEnergy;
            return true;
        }
        return false;
    }

    /** Membrane potential as a fraction of threshold, in [0, 1). */
    double membraneFraction() const;

    /** Explicitly reset the wall (start of a new inference). */
    void reset();

    /** Spikes fired since construction or clearStats(). */
    long long spikeCount() const { return spikes_; }

    /** Energy consumed so far (integration + resets + interface) (J). */
    double energy() const { return energy_; }

    /** Clear spike and energy accounting. */
    void clearStats();

    /**
     * Current that moves the wall across the full track in exactly one
     * integration window -- the device's "threshold current". Inputs are
     * scaled against this by the neuron-unit periphery.
     */
    double thresholdCurrent(double duration) const;

    const DomainWallTrack &track() const { return track_; }
    const NeuronDeviceParams &params() const { return p_; }

  private:
    NeuronDeviceParams p_;
    DomainWallTrack track_;
    MtjStack mtj_;
    long long spikes_ = 0;
    double energy_ = 0.0;
};

/** Saturating rectified-linear (ANN) neuron device. */
class ReluNeuronDevice
{
  public:
    explicit ReluNeuronDevice(const NeuronDeviceParams &params = {});

    /**
     * Evaluate one crossbar cycle: drive the wall with the column
     * current for @p duration, read out the displacement as a
     * multi-level output, then reset for the next evaluation.
     *
     * @return output level in [0, levels-1] (saturating ReLU of input).
     *
     * Inline: one call per output element per ANN crossbar cycle is the
     * ANN periphery hot loop.
     */
    int evaluate(double current, double duration, int levels = 16,
                 Rng *rng = nullptr)
    {
        NEBULA_ASSERT(levels >= 2, "need at least two output levels");
        track_.reset();
        track_.applyCurrent(current, duration, rng);

        lastOutput_ = track_.pinnedPosition() / p_.track.length;
        energy_ += std::abs(current) * std::abs(current) *
                   p_.track.writePathResistance * duration;
        energy_ += p_.interfacePower * duration;
        // Reset pulse returns the wall for the next evaluation.
        energy_ += p_.resetEnergy;
        track_.reset();

        return static_cast<int>(std::round(lastOutput_ * (levels - 1)));
    }

    /**
     * Build the pinning-state readout table for a given output
     * resolution. Every entry is computed with the same expression
     * chain the direct evaluate() overload runs per call.
     */
    ReluReadoutLut buildReadoutLut(int levels) const
    {
        NEBULA_ASSERT(levels >= 2, "need at least two output levels");
        const DwTrackParams &t = p_.track;
        const int states =
            static_cast<int>(std::ceil(t.length / t.pinPitch)) + 2;
        ReluReadoutLut lut;
        lut.out.resize(static_cast<size_t>(states));
        lut.level.resize(static_cast<size_t>(states));
        for (int k = 0; k < states; ++k) {
            const double snapped = std::clamp(
                static_cast<double>(k) * t.pinPitch, 0.0, t.length);
            lut.out[static_cast<size_t>(k)] = snapped / t.length;
            lut.level[static_cast<size_t>(k)] = static_cast<int>(
                std::round(lut.out[static_cast<size_t>(k)] * (levels - 1)));
        }
        return lut;
    }

    /**
     * Evaluate one cycle through a prebuilt readout table (the ANN
     * periphery hot path): identical device physics and energy
     * accounting as the direct overload, with the displacement readout
     * taken from the table instead of recomputed per element.
     */
    int evaluate(double current, double duration,
                 const ReluReadoutLut &lut, Rng *rng = nullptr)
    {
        track_.reset();
        track_.applyCurrent(current, duration, rng);

        const int k = static_cast<int>(
            std::round(track_.position() / p_.track.pinPitch));
        lastOutput_ = lut.out[static_cast<size_t>(k)];
        energy_ += std::abs(current) * std::abs(current) *
                   p_.track.writePathResistance * duration;
        energy_ += p_.interfacePower * duration;
        // Reset pulse returns the wall for the next evaluation.
        energy_ += p_.resetEnergy;
        track_.reset();

        return lut.level[static_cast<size_t>(k)];
    }

    /** Continuous output in [0, 1] for the most recent evaluation. */
    double lastOutput() const { return lastOutput_; }

    /** Energy consumed so far (J). */
    double energy() const { return energy_; }

    double thresholdCurrent(double duration) const;

    const NeuronDeviceParams &params() const { return p_; }

  private:
    NeuronDeviceParams p_;
    DomainWallTrack track_;
    MtjStack mtj_;
    double lastOutput_ = 0.0;
    double energy_ = 0.0;
};

} // namespace nebula

#endif // NEBULA_DEVICE_NEURON_DEVICE_HPP
