#include "device/synapse_device.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

SynapseDevice::SynapseDevice(const SynapseDeviceParams &params)
    : p_(params), track_(params.track), mtj_(params.mtj)
{
}

double
SynapseDevice::pulseEnergy()
    const
{
    // E = V^2 / R * t for a full-drive pulse through the heavy metal.
    const double i = p_.programVoltage / p_.track.writePathResistance;
    return p_.programVoltage * i * p_.pulseWidth;
}

int
SynapseDevice::program(int level, int levels, Rng *rng)
{
    const int n = levels > 0 ? levels : p_.track.numStates();
    NEBULA_ASSERT(level >= 0 && level < n, "program level ", level,
                  " out of range [0,", n - 1, ")");

    // Target pinned position for this level: level 0 -> AP end (x = 0),
    // level n-1 -> P end (x = length).
    const double target =
        p_.track.length * (static_cast<double>(level) / (n - 1));

    const double full_current =
        p_.programVoltage / p_.track.writePathResistance;

    int pulses = 0;
    // Closed-loop program-and-verify: each iteration applies one pulse
    // sized by the linear device law, then verifies via the pinned
    // position. Thermal jitter (if enabled) may require extra trims.
    for (; pulses < 64; ++pulses) {
        const double err = target - track_.pinnedPosition();
        if (std::abs(err) < p_.track.pinPitch / 2)
            break;

        // Current needed to cover err in one pulse, clamped to full drive.
        const double density_needed =
            std::abs(err) / (p_.track.mobility * p_.pulseWidth) +
            p_.track.criticalDensity;
        double current = density_needed * p_.track.hmCrossSection();
        current = std::min(current, full_current);
        if (err < 0)
            current = -current;

        track_.applyCurrent(current, p_.pulseWidth, rng);
        programEnergy_ += std::abs(current) * p_.programVoltage *
                          p_.pulseWidth;
    }
    return pulses;
}

double
SynapseDevice::conductance() const
{
    return mtj_.conductanceAt(track_.parallelFraction());
}

double
SynapseDevice::normalizedWeight() const
{
    const double g = conductance();
    return (g - mtj_.conductanceAp()) /
           (mtj_.conductanceP() - mtj_.conductanceAp());
}

} // namespace nebula
