/**
 * @file
 * The DW-MTJ synapse: a domain-wall track with a read MTJ (paper Fig. 1a).
 *
 * Programming current through the heavy metal (terminals T2-T3) moves the
 * wall and changes the T1-T3 read conductance linearly with the wall
 * displacement; reads through the MTJ do not disturb the wall. During
 * inference the write word-lines are off and the device is a fixed
 * multi-level resistor.
 */

#ifndef NEBULA_DEVICE_SYNAPSE_DEVICE_HPP
#define NEBULA_DEVICE_SYNAPSE_DEVICE_HPP

#include "device/domain_wall.hpp"
#include "device/mtj.hpp"

namespace nebula {

/** A single programmable synapse cell. */
class SynapseDevice
{
  public:
    explicit SynapseDevice(const SynapseDeviceParams &params = {});

    /**
     * Program the device to a discrete level.
     *
     * Programming is modelled closed-loop: a sequence of fixed-width
     * pulses with magnitude chosen from the linear device law, followed
     * by a verify-read, as a real programmer would do. Accumulates
     * programming energy.
     *
     * @param level   Target level in [0, levels-1]; level 0 is the
     *                lowest conductance (fully AP), levels-1 the highest.
     * @param levels  Number of levels (defaults to the track's state
     *                count, 16 for paper parameters).
     * @param rng     Optional RNG for thermal write jitter.
     * @return number of pulses used.
     */
    int program(int level, int levels = 0, Rng *rng = nullptr);

    /** Read conductance at the current (pinned) wall position. */
    double conductance() const;

    /** Read current for an applied read voltage. */
    double readCurrent(double voltage) const { return voltage * conductance(); }

    /** Normalized weight in [0, 1]: (G - G_AP) / (G_P - G_AP). */
    double normalizedWeight() const;

    /** Discrete level currently programmed. */
    int level() const { return track_.stateIndex(); }

    /** Total energy spent programming this device so far (J). */
    double programEnergy() const { return programEnergy_; }

    /** Energy of a single programming pulse at full drive (J). */
    double pulseEnergy() const;

    const DomainWallTrack &track() const { return track_; }
    const MtjStack &mtj() const { return mtj_; }
    const SynapseDeviceParams &params() const { return p_; }

  private:
    SynapseDeviceParams p_;
    DomainWallTrack track_;
    MtjStack mtj_;
    double programEnergy_ = 0.0;
};

} // namespace nebula

#endif // NEBULA_DEVICE_SYNAPSE_DEVICE_HPP
