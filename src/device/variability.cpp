#include "device/variability.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace nebula {

VariabilityModel::VariabilityModel(double sigma, uint64_t seed)
    : sigma_(sigma), rng_(seed)
{
    NEBULA_ASSERT(sigma >= 0.0, "variability sigma must be non-negative");
}

double
VariabilityModel::sampleFactor()
{
    // Truncate at 4 sigma and keep factors positive; a conductance
    // cannot go negative no matter how bad the device is.
    double f = rng_.gaussian(1.0, sigma_);
    f = std::clamp(f, 1.0 - 4.0 * sigma_, 1.0 + 4.0 * sigma_);
    return std::max(f, 0.01);
}

void
VariabilityModel::perturb(std::vector<float> &weights)
{
    for (auto &w : weights)
        w = static_cast<float>(w * sampleFactor());
}

} // namespace nebula
