#include "device/variability.hpp"

namespace nebula {

VariabilityModel::VariabilityModel(double sigma, uint64_t seed)
    : model_(sigma), rng_(seed)
{
}

double
VariabilityModel::sampleFactor()
{
    return model_.programFactor(rng_);
}

void
VariabilityModel::perturb(std::vector<float> &weights)
{
    for (auto &w : weights)
        w = static_cast<float>(w * sampleFactor());
}

} // namespace nebula
