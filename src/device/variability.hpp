/**
 * @file
 * Device-variability model for Monte-Carlo robustness studies
 * (paper Sec. IV-D: 10% weight variation costs <1% accuracy).
 *
 * This is now a thin stateful wrapper over the reliability subsystem's
 * GaussianVariabilityModel (the Gaussian special case of the FaultModel
 * hierarchy), kept so existing call sites keep their seed-owning API.
 * New code should use GaussianVariabilityModel with an explicit Rng.
 */

#ifndef NEBULA_DEVICE_VARIABILITY_HPP
#define NEBULA_DEVICE_VARIABILITY_HPP

#include <vector>

#include "common/rng.hpp"
#include "reliability/fault_model.hpp"

namespace nebula {

/**
 * Samples multiplicative conductance perturbations. Each device gets an
 * independent N(1, sigma) factor, truncated to stay positive.
 */
class VariabilityModel
{
  public:
    /** @param sigma Relative std-dev (0.10 for the paper's study). */
    explicit VariabilityModel(double sigma, uint64_t seed = 1);

    /** One multiplicative factor. */
    double sampleFactor();

    /** Perturb a weight vector in place. */
    void perturb(std::vector<float> &weights);

    double sigma() const { return model_.sigma(); }

  private:
    GaussianVariabilityModel model_;
    Rng rng_;
};

} // namespace nebula

#endif // NEBULA_DEVICE_VARIABILITY_HPP
