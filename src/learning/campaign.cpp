#include "learning/campaign.hpp"

#include <cstdio>

#include "common/logging.hpp"

namespace nebula {

double
LearningCampaignResult::meanPurity(double rate) const
{
    double sum = 0.0;
    int count = 0;
    for (const LearningCampaignRow &row : rows) {
        if (row.rate == rate) {
            sum += row.purity;
            ++count;
        }
    }
    return count ? sum / count : -1.0;
}

std::string
LearningCampaignResult::csv() const
{
    std::string out =
        "# units: update_energy_j and read_energy_j in joules (J); "
        "purity is a dimensionless fraction in [0, 1]\n"
        "rate,seed,samples,purity,update_pulses,level_steps,"
        "blocked_cells,update_energy_j,read_energy_j\n";
    char line[256];
    for (const LearningCampaignRow &row : rows) {
        std::snprintf(line, sizeof line,
                      "%.6f,%llu,%d,%.6f,%lld,%lld,%lld,%.6e,%.6e\n",
                      row.rate, static_cast<unsigned long long>(row.seed),
                      row.samples, row.purity, row.updates.pulses,
                      row.updates.levelSteps, row.updates.blockedCells,
                      row.updates.updateEnergy, row.readEnergy);
        out += line;
    }
    return out;
}

LearningCampaignResult
runLearningCampaign(const Dataset &data,
                    const LearningCampaignConfig &config)
{
    NEBULA_ASSERT(data.size() > 0, "empty dataset");
    FaultModelFactory factory = config.modelFactory;
    if (!factory) {
        factory = [](double rate) -> std::shared_ptr<const FaultModel> {
            return std::make_shared<PinningDriftFaultModel>(rate);
        };
    }

    const int rows = data.channels() * data.imageSize() * data.imageSize() *
                     (config.stdp.onOffChannels ? 2 : 1);
    const int clusters = config.clusters > 0 ? config.clusters
                                             : data.numClasses();

    LearningCampaignResult result;
    for (double rate : config.rates) {
        for (uint64_t seed : config.seeds) {
            CrossbarParams xp;
            xp.rows = rows;
            xp.cols = clusters;
            xp.spareCols = config.spareCols;
            xp.readVoltage = 0.25; // SNN-mode sensing
            CrossbarArray xbar(xp);

            if (rate > 0.0) {
                FaultMap map(rows, clusters + config.spareCols);
                factory(rate)->sampleInto(
                    map, deriveFaultSeed(config.faultSeed, seed));
                xbar.injectFaults(std::move(map));
            }

            StdpClusterer clusterer(xbar, config.stdp);
            const ClusteringResult fit =
                clusterer.fit(data, config.samples);

            LearningCampaignRow row;
            row.rate = rate;
            row.seed = seed;
            row.samples = fit.samples;
            row.purity = fit.purity;
            row.updates = fit.updates;
            row.readEnergy = fit.readEnergy;
            result.rows.push_back(row);
        }
    }
    return result;
}

} // namespace nebula
