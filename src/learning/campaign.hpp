/**
 * @file
 * Learning-under-faults campaign: sweeps device-fault rates x seeds and
 * measures how on-device competitive clustering degrades -- the learning
 * analogue of the inference fault campaigns (reliability/campaign). One
 * trial = one freshly built crossbar, a fault map sampled at the trial's
 * (rate, seed), and a full StdpClusterer fit; the row records purity
 * plus the complete pulse/energy bill, so the sweep answers both "does
 * learning still work on damaged arrays" and "what does it cost".
 */

#ifndef NEBULA_LEARNING_CAMPAIGN_HPP
#define NEBULA_LEARNING_CAMPAIGN_HPP

#include <memory>
#include <string>
#include <vector>

#include "learning/stdp.hpp"
#include "reliability/campaign.hpp"

namespace nebula {

/** Learning campaign sweep definition. */
struct LearningCampaignConfig
{
    /** Per-cell fault rates to sweep (0 = clean device). */
    std::vector<double> rates{0.0, 0.02, 0.05};

    /** Fault-map seeds; each is one independent trial per rate. */
    std::vector<uint64_t> seeds{1};

    /** Sweep-value -> fault model (null: pinning-drift factory). */
    FaultModelFactory modelFactory;

    /** Stream samples per trial. */
    int samples = 240;

    /** Clustering hyperparameters. */
    StdpConfig stdp;

    /** Prototype columns per trial array (0: dataset class count). */
    int clusters = 0;

    /** Physical spare columns per trial array. */
    int spareCols = 0;

    /** Salt mixed into each trial's fault-map seed. */
    uint64_t faultSeed = 909;
};

/** One (rate, seed) learning measurement. */
struct LearningCampaignRow
{
    double rate = 0.0;
    uint64_t seed = 0;
    int samples = 0;
    double purity = 0.0;
    UpdateReport updates;
    double readEnergy = 0.0; //!< J
};

/** All rows of one learning campaign, plus CSV serialization. */
struct LearningCampaignResult
{
    std::vector<LearningCampaignRow> rows;

    /** Mean purity over seeds at one rate; -1 if no row matches. */
    double meanPurity(double rate) const;

    /**
     * Deterministic CSV. The first line is a `#` comment documenting
     * column units (energies in joules; purity dimensionless).
     */
    std::string csv() const;
};

/**
 * Run the sweep: each trial builds a crossbar sized rows = input row
 * count of @p data (pixels, doubled under ON/OFF encoding), cols =
 * config.clusters, injects the trial's fault map (rate > 0), and fits a
 * StdpClusterer on the first config.samples images. Deterministic given
 * the config and dataset.
 */
LearningCampaignResult runLearningCampaign(const Dataset &data,
                                           const LearningCampaignConfig &config);

} // namespace nebula

#endif // NEBULA_LEARNING_CAMPAIGN_HPP
