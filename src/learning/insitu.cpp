#include "learning/insitu.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/logging.hpp"
#include "common/rng.hpp"
#include "nn/trainer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nebula {

namespace {

/** Stack (C, H, W) images into one (N, C, H, W) batch tensor. */
Tensor
stackBatch(const std::vector<Tensor> &images, const std::vector<int> &idx)
{
    const Tensor &first = images[static_cast<size_t>(idx[0])];
    std::vector<int> shape;
    shape.push_back(static_cast<int>(idx.size()));
    for (int d = 0; d < first.rank(); ++d)
        shape.push_back(first.dim(d));
    Tensor batch(shape);
    float *out = batch.data();
    for (size_t b = 0; b < idx.size(); ++b) {
        const Tensor &img = images[static_cast<size_t>(idx[b])];
        std::copy_n(img.data(), img.size(), out + b * first.size());
    }
    return batch;
}

} // namespace

double
chipAccuracy(NebulaChip &chip, const std::vector<Tensor> &images,
             const std::vector<int> &labels, double *mean_loss,
             long long *forwards)
{
    NEBULA_ASSERT(images.size() == labels.size() && !images.empty(),
                  "labelled set mismatch");
    const int n = static_cast<int>(images.size());
    Tensor logits;
    int correct = 0;
    for (int i = 0; i < n; ++i) {
        const Tensor out = chip.runAnn(images[static_cast<size_t>(i)]);
        if (i == 0)
            logits = Tensor({n, static_cast<int>(out.size())});
        std::copy_n(out.data(), out.size(),
                    logits.data() + static_cast<size_t>(i) * out.size());
        if (forwards)
            ++*forwards;
    }
    const LossResult loss = softmaxCrossEntropy(logits, labels);
    correct = loss.correct;
    if (mean_loss)
        *mean_loss = loss.loss;
    return static_cast<double>(correct) / n;
}

InsituTuner::InsituTuner(NebulaChip &chip, Network &net, InsituConfig config)
    : chip_(chip), net_(net), config_(config)
{
    NEBULA_ASSERT(config_.batchSize > 0 && config_.epochs > 0,
                  "bad tuning hyperparameters");
    weightLayers_ = net_.weightLayerIndices();
    NEBULA_ASSERT(static_cast<int>(weightLayers_.size()) ==
                      chip_.mappedLayerCount(),
                  "network does not match the programmed chip: ",
                  weightLayers_.size(), " weight layers vs ",
                  chip_.mappedLayerCount(), " mapped");
    // -1 everywhere: the first write-back re-trims every cell, which
    // also restores decayed conductances the very first step.
    lastTargets_.resize(weightLayers_.size());
    for (size_t k = 0; k < weightLayers_.size(); ++k) {
        const Layer &layer = net_.layer(weightLayers_[k]);
        lastTargets_[k].assign(
            static_cast<size_t>(layer.numKernels()) *
                layer.receptiveField(),
            -1);
    }
}

void
InsituTuner::writeBack(UpdateReport &report)
{
    const int top = chip_.mappedLevels() - 1;
    for (size_t k = 0; k < weightLayers_.size(); ++k) {
        Layer &layer = net_.layer(weightLayers_[k]);
        const Tensor &w = *layer.constParameters()[0];
        const int rf = layer.receptiveField();
        const float scale = chip_.mappedWeightScale(static_cast<int>(k));

        std::vector<NebulaChip::WeightCellUpdate> ups;
        for (long long i = 0; i < w.size(); ++i) {
            const double norm =
                std::clamp(static_cast<double>(w[i]) / scale, -1.0, 1.0);
            const int target =
                static_cast<int>(std::lround((norm + 1.0) / 2.0 * top));
            if (lastTargets_[k][static_cast<size_t>(i)] == target)
                continue;
            lastTargets_[k][static_cast<size_t>(i)] = target;
            ups.push_back(NebulaChip::WeightCellUpdate{
                static_cast<int>(i / rf), static_cast<int>(i % rf),
                target});
        }
        // Called even with no cell deltas: updateMappedLayer also
        // re-syncs the periphery bias from the shadow network.
        report.merge(chip_.updateMappedLayer(static_cast<int>(k), ups,
                                             config_.write));
    }
}

InsituResult
InsituTuner::tune(const std::vector<Tensor> &images,
                  const std::vector<int> &labels)
{
    obs::TraceSpan span("learning", "insitu.tune", config_.trace);
    NEBULA_ASSERT(images.size() == labels.size() && !images.empty(),
                  "labelled set mismatch");
    InsituResult result;
    result.initialAccuracy = chipAccuracy(
        chip_, images, labels, &result.initialLoss, &result.chipForwards);

    const int n = static_cast<int>(images.size());
    std::vector<int> order(static_cast<size_t>(n));
    std::iota(order.begin(), order.end(), 0);
    Rng rng(config_.shuffleSeed);

    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        for (int start = 0; start < n; start += config_.batchSize) {
            const int count = std::min(config_.batchSize, n - start);
            const std::vector<int> idx(order.begin() + start,
                                       order.begin() + start + count);

            // Forward on the chip: the loss sees what the device does.
            Tensor chip_logits;
            for (int b = 0; b < count; ++b) {
                const Tensor out =
                    chip_.runAnn(images[static_cast<size_t>(idx[b])]);
                if (b == 0)
                    chip_logits =
                        Tensor({count, static_cast<int>(out.size())});
                std::copy_n(out.data(), out.size(),
                            chip_logits.data() +
                                static_cast<size_t>(b) * out.size());
                ++result.chipForwards;
            }
            std::vector<int> batch_labels(static_cast<size_t>(count));
            for (int b = 0; b < count; ++b)
                batch_labels[static_cast<size_t>(b)] =
                    labels[static_cast<size_t>(idx[b])];

            // Host-side backprop through the shadow network builds the
            // gradient; the error signal is the chip's.
            net_.forward(stackBatch(images, idx), true);
            const LossResult loss =
                softmaxCrossEntropy(chip_logits, batch_labels);
            net_.zeroGrad();
            net_.backward(loss.grad);

            // SGD with heavy-ball momentum on the float shadow; weights
            // clamp to the mapped range so targets stay on the device
            // grid.
            if (velocity_.empty())
                velocity_.resize(weightLayers_.size());
            for (size_t k = 0; k < weightLayers_.size(); ++k) {
                Layer &layer = net_.layer(weightLayers_[k]);
                const auto params = layer.parameters();
                const auto grads = layer.gradients();
                const float scale =
                    chip_.mappedWeightScale(static_cast<int>(k));
                if (velocity_[k].size() < params.size())
                    velocity_[k].resize(params.size());
                for (size_t p = 0;
                     p < params.size() && p < grads.size(); ++p) {
                    Tensor &w = *params[p];
                    const Tensor &g = *grads[p];
                    std::vector<float> &v = velocity_[k][p];
                    if (v.size() != static_cast<size_t>(w.size()))
                        v.assign(static_cast<size_t>(w.size()), 0.0f);
                    for (long long i = 0; i < w.size(); ++i) {
                        v[static_cast<size_t>(i)] = static_cast<float>(
                            config_.momentum * v[static_cast<size_t>(i)] -
                            config_.learningRate * g[i]);
                        w[i] += v[static_cast<size_t>(i)];
                        if (p == 0)
                            w[i] = std::clamp(w[i], -scale, scale);
                    }
                }
            }
            writeBack(result.updates);
        }
    }

    result.finalAccuracy = chipAccuracy(chip_, images, labels,
                                        &result.finalLoss,
                                        &result.chipForwards);
    auto &registry = obs::MetricsRegistry::global();
    registry.gauge("learning.insitu.initial_accuracy")
        .set(result.initialAccuracy);
    registry.gauge("learning.insitu.final_accuracy")
        .set(result.finalAccuracy);
    registry.counter("learning.insitu.chip_forwards")
        .inc(static_cast<double>(result.chipForwards));
    span.arg("initial_accuracy", result.initialAccuracy);
    span.arg("final_accuracy", result.finalAccuracy);
    return result;
}

} // namespace nebula
