/**
 * @file
 * Chip-in-the-loop supervised fine-tuning. The forward pass runs on the
 * programmed (possibly faulted / decayed) chip model, the gradient
 * comes from the host trainer's softmax cross-entropy backpropagated
 * through the chip's source network, and the resulting weight deltas
 * flow back onto the crossbars through NebulaChip::updateMappedLayer --
 * quantized level steps, accounted pulses, faults respected. Because
 * the loss is evaluated at the *chip's* logits, the tuner learns around
 * whatever the device actually does (stuck cells, decay, drift), which
 * is exactly what host-only retraining cannot.
 *
 * The exemplar pipeline is SpiNNaker_PDP2's on-hardware weight-update
 * loop (see ISSUE/PAPERS): forward on the substrate, host-side error,
 * substrate-resident weight update.
 */

#ifndef NEBULA_LEARNING_INSITU_HPP
#define NEBULA_LEARNING_INSITU_HPP

#include <cstdint>
#include <vector>

#include "arch/chip.hpp"
#include "nn/network.hpp"

namespace nebula {

/** Hyperparameters of the chip-in-the-loop tuner. */
struct InsituConfig
{
    int epochs = 2;
    int batchSize = 16;
    double learningRate = 0.02;

    /**
     * Heavy-ball momentum on the float shadow. The device grid is
     * coarse (2^precisionBits levels), so a single small gradient step
     * rarely crosses a level boundary; momentum accumulates them into
     * steps the write-back can see.
     */
    double momentum = 0.9;

    uint64_t shuffleSeed = 17;

    /** Programming flow used for the write-back pulses. */
    ProgrammingConfig write;

    /** Emit learning.* trace spans. */
    bool trace = false;
};

/** What one tuning run measured. */
struct InsituResult
{
    double initialAccuracy = 0.0; //!< chip accuracy before tuning
    double finalAccuracy = 0.0;   //!< chip accuracy after tuning
    double initialLoss = 0.0;     //!< mean CE at the chip logits, before
    double finalLoss = 0.0;       //!< mean CE at the chip logits, after
    long long chipForwards = 0;   //!< runAnn calls spent
    UpdateReport updates;         //!< write-back pulse/energy bill

    /** Fraction of the accuracy gap this run closed (can be < 0). */
    double recovered(double reference_accuracy) const
    {
        const double lost = reference_accuracy - initialAccuracy;
        return lost > 0.0 ? (finalAccuracy - initialAccuracy) / lost : 1.0;
    }
};

/**
 * Supervised fine-tuner for a programmed ANN chip. @p net must be the
 * exact network the chip was programmed from (the chip re-reads biases
 * from it, and its weights are the float shadow the tuner descends on);
 * the tuner keeps the shadow in float so sub-level gradients accumulate
 * across batches instead of vanishing under quantization.
 */
class InsituTuner
{
  public:
    InsituTuner(NebulaChip &chip, Network &net, InsituConfig config = {});

    /** Run the tuning loop over a labelled calibration set. */
    InsituResult tune(const std::vector<Tensor> &images,
                      const std::vector<int> &labels);

  private:
    /** Push changed shadow-weight levels onto the crossbars. */
    void writeBack(UpdateReport &report);

    NebulaChip &chip_;
    Network &net_;
    InsituConfig config_;
    std::vector<int> weightLayers_; //!< net layer index per mapped layer
    std::vector<std::vector<int>> lastTargets_; //!< written levels, -1 = never
    /** Momentum buffers, one per (weight layer, parameter tensor). */
    std::vector<std::vector<std::vector<float>>> velocity_;
};

/**
 * Classification accuracy of the programmed ANN chip over a labelled
 * set (fraction). @p mean_loss, when non-null, receives the mean
 * softmax cross-entropy at the chip logits.
 */
double chipAccuracy(NebulaChip &chip, const std::vector<Tensor> &images,
                    const std::vector<int> &labels,
                    double *mean_loss = nullptr,
                    long long *forwards = nullptr);

} // namespace nebula

#endif // NEBULA_LEARNING_INSITU_HPP
