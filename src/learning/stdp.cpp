#include "learning/stdp.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reliability/fault_model.hpp"
#include "snn/encoder.hpp"

namespace nebula {

StdpClusterer::StdpClusterer(CrossbarArray &xbar, StdpConfig config)
    // The IF layer is a pure integrator here: the threshold sits far
    // above any reachable membrane, so step() only accumulates and the
    // WTA reads potentials directly.
    : xbar_(xbar), config_(config), integrator_(1e30f)
{
    NEBULA_ASSERT(config_.timesteps > 0, "need at least one timestep");
    NEBULA_ASSERT(config_.epochs > 0, "need at least one epoch");
    NEBULA_ASSERT(config_.potentiate >= 0 && config_.depress >= 0,
                  "negative learning step");
    wins_.assign(static_cast<size_t>(xbar_.cols()), 0);
}

const Tensor &
StdpClusterer::encodeInput(const Tensor &image)
{
    if (!config_.onOffChannels)
        return image;
    const long long n = image.size();
    if (augmented_.size() != 2 * n)
        augmented_ = Tensor({static_cast<int>(2 * n)});
    for (long long i = 0; i < n; ++i) {
        const float p = std::clamp(image[i], 0.0f, 1.0f);
        augmented_[i] = p;
        augmented_[n + i] = 1.0f - p;
    }
    return augmented_;
}

void
StdpClusterer::initPrototypes(const Dataset &data, int samples)
{
    const int rows = xbar_.rows();
    const int clusters = xbar_.cols();
    const int factor = config_.onOffChannels ? 2 : 1;
    samples = std::clamp(samples, clusters, data.size());
    NEBULA_ASSERT(data.image(0).size() * factor == rows,
                  "dataset image size ", data.image(0).size(),
                  " (x", factor, " channels) does not match crossbar rows ",
                  rows);

    // Evenly strided stream samples as initial prototypes: spread over
    // the stream, deterministic, and already shaped like the data.
    std::vector<float> weights(static_cast<size_t>(rows) * clusters, 0.0f);
    for (int j = 0; j < clusters; ++j) {
        const Tensor &image = encodeInput(
            data.image(static_cast<int>(static_cast<long long>(j) *
                                        samples / clusters)));
        for (int r = 0; r < rows; ++r)
            weights[static_cast<size_t>(r) * clusters + j] =
                2.0f * image[r] - 1.0f;
    }
    xbar_.program(weights, config_.write);

    wins_.assign(static_cast<size_t>(clusters), 0);
    totalWins_ = 0;
    presentCounter_ = 0;
    updates_ = UpdateReport();
    readEnergy_ = 0.0;
}

int
StdpClusterer::present(const Tensor &image, bool learn)
{
    obs::TraceSpan span("learning", "stdp.present", config_.trace);
    const int rows = xbar_.rows();
    const int clusters = xbar_.cols();
    const int factor = config_.onOffChannels ? 2 : 1;
    NEBULA_ASSERT(image.size() * factor == rows, "image size ",
                  image.size(), " (x", factor,
                  " channels) does not match crossbar rows ", rows);
    const Tensor &input = encodeInput(image);

    integrator_.resetState();
    integrator_.ensureState({1, clusters});
    rowSpikes_.assign(static_cast<size_t>(rows), 0);
    stepIn_.resize(static_cast<size_t>(clusters));
    stepOut_.resize(static_cast<size_t>(clusters));

    // Per-presentation spike train: counter-based seeding keeps the
    // whole fit a pure function of (config seed, presentation order).
    PoissonEncoder encoder(
        config_.rateScale,
        deriveFaultSeed(config_.seed,
                        static_cast<uint64_t>(presentCounter_)));
    ++presentCounter_;

    const double kappa = xbar_.currentScale();
    for (int t = 0; t < config_.timesteps; ++t) {
        encoder.encodeActive(input, active_);
        for (int i : active_)
            ++rowSpikes_[static_cast<size_t>(i)];
        const CrossbarEval eval =
            xbar_.evaluateSparse(active_, config_.readDuration);
        readEnergy_ += eval.energy;
        for (int j = 0; j < clusters; ++j)
            stepIn_[static_cast<size_t>(j)] = static_cast<float>(
                eval.currents[static_cast<size_t>(j)] / kappa);
        integrator_.step(stepIn_.data(), stepOut_.data(), clusters);
    }

    // Lateral inhibition: the highest membrane wins. During learning a
    // conscience bias (DeSieno) handicaps over-winning columns by their
    // excess win share, scaled by the membrane spread so the penalty
    // tracks the problem's units.
    const float *mem = integrator_.membraneData();
    int winner = integrator_.winnerIndex();
    if (learn && config_.conscience > 0.0 && totalWins_ > 0) {
        double lo = mem[0], hi = mem[0];
        for (int j = 1; j < clusters; ++j) {
            lo = std::min<double>(lo, mem[j]);
            hi = std::max<double>(hi, mem[j]);
        }
        const double spread = hi > lo ? hi - lo : 1.0;
        double best = 0.0;
        winner = 0;
        for (int j = 0; j < clusters; ++j) {
            const double share =
                static_cast<double>(wins_[static_cast<size_t>(j)]) /
                static_cast<double>(totalWins_);
            const double score =
                mem[j] -
                config_.conscience * spread * (share * clusters - 1.0);
            if (j == 0 || score > best) {
                best = score;
                winner = j;
            }
        }
    }
    if (winner < 0)
        return winner;
    span.arg("winner", static_cast<double>(winner));

    if (learn) {
        ++wins_[static_cast<size_t>(winner)];
        ++totalWins_;
        // Potentiate the winner's rows that spiked, depress the quiet
        // ones: the prototype column drifts toward the presented sample
        // one quantized level at a time.
        const double active_floor =
            config_.activeFraction * config_.timesteps;
        std::vector<CellUpdate> ups;
        ups.reserve(static_cast<size_t>(rows));
        for (int r = 0; r < rows; ++r) {
            const int delta = rowSpikes_[static_cast<size_t>(r)] >=
                                      active_floor
                                  ? config_.potentiate
                                  : -config_.depress;
            if (delta != 0)
                ups.push_back(CellUpdate{r, winner, delta});
        }
        updates_.merge(xbar_.updateCells(ups, config_.write));
    }
    return winner;
}

ClusteringResult
StdpClusterer::fit(const Dataset &data, int samples)
{
    obs::TraceSpan span("learning", "stdp.fit", config_.trace);
    const int clusters = xbar_.cols();
    samples = std::clamp(samples, clusters, data.size());
    initPrototypes(data, samples);

    ClusteringResult result;
    result.samples = samples;
    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        for (int s = 0; s < samples; ++s) {
            present(data.image(s), true);
            ++result.presentations;
        }
    }

    // Frozen assignment pass, scored against the stream's labels.
    result.assignment.resize(static_cast<size_t>(samples));
    result.clusterCounts.assign(static_cast<size_t>(clusters), 0);
    std::vector<int> labels(static_cast<size_t>(samples));
    for (int s = 0; s < samples; ++s) {
        const int c = present(data.image(s), false);
        result.assignment[static_cast<size_t>(s)] = c;
        labels[static_cast<size_t>(s)] = data.label(s);
        if (c >= 0)
            ++result.clusterCounts[static_cast<size_t>(c)];
    }
    result.purity = clusterPurity(result.assignment, labels, clusters);
    result.updates = updates_;
    result.readEnergy = readEnergy_;

    auto &registry = obs::MetricsRegistry::global();
    registry.gauge("learning.stdp.purity").set(result.purity);
    registry.counter("learning.stdp.presentations")
        .inc(static_cast<double>(result.presentations));
    span.arg("purity", result.purity);
    return result;
}

double
clusterPurity(const std::vector<int> &assignment,
              const std::vector<int> &labels, int clusters)
{
    NEBULA_ASSERT(assignment.size() == labels.size(),
                  "assignment/label size mismatch");
    if (assignment.empty() || clusters <= 0)
        return 0.0;
    int num_labels = 0;
    for (int l : labels)
        num_labels = std::max(num_labels, l + 1);
    std::vector<int> counts(static_cast<size_t>(clusters) * num_labels, 0);
    for (size_t s = 0; s < assignment.size(); ++s) {
        const int c = assignment[s];
        if (c < 0 || c >= clusters)
            continue;
        ++counts[static_cast<size_t>(c) * num_labels + labels[s]];
    }
    long long majority = 0;
    for (int c = 0; c < clusters; ++c) {
        int best = 0;
        for (int l = 0; l < num_labels; ++l)
            best = std::max(best,
                            counts[static_cast<size_t>(c) * num_labels + l]);
        majority += best;
    }
    return static_cast<double>(majority) /
           static_cast<double>(assignment.size());
}

} // namespace nebula
