/**
 * @file
 * STDP-style competitive clustering on the crossbar model (Velasquez et
 * al.'s unsupervised hardware learning rule for spintronic clustering,
 * see PAPERS.md). Crossbar columns are cluster prototypes; a sample is
 * rate-encoded into spike trains, column currents integrate on IF
 * membranes, and a lateral-inhibition winner-take-all picks the column
 * whose prototype matched best. The winner column is then potentiated
 * on rows that spiked and depressed on rows that stayed quiet -- every
 * level step an accounted programming pulse through
 * CrossbarArray::updateCells, so faults, remap and the pulse/energy
 * bill all apply to learning exactly as they do to programming.
 *
 * Sensing reuses the existing read path (evaluateSparse at the SNN read
 * voltage), which the device model treats as read-disturb-free: reads
 * never move the wall, so presenting a sample costs only ohmic read
 * energy. Deterministic under (config seed, presentation order).
 */

#ifndef NEBULA_LEARNING_STDP_HPP
#define NEBULA_LEARNING_STDP_HPP

#include <cstdint>
#include <vector>

#include "circuit/crossbar.hpp"
#include "nn/datasets.hpp"
#include "snn/if_layer.hpp"

namespace nebula {

/** Hyperparameters of the competitive clustering rule. */
struct StdpConfig
{
    /** Presentations of the whole sample stream. */
    int epochs = 2;

    /** Timesteps each sample is rate-encoded for. */
    int timesteps = 16;

    /** Root seed of the per-presentation spike trains. */
    uint64_t seed = 21;

    /** Firing probability per step at intensity 1.0. */
    double rateScale = 1.0;

    /** Level steps up for winner-column rows that spiked. */
    int potentiate = 1;

    /** Level steps down for winner-column rows that stayed quiet. */
    int depress = 1;

    /**
     * A row counts as active when it spiked in at least this fraction
     * of the presentation's timesteps.
     */
    double activeFraction = 0.25;

    /**
     * DeSieno-style conscience: a column's WTA score is penalized in
     * proportion to how far its win share exceeds 1/clusters, scaled by
     * the membrane spread so the bias is unit-free. Keeps dead columns
     * recruiting without a separate threshold homeostasis loop. 0
     * disables.
     */
    double conscience = 0.3;

    /**
     * Encode each pixel as an ON/OFF channel pair (rows 2i: intensity
     * p, rows N+i: 1-p), retina style. Spikes on active rows alone
     * cannot penalize prototype ink the sample lacks -- the column
     * current only sees rows that fired -- so large-ink prototypes
     * capture everything. With the complement channel present the
     * integrated current is the full bipolar correlation between the
     * prototype and the sample, i.e. proper nearest-prototype matching.
     * Requires a crossbar with 2x the pixel count in rows.
     */
    bool onOffChannels = true;

    /** Programming flow used for the update pulses. */
    ProgrammingConfig write;

    /** Integration window per read (s); scales read energy only. */
    double readDuration = 110e-9;

    /** Emit learning.* trace spans. */
    bool trace = false;
};

/** What one clustering fit measured. */
struct ClusteringResult
{
    int samples = 0;             //!< distinct samples in the stream
    long long presentations = 0; //!< sample presentations (epochs x N)
    double purity = 0.0;         //!< majority-label purity in [0, 1]
    std::vector<int> assignment;   //!< final cluster per sample
    std::vector<int> clusterCounts; //!< samples assigned per cluster
    UpdateReport updates;        //!< learning pulse/energy bill
    double readEnergy = 0.0;     //!< J spent sensing (reads)
};

/**
 * Competitive clustering of an image stream onto one crossbar array.
 * The array must have one row per input pixel (two with the default
 * ON/OFF channel encoding) and one column per cluster; the clusterer
 * owns no device state beyond win statistics, so the learned
 * prototypes ARE the array's conductances.
 */
class StdpClusterer
{
  public:
    StdpClusterer(CrossbarArray &xbar, StdpConfig config = {});

    /**
     * Seed the prototype columns from evenly strided samples of the
     * stream (deterministic), programmed through the configured flow.
     * Resets win statistics and the accumulated bills.
     */
    void initPrototypes(const Dataset &data, int samples);

    /**
     * Present one sample for config.timesteps steps and return the
     * winning column. With @p learn the winner is chosen under the
     * conscience bias, win statistics update, and the winner column's
     * conductances step (potentiate active rows / depress quiet rows)
     * through the incremental update API.
     */
    int present(const Tensor &image, bool learn);

    /** present() without learning or conscience: pure assignment. */
    int assign(const Tensor &image) { return present(image, false); }

    /**
     * Full fit: initPrototypes, config.epochs passes over the first
     * @p samples images, then a frozen assignment pass scored against
     * the dataset labels.
     */
    ClusteringResult fit(const Dataset &data, int samples);

    /** Accumulated update bill since initPrototypes. */
    const UpdateReport &updates() const { return updates_; }

    /** Accumulated sensing energy since initPrototypes (J). */
    double readEnergy() const { return readEnergy_; }

  private:
    /** The crossbar input row vector for @p image (ON/OFF stacking). */
    const Tensor &encodeInput(const Tensor &image);

    CrossbarArray &xbar_;
    StdpConfig config_;
    IfLayer integrator_;
    std::vector<long long> wins_;
    long long totalWins_ = 0;
    long long presentCounter_ = 0;
    UpdateReport updates_;
    double readEnergy_ = 0.0;
    std::vector<int> rowSpikes_;
    std::vector<float> stepIn_, stepOut_;
    SpikeVector active_;
    Tensor augmented_; //!< scratch ON/OFF-stacked input
};

/**
 * Majority-label purity of a clustering: each cluster votes its most
 * common label and purity is the fraction of samples matching their
 * cluster's vote. 1.0 = every cluster is label-pure.
 */
double clusterPurity(const std::vector<int> &assignment,
                     const std::vector<int> &labels, int clusters);

} // namespace nebula

#endif // NEBULA_LEARNING_STDP_HPP
