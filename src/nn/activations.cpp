#include "nn/activations.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"

namespace nebula {

Tensor
Relu::forward(const Tensor &input, bool train)
{
    Tensor output = input;
    if (train)
        mask_.assign(static_cast<size_t>(input.size()), 0);
    for (long long i = 0; i < output.size(); ++i) {
        if (output[i] > 0.0f) {
            if (train)
                mask_[static_cast<size_t>(i)] = 1;
        } else {
            output[i] = 0.0f;
        }
    }
    return output;
}

Tensor
Relu::backward(const Tensor &grad_output)
{
    NEBULA_ASSERT(mask_.size() == static_cast<size_t>(grad_output.size()),
                  "relu backward before train forward");
    Tensor grad_input = grad_output;
    for (long long i = 0; i < grad_input.size(); ++i)
        if (!mask_[static_cast<size_t>(i)])
            grad_input[i] = 0.0f;
    return grad_input;
}

ClippedRelu::ClippedRelu(float ceiling, int levels)
    : ceiling_(ceiling), levels_(levels)
{
    NEBULA_ASSERT(ceiling_ > 0.0f, "clip ceiling must be positive");
    NEBULA_ASSERT(levels_ == 0 || levels_ >= 2, "bad quantization levels");
}

std::string
ClippedRelu::name() const
{
    std::ostringstream oss;
    oss << "clipped_relu(" << ceiling_;
    if (levels_)
        oss << ", L" << levels_;
    oss << ")";
    return oss.str();
}

Tensor
ClippedRelu::forward(const Tensor &input, bool train)
{
    Tensor output = input;
    if (train)
        mask_.assign(static_cast<size_t>(input.size()), 0);
    const float step = levels_ ? ceiling_ / (levels_ - 1) : 0.0f;
    for (long long i = 0; i < output.size(); ++i) {
        float v = output[i];
        if (v > 0.0f && v < ceiling_ && train)
            mask_[static_cast<size_t>(i)] = 1;
        v = std::clamp(v, 0.0f, ceiling_);
        if (levels_)
            v = std::round(v / step) * step;
        output[i] = v;
    }
    return output;
}

Tensor
ClippedRelu::backward(const Tensor &grad_output)
{
    NEBULA_ASSERT(mask_.size() == static_cast<size_t>(grad_output.size()),
                  "clipped relu backward before train forward");
    Tensor grad_input = grad_output;
    for (long long i = 0; i < grad_input.size(); ++i)
        if (!mask_[static_cast<size_t>(i)])
            grad_input[i] = 0.0f;
    return grad_input;
}

Tensor
Flatten::forward(const Tensor &input, bool train)
{
    if (train)
        inputShape_ = input.shape();
    long long features = 1;
    for (int i = 1; i < input.rank(); ++i)
        features *= input.dim(i);
    return input.reshaped({input.dim(0), static_cast<int>(features)});
}

Tensor
Flatten::backward(const Tensor &grad_output)
{
    NEBULA_ASSERT(!inputShape_.empty(),
                  "flatten backward before train forward");
    return grad_output.reshaped(inputShape_);
}

} // namespace nebula
