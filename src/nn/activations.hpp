/**
 * @file
 * Activation and reshaping layers: ReLU, the clipped+quantized ReLU used
 * for 4-bit inference (paper Sec. IV-C), and Flatten.
 */

#ifndef NEBULA_NN_ACTIVATIONS_HPP
#define NEBULA_NN_ACTIVATIONS_HPP

#include "nn/layer.hpp"

namespace nebula {

/** Standard rectified linear unit. */
class Relu : public Layer
{
  public:
    Tensor forward(const Tensor &input, bool train = false) override;
    Tensor backward(const Tensor &grad_output) override;
    LayerKind kind() const override { return LayerKind::Relu; }
    LayerPtr clone() const override { return std::make_unique<Relu>(*this); }

  private:
    std::vector<uint8_t> mask_;
};

/**
 * ReLU clipped at a per-layer ceiling and optionally quantized to a
 * fixed number of levels. This models the percentile-clipped,
 * range-based linear quantization of activations (16 levels for the
 * 4-bit datapath).
 */
class ClippedRelu : public Layer
{
  public:
    /**
     * @param ceiling Clipping point a_max (activations above it clamp).
     * @param levels  Quantization levels; 0 disables quantization.
     */
    explicit ClippedRelu(float ceiling, int levels = 0);

    Tensor forward(const Tensor &input, bool train = false) override;
    Tensor backward(const Tensor &grad_output) override;
    LayerKind kind() const override { return LayerKind::ClippedRelu; }
    std::string name() const override;
    LayerPtr clone() const override
    {
        return std::make_unique<ClippedRelu>(*this);
    }

    float ceiling() const { return ceiling_; }
    int levels() const { return levels_; }

  private:
    float ceiling_;
    int levels_;
    std::vector<uint8_t> mask_;
};

/** NCHW -> (N, C*H*W). */
class Flatten : public Layer
{
  public:
    Tensor forward(const Tensor &input, bool train = false) override;
    Tensor backward(const Tensor &grad_output) override;
    LayerKind kind() const override { return LayerKind::Flatten; }
    LayerPtr clone() const override { return std::make_unique<Flatten>(*this); }

  private:
    std::vector<int> inputShape_;
};

} // namespace nebula

#endif // NEBULA_NN_ACTIVATIONS_HPP
