#include "nn/batchnorm.hpp"

#include <cmath>
#include <sstream>

#include "common/logging.hpp"

namespace nebula {

BatchNorm2d::BatchNorm2d(int channels, float momentum, float epsilon)
    : channels_(channels), momentum_(momentum), epsilon_(epsilon),
      gamma_({channels}), beta_({channels}), gammaGrad_({channels}),
      betaGrad_({channels}), runningMean_({channels}), runningVar_({channels})
{
    NEBULA_ASSERT(channels > 0, "bad batchnorm channels");
    gamma_.fill(1.0f);
    runningVar_.fill(1.0f);
}

std::string
BatchNorm2d::name() const
{
    std::ostringstream oss;
    oss << "batchnorm(" << channels_ << ")";
    return oss.str();
}

Tensor
BatchNorm2d::forward(const Tensor &input, bool train)
{
    NEBULA_ASSERT(input.rank() == 4 && input.dim(1) == channels_,
                  "batchnorm shape mismatch");
    const int batch = input.dim(0);
    const int h = input.dim(2), w = input.dim(3);
    const long long per_channel = static_cast<long long>(batch) * h * w;

    Tensor output(input.shape());

    if (train) {
        input_ = input;
        batchMean_.assign(channels_, 0.0f);
        batchVar_.assign(channels_, 0.0f);
        for (int c = 0; c < channels_; ++c) {
            double sum = 0.0, sq = 0.0;
            for (int n = 0; n < batch; ++n)
                for (int y = 0; y < h; ++y)
                    for (int x = 0; x < w; ++x) {
                        const double v = input.at(n, c, y, x);
                        sum += v;
                        sq += v * v;
                    }
            const double mean = sum / per_channel;
            const double var = sq / per_channel - mean * mean;
            batchMean_[c] = static_cast<float>(mean);
            batchVar_[c] = static_cast<float>(std::max(var, 0.0));
            runningMean_[c] = (1 - momentum_) * runningMean_[c] +
                              momentum_ * batchMean_[c];
            runningVar_[c] =
                (1 - momentum_) * runningVar_[c] + momentum_ * batchVar_[c];
        }
        for (int c = 0; c < channels_; ++c) {
            const float inv_std =
                1.0f / std::sqrt(batchVar_[c] + epsilon_);
            for (int n = 0; n < batch; ++n)
                for (int y = 0; y < h; ++y)
                    for (int x = 0; x < w; ++x)
                        output.at(n, c, y, x) =
                            gamma_[c] * (input.at(n, c, y, x) -
                                         batchMean_[c]) * inv_std +
                            beta_[c];
        }
    } else {
        for (int c = 0; c < channels_; ++c) {
            const float inv_std =
                1.0f / std::sqrt(runningVar_[c] + epsilon_);
            const float scale = gamma_[c] * inv_std;
            const float shift = beta_[c] - scale * runningMean_[c];
            for (int n = 0; n < batch; ++n)
                for (int y = 0; y < h; ++y)
                    for (int x = 0; x < w; ++x)
                        output.at(n, c, y, x) =
                            scale * input.at(n, c, y, x) + shift;
        }
    }
    return output;
}

Tensor
BatchNorm2d::backward(const Tensor &grad_output)
{
    NEBULA_ASSERT(input_.size() > 0, "batchnorm backward before forward");
    const int batch = input_.dim(0);
    const int h = input_.dim(2), w = input_.dim(3);
    const double m = static_cast<double>(batch) * h * w;

    Tensor grad_input(input_.shape());
    for (int c = 0; c < channels_; ++c) {
        const double mean = batchMean_[c];
        const double inv_std = 1.0 / std::sqrt(batchVar_[c] + epsilon_);

        // Accumulate the three reductions of the standard BN backward.
        double sum_dy = 0.0, sum_dy_xhat = 0.0;
        for (int n = 0; n < batch; ++n)
            for (int y = 0; y < h; ++y)
                for (int x = 0; x < w; ++x) {
                    const double dy = grad_output.at(n, c, y, x);
                    const double xhat =
                        (input_.at(n, c, y, x) - mean) * inv_std;
                    sum_dy += dy;
                    sum_dy_xhat += dy * xhat;
                }
        gammaGrad_[c] += static_cast<float>(sum_dy_xhat);
        betaGrad_[c] += static_cast<float>(sum_dy);

        const double g = gamma_[c];
        for (int n = 0; n < batch; ++n)
            for (int y = 0; y < h; ++y)
                for (int x = 0; x < w; ++x) {
                    const double dy = grad_output.at(n, c, y, x);
                    const double xhat =
                        (input_.at(n, c, y, x) - mean) * inv_std;
                    grad_input.at(n, c, y, x) = static_cast<float>(
                        g * inv_std *
                        (dy - sum_dy / m - xhat * sum_dy_xhat / m));
                }
    }
    return grad_input;
}

std::vector<Tensor *>
BatchNorm2d::parameters()
{
    return {&gamma_, &beta_};
}

std::vector<Tensor *>
BatchNorm2d::gradients()
{
    return {&gammaGrad_, &betaGrad_};
}

std::vector<Tensor *>
BatchNorm2d::state()
{
    return {&gamma_, &beta_, &runningMean_, &runningVar_};
}

void
BatchNorm2d::effectiveAffine(std::vector<float> &scale,
                             std::vector<float> &shift) const
{
    scale.resize(channels_);
    shift.resize(channels_);
    for (int c = 0; c < channels_; ++c) {
        const float inv_std = 1.0f / std::sqrt(runningVar_[c] + epsilon_);
        scale[c] = gamma_[c] * inv_std;
        shift[c] = beta_[c] - scale[c] * runningMean_[c];
    }
}

} // namespace nebula
