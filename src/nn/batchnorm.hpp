/**
 * @file
 * 2-D batch normalization. At inference time BN layers are folded back
 * into the preceding weight layer (paper Sec. V-A, following Rueckauer
 * et al.) so the network maps cleanly onto crossbars; the folding
 * helper lives in nn/network.hpp.
 */

#ifndef NEBULA_NN_BATCHNORM_HPP
#define NEBULA_NN_BATCHNORM_HPP

#include "nn/layer.hpp"

namespace nebula {

/** Per-channel batch normalization over (N, H, W). */
class BatchNorm2d : public Layer
{
  public:
    explicit BatchNorm2d(int channels, float momentum = 0.1f,
                         float epsilon = 1e-5f);

    Tensor forward(const Tensor &input, bool train = false) override;
    Tensor backward(const Tensor &grad_output) override;

    std::vector<Tensor *> parameters() override;
    std::vector<Tensor *> gradients() override;
    std::vector<Tensor *> state() override;

    LayerKind kind() const override { return LayerKind::BatchNorm; }
    std::string name() const override;
    LayerPtr clone() const override
    {
        return std::make_unique<BatchNorm2d>(*this);
    }

    int channels() const { return channels_; }
    float epsilon() const { return epsilon_; }

    Tensor &gamma() { return gamma_; }
    Tensor &beta() { return beta_; }
    Tensor &runningMean() { return runningMean_; }
    Tensor &runningVar() { return runningVar_; }
    const Tensor &gamma() const { return gamma_; }
    const Tensor &beta() const { return beta_; }
    const Tensor &runningMean() const { return runningMean_; }
    const Tensor &runningVar() const { return runningVar_; }

    /**
     * Effective affine transform y = scale[c] * x + shift[c] using the
     * running statistics; this is what gets folded into conv weights.
     */
    void effectiveAffine(std::vector<float> &scale,
                         std::vector<float> &shift) const;

  private:
    int channels_;
    float momentum_, epsilon_;
    Tensor gamma_, beta_;
    Tensor gammaGrad_, betaGrad_;
    Tensor runningMean_, runningVar_;

    // Cached train-mode state for backward.
    Tensor input_;
    std::vector<float> batchMean_, batchVar_;
};

} // namespace nebula

#endif // NEBULA_NN_BATCHNORM_HPP
