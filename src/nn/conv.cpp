#include "nn/conv.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"
#include "nn/gemm.hpp"

namespace nebula {

Conv2d::Conv2d(int in_channels, int out_channels, int kernel, int stride,
               int padding, bool bias)
    : inChannels_(in_channels), outChannels_(out_channels), kernel_(kernel),
      stride_(stride), padding_(padding), hasBias_(bias),
      weight_({out_channels, in_channels, kernel, kernel}),
      bias_({std::max(out_channels, 1)}),
      weightGrad_({out_channels, in_channels, kernel, kernel}),
      biasGrad_({std::max(out_channels, 1)})
{
    NEBULA_ASSERT(in_channels > 0 && out_channels > 0 && kernel > 0 &&
                      stride > 0 && padding >= 0,
                  "bad conv geometry");
}

void
Conv2d::initKaiming(Rng &rng)
{
    const float fan_in = static_cast<float>(receptiveField());
    const float bound = std::sqrt(6.0f / fan_in);
    weight_.uniform(rng, -bound, bound);
    if (hasBias_)
        bias_.zero();
}

std::string
Conv2d::name() const
{
    std::ostringstream oss;
    oss << "conv" << kernel_ << "x" << kernel_ << "(" << inChannels_ << "->"
        << outChannels_ << ",s" << stride_ << ")";
    return oss.str();
}

void
Conv2d::computeOutputGeometry(int in_h, int in_w)
{
    inH_ = in_h;
    inW_ = in_w;
    outH_ = (in_h + 2 * padding_ - kernel_) / stride_ + 1;
    outW_ = (in_w + 2 * padding_ - kernel_) / stride_ + 1;
    NEBULA_ASSERT(outH_ > 0 && outW_ > 0, "conv output collapsed: input ",
                  in_h, "x", in_w, " kernel ", kernel_);
}

void
Conv2d::im2col(const Tensor &input, int n, std::vector<float> &col) const
{
    // col: (Cin*K*K) x (outH*outW), row-major.
    const int positions = outH_ * outW_;
    col.assign(static_cast<size_t>(receptiveField()) * positions, 0.0f);
    size_t r = 0;
    for (int c = 0; c < inChannels_; ++c) {
        for (int kh = 0; kh < kernel_; ++kh) {
            for (int kw = 0; kw < kernel_; ++kw, ++r) {
                float *dst = col.data() + r * positions;
                for (int oh = 0; oh < outH_; ++oh) {
                    const int ih = oh * stride_ - padding_ + kh;
                    if (ih < 0 || ih >= inH_)
                        continue;
                    for (int ow = 0; ow < outW_; ++ow) {
                        const int iw = ow * stride_ - padding_ + kw;
                        if (iw < 0 || iw >= inW_)
                            continue;
                        dst[oh * outW_ + ow] = input.at(n, c, ih, iw);
                    }
                }
            }
        }
    }
}

void
Conv2d::col2im(const std::vector<float> &col, Tensor &grad_input, int n) const
{
    const int positions = outH_ * outW_;
    size_t r = 0;
    for (int c = 0; c < inChannels_; ++c) {
        for (int kh = 0; kh < kernel_; ++kh) {
            for (int kw = 0; kw < kernel_; ++kw, ++r) {
                const float *src = col.data() + r * positions;
                for (int oh = 0; oh < outH_; ++oh) {
                    const int ih = oh * stride_ - padding_ + kh;
                    if (ih < 0 || ih >= inH_)
                        continue;
                    for (int ow = 0; ow < outW_; ++ow) {
                        const int iw = ow * stride_ - padding_ + kw;
                        if (iw < 0 || iw >= inW_)
                            continue;
                        grad_input.at(n, c, ih, iw) += src[oh * outW_ + ow];
                    }
                }
            }
        }
    }
}

Tensor
Conv2d::forward(const Tensor &input, bool train)
{
    NEBULA_ASSERT(input.rank() == 4, "conv expects NCHW input, got ",
                  input.shapeString());
    NEBULA_ASSERT(input.dim(1) == inChannels_, "conv channel mismatch: ",
                  input.dim(1), " != ", inChannels_);
    const int batch = input.dim(0);
    computeOutputGeometry(input.dim(2), input.dim(3));

    if (train)
        input_ = input;

    Tensor output({batch, outChannels_, outH_, outW_});
    const int positions = outH_ * outW_;
    std::vector<float> col;
    for (int n = 0; n < batch; ++n) {
        im2col(input, n, col);
        float *out = output.data() +
                     static_cast<size_t>(n) * outChannels_ * positions;
        gemm(outChannels_, positions, receptiveField(), weight_.data(),
             col.data(), out);
        if (hasBias_) {
            for (int c = 0; c < outChannels_; ++c) {
                const float b = bias_[c];
                float *dst = out + static_cast<size_t>(c) * positions;
                for (int p = 0; p < positions; ++p)
                    dst[p] += b;
            }
        }
    }
    return output;
}

Tensor
Conv2d::backward(const Tensor &grad_output)
{
    NEBULA_ASSERT(input_.size() > 0, "conv backward before train forward");
    const int batch = input_.dim(0);
    const int positions = outH_ * outW_;

    Tensor grad_input(input_.shape());
    std::vector<float> col;
    std::vector<float> dcol(static_cast<size_t>(receptiveField()) *
                            positions);

    for (int n = 0; n < batch; ++n) {
        const float *dout = grad_output.data() +
                            static_cast<size_t>(n) * outChannels_ * positions;
        // dW += dOut * col^T
        im2col(input_, n, col);
        gemmTransB(outChannels_, receptiveField(), positions, dout,
                   col.data(), weightGrad_.data(), true);
        // dcol = W^T * dOut
        gemmTransA(receptiveField(), positions, outChannels_, weight_.data(),
                   dout, dcol.data());
        col2im(dcol, grad_input, n);
        if (hasBias_) {
            for (int c = 0; c < outChannels_; ++c) {
                double s = 0.0;
                const float *src = dout + static_cast<size_t>(c) * positions;
                for (int p = 0; p < positions; ++p)
                    s += src[p];
                biasGrad_[c] += static_cast<float>(s);
            }
        }
    }
    return grad_input;
}

std::vector<Tensor *>
Conv2d::parameters()
{
    if (hasBias_)
        return {&weight_, &bias_};
    return {&weight_};
}

std::vector<Tensor *>
Conv2d::gradients()
{
    if (hasBias_)
        return {&weightGrad_, &biasGrad_};
    return {&weightGrad_};
}

DwConv2d::DwConv2d(int channels, int kernel, int stride, int padding,
                   bool bias)
    : channels_(channels), kernel_(kernel), stride_(stride),
      padding_(padding), hasBias_(bias), weight_({channels, kernel, kernel}),
      bias_({channels}), weightGrad_({channels, kernel, kernel}),
      biasGrad_({channels})
{
    NEBULA_ASSERT(channels > 0 && kernel > 0 && stride > 0 && padding >= 0,
                  "bad depthwise conv geometry");
}

void
DwConv2d::initKaiming(Rng &rng)
{
    const float bound = std::sqrt(6.0f / (kernel_ * kernel_));
    weight_.uniform(rng, -bound, bound);
    if (hasBias_)
        bias_.zero();
}

std::string
DwConv2d::name() const
{
    std::ostringstream oss;
    oss << "dwconv" << kernel_ << "x" << kernel_ << "(" << channels_ << ",s"
        << stride_ << ")";
    return oss.str();
}

Tensor
DwConv2d::forward(const Tensor &input, bool train)
{
    NEBULA_ASSERT(input.rank() == 4 && input.dim(1) == channels_,
                  "depthwise conv shape mismatch");
    const int batch = input.dim(0);
    const int in_h = input.dim(2), in_w = input.dim(3);
    outH_ = (in_h + 2 * padding_ - kernel_) / stride_ + 1;
    outW_ = (in_w + 2 * padding_ - kernel_) / stride_ + 1;
    NEBULA_ASSERT(outH_ > 0 && outW_ > 0, "depthwise output collapsed");

    if (train)
        input_ = input;

    Tensor output({batch, channels_, outH_, outW_});
    for (int n = 0; n < batch; ++n) {
        for (int c = 0; c < channels_; ++c) {
            const float *w =
                weight_.data() + static_cast<size_t>(c) * kernel_ * kernel_;
            const float b = hasBias_ ? bias_[c] : 0.0f;
            for (int oh = 0; oh < outH_; ++oh) {
                for (int ow = 0; ow < outW_; ++ow) {
                    float acc = b;
                    for (int kh = 0; kh < kernel_; ++kh) {
                        const int ih = oh * stride_ - padding_ + kh;
                        if (ih < 0 || ih >= in_h)
                            continue;
                        for (int kw = 0; kw < kernel_; ++kw) {
                            const int iw = ow * stride_ - padding_ + kw;
                            if (iw < 0 || iw >= in_w)
                                continue;
                            acc += w[kh * kernel_ + kw] *
                                   input.at(n, c, ih, iw);
                        }
                    }
                    output.at(n, c, oh, ow) = acc;
                }
            }
        }
    }
    return output;
}

Tensor
DwConv2d::backward(const Tensor &grad_output)
{
    NEBULA_ASSERT(input_.size() > 0,
                  "depthwise backward before train forward");
    const int batch = input_.dim(0);
    const int in_h = input_.dim(2), in_w = input_.dim(3);

    Tensor grad_input(input_.shape());
    for (int n = 0; n < batch; ++n) {
        for (int c = 0; c < channels_; ++c) {
            const float *w =
                weight_.data() + static_cast<size_t>(c) * kernel_ * kernel_;
            float *dw = weightGrad_.data() +
                        static_cast<size_t>(c) * kernel_ * kernel_;
            for (int oh = 0; oh < outH_; ++oh) {
                for (int ow = 0; ow < outW_; ++ow) {
                    const float g = grad_output.at(n, c, oh, ow);
                    if (g == 0.0f)
                        continue;
                    if (hasBias_)
                        biasGrad_[c] += g;
                    for (int kh = 0; kh < kernel_; ++kh) {
                        const int ih = oh * stride_ - padding_ + kh;
                        if (ih < 0 || ih >= in_h)
                            continue;
                        for (int kw = 0; kw < kernel_; ++kw) {
                            const int iw = ow * stride_ - padding_ + kw;
                            if (iw < 0 || iw >= in_w)
                                continue;
                            dw[kh * kernel_ + kw] +=
                                g * input_.at(n, c, ih, iw);
                            grad_input.at(n, c, ih, iw) +=
                                g * w[kh * kernel_ + kw];
                        }
                    }
                }
            }
        }
    }
    return grad_input;
}

std::vector<Tensor *>
DwConv2d::parameters()
{
    if (hasBias_)
        return {&weight_, &bias_};
    return {&weight_};
}

std::vector<Tensor *>
DwConv2d::gradients()
{
    if (hasBias_)
        return {&weightGrad_, &biasGrad_};
    return {&weightGrad_};
}

} // namespace nebula
