/**
 * @file
 * Dense and depthwise 2-D convolution layers (im2col + GEMM for the
 * dense case). These are the layers that map onto NEBULA crossbars: a
 * KH x KW x C kernel flattens onto Rf crossbar rows and each of the
 * Cout kernels occupies one column (paper Fig. 5).
 */

#ifndef NEBULA_NN_CONV_HPP
#define NEBULA_NN_CONV_HPP

#include "nn/layer.hpp"

namespace nebula {

/** Dense 2-D convolution with square kernel, stride and zero padding. */
class Conv2d : public Layer
{
  public:
    /**
     * @param in_channels  input channels C
     * @param out_channels kernels / output channels
     * @param kernel       square kernel size K
     * @param stride       stride
     * @param padding      symmetric zero padding
     * @param bias         include a bias vector
     */
    Conv2d(int in_channels, int out_channels, int kernel, int stride = 1,
           int padding = 0, bool bias = true);

    Tensor forward(const Tensor &input, bool train = false) override;
    Tensor backward(const Tensor &grad_output) override;

    std::vector<Tensor *> parameters() override;
    std::vector<Tensor *> gradients() override;

    LayerKind kind() const override { return LayerKind::Conv; }
    std::string name() const override;
    LayerPtr clone() const override { return std::make_unique<Conv2d>(*this); }

    bool isWeightLayer() const override { return true; }
    int receptiveField() const override
    {
        return inChannels_ * kernel_ * kernel_;
    }
    int numKernels() const override { return outChannels_; }
    long long outputPositions() const override { return outH_ * 1ll * outW_; }
    long long outputElements() const override
    {
        return static_cast<long long>(outChannels_) * outH_ * outW_;
    }

    /** Weight tensor, shape (Cout, Cin, K, K). */
    Tensor &weight() { return weight_; }
    const Tensor &weight() const { return weight_; }
    Tensor &bias() { return bias_; }
    const Tensor &bias() const { return bias_; }
    bool hasBias() const { return hasBias_; }
    /** Enable/disable the bias term (used by batch-norm folding). */
    void setHasBias(bool has_bias) { hasBias_ = has_bias; }

    int inChannels() const { return inChannels_; }
    int outChannels() const { return outChannels_; }
    int kernel() const { return kernel_; }
    int stride() const { return stride_; }
    int padding() const { return padding_; }

    /** Kaiming-uniform initialization. */
    void initKaiming(Rng &rng);

  private:
    void computeOutputGeometry(int in_h, int in_w);
    void im2col(const Tensor &input, int n, std::vector<float> &col) const;
    void col2im(const std::vector<float> &col, Tensor &grad_input,
                int n) const;

    int inChannels_, outChannels_, kernel_, stride_, padding_;
    bool hasBias_;
    Tensor weight_, bias_;
    Tensor weightGrad_, biasGrad_;
    Tensor input_;           //!< cached for backward (train mode)
    int inH_ = 0, inW_ = 0;
    int outH_ = 0, outW_ = 0;
};

/** Depthwise convolution (one KxK filter per channel, MobileNet-v1). */
class DwConv2d : public Layer
{
  public:
    DwConv2d(int channels, int kernel, int stride = 1, int padding = 0,
             bool bias = true);

    Tensor forward(const Tensor &input, bool train = false) override;
    Tensor backward(const Tensor &grad_output) override;

    std::vector<Tensor *> parameters() override;
    std::vector<Tensor *> gradients() override;

    LayerKind kind() const override { return LayerKind::DwConv; }
    std::string name() const override;
    LayerPtr clone() const override { return std::make_unique<DwConv2d>(*this); }

    bool isWeightLayer() const override { return true; }
    /**
     * A depthwise kernel touches only one input channel, so its
     * receptive field on a crossbar is K*K rows (paper Sec. VI-A notes
     * the resulting low crossbar utilization of separable convolutions).
     */
    int receptiveField() const override { return kernel_ * kernel_; }
    int numKernels() const override { return channels_; }
    long long outputPositions() const override { return outH_ * 1ll * outW_; }
    long long outputElements() const override
    {
        return static_cast<long long>(channels_) * outH_ * outW_;
    }

    Tensor &weight() { return weight_; }
    const Tensor &weight() const { return weight_; }
    Tensor &bias() { return bias_; }
    bool hasBias() const { return hasBias_; }
    /** Enable/disable the bias term (used by batch-norm folding). */
    void setHasBias(bool has_bias) { hasBias_ = has_bias; }
    int channels() const { return channels_; }
    int kernel() const { return kernel_; }
    int stride() const { return stride_; }
    int padding() const { return padding_; }

    void initKaiming(Rng &rng);

  private:
    int channels_, kernel_, stride_, padding_;
    bool hasBias_;
    Tensor weight_, bias_;       //!< weight shape (C, K, K)
    Tensor weightGrad_, biasGrad_;
    Tensor input_;
    int outH_ = 0, outW_ = 0;
};

} // namespace nebula

#endif // NEBULA_NN_CONV_HPP
