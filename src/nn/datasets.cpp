#include "nn/datasets.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"

namespace nebula {

Tensor
Dataset::batchImages(const std::vector<int> &indices) const
{
    NEBULA_ASSERT(!indices.empty(), "empty batch");
    const Tensor &first = image(indices[0]);
    Tensor batch({static_cast<int>(indices.size()), first.dim(0),
                  first.dim(1), first.dim(2)});
    const long long per = first.size();
    for (size_t k = 0; k < indices.size(); ++k) {
        const Tensor &img = image(indices[k]);
        std::copy(img.data(), img.data() + per,
                  batch.data() + static_cast<long long>(k) * per);
    }
    return batch;
}

std::vector<int>
Dataset::batchLabels(const std::vector<int> &indices) const
{
    std::vector<int> out(indices.size());
    for (size_t k = 0; k < indices.size(); ++k)
        out[k] = label(indices[k]);
    return out;
}

Tensor
Dataset::firstImages(int n) const
{
    n = std::min(n, size());
    std::vector<int> indices(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        indices[static_cast<size_t>(i)] = i;
    return batchImages(indices);
}

std::vector<int>
Dataset::firstLabels(int n) const
{
    n = std::min(n, size());
    std::vector<int> indices(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i)
        indices[static_cast<size_t>(i)] = i;
    return batchLabels(indices);
}

namespace {

/** 5x7 digit glyphs, '#' = ink. */
const char *const kGlyphs[10][7] = {
    {" ### ", "#   #", "#  ##", "# # #", "##  #", "#   #", " ### "}, // 0
    {"  #  ", " ##  ", "  #  ", "  #  ", "  #  ", "  #  ", " ### "}, // 1
    {" ### ", "#   #", "    #", "   # ", "  #  ", " #   ", "#####"}, // 2
    {" ### ", "#   #", "    #", "  ## ", "    #", "#   #", " ### "}, // 3
    {"   # ", "  ## ", " # # ", "#  # ", "#####", "   # ", "   # "}, // 4
    {"#####", "#    ", "#### ", "    #", "    #", "#   #", " ### "}, // 5
    {" ### ", "#    ", "#    ", "#### ", "#   #", "#   #", " ### "}, // 6
    {"#####", "    #", "   # ", "  #  ", "  #  ", "  #  ", "  #  "}, // 7
    {" ### ", "#   #", "#   #", " ### ", "#   #", "#   #", " ### "}, // 8
    {" ### ", "#   #", "#   #", " ####", "    #", "    #", " ### "}, // 9
};

/**
 * Render glyph @p digit into channel @p c of @p img scaled to roughly
 * fill the image, with sub-glyph translation jitter.
 */
void
renderGlyph(Tensor &img, int c, int digit, int dx, int dy, float ink,
            double scale)
{
    const int hw = img.dim(2);
    const int gw = 5, gh = 7;
    // Size of the rendered glyph in pixels.
    const int rh = std::max(4, static_cast<int>(hw * scale));
    const int rw = std::max(3, rh * gw / gh);
    const int y0 = (hw - rh) / 2 + dy;
    const int x0 = (hw - rw) / 2 + dx;
    for (int y = 0; y < rh; ++y) {
        const int gy = std::min(gh - 1, y * gh / rh);
        const int iy = y0 + y;
        if (iy < 0 || iy >= hw)
            continue;
        for (int x = 0; x < rw; ++x) {
            const int gx = std::min(gw - 1, x * gw / rw);
            const int ix = x0 + x;
            if (ix < 0 || ix >= hw)
                continue;
            if (kGlyphs[digit][gy][gx] == '#')
                img.at(0, c, iy, ix) = ink;
        }
    }
}

void
clampUnit(Tensor &img)
{
    for (long long i = 0; i < img.size(); ++i)
        img[i] = std::clamp(img[i], 0.0f, 1.0f);
}

/** One sinusoidal plane-wave texture component. */
struct Wave
{
    double fx, fy, phase, amp;
};

} // namespace

SyntheticDigits::SyntheticDigits(int count, int imageSize, uint64_t seed,
                                 double noise)
    : Dataset("synthetic-digits", 10, 1, imageSize)
{
    NEBULA_ASSERT(imageSize >= 8, "digits need at least 8x8 images");
    Rng rng(seed ^ 0xd1d5u);
    images_.reserve(static_cast<size_t>(count));
    labels_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        const int digit = rng.uniformInt(0, 9);
        Tensor img({1, 1, imageSize, imageSize});
        const int jitter = std::max(1, imageSize / 8);
        const int dx = rng.uniformInt(-jitter, jitter);
        const int dy = rng.uniformInt(-jitter, jitter);
        const double scale = rng.uniform(0.65, 0.9);
        const float ink = static_cast<float>(rng.uniform(0.75, 1.0));
        renderGlyph(img, 0, digit, dx, dy, ink, scale);
        if (noise > 0.0)
            for (long long k = 0; k < img.size(); ++k)
                img[k] += static_cast<float>(rng.gaussian(0.0, noise));
        clampUnit(img);
        img.reshape({1, imageSize, imageSize});
        images_.push_back(std::move(img));
        labels_.push_back(digit);
    }
}

SyntheticTextures::SyntheticTextures(int count, int classes, int imageSize,
                                     int channels, uint64_t seed,
                                     double noise)
    : Dataset("synthetic-textures", classes, channels, imageSize)
{
    NEBULA_ASSERT(classes >= 2, "need at least two classes");
    // Class prototypes depend only on the dataset geometry, NOT on the
    // sample seed, so train/test splits built with different seeds are
    // draws from the same task.
    Rng proto_rng(0x7e47u ^ (static_cast<uint64_t>(classes) << 20) ^
                  (static_cast<uint64_t>(imageSize) << 8) ^
                  static_cast<uint64_t>(channels));

    // Fixed per-class prototypes: waves per channel plus a base tint.
    const int waves_per_channel = 3;
    std::vector<std::vector<Wave>> prototypes;   // [class*channel] waves
    std::vector<float> tint(
        static_cast<size_t>(classes) * channels);
    prototypes.resize(static_cast<size_t>(classes) * channels);
    for (int cls = 0; cls < classes; ++cls) {
        for (int c = 0; c < channels; ++c) {
            auto &waves = prototypes[static_cast<size_t>(cls) * channels + c];
            for (int w = 0; w < waves_per_channel; ++w) {
                Wave wave;
                const double freq = proto_rng.uniform(1.0, 5.0);
                const double theta = proto_rng.uniform(0.0, 2 * M_PI);
                wave.fx = freq * std::cos(theta) * 2 * M_PI / imageSize;
                wave.fy = freq * std::sin(theta) * 2 * M_PI / imageSize;
                wave.phase = proto_rng.uniform(0.0, 2 * M_PI);
                wave.amp = proto_rng.uniform(0.1, 0.25);
                waves.push_back(wave);
            }
            tint[static_cast<size_t>(cls) * channels + c] =
                static_cast<float>(proto_rng.uniform(0.3, 0.7));
        }
    }

    Rng rng(seed ^ 0x5a5au);
    images_.reserve(static_cast<size_t>(count));
    labels_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        const int cls = rng.uniformInt(0, classes - 1);
        // Per-sample jitter: translation (cyclic) and small phase shift.
        const int sx = rng.uniformInt(0, imageSize - 1);
        const int sy = rng.uniformInt(0, imageSize - 1);
        const double dphase = rng.uniform(-0.5, 0.5);

        Tensor img({channels, imageSize, imageSize});
        for (int c = 0; c < channels; ++c) {
            const auto &waves =
                prototypes[static_cast<size_t>(cls) * channels + c];
            const float base =
                tint[static_cast<size_t>(cls) * channels + c];
            for (int y = 0; y < imageSize; ++y) {
                for (int x = 0; x < imageSize; ++x) {
                    double v = base;
                    const int yy = (y + sy) % imageSize;
                    const int xx = (x + sx) % imageSize;
                    for (const Wave &wave : waves)
                        v += wave.amp * std::sin(wave.fx * xx +
                                                 wave.fy * yy +
                                                 wave.phase + dphase);
                    v += rng.gaussian(0.0, noise);
                    img[(static_cast<long long>(c) * imageSize + y) *
                            imageSize +
                        x] = static_cast<float>(v);
                }
            }
        }
        clampUnit(img);
        images_.push_back(std::move(img));
        labels_.push_back(cls);
    }
}

SyntheticSvhn::SyntheticSvhn(int count, int imageSize, uint64_t seed,
                             double noise)
    : Dataset("synthetic-svhn", 10, 3, imageSize)
{
    Rng rng(seed ^ 0x54a3u);
    images_.reserve(static_cast<size_t>(count));
    labels_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        const int digit = rng.uniformInt(0, 9);
        Tensor img({1, 3, imageSize, imageSize});

        // Textured background: low-frequency sinusoid per channel.
        for (int c = 0; c < 3; ++c) {
            const double base = rng.uniform(0.2, 0.6);
            const double amp = rng.uniform(0.05, 0.2);
            const double fx = rng.uniform(0.5, 2.0) * 2 * M_PI / imageSize;
            const double fy = rng.uniform(0.5, 2.0) * 2 * M_PI / imageSize;
            const double phase = rng.uniform(0.0, 2 * M_PI);
            for (int y = 0; y < imageSize; ++y)
                for (int x = 0; x < imageSize; ++x)
                    img.at(0, c, y, x) = static_cast<float>(
                        base + amp * std::sin(fx * x + fy * y + phase));
        }

        // Digit in a random saturated color.
        const int hue = rng.uniformInt(0, 2);
        const int jitter = std::max(1, imageSize / 8);
        const int dx = rng.uniformInt(-jitter, jitter);
        const int dy = rng.uniformInt(-jitter, jitter);
        const double scale = rng.uniform(0.5, 0.8);
        for (int c = 0; c < 3; ++c) {
            const float ink = (c == hue)
                                  ? static_cast<float>(rng.uniform(0.8, 1.0))
                                  : static_cast<float>(rng.uniform(0.0, 0.2));
            renderGlyph(img, c, digit, dx, dy, ink, scale);
        }

        if (noise > 0.0)
            for (long long k = 0; k < img.size(); ++k)
                img[k] += static_cast<float>(rng.gaussian(0.0, noise));
        clampUnit(img);
        img.reshape({3, imageSize, imageSize});
        images_.push_back(std::move(img));
        labels_.push_back(digit);
    }
}

SyntheticClusters::SyntheticClusters(int count, int classes, int imageSize,
                                     uint64_t seed, double flipProb,
                                     double noise)
    : Dataset("synthetic-clusters", classes, 1, imageSize)
{
    NEBULA_ASSERT(classes >= 2, "need at least two classes");
    const int n = imageSize * imageSize;

    // Prototypes depend only on the geometry, NOT the sample seed, so
    // splits built with different seeds share the same class structure.
    Rng proto_rng(0xc1u ^ (static_cast<uint64_t>(classes) << 24) ^
                  (static_cast<uint64_t>(imageSize) << 8));
    std::vector<char> ink(static_cast<size_t>(classes) * n);
    for (char &cell : ink)
        cell = proto_rng.bernoulli(0.35) ? 1 : 0;

    Rng rng(seed ^ 0xc105u);
    images_.reserve(static_cast<size_t>(count));
    labels_.reserve(static_cast<size_t>(count));
    for (int i = 0; i < count; ++i) {
        const int cls = rng.uniformInt(0, classes - 1);
        Tensor img({1, imageSize, imageSize});
        for (int p = 0; p < n; ++p) {
            bool on = ink[static_cast<size_t>(cls) * n + p];
            if (rng.bernoulli(flipProb))
                on = !on;
            double v = on ? rng.uniform(0.8, 1.0) : 0.0;
            if (noise > 0.0)
                v += rng.gaussian(0.0, noise);
            img[p] = static_cast<float>(v);
        }
        clampUnit(img);
        images_.push_back(std::move(img));
        labels_.push_back(cls);
    }
}

} // namespace nebula
