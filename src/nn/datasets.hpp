/**
 * @file
 * Self-contained synthetic image datasets.
 *
 * The paper evaluates on MNIST / CIFAR-10 / CIFAR-100 / SVHN / ImageNet,
 * none of which can be redistributed here, so the repository generates
 * procedural stand-ins with the same tensor shapes and qualitatively
 * similar difficulty ordering:
 *
 *  - SyntheticDigits   : MNIST-like; 5x7 digit glyphs rendered with
 *                        translation/scale jitter and pixel noise.
 *  - SyntheticTextures : CIFAR-like; per-class random sinusoid texture
 *                        prototypes with phase jitter, translation and
 *                        noise. Class count configurable (10 / 100).
 *  - SyntheticSvhn     : SVHN-like; colored digit glyphs over textured
 *                        backgrounds.
 *  - SyntheticClusters : fixed per-class prototype patterns corrupted
 *                        by pixel flips and noise; spatially aligned,
 *                        so it is clusterable in raw pixel space (the
 *                        stream the unsupervised on-device learning
 *                        experiments need -- digits and textures are
 *                        jittered/translated and are not).
 *
 * Every dataset is deterministic in its seed, so train/test splits are
 * reproducible and disjoint (different seeds).
 */

#ifndef NEBULA_NN_DATASETS_HPP
#define NEBULA_NN_DATASETS_HPP

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace nebula {

/** An in-memory labelled image dataset. */
class Dataset
{
  public:
    virtual ~Dataset() = default;

    int size() const { return static_cast<int>(labels_.size()); }
    int numClasses() const { return numClasses_; }
    int channels() const { return channels_; }
    int imageSize() const { return imageSize_; }

    /** Image i as a (C, H, W) tensor with values in [0, 1]. */
    const Tensor &image(int i) const { return images_[static_cast<size_t>(i)]; }
    int label(int i) const { return labels_[static_cast<size_t>(i)]; }

    /** Stack the given indices into an (N, C, H, W) batch. */
    Tensor batchImages(const std::vector<int> &indices) const;

    /** Labels for the given indices. */
    std::vector<int> batchLabels(const std::vector<int> &indices) const;

    /** Batch of the first @p n samples (n clamped to size()). */
    Tensor firstImages(int n) const;
    std::vector<int> firstLabels(int n) const;

    const std::string &name() const { return name_; }

  protected:
    Dataset(std::string name, int classes, int channels, int image_size)
        : name_(std::move(name)), numClasses_(classes), channels_(channels),
          imageSize_(image_size)
    {
    }

    std::string name_;
    int numClasses_;
    int channels_;
    int imageSize_;
    std::vector<Tensor> images_;
    std::vector<int> labels_;
};

/** MNIST-like glyph digits. */
class SyntheticDigits : public Dataset
{
  public:
    /**
     * @param count     Number of samples.
     * @param imageSize Square image side (default 16).
     * @param seed      Generation seed (use different seeds for splits).
     * @param noise     Additive Gaussian pixel noise sigma.
     */
    SyntheticDigits(int count, int imageSize = 16, uint64_t seed = 1,
                    double noise = 0.08);
};

/** CIFAR-like multi-class textures. */
class SyntheticTextures : public Dataset
{
  public:
    SyntheticTextures(int count, int classes = 10, int imageSize = 32,
                      int channels = 3, uint64_t seed = 1,
                      double noise = 0.10);
};

/** SVHN-like colored digits on textured backgrounds. */
class SyntheticSvhn : public Dataset
{
  public:
    SyntheticSvhn(int count, int imageSize = 32, uint64_t seed = 1,
                  double noise = 0.08);
};

/**
 * Spatially aligned prototype patterns for clustering experiments.
 * Each class is a fixed random binary ink mask (drawn from the
 * geometry, not the sample seed, so splits share prototypes); a sample
 * is its class prototype with pixels flipped at @p flipProb plus
 * additive Gaussian noise. No translation or scale jitter: nearest
 * prototype in pixel space recovers the class, which is what an
 * unsupervised competitive learner can be expected to find.
 */
class SyntheticClusters : public Dataset
{
  public:
    /**
     * @param count     Number of samples.
     * @param classes   Prototype count.
     * @param imageSize Square image side.
     * @param seed      Sample seed (use different seeds for splits).
     * @param flipProb  Per-pixel probability of flipping ink/background.
     * @param noise     Additive Gaussian pixel noise sigma.
     */
    SyntheticClusters(int count, int classes = 10, int imageSize = 12,
                      uint64_t seed = 1, double flipProb = 0.08,
                      double noise = 0.08);
};

} // namespace nebula

#endif // NEBULA_NN_DATASETS_HPP
