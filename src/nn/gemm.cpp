#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>

namespace nebula {

namespace {
constexpr int kBlock = 64;
} // namespace

void
gemm(int M, int N, int K, const float *A, const float *B, float *C,
     bool accumulate)
{
    if (!accumulate)
        std::memset(C, 0, sizeof(float) * static_cast<size_t>(M) * N);

    for (int i0 = 0; i0 < M; i0 += kBlock) {
        const int i1 = std::min(i0 + kBlock, M);
        for (int k0 = 0; k0 < K; k0 += kBlock) {
            const int k1 = std::min(k0 + kBlock, K);
            for (int i = i0; i < i1; ++i) {
                float *c = C + static_cast<size_t>(i) * N;
                const float *a = A + static_cast<size_t>(i) * K;
                for (int k = k0; k < k1; ++k) {
                    const float aik = a[k];
                    if (aik == 0.0f)
                        continue;
                    const float *b = B + static_cast<size_t>(k) * N;
                    for (int j = 0; j < N; ++j)
                        c[j] += aik * b[j];
                }
            }
        }
    }
}

void
gemmTransA(int M, int N, int K, const float *A, const float *B, float *C,
           bool accumulate)
{
    if (!accumulate)
        std::memset(C, 0, sizeof(float) * static_cast<size_t>(M) * N);

    // C[i][j] += sum_k A[k][i] * B[k][j]
    for (int k = 0; k < K; ++k) {
        const float *a = A + static_cast<size_t>(k) * M;
        const float *b = B + static_cast<size_t>(k) * N;
        for (int i = 0; i < M; ++i) {
            const float aki = a[i];
            if (aki == 0.0f)
                continue;
            float *c = C + static_cast<size_t>(i) * N;
            for (int j = 0; j < N; ++j)
                c[j] += aki * b[j];
        }
    }
}

void
gemmTransB(int M, int N, int K, const float *A, const float *B, float *C,
           bool accumulate)
{
    if (!accumulate)
        std::memset(C, 0, sizeof(float) * static_cast<size_t>(M) * N);

    // C[i][j] += sum_k A[i][k] * B[j][k]
    for (int i = 0; i < M; ++i) {
        const float *a = A + static_cast<size_t>(i) * K;
        float *c = C + static_cast<size_t>(i) * N;
        for (int j = 0; j < N; ++j) {
            const float *b = B + static_cast<size_t>(j) * K;
            double acc = c[j];
            for (int k = 0; k < K; ++k) {
                const float aik = a[k];
                if (aik == 0.0f)
                    continue;
                acc += static_cast<double>(aik) * b[k];
            }
            c[j] = static_cast<float>(acc);
        }
    }
}

} // namespace nebula
