/**
 * @file
 * Small blocked single-precision GEMM kernels used by the conv and
 * linear layers. Not tuned for peak FLOPs -- just cache-blocked enough to
 * make training the scaled benchmark networks practical on one core.
 */

#ifndef NEBULA_NN_GEMM_HPP
#define NEBULA_NN_GEMM_HPP

namespace nebula {

/**
 * C (MxN) += A (MxK) * B (KxN), all row-major.
 * If @p accumulate is false, C is overwritten instead.
 */
void gemm(int M, int N, int K, const float *A, const float *B, float *C,
          bool accumulate = false);

/** C (MxN) += A^T (A is KxM) * B (KxN), row-major. */
void gemmTransA(int M, int N, int K, const float *A, const float *B,
                float *C, bool accumulate = false);

/** C (MxN) += A (MxK) * B^T (B is NxK), row-major. */
void gemmTransB(int M, int N, int K, const float *A, const float *B,
                float *C, bool accumulate = false);

} // namespace nebula

#endif // NEBULA_NN_GEMM_HPP
