#include "nn/layer.hpp"

#include "common/logging.hpp"

namespace nebula {

const char *
layerKindName(LayerKind kind)
{
    switch (kind) {
      case LayerKind::Conv:        return "conv";
      case LayerKind::DwConv:      return "dwconv";
      case LayerKind::Linear:      return "linear";
      case LayerKind::AvgPool:     return "avgpool";
      case LayerKind::MaxPool:     return "maxpool";
      case LayerKind::BatchNorm:   return "batchnorm";
      case LayerKind::Relu:        return "relu";
      case LayerKind::ClippedRelu: return "clipped_relu";
      case LayerKind::Flatten:     return "flatten";
      case LayerKind::If:          return "if";
    }
    return "unknown";
}

Tensor
Layer::backward(const Tensor &)
{
    NEBULA_PANIC("backward not implemented for layer ", name());
}

std::string
Layer::name() const
{
    return layerKindName(kind());
}

std::vector<const Tensor *>
Layer::constParameters() const
{
    // parameters() only hands out pointers and has no side effects;
    // the cast is confined here so callers stay const-clean.
    auto params = const_cast<Layer *>(this)->parameters();
    return {params.begin(), params.end()};
}

void
Layer::zeroGrad()
{
    for (Tensor *g : gradients())
        g->zero();
}

} // namespace nebula
