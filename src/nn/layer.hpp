/**
 * @file
 * Layer abstraction for the functional neural-network simulator.
 *
 * Layers implement forward (inference and training) and backward
 * (training) passes on batch tensors. They also expose the *mapping
 * geometry* the NEBULA architecture model needs: the receptive field
 * size Rf = KH * KW * C that determines how a kernel is flattened onto
 * crossbar rows (paper Fig. 5), the number of kernels (crossbar
 * columns), and the number of output positions (crossbar evaluations per
 * input image).
 */

#ifndef NEBULA_NN_LAYER_HPP
#define NEBULA_NN_LAYER_HPP

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace nebula {

/** Layer type tags used by the mapper and the ANN-to-SNN converter. */
enum class LayerKind {
    Conv,      //!< dense 2-D convolution
    DwConv,    //!< depthwise separable convolution (depthwise stage)
    Linear,    //!< fully connected
    AvgPool,
    MaxPool,
    BatchNorm,
    Relu,
    ClippedRelu,
    Flatten,
    If,        //!< integrate-and-fire (inserted by SNN conversion)
};

/** Name of a layer kind. */
const char *layerKindName(LayerKind kind);

class Layer;
using LayerPtr = std::unique_ptr<Layer>;

/** Abstract network layer. */
class Layer
{
  public:
    virtual ~Layer() = default;

    /** Forward pass; @p train enables training-mode behaviour (BN). */
    virtual Tensor forward(const Tensor &input, bool train = false) = 0;

    /**
     * Backward pass: takes dL/d(output), returns dL/d(input) and
     * accumulates parameter gradients. Only valid after a forward call
     * with train == true.
     */
    virtual Tensor backward(const Tensor &grad_output);

    /** Learnable parameter tensors (empty if none). */
    virtual std::vector<Tensor *> parameters() { return {}; }

    /**
     * Read-only view of parameters(), callable on a const layer (the
     * chip programs crossbars from layers it must not modify).
     */
    std::vector<const Tensor *> constParameters() const;

    /** Gradient tensors matching parameters(). */
    virtual std::vector<Tensor *> gradients() { return {}; }

    /**
     * All persistent tensors (parameters plus non-learnable state such
     * as batch-norm running statistics); used by save/load/copy.
     */
    virtual std::vector<Tensor *> state() { return parameters(); }

    /**
     * Deep copy of the layer (parameters included). Used by the
     * ANN-to-SNN converter and the hybrid splitter, which need private
     * weight copies they can re-normalize.
     */
    virtual LayerPtr clone() const = 0;

    /** Reset accumulated gradients to zero. */
    void zeroGrad();

    virtual LayerKind kind() const = 0;

    /** Short display name, e.g. "conv3x3(64)". */
    virtual std::string name() const;

    // -- Mapping geometry (weight layers only) ---------------------------

    /** True for layers that map onto crossbars (conv / linear). */
    virtual bool isWeightLayer() const { return false; }

    /** Receptive field Rf = KH*KW*Cin (conv) or fan-in (linear). */
    virtual int receptiveField() const { return 0; }

    /** Number of kernels == output channels / units (crossbar columns). */
    virtual int numKernels() const { return 0; }

    /**
     * Crossbar evaluations needed per input image == number of spatial
     * output positions (1 for linear layers). Valid after a forward pass
     * has fixed the output geometry.
     */
    virtual long long outputPositions() const { return 0; }

    /** Elements in one output feature map (for buffer sizing). */
    virtual long long outputElements() const { return 0; }
};

} // namespace nebula

#endif // NEBULA_NN_LAYER_HPP
