#include "nn/linear.hpp"

#include <cmath>
#include <sstream>

#include "common/logging.hpp"
#include "nn/gemm.hpp"

namespace nebula {

Linear::Linear(int in_features, int out_features, bool bias)
    : inFeatures_(in_features), outFeatures_(out_features), hasBias_(bias),
      weight_({out_features, in_features}), bias_({out_features}),
      weightGrad_({out_features, in_features}), biasGrad_({out_features})
{
    NEBULA_ASSERT(in_features > 0 && out_features > 0, "bad linear geometry");
}

void
Linear::initKaiming(Rng &rng)
{
    const float bound = std::sqrt(6.0f / inFeatures_);
    weight_.uniform(rng, -bound, bound);
    if (hasBias_)
        bias_.zero();
}

std::string
Linear::name() const
{
    std::ostringstream oss;
    oss << "linear(" << inFeatures_ << "->" << outFeatures_ << ")";
    return oss.str();
}

Tensor
Linear::forward(const Tensor &input, bool train)
{
    NEBULA_ASSERT(input.rank() == 2, "linear expects (N, F) input, got ",
                  input.shapeString());
    NEBULA_ASSERT(input.dim(1) == inFeatures_, "linear fan-in mismatch: ",
                  input.dim(1), " != ", inFeatures_);
    const int batch = input.dim(0);
    if (train)
        input_ = input;

    Tensor output({batch, outFeatures_});
    // out (N x out) = in (N x in) * W^T (in x out); W is (out x in).
    gemmTransB(batch, outFeatures_, inFeatures_, input.data(), weight_.data(),
               output.data());
    if (hasBias_) {
        for (int n = 0; n < batch; ++n)
            for (int f = 0; f < outFeatures_; ++f)
                output.at(n, f) += bias_[f];
    }
    return output;
}

Tensor
Linear::backward(const Tensor &grad_output)
{
    NEBULA_ASSERT(input_.size() > 0, "linear backward before train forward");
    const int batch = input_.dim(0);

    // dX (N x in) = dY (N x out) * W (out x in)
    Tensor grad_input({batch, inFeatures_});
    gemm(batch, inFeatures_, outFeatures_, grad_output.data(),
         weight_.data(), grad_input.data());

    // dW (out x in) += dY^T (out x N) * X (N x in)
    gemmTransA(outFeatures_, inFeatures_, batch, grad_output.data(),
               input_.data(), weightGrad_.data(), true);

    if (hasBias_) {
        for (int n = 0; n < batch; ++n)
            for (int f = 0; f < outFeatures_; ++f)
                biasGrad_[f] += grad_output.at(n, f);
    }
    return grad_input;
}

std::vector<Tensor *>
Linear::parameters()
{
    if (hasBias_)
        return {&weight_, &bias_};
    return {&weight_};
}

std::vector<Tensor *>
Linear::gradients()
{
    if (hasBias_)
        return {&weightGrad_, &biasGrad_};
    return {&weightGrad_};
}

} // namespace nebula
