/**
 * @file
 * Fully connected layer. Maps onto crossbars with Rf == fan-in rows and
 * one column per output unit; evaluated in a single crossbar cycle per
 * input vector.
 */

#ifndef NEBULA_NN_LINEAR_HPP
#define NEBULA_NN_LINEAR_HPP

#include "nn/layer.hpp"

namespace nebula {

/** y = W x + b with W of shape (out, in). */
class Linear : public Layer
{
  public:
    Linear(int in_features, int out_features, bool bias = true);

    Tensor forward(const Tensor &input, bool train = false) override;
    Tensor backward(const Tensor &grad_output) override;

    std::vector<Tensor *> parameters() override;
    std::vector<Tensor *> gradients() override;

    LayerKind kind() const override { return LayerKind::Linear; }
    std::string name() const override;
    LayerPtr clone() const override { return std::make_unique<Linear>(*this); }

    bool isWeightLayer() const override { return true; }
    int receptiveField() const override { return inFeatures_; }
    int numKernels() const override { return outFeatures_; }
    long long outputPositions() const override { return 1; }
    long long outputElements() const override { return outFeatures_; }

    Tensor &weight() { return weight_; }
    const Tensor &weight() const { return weight_; }
    Tensor &bias() { return bias_; }
    const Tensor &bias() const { return bias_; }
    bool hasBias() const { return hasBias_; }

    int inFeatures() const { return inFeatures_; }
    int outFeatures() const { return outFeatures_; }

    void initKaiming(Rng &rng);

  private:
    int inFeatures_, outFeatures_;
    bool hasBias_;
    Tensor weight_, bias_;
    Tensor weightGrad_, biasGrad_;
    Tensor input_;
};

} // namespace nebula

#endif // NEBULA_NN_LINEAR_HPP
