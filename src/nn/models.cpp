#include "nn/models.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "nn/activations.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"
#include "nn/linear.hpp"
#include "nn/pooling.hpp"

namespace nebula {

const std::vector<PaperBenchmark> &
paperBenchmarks()
{
    // Paper Table I.
    static const std::vector<PaperBenchmark> table = {
        {"3-layer MLP", "MNIST", 96.81, 95.75, 50, 3},
        {"Lenet5", "MNIST", 99.12, 98.56, 40, 5},
        {"MobileNet-v1", "CIFAR-10", 91.00, 81.08, 500, 29},
        {"VGG-13", "CIFAR-10", 91.60, 90.05, 300, 20},
        {"MobileNet-v1", "CIFAR-100", 66.06, 56.88, 1000, 29},
        {"VGG-13", "CIFAR-100", 71.50, 68.32, 1000, 18},
        {"SVHN Network", "SVHN", 94.96, 94.48, 100, 12},
        {"AlexNet", "ImageNet", 51.0, 50.0, 500, 11},
    };
    return table;
}

namespace {

/** Width-scaled channel count, at least 4 and rounded to multiple of 4. */
int
scaled(int channels, float width)
{
    const int c = static_cast<int>(std::lround(channels * width));
    return std::max(4, (c + 3) / 4 * 4);
}

/** Add conv(+BN)+ReLU. */
void
addConvBlock(Network &net, Rng &rng, int in_c, int out_c, int kernel,
             int stride, int padding, bool batchnorm)
{
    auto *conv = net.add<Conv2d>(in_c, out_c, kernel, stride, padding,
                                 /*bias=*/!batchnorm);
    conv->initKaiming(rng);
    if (batchnorm)
        net.add<BatchNorm2d>(out_c);
    net.add<Relu>();
}

/** Add depthwise(+BN)+ReLU then pointwise(+BN)+ReLU (MobileNet block). */
void
addSeparableBlock(Network &net, Rng &rng, int in_c, int out_c, int stride,
                  bool batchnorm)
{
    auto *dw = net.add<DwConv2d>(in_c, 3, stride, 1, /*bias=*/!batchnorm);
    dw->initKaiming(rng);
    if (batchnorm)
        net.add<BatchNorm2d>(in_c);
    net.add<Relu>();

    auto *pw = net.add<Conv2d>(in_c, out_c, 1, 1, 0, /*bias=*/!batchnorm);
    pw->initKaiming(rng);
    if (batchnorm)
        net.add<BatchNorm2d>(out_c);
    net.add<Relu>();
}

} // namespace

Network
buildMlp3(int image_size, int channels, int classes, uint64_t seed)
{
    Rng rng(seed);
    Network net("mlp3");
    const int in = image_size * image_size * channels;
    net.add<Flatten>();
    net.add<Linear>(in, 128)->initKaiming(rng);
    net.add<Relu>();
    net.add<Linear>(128, 64)->initKaiming(rng);
    net.add<Relu>();
    net.add<Linear>(64, classes)->initKaiming(rng);
    return net;
}

Network
buildLenet5(int image_size, int channels, int classes, uint64_t seed)
{
    Rng rng(seed);
    Network net("lenet5");
    // Conversion-friendly LeNet5: average pooling, ReLU.
    addConvBlock(net, rng, channels, 6, 5, 1, 2, false);
    net.add<AvgPool2d>(2);
    addConvBlock(net, rng, 6, 16, 5, 1, 0, false);
    net.add<AvgPool2d>(2);
    net.add<Flatten>();

    const int after_pool1 = image_size / 2;       // conv1 keeps size (pad 2)
    const int after_conv2 = after_pool1 - 4;      // 5x5, no pad
    const int after_pool2 = after_conv2 / 2;
    const int flat = 16 * after_pool2 * after_pool2;
    NEBULA_ASSERT(after_pool2 > 0, "lenet5 input too small: ", image_size);

    net.add<Linear>(flat, 120)->initKaiming(rng);
    net.add<Relu>();
    net.add<Linear>(120, 84)->initKaiming(rng);
    net.add<Relu>();
    net.add<Linear>(84, classes)->initKaiming(rng);
    return net;
}

Network
buildVgg13(int image_size, int channels, int classes, float width,
           uint64_t seed, bool batchnorm)
{
    Rng rng(seed);
    Network net("vgg13");
    struct Stage { int channels; int convs; };
    const Stage stages[5] = {{64, 2}, {128, 2}, {256, 2}, {512, 2}, {512, 2}};

    int in_c = channels;
    int spatial = image_size;
    for (const Stage &stage : stages) {
        const int out_c = scaled(stage.channels, width);
        for (int k = 0; k < stage.convs; ++k) {
            addConvBlock(net, rng, in_c, out_c, 3, 1, 1, batchnorm);
            in_c = out_c;
        }
        if (spatial >= 2) {
            net.add<AvgPool2d>(2);
            spatial /= 2;
        }
    }
    net.add<Flatten>();
    const int flat = in_c * spatial * spatial;
    const int fc = scaled(512, width);
    net.add<Linear>(flat, fc)->initKaiming(rng);
    net.add<Relu>();
    net.add<Linear>(fc, fc)->initKaiming(rng);
    net.add<Relu>();
    net.add<Linear>(fc, classes)->initKaiming(rng);
    return net;
}

Network
buildMobilenetV1(int image_size, int channels, int classes, float width,
                 uint64_t seed, bool batchnorm)
{
    Rng rng(seed);
    Network net("mobilenet-v1");

    // (out channels, stride) for the 13 separable blocks; strides follow
    // the CIFAR variant of MobileNet-v1.
    const int block_channels[13] = {64,  128, 128, 256, 256, 512, 512,
                                    512, 512, 512, 512, 1024, 1024};
    const int block_strides[13] = {1, 2, 1, 2, 1, 2, 1, 1, 1, 1, 1, 2, 1};

    int in_c = scaled(32, width);
    addConvBlock(net, rng, channels, in_c, 3, 1, 1, batchnorm);

    int spatial = image_size;
    for (int b = 0; b < 13; ++b) {
        const int out_c = scaled(block_channels[b], width);
        int stride = block_strides[b];
        if (stride == 2 && spatial <= 2)
            stride = 1;
        addSeparableBlock(net, rng, in_c, out_c, stride, batchnorm);
        in_c = out_c;
        if (stride == 2)
            spatial = (spatial + 1) / 2;
    }
    if (spatial >= 2) {
        net.add<AvgPool2d>(spatial);
        spatial = 1;
    }
    net.add<Flatten>();
    net.add<Linear>(in_c, classes)->initKaiming(rng);
    return net;
}

Network
buildSvhnNet(int image_size, int channels, int classes, float width,
             uint64_t seed, bool batchnorm)
{
    Rng rng(seed);
    Network net("svhn-net");
    struct Stage { int channels; int convs; };
    const Stage stages[4] = {{32, 2}, {64, 2}, {128, 3}, {256, 3}};

    int in_c = channels;
    int spatial = image_size;
    for (const Stage &stage : stages) {
        const int out_c = scaled(stage.channels, width);
        for (int k = 0; k < stage.convs; ++k) {
            addConvBlock(net, rng, in_c, out_c, 3, 1, 1, batchnorm);
            in_c = out_c;
        }
        if (spatial >= 2) {
            net.add<AvgPool2d>(2);
            spatial /= 2;
        }
    }
    net.add<Flatten>();
    const int flat = in_c * spatial * spatial;
    net.add<Linear>(flat, scaled(256, width))->initKaiming(rng);
    net.add<Relu>();
    net.add<Linear>(scaled(256, width), classes)->initKaiming(rng);
    return net;
}

Network
buildAlexNet(int image_size, int channels, int classes, float width,
             uint64_t seed, bool batchnorm)
{
    Rng rng(seed);
    Network net("alexnet");
    // AlexNet adapted to modest inputs: the classic 11x11 stride-4 stem
    // and 5x5 second conv, then 5 conv + 3 FC with average pooling
    // (conversion constraint) instead of max pooling.
    const int c1 = scaled(64, width), c2 = scaled(192, width),
              c3 = scaled(384, width), c4 = scaled(256, width),
              c5 = scaled(256, width);

    addConvBlock(net, rng, channels, c1, 11, 4, 5, batchnorm);
    net.add<AvgPool2d>(2);
    addConvBlock(net, rng, c1, c2, 5, 1, 2, batchnorm);
    addConvBlock(net, rng, c2, c3, 3, 1, 1, batchnorm);
    addConvBlock(net, rng, c3, c4, 3, 1, 1, batchnorm);
    addConvBlock(net, rng, c4, c5, 3, 1, 1, batchnorm);
    net.add<AvgPool2d>(2);
    net.add<Flatten>();

    int spatial = image_size;
    spatial = (spatial + 2 * 5 - 11) / 4 + 1; // conv1 stride 4
    spatial /= 2;                             // pool1
    spatial /= 2;                             // pool2
    NEBULA_ASSERT(spatial > 0, "alexnet input too small: ", image_size);
    const int flat = c5 * spatial * spatial;
    const int fc = scaled(1024, width);

    net.add<Linear>(flat, fc)->initKaiming(rng);
    net.add<Relu>();
    net.add<Linear>(fc, fc)->initKaiming(rng);
    net.add<Relu>();
    net.add<Linear>(fc, classes)->initKaiming(rng);
    return net;
}

Network
buildPaperModel(const std::string &name, int classes_override)
{
    const uint64_t seed = 1234;
    auto classes = [&](int dflt) {
        return classes_override > 0 ? classes_override : dflt;
    };
    if (name == "mlp3")
        return buildMlp3(28, 1, classes(10), seed);
    if (name == "lenet5")
        return buildLenet5(28, 1, classes(10), seed);
    if (name == "vgg13")
        return buildVgg13(32, 3, classes(10), 1.0f, seed);
    if (name == "vgg13-c100")
        return buildVgg13(32, 3, classes(100), 1.0f, seed);
    if (name == "mobilenet")
        return buildMobilenetV1(32, 3, classes(10), 1.0f, seed);
    if (name == "mobilenet-c100")
        return buildMobilenetV1(32, 3, classes(100), 1.0f, seed);
    if (name == "svhn")
        return buildSvhnNet(32, 3, classes(10), 1.0f, seed);
    if (name == "alexnet")
        return buildAlexNet(64, 3, classes(100), 1.0f, seed);
    NEBULA_FATAL("unknown paper model '", name, "'");
}

} // namespace nebula
