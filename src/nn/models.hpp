/**
 * @file
 * Model zoo: the benchmark network topologies of the paper's Table I
 * (3-layer MLP, LeNet5, VGG-13, MobileNet-v1, the SVHN network and
 * AlexNet), parameterized by input geometry, class count and a width
 * scale so the deep models can also be trained at reduced width on one
 * core. All models follow the ANN-to-SNN conversion constraints of
 * Sec. V-A: ReLU activations and average pooling only.
 */

#ifndef NEBULA_NN_MODELS_HPP
#define NEBULA_NN_MODELS_HPP

#include <string>
#include <vector>

#include "nn/network.hpp"

namespace nebula {

/** Published Table I row for a benchmark (paper reference values). */
struct PaperBenchmark
{
    std::string model;
    std::string dataset;
    double annAccuracy;   //!< paper ANN accuracy (%)
    double snnAccuracy;   //!< paper SNN accuracy (%)
    int timesteps;        //!< paper SNN evidence-integration steps
    int depth;            //!< paper-reported depth
};

/** All eight Table I rows. */
const std::vector<PaperBenchmark> &paperBenchmarks();

/** 3-layer MLP: in -> 128 -> 64 -> classes. */
Network buildMlp3(int image_size, int channels, int classes, uint64_t seed);

/** LeNet5: 2 conv (6, 16 @5x5) + avgpool + 3 FC (120, 84, classes). */
Network buildLenet5(int image_size, int channels, int classes,
                    uint64_t seed);

/**
 * VGG-13: conv blocks [64,64 | 128,128 | 256,256 | 512,512 | 512,512]
 * with 2x2 average pooling between blocks, then FC 512 -> 512 -> classes.
 * @param width  Channel width multiplier (1.0 = paper size).
 * @param batchnorm Insert BatchNorm after every conv (folded before
 *                  mapping / conversion).
 */
Network buildVgg13(int image_size, int channels, int classes, float width,
                   uint64_t seed, bool batchnorm = true);

/**
 * MobileNet-v1 for 32x32 inputs: stem conv(32) then 13 depthwise-
 * separable blocks (dw3x3 + pw1x1), global average pool, FC.
 * 27 weight layers + FC == the paper's 29-layer depth.
 */
Network buildMobilenetV1(int image_size, int channels, int classes,
                         float width, uint64_t seed, bool batchnorm = true);

/** SVHN network (depth 12): 10 conv + 2 FC. */
Network buildSvhnNet(int image_size, int channels, int classes, float width,
                     uint64_t seed, bool batchnorm = true);

/** AlexNet-style: 5 conv + 3 FC, average pooling. */
Network buildAlexNet(int image_size, int channels, int classes, float width,
                     uint64_t seed, bool batchnorm = false);

/**
 * Build a full-size (width 1.0) paper topology by model name
 * ("mlp3", "lenet5", "vgg13", "mobilenet", "svhn", "alexnet") with the
 * dataset geometry the paper used. Weights are seeded, not trained --
 * used by the mapping/energy studies, which depend only on topology and
 * activity statistics.
 */
Network buildPaperModel(const std::string &name, int classes_override = 0);

} // namespace nebula

#endif // NEBULA_NN_MODELS_HPP
