#include "nn/network.hpp"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/logging.hpp"
#include "nn/batchnorm.hpp"
#include "nn/conv.hpp"

namespace nebula {

void
Network::replaceLayer(int i, LayerPtr layer)
{
    NEBULA_ASSERT(i >= 0 && i < numLayers(), "replaceLayer out of range");
    layers_[static_cast<size_t>(i)] = std::move(layer);
}

Tensor
Network::forward(const Tensor &input, bool train)
{
    Tensor x = input;
    for (auto &layer : layers_)
        x = layer->forward(x, train);
    return x;
}

Tensor
Network::forwardCollect(const Tensor &input, std::vector<Tensor> &outputs)
{
    outputs.clear();
    outputs.reserve(layers_.size());
    Tensor x = input;
    for (auto &layer : layers_) {
        x = layer->forward(x, false);
        outputs.push_back(x);
    }
    return x;
}

void
Network::backward(const Tensor &grad_output)
{
    Tensor g = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it)
        g = (*it)->backward(g);
}

std::vector<int>
Network::predict(const Tensor &input)
{
    Tensor logits = forward(input, false);
    NEBULA_ASSERT(logits.rank() == 2, "predict expects 2-D logits");
    std::vector<int> classes(static_cast<size_t>(logits.dim(0)));
    for (int n = 0; n < logits.dim(0); ++n)
        classes[static_cast<size_t>(n)] = logits.argmaxRow(n);
    return classes;
}

Network
Network::clone() const
{
    Network copy(name_);
    for (const auto &layer : layers_)
        copy.addLayer(layer->clone());
    return copy;
}

std::vector<int>
Network::weightLayerIndices() const
{
    std::vector<int> indices;
    for (int i = 0; i < numLayers(); ++i)
        if (layers_[static_cast<size_t>(i)]->isWeightLayer())
            indices.push_back(i);
    return indices;
}

std::vector<Tensor *>
Network::parameters()
{
    std::vector<Tensor *> params;
    for (auto &layer : layers_)
        for (Tensor *p : layer->parameters())
            params.push_back(p);
    return params;
}

std::vector<Tensor *>
Network::gradients()
{
    std::vector<Tensor *> grads;
    for (auto &layer : layers_)
        for (Tensor *g : layer->gradients())
            grads.push_back(g);
    return grads;
}

long long
Network::parameterCount()
{
    long long count = 0;
    for (Tensor *p : parameters())
        count += p->size();
    return count;
}

void
Network::zeroGrad()
{
    for (auto &layer : layers_)
        layer->zeroGrad();
}

bool
Network::hasBatchNorm() const
{
    for (const auto &layer : layers_)
        if (layer->kind() == LayerKind::BatchNorm)
            return true;
    return false;
}

void
Network::foldBatchNorm()
{
    std::vector<LayerPtr> folded;
    folded.reserve(layers_.size());

    for (auto &layer : layers_) {
        if (layer->kind() != LayerKind::BatchNorm) {
            folded.push_back(std::move(layer));
            continue;
        }
        NEBULA_ASSERT(!folded.empty(),
                      "batchnorm with no preceding layer to fold into");
        auto *bn = static_cast<BatchNorm2d *>(layer.get());
        std::vector<float> scale, shift;
        bn->effectiveAffine(scale, shift);

        Layer *prev = folded.back().get();
        if (prev->kind() == LayerKind::Conv) {
            auto *conv = static_cast<Conv2d *>(prev);
            NEBULA_ASSERT(conv->outChannels() == bn->channels(),
                          "batchnorm/conv channel mismatch");
            Tensor &w = conv->weight();
            const long long per_kernel =
                w.size() / conv->outChannels();
            for (int oc = 0; oc < conv->outChannels(); ++oc) {
                for (long long k = 0; k < per_kernel; ++k)
                    w[oc * per_kernel + k] *= scale[static_cast<size_t>(oc)];
                const float old_bias =
                    conv->hasBias() ? conv->bias()[oc] : 0.0f;
                conv->bias()[oc] = scale[static_cast<size_t>(oc)] * old_bias +
                                   shift[static_cast<size_t>(oc)];
            }
            conv->setHasBias(true);
        } else if (prev->kind() == LayerKind::DwConv) {
            auto *conv = static_cast<DwConv2d *>(prev);
            NEBULA_ASSERT(conv->channels() == bn->channels(),
                          "batchnorm/dwconv channel mismatch");
            Tensor &w = conv->weight();
            const long long per_kernel = w.size() / conv->channels();
            for (int c = 0; c < conv->channels(); ++c) {
                for (long long k = 0; k < per_kernel; ++k)
                    w[c * per_kernel + k] *= scale[static_cast<size_t>(c)];
                const float old_bias =
                    conv->hasBias() ? conv->bias()[c] : 0.0f;
                conv->bias()[c] = scale[static_cast<size_t>(c)] * old_bias +
                                  shift[static_cast<size_t>(c)];
            }
            conv->setHasBias(true);
        } else {
            NEBULA_PANIC("cannot fold batchnorm into layer ", prev->name());
        }
        // The BN layer itself is dropped.
    }
    layers_ = std::move(folded);
}

void
Network::copyStateFrom(Network &other)
{
    NEBULA_ASSERT(numLayers() == other.numLayers(),
                  "copyStateFrom layer count mismatch");
    for (int i = 0; i < numLayers(); ++i) {
        auto dst = layers_[static_cast<size_t>(i)]->state();
        auto src = other.layers_[static_cast<size_t>(i)]->state();
        NEBULA_ASSERT(dst.size() == src.size(),
                      "copyStateFrom state mismatch at layer ", i);
        for (size_t k = 0; k < dst.size(); ++k) {
            NEBULA_ASSERT(dst[k]->sameShape(*src[k]),
                          "copyStateFrom shape mismatch at layer ", i);
            dst[k]->raw() = src[k]->raw();
        }
    }
}

namespace {
constexpr uint32_t kMagic = 0x4e454231; // "NEB1"
} // namespace

bool
Network::save(const std::string &path)
{
    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char *>(&kMagic), sizeof(kMagic));
    const uint32_t layers = static_cast<uint32_t>(layers_.size());
    out.write(reinterpret_cast<const char *>(&layers), sizeof(layers));
    for (auto &layer : layers_) {
        for (Tensor *t : layer->state()) {
            const uint64_t n = static_cast<uint64_t>(t->size());
            out.write(reinterpret_cast<const char *>(&n), sizeof(n));
            out.write(reinterpret_cast<const char *>(t->data()),
                      static_cast<std::streamsize>(n * sizeof(float)));
        }
    }
    return static_cast<bool>(out);
}

bool
Network::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    uint32_t magic = 0, layers = 0;
    in.read(reinterpret_cast<char *>(&magic), sizeof(magic));
    in.read(reinterpret_cast<char *>(&layers), sizeof(layers));
    if (magic != kMagic || layers != layers_.size())
        return false;
    for (auto &layer : layers_) {
        for (Tensor *t : layer->state()) {
            uint64_t n = 0;
            in.read(reinterpret_cast<char *>(&n), sizeof(n));
            if (!in || n != static_cast<uint64_t>(t->size()))
                return false;
            in.read(reinterpret_cast<char *>(t->data()),
                    static_cast<std::streamsize>(n * sizeof(float)));
        }
    }
    return static_cast<bool>(in);
}

std::string
Network::summary() const
{
    std::ostringstream oss;
    oss << "Network '" << name_ << "' (" << numLayers() << " layers)\n";
    for (int i = 0; i < numLayers(); ++i) {
        const Layer &l = layer(i);
        oss << "  [" << i << "] " << l.name();
        if (l.isWeightLayer())
            oss << "  Rf=" << l.receptiveField()
                << " kernels=" << l.numKernels();
        oss << "\n";
    }
    return oss.str();
}

} // namespace nebula
