/**
 * @file
 * Sequential network container: forward/backward orchestration, batch
 * normalization folding for crossbar mapping, per-layer activation
 * collection (used by quantization calibration, threshold balancing and
 * the Fig. 10 correlation study), and binary save/load.
 */

#ifndef NEBULA_NN_NETWORK_HPP
#define NEBULA_NN_NETWORK_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "nn/layer.hpp"

namespace nebula {

/** A feed-forward stack of layers. */
class Network
{
  public:
    Network() = default;
    explicit Network(std::string name) : name_(std::move(name)) {}

    Network(Network &&) = default;
    Network &operator=(Network &&) = default;
    Network(const Network &) = delete;
    Network &operator=(const Network &) = delete;

    /** Append a layer; returns a typed pointer for convenience. */
    template <typename L, typename... Args>
    L *
    add(Args &&...args)
    {
        auto layer = std::make_unique<L>(std::forward<Args>(args)...);
        L *raw = layer.get();
        layers_.push_back(std::move(layer));
        return raw;
    }

    /** Append an already-built layer. */
    void addLayer(LayerPtr layer) { layers_.push_back(std::move(layer)); }

    /** Replace layer @p i (used by quantization to swap activations). */
    void replaceLayer(int i, LayerPtr layer);

    /** Full forward pass. */
    Tensor forward(const Tensor &input, bool train = false);

    /**
     * Forward pass that records the output of every layer.
     * outputs[i] is the output of layer i.
     */
    Tensor forwardCollect(const Tensor &input,
                          std::vector<Tensor> &outputs);

    /** Backward pass through every layer (after train-mode forward). */
    void backward(const Tensor &grad_output);

    /** Predicted class per batch row of the final logits. */
    std::vector<int> predict(const Tensor &input);

    /** Number of layers. */
    int numLayers() const { return static_cast<int>(layers_.size()); }

    Layer &layer(int i) { return *layers_[static_cast<size_t>(i)]; }
    const Layer &layer(int i) const { return *layers_[static_cast<size_t>(i)]; }

    /** Indices of weight (crossbar-mapped) layers, in order. */
    std::vector<int> weightLayerIndices() const;

    /** All parameter tensors across layers. */
    std::vector<Tensor *> parameters();

    /** All gradient tensors across layers. */
    std::vector<Tensor *> gradients();

    /** Total learnable parameter count. */
    long long parameterCount();

    /** Zero all gradients. */
    void zeroGrad();

    /**
     * Fold every BatchNorm layer into the preceding conv layer
     * (Rueckauer et al.); panics if a BN layer has no foldable
     * predecessor. The BN layers are removed from the stack.
     */
    void foldBatchNorm();

    /** True if any BatchNorm layer remains. */
    bool hasBatchNorm() const;

    /**
     * Deep copy: clones every layer (parameters included). Used by the
     * inference runtime to give each worker replica a private network
     * it can run without synchronization.
     */
    Network clone() const;

    /** Copy all persistent tensors from an identically-shaped network. */
    void copyStateFrom(Network &other);

    /** Save persistent state to a binary file. */
    bool save(const std::string &path);

    /** Load persistent state from a binary file (shapes must match). */
    bool load(const std::string &path);

    /** One line per layer: name, Rf, kernels, output size. */
    std::string summary() const;

    const std::string &name() const { return name_; }
    void setName(std::string name) { name_ = std::move(name); }

  private:
    std::string name_;
    std::vector<LayerPtr> layers_;
};

/** Builder signature used by the model zoo. */
using NetworkBuilder = std::function<Network()>;

} // namespace nebula

#endif // NEBULA_NN_NETWORK_HPP
