#include "nn/pooling.hpp"

#include <limits>
#include <sstream>

#include "common/logging.hpp"

namespace nebula {

AvgPool2d::AvgPool2d(int kernel, int stride)
    : kernel_(kernel), stride_(stride > 0 ? stride : kernel)
{
    NEBULA_ASSERT(kernel_ > 0, "bad pooling kernel");
}

std::string
AvgPool2d::name() const
{
    std::ostringstream oss;
    oss << "avgpool" << kernel_ << "x" << kernel_;
    return oss.str();
}

Tensor
AvgPool2d::forward(const Tensor &input, bool train)
{
    NEBULA_ASSERT(input.rank() == 4, "pooling expects NCHW");
    const int batch = input.dim(0), channels = input.dim(1);
    const int in_h = input.dim(2), in_w = input.dim(3);
    const int out_h = (in_h - kernel_) / stride_ + 1;
    const int out_w = (in_w - kernel_) / stride_ + 1;
    NEBULA_ASSERT(out_h > 0 && out_w > 0, "pooling output collapsed");

    if (train)
        inputShape_ = input.shape();

    Tensor output({batch, channels, out_h, out_w});
    const float inv = 1.0f / (kernel_ * kernel_);
    for (int n = 0; n < batch; ++n) {
        for (int c = 0; c < channels; ++c) {
            for (int oh = 0; oh < out_h; ++oh) {
                for (int ow = 0; ow < out_w; ++ow) {
                    float acc = 0.0f;
                    for (int kh = 0; kh < kernel_; ++kh)
                        for (int kw = 0; kw < kernel_; ++kw)
                            acc += input.at(n, c, oh * stride_ + kh,
                                            ow * stride_ + kw);
                    output.at(n, c, oh, ow) = acc * inv;
                }
            }
        }
    }
    return output;
}

Tensor
AvgPool2d::backward(const Tensor &grad_output)
{
    NEBULA_ASSERT(!inputShape_.empty(), "pool backward before train forward");
    Tensor grad_input(inputShape_);
    const int batch = grad_output.dim(0), channels = grad_output.dim(1);
    const int out_h = grad_output.dim(2), out_w = grad_output.dim(3);
    const float inv = 1.0f / (kernel_ * kernel_);
    for (int n = 0; n < batch; ++n)
        for (int c = 0; c < channels; ++c)
            for (int oh = 0; oh < out_h; ++oh)
                for (int ow = 0; ow < out_w; ++ow) {
                    const float g = grad_output.at(n, c, oh, ow) * inv;
                    for (int kh = 0; kh < kernel_; ++kh)
                        for (int kw = 0; kw < kernel_; ++kw)
                            grad_input.at(n, c, oh * stride_ + kh,
                                          ow * stride_ + kw) += g;
                }
    return grad_input;
}

MaxPool2d::MaxPool2d(int kernel, int stride)
    : kernel_(kernel), stride_(stride > 0 ? stride : kernel)
{
    NEBULA_ASSERT(kernel_ > 0, "bad pooling kernel");
}

std::string
MaxPool2d::name() const
{
    std::ostringstream oss;
    oss << "maxpool" << kernel_ << "x" << kernel_;
    return oss.str();
}

Tensor
MaxPool2d::forward(const Tensor &input, bool train)
{
    NEBULA_ASSERT(input.rank() == 4, "pooling expects NCHW");
    const int batch = input.dim(0), channels = input.dim(1);
    const int in_h = input.dim(2), in_w = input.dim(3);
    const int out_h = (in_h - kernel_) / stride_ + 1;
    const int out_w = (in_w - kernel_) / stride_ + 1;
    NEBULA_ASSERT(out_h > 0 && out_w > 0, "pooling output collapsed");

    Tensor output({batch, channels, out_h, out_w});
    if (train) {
        inputShape_ = input.shape();
        argmax_.assign(static_cast<size_t>(output.size()), 0);
    }

    long long idx = 0;
    for (int n = 0; n < batch; ++n) {
        for (int c = 0; c < channels; ++c) {
            for (int oh = 0; oh < out_h; ++oh) {
                for (int ow = 0; ow < out_w; ++ow, ++idx) {
                    float best = -std::numeric_limits<float>::infinity();
                    int best_flat = 0;
                    for (int kh = 0; kh < kernel_; ++kh) {
                        const int ih = oh * stride_ + kh;
                        for (int kw = 0; kw < kernel_; ++kw) {
                            const int iw = ow * stride_ + kw;
                            const float v = input.at(n, c, ih, iw);
                            if (v > best) {
                                best = v;
                                best_flat = static_cast<int>(
                                    ((static_cast<long long>(n) * channels +
                                      c) * in_h + ih) * in_w + iw);
                            }
                        }
                    }
                    output.at(n, c, oh, ow) = best;
                    if (train)
                        argmax_[static_cast<size_t>(idx)] = best_flat;
                }
            }
        }
    }
    return output;
}

Tensor
MaxPool2d::backward(const Tensor &grad_output)
{
    NEBULA_ASSERT(!inputShape_.empty() &&
                      argmax_.size() ==
                          static_cast<size_t>(grad_output.size()),
                  "maxpool backward before train forward");
    Tensor grad_input(inputShape_);
    for (long long i = 0; i < grad_output.size(); ++i)
        grad_input[argmax_[static_cast<size_t>(i)]] += grad_output[i];
    return grad_input;
}

} // namespace nebula
