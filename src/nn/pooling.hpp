/**
 * @file
 * Average and max pooling. ANN-to-SNN conversion requires average
 * pooling (paper Sec. V-A): a max over binary spike maps destroys rate
 * information and cannot be computed by a crossbar, whereas the average
 * is a fixed 1/k^2-weighted sum that an IF layer can follow.
 */

#ifndef NEBULA_NN_POOLING_HPP
#define NEBULA_NN_POOLING_HPP

#include "nn/layer.hpp"

namespace nebula {

/** Non-overlapping (or strided) kxk average pooling. */
class AvgPool2d : public Layer
{
  public:
    explicit AvgPool2d(int kernel, int stride = 0);

    Tensor forward(const Tensor &input, bool train = false) override;
    Tensor backward(const Tensor &grad_output) override;

    LayerKind kind() const override { return LayerKind::AvgPool; }
    std::string name() const override;
    LayerPtr clone() const override { return std::make_unique<AvgPool2d>(*this); }

    int kernel() const { return kernel_; }
    int stride() const { return stride_; }

  private:
    int kernel_, stride_;
    std::vector<int> inputShape_;
};

/** kxk max pooling (kept for ANN baselines; not SNN-convertible). */
class MaxPool2d : public Layer
{
  public:
    explicit MaxPool2d(int kernel, int stride = 0);

    Tensor forward(const Tensor &input, bool train = false) override;
    Tensor backward(const Tensor &grad_output) override;

    LayerKind kind() const override { return LayerKind::MaxPool; }
    std::string name() const override;
    LayerPtr clone() const override { return std::make_unique<MaxPool2d>(*this); }

  private:
    int kernel_, stride_;
    std::vector<int> inputShape_;
    std::vector<int> argmax_; //!< flat input index per output element
};

} // namespace nebula

#endif // NEBULA_NN_POOLING_HPP
