#include "nn/quantize.hpp"

#include <algorithm>
#include <cmath>
#include <memory>

#include "common/logging.hpp"
#include "device/variability.hpp"
#include "nn/activations.hpp"
#include "nn/trainer.hpp"

namespace nebula {

float
absPercentile(const Tensor &t, double p)
{
    NEBULA_ASSERT(t.size() > 0, "percentile of empty tensor");
    NEBULA_ASSERT(p >= 0.0 && p <= 1.0, "percentile out of range");
    std::vector<float> mags(static_cast<size_t>(t.size()));
    for (long long i = 0; i < t.size(); ++i)
        mags[static_cast<size_t>(i)] = std::abs(t[i]);
    const size_t k = std::min(
        mags.size() - 1,
        static_cast<size_t>(p * static_cast<double>(mags.size() - 1) + 0.5));
    std::nth_element(mags.begin(), mags.begin() + static_cast<long>(k),
                     mags.end());
    return mags[k];
}

void
quantizeTensorSymmetric(Tensor &t, float clip, int levels)
{
    NEBULA_ASSERT(levels >= 2, "need at least 2 levels");
    if (clip <= 0.0f) {
        t.zero();
        return;
    }
    // 'levels' resistance states span [-clip, +clip].
    const float step = 2.0f * clip / (levels - 1);
    for (long long i = 0; i < t.size(); ++i) {
        float v = std::clamp(t[i], -clip, clip);
        v = std::round((v + clip) / step) * step - clip;
        t[i] = v;
    }
}

std::vector<float>
calibrateActivations(Network &net, const Tensor &calibration,
                     double percentile)
{
    std::vector<Tensor> outputs;
    net.forwardCollect(calibration, outputs);

    std::vector<float> ceilings(static_cast<size_t>(net.numLayers()), 0.0f);
    float last = 1.0f; // input images are normalized to [0, 1]
    for (int i = 0; i < net.numLayers(); ++i) {
        const LayerKind kind = net.layer(i).kind();
        if (kind == LayerKind::Relu || kind == LayerKind::ClippedRelu) {
            float c = absPercentile(outputs[static_cast<size_t>(i)],
                                    percentile);
            if (c <= 0.0f)
                c = 1e-3f;
            last = c;
        }
        ceilings[static_cast<size_t>(i)] = last;
    }
    return ceilings;
}

namespace {

/** Per-output-channel symmetric clip + quantize of a weight tensor. */
void
quantizePerChannel(Tensor &w, int channels, double percentile, int levels)
{
    NEBULA_ASSERT(channels > 0 && w.size() % channels == 0,
                  "weight tensor not divisible into channels");
    const long long per = w.size() / channels;
    for (int c = 0; c < channels; ++c) {
        Tensor slice({static_cast<int>(per)});
        for (long long k = 0; k < per; ++k)
            slice[k] = w[c * per + k];
        const float clip = absPercentile(slice, percentile);
        quantizeTensorSymmetric(slice, clip, levels);
        for (long long k = 0; k < per; ++k)
            w[c * per + k] = slice[k];
    }
}

} // namespace

QuantizationResult
quantizeNetwork(Network &net, const Tensor &calibration, int weight_levels,
                int act_levels, double act_percentile,
                double weight_percentile, bool per_channel)
{
    if (net.hasBatchNorm())
        net.foldBatchNorm();

    const auto ceilings = calibrateActivations(net, calibration,
                                               act_percentile);

    // Swap every ReLU for a clipped/quantized one.
    for (int i = 0; i < net.numLayers(); ++i) {
        if (net.layer(i).kind() == LayerKind::Relu) {
            net.replaceLayer(
                i, std::make_unique<ClippedRelu>(
                       ceilings[static_cast<size_t>(i)], act_levels));
        }
    }

    // Clip + quantize weights.
    QuantizationResult result;
    float input_ceiling = 1.0f;
    for (int i = 0; i < net.numLayers(); ++i) {
        Layer &layer = net.layer(i);
        if (!layer.isWeightLayer()) {
            if (layer.kind() == LayerKind::ClippedRelu)
                input_ceiling = ceilings[static_cast<size_t>(i)];
            continue;
        }
        auto params = layer.parameters();
        NEBULA_ASSERT(!params.empty(), "weight layer without parameters");
        Tensor &w = *params[0];
        const float clip = absPercentile(w, weight_percentile);
        if (per_channel)
            quantizePerChannel(w, layer.numKernels(), weight_percentile,
                               weight_levels);
        else
            quantizeTensorSymmetric(w, clip, weight_levels);

        LayerQuantInfo info;
        info.layerIndex = i;
        // Record the actual post-quantization range so crossbar mapping
        // (w / weightMax) never clips.
        info.weightMax = std::max(w.maxAbs(), clip);
        info.actCeiling = input_ceiling;
        info.weightLevels = weight_levels;
        info.actLevels = act_levels;
        result.layers.push_back(info);
    }
    return result;
}

double
fineTuneQuantized(Network &net, const Dataset &train,
                  const QuantizationResult &quant, int epochs, double lr)
{
    TrainConfig cfg;
    cfg.epochs = epochs;
    cfg.learningRate = lr;
    cfg.weightDecay = 0.0;
    SgdTrainer trainer(cfg);
    const double acc = trainer.train(net, train);

    // Re-quantize the fine-tuned weights onto the cell grid.
    for (const LayerQuantInfo &info : quant.layers) {
        Layer &layer = net.layer(info.layerIndex);
        Tensor &w = *layer.parameters()[0];
        quantizePerChannel(w, layer.numKernels(), 0.997,
                           info.weightLevels);
    }
    return acc;
}

void
injectWeightNoise(Network &net, double sigma, uint64_t seed)
{
    VariabilityModel noise(sigma, seed);
    const auto indices = net.weightLayerIndices();
    for (int i : indices) {
        auto params = net.layer(i).parameters();
        Tensor &w = *params[0];
        for (long long k = 0; k < w.size(); ++k)
            w[k] = static_cast<float>(w[k] * noise.sampleFactor());
    }
}

} // namespace nebula
