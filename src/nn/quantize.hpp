/**
 * @file
 * Post-training quantization pipeline (paper Sec. IV-C):
 *
 *  1. Activation calibration: run a calibration set through the model
 *     and record a per-layer activation ceiling a_max at a percentile,
 *     beyond which activations are clipped.
 *  2. Activation quantization: replace each ReLU with a clipped,
 *     range-based linear quantizer (16 levels for the 4-bit datapath).
 *  3. Weight clipping + quantization: clip each weight layer to an
 *     empirically chosen symmetric range (percentile of |w|, respecting
 *     the crossbar's limited conductance ratio) and quantize to the
 *     cell's discrete levels.
 *
 * Also provides the Monte-Carlo weight-noise injection used by the
 * Sec. IV-D variability study.
 */

#ifndef NEBULA_NN_QUANTIZE_HPP
#define NEBULA_NN_QUANTIZE_HPP

#include <vector>

#include "nn/datasets.hpp"
#include "nn/network.hpp"

namespace nebula {

/** Per-weight-layer quantization record (used by the chip mapper). */
struct LayerQuantInfo
{
    int layerIndex = -1;    //!< index in the network
    float weightMax = 0.0f; //!< symmetric clip range for weights
    float actCeiling = 0.0f; //!< a_max of the activation feeding this layer
    int weightLevels = 16;
    int actLevels = 16;
};

/** Result of quantizing a network. */
struct QuantizationResult
{
    std::vector<LayerQuantInfo> layers;
};

/**
 * Record the per-layer post-activation ceilings.
 *
 * @param net         Network (BN should be folded first).
 * @param calibration Calibration images (N, C, H, W).
 * @param percentile  Activation percentile used as the clip point
 *                    (paper clips at a high percentile; 0.999 default).
 * @return one ceiling per layer (non-activation layers get the ceiling
 *         of the most recent activation; index 0 is the input ceiling).
 */
std::vector<float> calibrateActivations(Network &net,
                                        const Tensor &calibration,
                                        double percentile = 0.999);

/**
 * Quantize a network in place: replaces every Relu with a ClippedRelu
 * (quantized to @p act_levels) and clips+quantizes the weights of every
 * weight layer to @p weight_levels.
 *
 * @param weight_percentile Percentile of |w| used as the clip range.
 * @return per-layer quantization records.
 */
/**
 * @param per_channel Clip/quantize each output channel (crossbar column)
 *        with its own range. The column-wise scale is absorbed by the
 *        neuron periphery (paper Sec. II-B3: threshold scaling via
 *        synaptic range / read-voltage shifts); essential for
 *        batch-norm-folded depthwise layers.
 */
QuantizationResult quantizeNetwork(Network &net, const Tensor &calibration,
                                   int weight_levels = 16,
                                   int act_levels = 16,
                                   double act_percentile = 0.999,
                                   double weight_percentile = 0.997,
                                   bool per_channel = true);

/**
 * Quantization-aware fine-tuning (paper Sec. IV-C cites post-training
 * quantization *and fine-tuning* [2]): train the already-quantized
 * network for a few epochs -- the ClippedRelu layers quantize in the
 * forward pass and pass gradients straight-through within the clip
 * range -- then re-quantize the drifted weights.
 *
 * @return accuracy on the training set after fine-tuning.
 */
double fineTuneQuantized(Network &net, const Dataset &train,
                         const QuantizationResult &quant, int epochs = 2,
                         double lr = 0.01);

/** Clip and quantize one tensor symmetrically to @p levels levels. */
void quantizeTensorSymmetric(Tensor &t, float clip, int levels);

/** Percentile of |values| (p in [0,1]). */
float absPercentile(const Tensor &t, double p);

/**
 * Inject multiplicative Gaussian noise into every weight tensor
 * (Sec. IV-D Monte-Carlo study). Biases are left untouched.
 */
void injectWeightNoise(Network &net, double sigma, uint64_t seed);

} // namespace nebula

#endif // NEBULA_NN_QUANTIZE_HPP
