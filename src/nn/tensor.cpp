#include "nn/tensor.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <sstream>

#include "common/logging.hpp"

namespace nebula {

namespace {

long long
shapeSize(const std::vector<int> &shape)
{
    long long n = 1;
    for (int d : shape) {
        NEBULA_ASSERT(d > 0, "tensor dimensions must be positive");
        n *= d;
    }
    return n;
}

} // namespace

Tensor::Tensor(std::vector<int> shape)
    : shape_(std::move(shape)),
      data_(static_cast<size_t>(shapeSize(shape_)), 0.0f)
{
}

Tensor::Tensor(std::vector<int> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    NEBULA_ASSERT(static_cast<long long>(data_.size()) == shapeSize(shape_),
                  "tensor data size does not match shape");
}

int
Tensor::dim(int i) const
{
    NEBULA_ASSERT(i >= 0 && i < rank(), "dim index ", i, " out of rank ",
                  rank());
    return shape_[i];
}

float &
Tensor::at(int n, int c, int h, int w)
{
    return data_[((static_cast<size_t>(n) * shape_[1] + c) * shape_[2] + h) *
                     shape_[3] +
                 w];
}

float
Tensor::at(int n, int c, int h, int w) const
{
    return data_[((static_cast<size_t>(n) * shape_[1] + c) * shape_[2] + h) *
                     shape_[3] +
                 w];
}

float &
Tensor::at(int n, int f)
{
    return data_[static_cast<size_t>(n) * shape_[1] + f];
}

float
Tensor::at(int n, int f) const
{
    return data_[static_cast<size_t>(n) * shape_[1] + f];
}

void
Tensor::fill(float value)
{
    std::fill(data_.begin(), data_.end(), value);
}

void
Tensor::randn(Rng &rng, float sigma)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.gaussian(0.0, sigma));
}

void
Tensor::uniform(Rng &rng, float lo, float hi)
{
    for (auto &x : data_)
        x = static_cast<float>(rng.uniform(lo, hi));
}

Tensor &
Tensor::reshape(std::vector<int> shape)
{
    NEBULA_ASSERT(shapeSize(shape) == size(),
                  "reshape must preserve element count");
    shape_ = std::move(shape);
    return *this;
}

Tensor
Tensor::reshaped(std::vector<int> shape) const
{
    Tensor t = *this;
    t.reshape(std::move(shape));
    return t;
}

Tensor &
Tensor::add(const Tensor &other)
{
    NEBULA_ASSERT(size() == other.size(), "add size mismatch");
    for (size_t i = 0; i < data_.size(); ++i)
        data_[i] += other.data_[i];
    return *this;
}

Tensor &
Tensor::scale(float factor)
{
    for (auto &x : data_)
        x *= factor;
    return *this;
}

float
Tensor::maxAbs() const
{
    float m = 0.0f;
    for (float x : data_)
        m = std::max(m, std::abs(x));
    return m;
}

float
Tensor::max() const
{
    NEBULA_ASSERT(!data_.empty(), "max of empty tensor");
    return *std::max_element(data_.begin(), data_.end());
}

float
Tensor::sum() const
{
    double s = 0.0;
    for (float x : data_)
        s += x;
    return static_cast<float>(s);
}

double
Tensor::mean() const
{
    return data_.empty() ? 0.0 : static_cast<double>(sum()) / size();
}

long long
Tensor::argmax() const
{
    NEBULA_ASSERT(!data_.empty(), "argmax of empty tensor");
    return std::max_element(data_.begin(), data_.end()) - data_.begin();
}

int
Tensor::argmaxRow(int n) const
{
    NEBULA_ASSERT(rank() == 2, "argmaxRow needs a 2-D tensor");
    const int cols = shape_[1];
    const float *row = data_.data() + static_cast<size_t>(n) * cols;
    return static_cast<int>(std::max_element(row, row + cols) - row);
}

std::string
Tensor::shapeString() const
{
    std::ostringstream oss;
    oss << "[";
    for (int i = 0; i < rank(); ++i)
        oss << (i ? ", " : "") << shape_[i];
    oss << "]";
    return oss.str();
}

double
correlation(const Tensor &a, const Tensor &b)
{
    NEBULA_ASSERT(a.size() == b.size(), "correlation size mismatch");
    const long long n = a.size();
    if (n == 0)
        return 0.0;
    double ma = a.mean(), mb = b.mean();
    double cov = 0.0, va = 0.0, vb = 0.0;
    for (long long i = 0; i < n; ++i) {
        const double da = a[i] - ma;
        const double db = b[i] - mb;
        cov += da * db;
        va += da * da;
        vb += db * db;
    }
    if (va == 0.0 || vb == 0.0)
        return 0.0;
    return cov / std::sqrt(va * vb);
}

} // namespace nebula
