/**
 * @file
 * Minimal dense float tensor used by the functional neural-network
 * simulator. Layout is row-major with NCHW convention for images and
 * (N, F) for flattened feature vectors.
 */

#ifndef NEBULA_NN_TENSOR_HPP
#define NEBULA_NN_TENSOR_HPP

#include <string>
#include <vector>

#include "common/rng.hpp"

namespace nebula {

/** Dense float tensor of rank 1..4. */
class Tensor
{
  public:
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::vector<int> shape);

    /** Construct with shape and initial data (size must match). */
    Tensor(std::vector<int> shape, std::vector<float> data);

    /** Total number of elements. */
    long long size() const { return static_cast<long long>(data_.size()); }

    /** Rank (number of dimensions). */
    int rank() const { return static_cast<int>(shape_.size()); }

    /** Dimension i. */
    int dim(int i) const;

    const std::vector<int> &shape() const { return shape_; }

    /** True if shapes are identical. */
    bool sameShape(const Tensor &other) const
    {
        return shape_ == other.shape_;
    }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }
    std::vector<float> &raw() { return data_; }
    const std::vector<float> &raw() const { return data_; }

    float &operator[](long long i) { return data_[static_cast<size_t>(i)]; }
    float operator[](long long i) const
    {
        return data_[static_cast<size_t>(i)];
    }

    /** 4-D accessor (n, c, h, w). */
    float &at(int n, int c, int h, int w);
    float at(int n, int c, int h, int w) const;

    /** 2-D accessor (n, f). */
    float &at(int n, int f);
    float at(int n, int f) const;

    /** Fill with a constant. */
    void fill(float value);

    /** Fill with zeros. */
    void zero() { fill(0.0f); }

    /** Fill with N(0, sigma) draws. */
    void randn(Rng &rng, float sigma = 1.0f);

    /** Fill with U(lo, hi) draws. */
    void uniform(Rng &rng, float lo, float hi);

    /** Reshape in place (element count must be preserved). */
    Tensor &reshape(std::vector<int> shape);

    /** Return a reshaped copy. */
    Tensor reshaped(std::vector<int> shape) const;

    /** Elementwise helpers. */
    Tensor &add(const Tensor &other);
    Tensor &scale(float factor);

    /** Reductions. */
    float maxAbs() const;
    float max() const;
    float sum() const;
    double mean() const;

    /** Index of the maximum element (over the whole tensor). */
    long long argmax() const;

    /** Index of the maximum within row n of a 2-D tensor. */
    int argmaxRow(int n) const;

    /** Human-readable shape, e.g. "[2, 3, 32, 32]". */
    std::string shapeString() const;

  private:
    std::vector<int> shape_;
    std::vector<float> data_;
};

/** Pearson correlation between two equal-sized tensors (Fig. 10). */
double correlation(const Tensor &a, const Tensor &b);

} // namespace nebula

#endif // NEBULA_NN_TENSOR_HPP
