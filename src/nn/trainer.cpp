#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace nebula {

LossResult
softmaxCrossEntropy(const Tensor &logits, const std::vector<int> &labels)
{
    NEBULA_ASSERT(logits.rank() == 2, "loss expects 2-D logits");
    const int batch = logits.dim(0);
    const int classes = logits.dim(1);
    NEBULA_ASSERT(labels.size() == static_cast<size_t>(batch),
                  "label count mismatch");

    LossResult result;
    result.grad = Tensor({batch, classes});

    for (int n = 0; n < batch; ++n) {
        // Stable softmax.
        float maxv = logits.at(n, 0);
        for (int c = 1; c < classes; ++c)
            maxv = std::max(maxv, logits.at(n, c));
        double denom = 0.0;
        for (int c = 0; c < classes; ++c)
            denom += std::exp(static_cast<double>(logits.at(n, c)) - maxv);

        const int y = labels[static_cast<size_t>(n)];
        NEBULA_ASSERT(y >= 0 && y < classes, "label out of range");
        const double log_py =
            static_cast<double>(logits.at(n, y)) - maxv - std::log(denom);
        result.loss -= log_py;

        int best = 0;
        for (int c = 1; c < classes; ++c)
            if (logits.at(n, c) > logits.at(n, best))
                best = c;
        result.correct += (best == y);

        for (int c = 0; c < classes; ++c) {
            const double p =
                std::exp(static_cast<double>(logits.at(n, c)) - maxv) / denom;
            result.grad.at(n, c) =
                static_cast<float>((p - (c == y ? 1.0 : 0.0)) / batch);
        }
    }
    result.loss /= batch;
    return result;
}

SgdTrainer::SgdTrainer(TrainConfig config)
    : config_(config), currentLr_(config.learningRate)
{
}

void
SgdTrainer::step(Network &net, int /*batch_size*/)
{
    auto params = net.parameters();
    auto grads = net.gradients();
    NEBULA_ASSERT(params.size() == grads.size(), "param/grad mismatch");

    if (velocity_.size() != params.size()) {
        velocity_.assign(params.size(), {});
        for (size_t k = 0; k < params.size(); ++k)
            velocity_[k].assign(static_cast<size_t>(params[k]->size()),
                                0.0f);
    }

    for (size_t k = 0; k < params.size(); ++k) {
        Tensor &p = *params[k];
        Tensor &g = *grads[k];
        auto &v = velocity_[k];
        NEBULA_ASSERT(p.size() == g.size() &&
                          v.size() == static_cast<size_t>(p.size()),
                      "optimizer state mismatch");
        const float lr = static_cast<float>(currentLr_);
        const float mu = static_cast<float>(config_.momentum);
        const float wd = static_cast<float>(config_.weightDecay);
        for (long long i = 0; i < p.size(); ++i) {
            const float grad = g[i] + wd * p[i];
            v[static_cast<size_t>(i)] =
                mu * v[static_cast<size_t>(i)] - lr * grad;
            p[i] += v[static_cast<size_t>(i)];
        }
    }
}

double
SgdTrainer::train(Network &net, const Dataset &data)
{
    Rng rng(config_.shuffleSeed);
    std::vector<int> order(static_cast<size_t>(data.size()));
    for (int i = 0; i < data.size(); ++i)
        order[static_cast<size_t>(i)] = i;

    currentLr_ = config_.learningRate;
    double accuracy = 0.0;

    for (int epoch = 0; epoch < config_.epochs; ++epoch) {
        rng.shuffle(order);
        double loss_sum = 0.0;
        int correct = 0, seen = 0, batches = 0;

        for (int start = 0; start < data.size();
             start += config_.batchSize) {
            const int end =
                std::min(start + config_.batchSize, data.size());
            std::vector<int> idx(order.begin() + start, order.begin() + end);
            Tensor images = data.batchImages(idx);
            const auto labels = data.batchLabels(idx);

            net.zeroGrad();
            Tensor logits = net.forward(images, true);
            LossResult loss = softmaxCrossEntropy(logits, labels);
            net.backward(loss.grad);
            step(net, end - start);

            loss_sum += loss.loss;
            correct += loss.correct;
            seen += end - start;
            ++batches;
        }
        accuracy = static_cast<double>(correct) / seen;
        if (config_.verbose) {
            NEBULA_INFORM("epoch ", epoch + 1, "/", config_.epochs,
                          " loss=", loss_sum / std::max(batches, 1),
                          " acc=", accuracy);
        }
        currentLr_ *= config_.lrDecay;
    }
    return accuracy;
}

double
evaluateAccuracy(Network &net, const Dataset &data, int max_samples,
                 int batch_size)
{
    const int total = max_samples > 0 ? std::min(max_samples, data.size())
                                      : data.size();
    int correct = 0;
    for (int start = 0; start < total; start += batch_size) {
        const int end = std::min(start + batch_size, total);
        std::vector<int> idx;
        idx.reserve(static_cast<size_t>(end - start));
        for (int i = start; i < end; ++i)
            idx.push_back(i);
        Tensor images = data.batchImages(idx);
        const auto labels = data.batchLabels(idx);
        const auto pred = net.predict(images);
        for (size_t k = 0; k < pred.size(); ++k)
            correct += (pred[k] == labels[k]);
    }
    return total ? static_cast<double>(correct) / total : 0.0;
}

} // namespace nebula
