/**
 * @file
 * From-scratch training engine: SGD with momentum and weight decay,
 * softmax cross-entropy, mini-batch loop and accuracy evaluation. Used
 * to train the small benchmark networks on the synthetic datasets so the
 * ANN-to-SNN conversion studies (Tables I/II, Figs. 9/10) run against
 * genuinely trained weights.
 */

#ifndef NEBULA_NN_TRAINER_HPP
#define NEBULA_NN_TRAINER_HPP

#include "nn/datasets.hpp"
#include "nn/network.hpp"

namespace nebula {

/** Softmax cross-entropy loss and gradient. */
struct LossResult
{
    double loss = 0.0;      //!< mean loss over the batch
    Tensor grad;            //!< dL/dlogits (already averaged)
    int correct = 0;        //!< correct predictions in the batch
};

/** Compute softmax cross-entropy for a batch of logits. */
LossResult softmaxCrossEntropy(const Tensor &logits,
                               const std::vector<int> &labels);

/** Training hyperparameters. */
struct TrainConfig
{
    int epochs = 5;
    int batchSize = 32;
    double learningRate = 0.05;
    double momentum = 0.9;
    double weightDecay = 5e-4;
    double lrDecay = 0.7;      //!< multiplicative decay per epoch
    uint64_t shuffleSeed = 3;
    bool verbose = false;
};

/** SGD-with-momentum trainer. */
class SgdTrainer
{
  public:
    explicit SgdTrainer(TrainConfig config = {});

    /**
     * Train the network on a dataset.
     * @return final training accuracy (fraction).
     */
    double train(Network &net, const Dataset &data);

    /** One optimizer step using the accumulated gradients. */
    void step(Network &net, int batch_size);

    const TrainConfig &config() const { return config_; }

  private:
    TrainConfig config_;
    double currentLr_;
    std::vector<std::vector<float>> velocity_;
};

/** Classification accuracy of a network on a dataset (fraction). */
double evaluateAccuracy(Network &net, const Dataset &data,
                        int max_samples = 0, int batch_size = 64);

} // namespace nebula

#endif // NEBULA_NN_TRAINER_HPP
