#include "noc/noc.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <string>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace nebula {

namespace {
// Directions: 0 = +x (east), 1 = -x (west), 2 = +y (north), 3 = -y (south).
constexpr int kDirections = 4;
constexpr char kDirectionNames[kDirections] = {'e', 'w', 'n', 's'};
} // namespace

MeshNoc::MeshNoc(const NocConfig &config) : config_(config), stats_("noc")
{
    NEBULA_ASSERT(config_.width > 0 && config_.height > 0,
                  "bad mesh dimensions");
    NEBULA_ASSERT(config_.flitBits > 0, "bad flit width");
    linkFree_.assign(
        static_cast<size_t>(config_.width) * config_.height * kDirections,
        0);
}

int
MeshNoc::linkIndex(int x, int y, int direction) const
{
    return (y * config_.width + x) * kDirections + direction;
}

int
MeshNoc::manhattan(const NodeId &a, const NodeId &b)
{
    return std::abs(a.x - b.x) + std::abs(a.y - b.y);
}

void
MeshNoc::inject(const Packet &packet)
{
    NEBULA_ASSERT(packet.src.x >= 0 && packet.src.x < config_.width &&
                      packet.src.y >= 0 && packet.src.y < config_.height,
                  "packet source off-mesh");
    NEBULA_ASSERT(packet.dst.x >= 0 && packet.dst.x < config_.width &&
                      packet.dst.y >= 0 && packet.dst.y < config_.height,
                  "packet destination off-mesh");
    pending_.push_back(packet);
}

std::vector<PacketTrace>
MeshNoc::drain()
{
    // Process in injection-time order (stable for equal times).
    std::stable_sort(pending_.begin(), pending_.end(),
                     [](const Packet &a, const Packet &b) {
                         return a.injectCycle < b.injectCycle;
                     });

    std::vector<PacketTrace> traces;
    traces.reserve(pending_.size());

    obs::TraceSpan span("noc", "drain");
    span.arg("packets", static_cast<double>(pending_.size()));

    // Flits per directed link this drain; flushed into named scalars
    // afterwards so the hot loop touches no string keys.
    std::map<int, long long> link_flits;

    for (const Packet &packet : pending_) {
        const int flits = std::max(
            1, (packet.sizeBits + config_.flitBits - 1) / config_.flitBits);

        long long cycle = packet.injectCycle;
        int hops = 0;
        int x = packet.src.x, y = packet.src.y;

        // X first, then Y (deterministic, deadlock-free on a mesh).
        while (x != packet.dst.x || y != packet.dst.y) {
            int direction;
            int nx = x, ny = y;
            if (x != packet.dst.x) {
                direction = packet.dst.x > x ? 0 : 1;
                nx += packet.dst.x > x ? 1 : -1;
            } else {
                direction = packet.dst.y > y ? 2 : 3;
                ny += packet.dst.y > y ? 1 : -1;
            }
            const int link = linkIndex(x, y, direction);
            const long long start =
                std::max(cycle, linkFree_[static_cast<size_t>(link)]);
            // The link is busy while all flits serialize through it.
            linkFree_[static_cast<size_t>(link)] = start + flits;
            link_flits[link] += flits;
            cycle = start + flits + config_.hopLatency;
            ++hops;
            x = nx;
            y = ny;
        }

        PacketTrace trace;
        trace.id = packet.id;
        trace.arriveCycle = cycle;
        trace.hops = hops;
        trace.latency = cycle - packet.injectCycle;
        traces.push_back(trace);

        dynamicEnergy_ +=
            static_cast<double>(hops) * flits * config_.energyPerFlitHop;
        ++delivered_;
        stats_.scalar("noc.latency").sample(static_cast<double>(trace.latency));
        stats_.scalar("noc.hops").sample(hops);
        stats_.scalar("noc.flits").add(flits);
        stats_.histogram("noc.latency.hist", 0.0, 256.0, 64)
            .sample(static_cast<double>(trace.latency));
    }

    // Per-link flit counters for the links this drain actually used:
    // noc.link.<x>_<y>.<direction>.flits (direction e/w/n/s).
    for (const auto &[link, flits] : link_flits) {
        const int node = link / kDirections;
        const int direction = link % kDirections;
        const int x = node % config_.width;
        const int y = node / config_.width;
        stats_
            .scalar("noc.link." + std::to_string(x) + "_" +
                    std::to_string(y) + "." +
                    kDirectionNames[direction] + ".flits")
            .add(static_cast<double>(flits));
    }
    pending_.clear();
    return traces;
}

double
MeshNoc::transferEnergy(const NodeId &src, const NodeId &dst,
                        long long bits) const
{
    const long long flits =
        std::max<long long>(1, (bits + config_.flitBits - 1) /
                                   config_.flitBits);
    return static_cast<double>(manhattan(src, dst)) * flits *
           config_.energyPerFlitHop;
}

void
MeshNoc::reset()
{
    std::fill(linkFree_.begin(), linkFree_.end(), 0);
    pending_.clear();
    dynamicEnergy_ = 0.0;
    delivered_ = 0;
    stats_.reset();
}

} // namespace nebula
