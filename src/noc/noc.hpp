/**
 * @file
 * Mesh network-on-chip model. NEBULA tiles its neural cores on a 2-D
 * mesh (paper Fig. 6b); inter-core traffic is activations, partial sums
 * (when a kernel spills across NCs) and hybrid-mode accumulator values.
 *
 * The model is event-driven at link granularity: packets are serialized
 * into flits, routed X-then-Y, and each directed link tracks when it is
 * next free, so serialized contention and queueing delay are captured
 * without simulating router microarchitecture.
 */

#ifndef NEBULA_NOC_NOC_HPP
#define NEBULA_NOC_NOC_HPP

#include <cstdint>
#include <vector>

#include "common/stats.hpp"

namespace nebula {

/** Mesh coordinates. */
struct NodeId
{
    int x = 0;
    int y = 0;

    bool operator==(const NodeId &other) const
    {
        return x == other.x && y == other.y;
    }
};

/** One message between cores. */
struct Packet
{
    long long id = 0;
    NodeId src;
    NodeId dst;
    int sizeBits = 32;
    long long injectCycle = 0;
};

/** Delivery record produced by the simulation. */
struct PacketTrace
{
    long long id = 0;
    long long arriveCycle = 0;
    int hops = 0;
    long long latency = 0; //!< arrive - inject
};

/** Mesh configuration. */
struct NocConfig
{
    int width = 14;
    int height = 14;
    int flitBits = 32;          //!< flit payload width
    int hopLatency = 1;         //!< router+link traversal (cycles/hop)
    double energyPerFlitHop = 0.15e-12; //!< J per flit per hop (32 nm)
    double routerLeakage = 0.05e-3;     //!< W per router (static)
};

/** XY-routed mesh with per-link serialization. */
class MeshNoc
{
  public:
    explicit MeshNoc(const NocConfig &config = {});

    /** Queue a packet for delivery. */
    void inject(const Packet &packet);

    /**
     * Simulate until all queued packets are delivered.
     * @return per-packet traces in injection order.
     */
    std::vector<PacketTrace> drain();

    /** XY route: list of (node, direction) hops from src to dst. */
    static int manhattan(const NodeId &a, const NodeId &b);

    /** Total dynamic energy of everything drained so far (J). */
    double dynamicEnergy() const { return dynamicEnergy_; }

    /** Total delivered packets. */
    long long delivered() const { return delivered_; }

    /** Aggregate latency / hop statistics. */
    const StatGroup &stats() const { return stats_; }

    /** Reset link state and statistics. */
    void reset();

    const NocConfig &config() const { return config_; }

    /**
     * Analytic energy of moving @p bits from @p src to @p dst once,
     * without simulating (used by the chip-level energy model for bulk
     * traffic accounting).
     */
    double transferEnergy(const NodeId &src, const NodeId &dst,
                          long long bits) const;

  private:
    /** Directed link index for a hop from (x, y) toward a direction. */
    int linkIndex(int x, int y, int direction) const;

    NocConfig config_;
    std::vector<Packet> pending_;
    std::vector<long long> linkFree_; //!< next free cycle per link
    double dynamicEnergy_ = 0.0;
    long long delivered_ = 0;
    StatGroup stats_;
};

} // namespace nebula

#endif // NEBULA_NOC_NOC_HPP
