#include "obs/metrics.hpp"

#include <algorithm>

#include "common/json.hpp"

namespace nebula {
namespace obs {

std::string
labeledName(const std::string &name, const Labels &labels)
{
    if (labels.empty())
        return name;
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string out = name + "{";
    for (size_t i = 0; i < sorted.size(); ++i) {
        if (i)
            out += ",";
        out += sorted[i].first + "=\"" + sorted[i].second + "\"";
    }
    out += "}";
    return out;
}

void
Counter::inc(double n)
{
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + n,
                                         std::memory_order_relaxed)) {
    }
}

Counter &
MetricsRegistry::counter(const std::string &name, const Labels &labels)
{
    const std::string key = labeledName(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(key);
    if (it == counters_.end())
        it = counters_.emplace(key, std::make_unique<Counter>()).first;
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const Labels &labels)
{
    const std::string key = labeledName(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(key);
    if (it == gauges_.end())
        it = gauges_.emplace(key, std::make_unique<Gauge>()).first;
    return *it->second;
}

void
MetricsRegistry::observe(const std::string &name, double value, double lo,
                         double hi, int buckets, const Labels &labels)
{
    const std::string key = labeledName(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(key);
    if (it == histograms_.end())
        it = histograms_.emplace(key, Histogram(lo, hi, buckets)).first;
    it->second.sample(value);
}

double
MetricsRegistry::counterValue(const std::string &name,
                              const Labels &labels) const
{
    const std::string key = labeledName(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(key);
    return it != counters_.end() ? it->second->value() : 0.0;
}

double
MetricsRegistry::gaugeValue(const std::string &name,
                            const Labels &labels) const
{
    const std::string key = labeledName(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(key);
    return it != gauges_.end() ? it->second->value() : 0.0;
}

std::vector<std::string>
MetricsRegistry::counterNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto &kv : counters_)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
MetricsRegistry::gaugeNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(gauges_.size());
    for (const auto &kv : gauges_)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
MetricsRegistry::histogramNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(histograms_.size());
    for (const auto &kv : histograms_)
        names.push_back(kv.first);
    return names;
}

StatGroup
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StatGroup group(name_);
    for (const auto &kv : counters_)
        group.scalar(kv.first).add(kv.second->value());
    for (const auto &kv : gauges_)
        group.scalar(kv.first).add(kv.second->value());
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        group
            .histogram(kv.first, h.lo(), h.hi(),
                       static_cast<int>(h.bins().size()))
            .merge(h);
    }
    return group;
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\n  \"registry\": " + json::quoted(name_) + ",\n";

    auto section = [&out](const char *title, const auto &map, auto value) {
        out += std::string("  \"") + title + "\": {";
        bool first = true;
        for (const auto &kv : map) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "    " + json::quoted(kv.first) + ": " +
                   json::number(value(kv.second));
        }
        out += first ? "},\n" : "\n  },\n";
    };
    section("counters", counters_,
            [](const std::unique_ptr<Counter> &c) { return c->value(); });
    section("gauges", gauges_,
            [](const std::unique_ptr<Gauge> &g) { return g->value(); });

    out += "  \"histograms\": {";
    bool first = true;
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json::quoted(kv.first) + ": {\"count\": " +
               std::to_string(h.count()) +
               ", \"mean\": " + json::number(h.mean()) +
               ", \"min\": " + json::number(h.min()) +
               ", \"max\": " + json::number(h.max()) +
               ", \"p50\": " + json::number(h.p50()) +
               ", \"p95\": " + json::number(h.p95()) +
               ", \"p99\": " + json::number(h.p99()) + "}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

std::string
MetricsRegistry::toCsv() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "kind,name,value,count,mean,min,max,p50,p95,p99\n";
    auto num = [](double v) { return json::number(v); };
    for (const auto &kv : counters_)
        out += "counter," + kv.first + "," + num(kv.second->value()) +
               ",,,,,,,\n";
    for (const auto &kv : gauges_)
        out += "gauge," + kv.first + "," + num(kv.second->value()) +
               ",,,,,,,\n";
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        out += "histogram," + kv.first + ",," + std::to_string(h.count()) +
               "," + num(h.mean()) + "," + num(h.min()) + "," +
               num(h.max()) + "," + num(h.p50()) + "," + num(h.p95()) +
               "," + num(h.p99()) + "\n";
    }
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &kv : counters_)
        kv.second->reset();
    for (auto &kv : gauges_)
        kv.second->reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry("global");
    return registry;
}

} // namespace obs
} // namespace nebula
