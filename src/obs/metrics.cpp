#include "obs/metrics.hpp"

#include <algorithm>

#include "common/json.hpp"

namespace nebula {
namespace obs {

std::string
escapeLabelValue(const std::string &value)
{
    std::string out;
    out.reserve(value.size());
    for (char c : value) {
        switch (c) {
        case '\\':
            out += "\\\\";
            break;
        case '"':
            out += "\\\"";
            break;
        case '\n':
            out += "\\n";
            break;
        default:
            out += c;
        }
    }
    return out;
}

std::string
labeledName(const std::string &name, const Labels &labels)
{
    if (labels.empty())
        return name;
    Labels sorted = labels;
    std::sort(sorted.begin(), sorted.end());
    std::string out = name + "{";
    for (size_t i = 0; i < sorted.size(); ++i) {
        if (i)
            out += ",";
        out += sorted[i].first + "=\"" + escapeLabelValue(sorted[i].second) +
               "\"";
    }
    out += "}";
    return out;
}

void
Counter::inc(double n)
{
    double cur = value_.load(std::memory_order_relaxed);
    while (!value_.compare_exchange_weak(cur, cur + n,
                                         std::memory_order_relaxed)) {
    }
}

Counter &
MetricsRegistry::counter(const std::string &name, const Labels &labels)
{
    const std::string key = labeledName(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(key);
    if (it == counters_.end())
        it = counters_.emplace(key, std::make_unique<Counter>()).first;
    return *it->second;
}

Gauge &
MetricsRegistry::gauge(const std::string &name, const Labels &labels)
{
    const std::string key = labeledName(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(key);
    if (it == gauges_.end())
        it = gauges_.emplace(key, std::make_unique<Gauge>()).first;
    return *it->second;
}

void
MetricsRegistry::observe(const std::string &name, double value, double lo,
                         double hi, int buckets, const Labels &labels)
{
    const std::string key = labeledName(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = histograms_.find(key);
    if (it == histograms_.end())
        it = histograms_.emplace(key, Histogram(lo, hi, buckets)).first;
    it->second.sample(value);
}

double
MetricsRegistry::counterValue(const std::string &name,
                              const Labels &labels) const
{
    const std::string key = labeledName(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = counters_.find(key);
    return it != counters_.end() ? it->second->value() : 0.0;
}

double
MetricsRegistry::gaugeValue(const std::string &name,
                            const Labels &labels) const
{
    const std::string key = labeledName(name, labels);
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = gauges_.find(key);
    return it != gauges_.end() ? it->second->value() : 0.0;
}

std::vector<std::string>
MetricsRegistry::counterNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(counters_.size());
    for (const auto &kv : counters_)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
MetricsRegistry::gaugeNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(gauges_.size());
    for (const auto &kv : gauges_)
        names.push_back(kv.first);
    return names;
}

std::vector<std::string>
MetricsRegistry::histogramNames() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> names;
    names.reserve(histograms_.size());
    for (const auto &kv : histograms_)
        names.push_back(kv.first);
    return names;
}

StatGroup
MetricsRegistry::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    StatGroup group(name_);
    for (const auto &kv : counters_)
        group.scalar(kv.first).add(kv.second->value());
    for (const auto &kv : gauges_)
        group.scalar(kv.first).add(kv.second->value());
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        group
            .histogram(kv.first, h.lo(), h.hi(),
                       static_cast<int>(h.bins().size()))
            .merge(h);
    }
    return group;
}

std::string
MetricsRegistry::toJson() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "{\n  \"registry\": " + json::quoted(name_) + ",\n";

    auto section = [&out](const char *title, const auto &map, auto value) {
        out += std::string("  \"") + title + "\": {";
        bool first = true;
        for (const auto &kv : map) {
            out += first ? "\n" : ",\n";
            first = false;
            out += "    " + json::quoted(kv.first) + ": " +
                   json::number(value(kv.second));
        }
        out += first ? "},\n" : "\n  },\n";
    };
    section("counters", counters_,
            [](const std::unique_ptr<Counter> &c) { return c->value(); });
    section("gauges", gauges_,
            [](const std::unique_ptr<Gauge> &g) { return g->value(); });

    out += "  \"histograms\": {";
    bool first = true;
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        out += first ? "\n" : ",\n";
        first = false;
        out += "    " + json::quoted(kv.first) + ": {\"count\": " +
               std::to_string(h.count()) +
               ", \"mean\": " + json::number(h.mean()) +
               ", \"min\": " + json::number(h.min()) +
               ", \"max\": " + json::number(h.max()) +
               ", \"p50\": " + json::number(h.p50()) +
               ", \"p95\": " + json::number(h.p95()) +
               ", \"p99\": " + json::number(h.p99()) + "}";
    }
    out += first ? "}\n" : "\n  }\n";
    out += "}\n";
    return out;
}

namespace {

/** RFC-4180 quoting for the CSV name column: labeled names contain
 *  commas and quotes by construction. */
std::string
csvField(const std::string &field)
{
    if (field.find_first_of(",\"\n") == std::string::npos)
        return field;
    std::string out = "\"";
    for (char c : field) {
        if (c == '"')
            out += '"';
        out += c;
    }
    out += "\"";
    return out;
}

/** Prometheus metric/label name charset: `[a-zA-Z0-9_:]` (dots and
 *  anything else become underscores; leading digit gets a prefix). */
std::string
sanitizeMetricName(const std::string &name)
{
    std::string out;
    out.reserve(name.size());
    for (char c : name) {
        const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                        (c >= '0' && c <= '9') || c == '_' || c == ':';
        out += ok ? c : '_';
    }
    if (out.empty())
        out = "_";
    if (out[0] >= '0' && out[0] <= '9')
        out = "_" + out;
    return out;
}

/**
 * Split a canonical key (`name` or `name{k="v",...}`) back into its
 * base name and label pairs. Values stay in escaped form -- the
 * canonical escaping is exactly the Prometheus one, so they re-emit
 * verbatim.
 */
void
parseLabeledKey(const std::string &key, std::string &base, Labels &labels)
{
    labels.clear();
    const size_t brace = key.find('{');
    if (brace == std::string::npos) {
        base = key;
        return;
    }
    base = key.substr(0, brace);
    size_t i = brace + 1;
    while (i < key.size() && key[i] != '}') {
        const size_t eq = key.find('=', i);
        if (eq == std::string::npos || eq + 1 >= key.size() ||
            key[eq + 1] != '"')
            break; // malformed; canonical keys never hit this
        const std::string label_key = key.substr(i, eq - i);
        size_t j = eq + 2; // first char of the escaped value
        std::string value;
        while (j < key.size() && key[j] != '"') {
            if (key[j] == '\\' && j + 1 < key.size()) {
                value += key[j];
                ++j;
            }
            value += key[j];
            ++j;
        }
        labels.emplace_back(label_key, value);
        i = j + 1; // past the closing quote
        if (i < key.size() && key[i] == ',')
            ++i;
    }
}

/** Render `{k="v",...}` with sanitized keys and pre-escaped values;
 *  @p extra appends one more pair (used for quantile labels). */
std::string
renderPromLabels(const Labels &labels, const char *extra_key = nullptr,
                 const char *extra_value = nullptr)
{
    if (labels.empty() && !extra_key)
        return "";
    std::string out = "{";
    bool first = true;
    for (const auto &kv : labels) {
        if (!first)
            out += ",";
        first = false;
        out += sanitizeMetricName(kv.first) + "=\"" + kv.second + "\"";
    }
    if (extra_key) {
        if (!first)
            out += ",";
        out += std::string(extra_key) + "=\"" + extra_value + "\"";
    }
    out += "}";
    return out;
}

} // namespace

std::string
MetricsRegistry::toCsv() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::string out = "kind,name,value,count,mean,min,max,p50,p95,p99\n";
    auto num = [](double v) { return json::number(v); };
    for (const auto &kv : counters_)
        out += "counter," + csvField(kv.first) + "," +
               num(kv.second->value()) + ",,,,,,,\n";
    for (const auto &kv : gauges_)
        out += "gauge," + csvField(kv.first) + "," +
               num(kv.second->value()) + ",,,,,,,\n";
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        out += "histogram," + csvField(kv.first) + ",," +
               std::to_string(h.count()) + "," + num(h.mean()) + "," +
               num(h.min()) + "," + num(h.max()) + "," + num(h.p50()) +
               "," + num(h.p95()) + "," + num(h.p99()) + "\n";
    }
    return out;
}

std::string
MetricsRegistry::toPrometheus() const
{
    std::lock_guard<std::mutex> lock(mutex_);

    // Group samples by sanitized base name first: map iteration order
    // interleaves bases (`a.b` sorts before `a.b{...}` but `a.b_x`
    // lands between them), and the exposition format requires every
    // sample of a metric to sit under a single # TYPE line.
    std::map<std::string, std::vector<std::string>> families;
    std::map<std::string, const char *> types;
    auto num = [](double v) { return json::number(v); };

    auto add = [&](const std::string &key, const char *type,
                   auto &&emit_samples) {
        std::string base;
        Labels labels;
        parseLabeledKey(key, base, labels);
        const std::string name = sanitizeMetricName(base);
        types.emplace(name, type);
        emit_samples(name, labels, families[name]);
    };

    for (const auto &kv : counters_) {
        const double value = kv.second->value();
        add(kv.first, "counter",
            [&](const std::string &name, const Labels &labels,
                std::vector<std::string> &lines) {
                lines.push_back(name + renderPromLabels(labels) + " " +
                                num(value));
            });
    }
    for (const auto &kv : gauges_) {
        const double value = kv.second->value();
        add(kv.first, "gauge",
            [&](const std::string &name, const Labels &labels,
                std::vector<std::string> &lines) {
                lines.push_back(name + renderPromLabels(labels) + " " +
                                num(value));
            });
    }
    for (const auto &kv : histograms_) {
        const Histogram &h = kv.second;
        add(kv.first, "summary",
            [&](const std::string &name, const Labels &labels,
                std::vector<std::string> &lines) {
                lines.push_back(name +
                                renderPromLabels(labels, "quantile", "0.5") +
                                " " + num(h.p50()));
                lines.push_back(name +
                                renderPromLabels(labels, "quantile", "0.95") +
                                " " + num(h.p95()));
                lines.push_back(name +
                                renderPromLabels(labels, "quantile", "0.99") +
                                " " + num(h.p99()));
                lines.push_back(name + "_sum" + renderPromLabels(labels) +
                                " " + num(h.sum()));
                lines.push_back(name + "_count" + renderPromLabels(labels) +
                                " " + std::to_string(h.count()));
            });
    }

    std::string out;
    for (const auto &family : families) {
        out += "# TYPE " + family.first + " " + types[family.first] + "\n";
        for (const std::string &line : family.second)
            out += line + "\n";
    }
    return out;
}

void
MetricsRegistry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &kv : counters_)
        kv.second->reset();
    for (auto &kv : gauges_)
        kv.second->reset();
    for (auto &kv : histograms_)
        kv.second.reset();
}

MetricsRegistry &
MetricsRegistry::global()
{
    static MetricsRegistry registry("global");
    return registry;
}

} // namespace obs
} // namespace nebula
