/**
 * @file
 * MetricsRegistry: the labeled-metrics layer over the StatGroup world.
 * Components register counters (monotone, lock-free increment), gauges
 * (last-value, lock-free set) and histograms (mergeable, quantile-
 * capable -- common/stats Histogram) under stable names with optional
 * key=value labels, and the registry snapshots deterministically to
 * JSON or CSV.
 *
 * Hot-path contract: counter()/gauge() lookups take the registry mutex
 * once (cache the returned reference), after which inc()/set() are
 * single atomic operations. Instrumentation that runs per request or
 * per trial writes into MetricsRegistry::global(); tests build private
 * registries.
 */

#ifndef NEBULA_OBS_METRICS_HPP
#define NEBULA_OBS_METRICS_HPP

#include <atomic>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace nebula {
namespace obs {

/** Optional key=value labels qualifying a metric name. */
using Labels = std::vector<std::pair<std::string, std::string>>;

/**
 * Escape a label value for embedding between double quotes: backslash,
 * double quote and newline become `\\`, `\"` and `\n`. This is the one
 * escaping rule shared by the canonical key, the JSON/CSV snapshots and
 * the Prometheus exposition renderer, so a label value containing `"`
 * or a newline can never break any serialized form.
 */
std::string escapeLabelValue(const std::string &value);

/**
 * Canonical labeled name: `name{k="v",...}` with keys sorted and values
 * escaped via escapeLabelValue, so the same label set always maps to
 * the same metric and the key is unambiguous for any value.
 */
std::string labeledName(const std::string &name, const Labels &labels);

/** A monotonically increasing counter (lock-free increments). */
class Counter
{
  public:
    void inc(double n = 1.0);
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { value_.store(0.0, std::memory_order_relaxed); }

  private:
    std::atomic<double> value_{0.0};
};

/** A last-value gauge (lock-free set). */
class Gauge
{
  public:
    void set(double v) { value_.store(v, std::memory_order_relaxed); }
    double value() const { return value_.load(std::memory_order_relaxed); }
    void reset() { set(0.0); }

  private:
    std::atomic<double> value_{0.0};
};

/** Named metrics with deterministic JSON/CSV snapshots. */
class MetricsRegistry
{
  public:
    explicit MetricsRegistry(std::string name = "metrics")
        : name_(std::move(name))
    {
    }

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Counter by (name, labels); created on first use. The returned
     *  reference stays valid for the registry's lifetime. */
    Counter &counter(const std::string &name, const Labels &labels = {});

    /** Gauge by (name, labels); created on first use. */
    Gauge &gauge(const std::string &name, const Labels &labels = {});

    /**
     * Record one histogram sample under the registry mutex. The shape
     * applies on first use of the name only.
     */
    void observe(const std::string &name, double value, double lo = 0.0,
                 double hi = 1.0, int buckets = 32,
                 const Labels &labels = {});

    /** Current value of a counter/gauge; 0 if it does not exist. */
    double counterValue(const std::string &name,
                        const Labels &labels = {}) const;
    double gaugeValue(const std::string &name,
                      const Labels &labels = {}) const;

    /** Sorted names currently registered. */
    std::vector<std::string> counterNames() const;
    std::vector<std::string> gaugeNames() const;
    std::vector<std::string> histogramNames() const;

    /**
     * Point-in-time snapshot as a StatGroup: counters and gauges become
     * scalars (sum = value), histograms are copied. Deterministic
     * ordering (sorted names).
     */
    StatGroup snapshot() const;

    /** JSON object with counters / gauges / histograms sections. */
    std::string toJson() const;

    /** CSV: `kind,name,value,count,mean,min,max,p50,p95,p99` rows.
     *  Names containing `,` or `"` are CSV-quoted. */
    std::string toCsv() const;

    /**
     * Prometheus text exposition (format 0.0.4). Metric names are
     * sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` (dots become
     * underscores), label values use the shared escaping rule, samples
     * are grouped under one `# TYPE` line per metric name, and
     * histograms render as summaries (quantile series + _sum/_count).
     */
    std::string toPrometheus() const;

    /** Zero every metric (registrations survive). */
    void reset();

    const std::string &name() const { return name_; }

    /** The process-wide registry the built-in instrumentation feeds. */
    static MetricsRegistry &global();

  private:
    std::string name_;
    mutable std::mutex mutex_;
    // unique_ptr for address stability: references handed out by
    // counter()/gauge() must survive map rehashing/rebalancing.
    std::map<std::string, std::unique_ptr<Counter>> counters_;
    std::map<std::string, std::unique_ptr<Gauge>> gauges_;
    std::map<std::string, Histogram> histograms_;
};

} // namespace obs
} // namespace nebula

#endif // NEBULA_OBS_METRICS_HPP
