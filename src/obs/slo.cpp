#include "obs/slo.hpp"

#include <algorithm>

#include "obs/metrics.hpp"

namespace nebula {
namespace obs {

// ---------------------------------------------------------------- ring

namespace {

/** Shared rotation step: clear the slots between the live epoch and
 *  @p target (at most the whole ring), advancing @p epoch. Returns how
 *  many slots were cleared. */
template <typename Slot, typename Clear>
long long
rotateRing(std::vector<Slot> &ring, long long &epoch, long long target,
           Clear &&clear)
{
    if (target <= epoch)
        return 0; // time never flows backwards on steady_clock
    const long long steps =
        std::min<long long>(target - epoch, static_cast<long long>(ring.size()));
    for (long long s = 1; s <= steps; ++s)
        clear(ring[static_cast<size_t>((epoch + s) % ring.size())]);
    epoch = target;
    return steps;
}

} // namespace

WindowedHistogram::WindowedHistogram(double lo, double hi, int buckets,
                                     int sub_windows,
                                     std::chrono::nanoseconds window,
                                     TimePoint start)
    : start_(start)
{
    sub_windows = std::max(1, sub_windows);
    subDur_ = window / sub_windows;
    if (subDur_.count() <= 0)
        subDur_ = std::chrono::nanoseconds(1);
    ring_.assign(static_cast<size_t>(sub_windows),
                 Histogram(lo, hi, buckets));
}

long long
WindowedHistogram::epochOf(TimePoint now) const
{
    if (now <= start_)
        return 0;
    return (now - start_) / subDur_;
}

void
WindowedHistogram::rotateTo(TimePoint now)
{
    rotations_ += rotateRing(ring_, epoch_, epochOf(now),
                             [](Histogram &h) { h.reset(); });
}

void
WindowedHistogram::record(double value, TimePoint now)
{
    rotateTo(now);
    ring_[static_cast<size_t>(epoch_ % ring_.size())].sample(value);
}

Histogram
WindowedHistogram::merged(TimePoint now)
{
    rotateTo(now);
    Histogram out(ring_[0].lo(), ring_[0].hi(),
                  static_cast<int>(ring_[0].bins().size()));
    for (const Histogram &h : ring_)
        out.merge(h); // identical shapes: bin-exact merge
    return out;
}

WindowedCounter::WindowedCounter(int sub_windows,
                                 std::chrono::nanoseconds window,
                                 TimePoint start)
    : start_(start)
{
    sub_windows = std::max(1, sub_windows);
    subDur_ = window / sub_windows;
    if (subDur_.count() <= 0)
        subDur_ = std::chrono::nanoseconds(1);
    ring_.assign(static_cast<size_t>(sub_windows), 0.0);
}

long long
WindowedCounter::epochOf(TimePoint now) const
{
    if (now <= start_)
        return 0;
    return (now - start_) / subDur_;
}

void
WindowedCounter::rotateTo(TimePoint now)
{
    rotateRing(ring_, epoch_, epochOf(now), [](double &slot) { slot = 0.0; });
}

void
WindowedCounter::record(double n, TimePoint now)
{
    rotateTo(now);
    ring_[static_cast<size_t>(epoch_ % ring_.size())] += n;
}

double
WindowedCounter::sum(TimePoint now)
{
    rotateTo(now);
    double total = 0.0;
    for (double slot : ring_)
        total += slot;
    return total;
}

// ------------------------------------------------------------- tracker

SloTracker::SloTracker(SloConfig config) : config_(config)
{
    config_.subWindows = std::max(1, config_.subWindows);
    config_.windowSeconds = std::max(1e-9, config_.windowSeconds);
    config_.objective = std::min(0.999999, std::max(0.0, config_.objective));
}

SloTracker::Cell::Cell(const SloConfig &config, TimePoint start)
    : latencyMs(config.histLoMs, config.histHiMs, config.histBuckets,
                config.subWindows,
                std::chrono::nanoseconds(static_cast<long long>(
                    config.windowSeconds * 1e9)),
                start),
      good(config.subWindows,
           std::chrono::nanoseconds(
               static_cast<long long>(config.windowSeconds * 1e9)),
           start),
      bad(config.subWindows,
          std::chrono::nanoseconds(
              static_cast<long long>(config.windowSeconds * 1e9)),
          start),
      excluded(config.subWindows,
               std::chrono::nanoseconds(
                   static_cast<long long>(config.windowSeconds * 1e9)),
               start)
{
}

SloTracker::Cell &
SloTracker::cell(const std::string &tenant, const std::string &model,
                 TimePoint now)
{
    auto key = std::make_pair(tenant, model);
    auto it = cells_.find(key);
    if (it == cells_.end())
        it = cells_.emplace(std::move(key), Cell(config_, now)).first;
    return it->second;
}

void
SloTracker::record(const std::string &tenant, const std::string &model,
                   double latency_ms, bool server_error, bool client_error,
                   TimePoint now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    Cell &c = cell(tenant, model, now);
    c.latencyMs.record(latency_ms, now);
    if (client_error)
        c.excluded.record(1.0, now);
    else if (server_error || latency_ms > config_.targetMs)
        c.bad.record(1.0, now);
    else
        c.good.record(1.0, now);
}

SloSnapshot
SloTracker::snapshotLocked(const std::string &tenant,
                           const std::string &model, Cell &cell,
                           TimePoint now)
{
    SloSnapshot snap;
    snap.tenant = tenant;
    snap.model = model;
    const Histogram lat = cell.latencyMs.merged(now);
    snap.p50Ms = lat.p50();
    snap.p95Ms = lat.p95();
    snap.p99Ms = lat.p99();
    snap.good = cell.good.sum(now);
    snap.bad = cell.bad.sum(now);
    snap.excluded = cell.excluded.sum(now);
    snap.burnRate = snap.errorRate() / (1.0 - config_.objective);
    return snap;
}

SloSnapshot
SloTracker::snapshot(const std::string &tenant, const std::string &model,
                     TimePoint now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = cells_.find(std::make_pair(tenant, model));
    if (it == cells_.end())
        return SloSnapshot{};
    return snapshotLocked(tenant, model, it->second, now);
}

std::vector<SloSnapshot>
SloTracker::snapshotAll(TimePoint now)
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<SloSnapshot> out;
    out.reserve(cells_.size());
    for (auto &kv : cells_)
        out.push_back(
            snapshotLocked(kv.first.first, kv.first.second, kv.second, now));
    return out;
}

void
SloTracker::exportTo(MetricsRegistry &registry, TimePoint now)
{
    for (const SloSnapshot &snap : snapshotAll(now)) {
        const Labels labels = {{"tenant", snap.tenant},
                               {"model", snap.model}};
        registry.gauge("slo.p50_ms", labels).set(snap.p50Ms);
        registry.gauge("slo.p95_ms", labels).set(snap.p95Ms);
        registry.gauge("slo.p99_ms", labels).set(snap.p99Ms);
        registry.gauge("slo.good", labels).set(snap.good);
        registry.gauge("slo.bad", labels).set(snap.bad);
        registry.gauge("slo.excluded", labels).set(snap.excluded);
        registry.gauge("slo.burn_rate", labels).set(snap.burnRate);
    }
}

} // namespace obs
} // namespace nebula
