/**
 * @file
 * Sliding-window SLO tracking for the serving plane.
 *
 * A scrape wants "p99 over the last minute", not "p99 since boot" --
 * the process-lifetime histograms in MetricsRegistry dilute a brownout
 * into noise after an hour of good traffic. WindowedHistogram keeps a
 * ring of sub-window Histograms (the mergeable common/stats kind) and
 * answers queries with the merge of the live sub-windows, so old
 * samples age out in sub-window granularity with O(ring) memory and no
 * per-sample allocation.
 *
 * SloTracker keys (tenant, model) cells, each holding a windowed
 * latency histogram plus windowed good/bad outcome counters, and
 * reports rolling p50/p95/p99 and the error-budget burn rate: with
 * objective 0.99, bad/total == 1% burns at exactly rate 1.0 -- the
 * budget is being consumed precisely as fast as it refills; above 1.0
 * the tenant is out of SLO.
 *
 * Time is passed explicitly (steady_clock time points) so tests drive
 * rotation deterministically; the convenience overloads default to
 * steady_clock::now(). Thread safety: one mutex per tracker -- the
 * serving writer threads record a handful of samples per request,
 * which is far below the registry-mutex traffic already on that path.
 */

#ifndef NEBULA_OBS_SLO_HPP
#define NEBULA_OBS_SLO_HPP

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/stats.hpp"

namespace nebula {
namespace obs {

class MetricsRegistry;

/** Mergeable histogram over a rolling time window (ring of sub-windows). */
class WindowedHistogram
{
  public:
    using Clock = std::chrono::steady_clock;
    using TimePoint = Clock::time_point;

    /**
     * @param lo,hi,buckets  Shape of every sub-window Histogram.
     * @param sub_windows    Ring size (>= 1).
     * @param window         Total rolling window; each sub-window spans
     *                       window / sub_windows.
     * @param start          Epoch the sub-window grid is anchored to.
     */
    WindowedHistogram(double lo, double hi, int buckets, int sub_windows,
                      std::chrono::nanoseconds window,
                      TimePoint start = Clock::now());

    /** Record one sample at @p now (rotates stale sub-windows first). */
    void record(double value, TimePoint now = Clock::now());

    /** Merge of all live sub-windows as of @p now. */
    Histogram merged(TimePoint now = Clock::now());

    /** Drop sub-windows that have aged out as of @p now. */
    void rotateTo(TimePoint now);

    /** Sub-windows cleared so far (rotation evidence for tests). */
    long long rotations() const { return rotations_; }

    int subWindows() const { return static_cast<int>(ring_.size()); }
    std::chrono::nanoseconds subWindowDuration() const { return subDur_; }

  private:
    /** Sub-window index containing @p now (monotone, 0 at start_). */
    long long epochOf(TimePoint now) const;

    std::vector<Histogram> ring_;
    TimePoint start_;
    std::chrono::nanoseconds subDur_;
    long long epoch_ = 0; //!< epoch of the newest live sub-window
    long long rotations_ = 0;
};

/** Counter over the same rolling ring as WindowedHistogram. */
class WindowedCounter
{
  public:
    using Clock = WindowedHistogram::Clock;
    using TimePoint = WindowedHistogram::TimePoint;

    WindowedCounter(int sub_windows, std::chrono::nanoseconds window,
                    TimePoint start = Clock::now());

    void record(double n = 1.0, TimePoint now = Clock::now());
    double sum(TimePoint now = Clock::now());
    void rotateTo(TimePoint now);

  private:
    long long epochOf(TimePoint now) const;

    std::vector<double> ring_;
    TimePoint start_;
    std::chrono::nanoseconds subDur_;
    long long epoch_ = 0;
};

/** SLO objective + window shape for every (tenant, model) cell. */
struct SloConfig
{
    /** A request is "good" when it succeeds within this latency. */
    double targetMs = 50.0;

    /** Fraction of eligible requests that must be good (e.g. 0.99). */
    double objective = 0.99;

    /** Rolling window split into subWindows ring slots. */
    double windowSeconds = 60.0;
    int subWindows = 6;

    /** Latency histogram shape (ms). */
    double histLoMs = 0.0;
    double histHiMs = 500.0;
    int histBuckets = 500;
};

/** Rolling SLO state of one (tenant, model) pair. */
struct SloSnapshot
{
    std::string tenant;
    std::string model;
    double p50Ms = 0.0;
    double p95Ms = 0.0;
    double p99Ms = 0.0;
    double good = 0.0;     //!< eligible requests inside the objective
    double bad = 0.0;      //!< server failures or over-target latency
    double excluded = 0.0; //!< client-caused outcomes (not SLO-eligible)

    double total() const { return good + bad; }
    double errorRate() const { return total() > 0 ? bad / total() : 0.0; }

    /**
     * Error-budget burn rate: errorRate / (1 - objective). 1.0 burns
     * the budget exactly as fast as the window refills it; >= 1.0 over
     * a sustained window means the SLO is blown.
     */
    double burnRate = 0.0;

    bool budgetExhausted() const { return burnRate >= 1.0; }
};

/** Per-(tenant, model) rolling latency/outcome SLO tracker. */
class SloTracker
{
  public:
    using Clock = WindowedHistogram::Clock;
    using TimePoint = WindowedHistogram::TimePoint;

    explicit SloTracker(SloConfig config = {});

    /**
     * Record one served request. @p server_error marks typed failures
     * the *server* owns (timeout, shed, replica fault, engine stop);
     * @p client_error marks outcomes excluded from the SLO (bad
     * request, unknown model, quota) -- they are counted but burn no
     * budget. A successful request over targetMs is bad.
     */
    void record(const std::string &tenant, const std::string &model,
                double latency_ms, bool server_error,
                bool client_error = false, TimePoint now = Clock::now());

    /** Snapshot of one cell ({} when the pair was never recorded). */
    SloSnapshot snapshot(const std::string &tenant, const std::string &model,
                         TimePoint now = Clock::now());

    /** Snapshots of every cell, ordered by (tenant, model). */
    std::vector<SloSnapshot> snapshotAll(TimePoint now = Clock::now());

    /**
     * Export every cell into @p registry as gauges:
     * `slo.p50_ms/p95_ms/p99_ms/good/bad/burn_rate{tenant=...,model=...}`.
     */
    void exportTo(MetricsRegistry &registry, TimePoint now = Clock::now());

    const SloConfig &config() const { return config_; }

  private:
    struct Cell
    {
        Cell(const SloConfig &config, TimePoint start);
        WindowedHistogram latencyMs;
        WindowedCounter good;
        WindowedCounter bad;
        WindowedCounter excluded;
    };

    Cell &cell(const std::string &tenant, const std::string &model,
               TimePoint now);
    SloSnapshot snapshotLocked(const std::string &tenant,
                               const std::string &model, Cell &cell,
                               TimePoint now);

    SloConfig config_;
    std::mutex mutex_;
    std::map<std::pair<std::string, std::string>, Cell> cells_;
};

} // namespace obs
} // namespace nebula

#endif // NEBULA_OBS_SLO_HPP
