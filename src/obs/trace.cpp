#include "obs/trace.hpp"

#include <cstdio>
#include <cstdlib>
#include <fstream>

#include "common/json.hpp"
#include "common/logging.hpp"

namespace nebula {
namespace obs {

namespace {

// The active session. Readers (every instrumentation point) do one
// relaxed load; writers (start/stop) swap under g_controlMutex.
std::atomic<TraceSession *> g_current{nullptr};
std::mutex g_controlMutex;
std::unique_ptr<TraceSession> g_owned;

// Monotone session generation; spans pair Begin/End against it so a
// span outliving its session (or spanning a stop/start) never emits a
// dangling End into a different session.
std::atomic<uint64_t> g_generation{0};

// Per-thread state. The slot caches this thread's buffer for the
// current session generation; suppressDepth > 0 while inside a
// sampled-out root span (children skip recording entirely).
struct ThreadSlot
{
    uint64_t generation = 0;
    void *buffer = nullptr;
};
thread_local ThreadSlot t_slot;
thread_local int t_suppressDepth = 0;
thread_local std::string t_threadName;

// NEBULA_TRACE auto-start bookkeeping.
std::string g_envPath;
std::once_flag g_envOnce;

void
flushEnvTrace()
{
    auto session = TraceSession::stop();
    if (!session || g_envPath.empty())
        return;
    if (session->writeJson(g_envPath))
        NEBULA_INFORM("NEBULA_TRACE: wrote ", session->eventCount(),
                      " events to ", g_envPath);
    else
        NEBULA_WARN("NEBULA_TRACE: failed to write ", g_envPath);
}

/** Static initializer: honor NEBULA_TRACE in any binary that links obs. */
struct EnvAutoStart
{
    EnvAutoStart() { TraceSession::startFromEnv(); }
} g_envAutoStart;

} // namespace

TraceSession::TraceSession(TraceConfig config)
    : config_(config),
      generation_(g_generation.fetch_add(1, std::memory_order_relaxed) + 1),
      t0_(std::chrono::steady_clock::now())
{
    if (config_.sampleEvery == 0)
        config_.sampleEvery = 1;
}

TraceSession *
TraceSession::current()
{
    return g_current.load(std::memory_order_relaxed);
}

TraceSession &
TraceSession::start(TraceConfig config)
{
    std::lock_guard<std::mutex> lock(g_controlMutex);
    g_current.store(nullptr, std::memory_order_release);
    g_owned = std::make_unique<TraceSession>(config);
    g_current.store(g_owned.get(), std::memory_order_release);
    NEBULA_DEBUG("obs", "trace session started (sampleEvery=",
                 config.sampleEvery, ")");
    return *g_owned;
}

std::unique_ptr<TraceSession>
TraceSession::stop()
{
    std::lock_guard<std::mutex> lock(g_controlMutex);
    g_current.store(nullptr, std::memory_order_release);
    return std::move(g_owned);
}

bool
TraceSession::startFromEnv()
{
    bool started = false;
    std::call_once(g_envOnce, [&] {
        const char *path = std::getenv("NEBULA_TRACE");
        if (!path || !*path)
            return;
        TraceConfig config;
        if (const char *sample = std::getenv("NEBULA_TRACE_SAMPLE"))
            config.sampleEvery =
                std::max<long long>(1, std::atoll(sample));
        g_envPath = path;
        start(config);
        std::atexit(flushEnvTrace);
        started = true;
    });
    return started;
}

TraceSession::ThreadBuffer &
TraceSession::threadBuffer()
{
    if (t_slot.generation == generation_)
        return *static_cast<ThreadBuffer *>(t_slot.buffer);

    std::lock_guard<std::mutex> lock(buffersMutex_);
    auto buffer = std::make_unique<ThreadBuffer>();
    buffer->tid = static_cast<int>(buffers_.size()) + 1;
    buffer->name = !t_threadName.empty()
                       ? t_threadName
                       : "thread" + std::to_string(buffer->tid);
    ThreadBuffer *raw = buffer.get();
    buffers_.push_back(std::move(buffer));
    t_slot.generation = generation_;
    t_slot.buffer = raw;
    return *raw;
}

bool
TraceSession::append(TraceEvent &&event)
{
    ThreadBuffer &buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    // Begin events respect the cap; their Ends are always admitted (the
    // caller only emits an End for an admitted Begin), so the buffer
    // overshoots by at most the open-span depth and pairs stay balanced.
    if (event.phase != TraceEvent::Phase::End &&
        buffer.events.size() >= config_.maxEventsPerThread) {
        ++buffer.dropped;
        return false;
    }
    event.tsUs = std::chrono::duration<double, std::micro>(
                     std::chrono::steady_clock::now() - t0_)
                     .count();
    buffer.events.push_back(std::move(event));
    return true;
}

bool
TraceSession::beginSpan(const char *category, const char *name)
{
    TraceEvent event;
    event.phase = TraceEvent::Phase::Begin;
    event.category = category;
    event.name = name;
    return append(std::move(event));
}

void
TraceSession::endSpan(
    const char *category, const char *name,
    const std::vector<std::pair<const char *, double>> &args)
{
    TraceEvent event;
    event.phase = TraceEvent::Phase::End;
    event.category = category;
    event.name = name;
    event.args = args;
    append(std::move(event));
}

void
TraceSession::instant(const char *category, const char *name)
{
    TraceEvent event;
    event.phase = TraceEvent::Phase::Instant;
    event.category = category;
    event.name = name;
    append(std::move(event));
}

void
TraceSession::flow(TraceEvent::Phase phase, const char *category,
                   const char *name, uint64_t flow_id)
{
    TraceEvent event;
    event.phase = phase;
    event.category = category;
    event.name = name;
    event.flowId = flow_id;
    append(std::move(event));
}

void
TraceSession::counter(const char *name, double value)
{
    TraceEvent event;
    event.phase = TraceEvent::Phase::Counter;
    event.category = "counter";
    event.name = name;
    event.value = value;
    append(std::move(event));
}

void
TraceSession::nameThread(const std::string &name)
{
    ThreadBuffer &buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    buffer.name = name;
}

bool
TraceSession::rootSampleHit()
{
    ThreadBuffer &buffer = threadBuffer();
    std::lock_guard<std::mutex> lock(buffer.mutex);
    return (buffer.rootCount++ % config_.sampleEvery) == 0;
}

std::vector<TraceSession::ThreadTrack>
TraceSession::tracks() const
{
    std::vector<ThreadTrack> out;
    std::lock_guard<std::mutex> lock(buffersMutex_);
    out.reserve(buffers_.size());
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buf_lock(buffer->mutex);
        ThreadTrack track;
        track.tid = buffer->tid;
        track.name = buffer->name;
        track.events = buffer->events;
        track.dropped = buffer->dropped;
        out.push_back(std::move(track));
    }
    return out;
}

uint64_t
TraceSession::eventCount() const
{
    uint64_t total = 0;
    std::lock_guard<std::mutex> lock(buffersMutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buf_lock(buffer->mutex);
        total += buffer->events.size();
    }
    return total;
}

uint64_t
TraceSession::droppedEvents() const
{
    uint64_t total = 0;
    std::lock_guard<std::mutex> lock(buffersMutex_);
    for (const auto &buffer : buffers_) {
        std::lock_guard<std::mutex> buf_lock(buffer->mutex);
        total += buffer->dropped;
    }
    return total;
}

void
TraceSession::writeJson(std::ostream &os) const
{
    const auto tracks_copy = tracks();

    os << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
    bool first = true;
    auto sep = [&] {
        if (!first)
            os << ",";
        os << "\n";
        first = false;
    };

    char ts[40];
    for (const auto &track : tracks_copy) {
        sep();
        os << "{\"ph\":\"M\",\"pid\":1,\"tid\":" << track.tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":"
           << json::quoted(track.name) << "}}";
    }
    for (const auto &track : tracks_copy) {
        for (const TraceEvent &event : track.events) {
            sep();
            std::snprintf(ts, sizeof(ts), "%.3f", event.tsUs);
            os << "{\"ph\":\"" << static_cast<char>(event.phase)
               << "\",\"pid\":1,\"tid\":" << track.tid << ",\"ts\":" << ts;
            if (event.phase == TraceEvent::Phase::Counter) {
                os << ",\"name\":" << json::quoted(event.name)
                   << ",\"args\":{\"value\":" << json::number(event.value)
                   << "}}";
                continue;
            }
            os << ",\"cat\":" << json::quoted(event.category)
               << ",\"name\":" << json::quoted(event.name);
            if (event.phase == TraceEvent::Phase::Instant)
                os << ",\"s\":\"t\"";
            if (event.phase == TraceEvent::Phase::FlowStart ||
                event.phase == TraceEvent::Phase::FlowStep ||
                event.phase == TraceEvent::Phase::FlowEnd) {
                // Flow arrows bind to the enclosing slice; "bp":"e"
                // makes the terminus bind to the slice it is *inside*
                // instead of the next one that starts.
                os << ",\"id\":" << event.flowId << ",\"bp\":\"e\"";
            }
            if (!event.args.empty()) {
                os << ",\"args\":{";
                for (size_t i = 0; i < event.args.size(); ++i) {
                    if (i)
                        os << ",";
                    os << json::quoted(event.args[i].first) << ":"
                       << json::number(event.args[i].second);
                }
                os << "}";
            }
            os << "}";
        }
    }
    os << "\n]}\n";
}

bool
TraceSession::writeJson(const std::string &path) const
{
    std::ofstream out(path);
    if (!out)
        return false;
    writeJson(out);
    return static_cast<bool>(out);
}

TraceSpan::TraceSpan(const char *category, const char *name, bool enabled,
                     bool sampled_root)
    : category_(category), name_(name)
{
    if (!enabled)
        return;
    TraceSession *session = TraceSession::current();
    if (!session)
        return;
    if (t_suppressDepth > 0) {
        // Nested inside a sampled-out root: keep the whole subtree out.
        if (sampled_root) {
            suppressing_ = true;
            ++t_suppressDepth;
        }
        return;
    }
    if (sampled_root && !session->rootSampleHit()) {
        suppressing_ = true;
        ++t_suppressDepth;
        return;
    }
    if (!session->beginSpan(category_, name_))
        return; // buffer full: drop the whole span
    session_ = session;
    generation_ = session->generation();
    recorded_ = true;
}

TraceSpan::~TraceSpan()
{
    if (suppressing_)
        --t_suppressDepth;
    if (!recorded_)
        return;
    TraceSession *session = TraceSession::current();
    if (session != session_ || !session ||
        session->generation() != generation_)
        return; // session stopped mid-span: End dropped with it
    session->endSpan(category_, name_, args_);
}

void
TraceSpan::arg(const char *key, double value)
{
    if (recorded_)
        args_.emplace_back(key, value);
}

void
recordInstant(const char *category, const char *name, bool enabled)
{
    if (!enabled || t_suppressDepth > 0)
        return;
    if (TraceSession *session = TraceSession::current())
        session->instant(category, name);
}

void
recordCounter(const char *name, double value, bool enabled)
{
    if (!enabled || t_suppressDepth > 0)
        return;
    if (TraceSession *session = TraceSession::current())
        session->counter(name, value);
}

namespace {

void
recordFlow(TraceEvent::Phase phase, const char *category, const char *name,
           uint64_t flow_id, bool enabled)
{
    if (!enabled || flow_id == 0 || t_suppressDepth > 0)
        return;
    if (TraceSession *session = TraceSession::current())
        session->flow(phase, category, name, flow_id);
}

} // namespace

void
recordFlowStart(const char *category, const char *name, uint64_t flow_id,
                bool enabled)
{
    recordFlow(TraceEvent::Phase::FlowStart, category, name, flow_id,
               enabled);
}

void
recordFlowStep(const char *category, const char *name, uint64_t flow_id,
               bool enabled)
{
    recordFlow(TraceEvent::Phase::FlowStep, category, name, flow_id,
               enabled);
}

void
recordFlowEnd(const char *category, const char *name, uint64_t flow_id,
              bool enabled)
{
    recordFlow(TraceEvent::Phase::FlowEnd, category, name, flow_id, enabled);
}

uint64_t
nextTraceId()
{
    // SplitMix64 over (startup time ^ pid-ish salt) picks the process
    // lane; the monotone counter walks it. Never returns 0.
    static const uint64_t salt = [] {
        uint64_t z = static_cast<uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count());
        z ^= reinterpret_cast<uintptr_t>(&g_current);
        z += 0x9e3779b97f4a7c15ull;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }();
    static std::atomic<uint64_t> counter{0};
    const uint64_t id =
        salt ^ (counter.fetch_add(1, std::memory_order_relaxed) + 1);
    return id ? id : 1;
}

void
setThreadName(const std::string &name)
{
    t_threadName = name;
    if (TraceSession *session = TraceSession::current())
        session->nameThread(name);
}

} // namespace obs
} // namespace nebula
