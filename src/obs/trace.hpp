/**
 * @file
 * Chip-to-serving tracing: a lock-minimal TraceSession that records
 * RAII TraceSpan duration events, instant events and counter tracks
 * into per-thread buffers and serializes them as Chrome/Perfetto
 * trace-event JSON (openable in ui.perfetto.dev or chrome://tracing).
 *
 * Design constraints, in order:
 *  - Cheap when disabled: every record call first does one relaxed
 *    atomic load of the global session pointer; with no session active
 *    that load is the entire cost, and no message arguments are built.
 *  - Lock-minimal when enabled: each thread appends to its own buffer
 *    under a private, never-contended mutex (it is only ever taken by
 *    another thread during end-of-session serialization), so tracing a
 *    multi-worker engine adds no cross-thread serialization.
 *  - Bounded: TraceConfig::sampleEvery records every Nth root span
 *    (with everything nested inside an unsampled root suppressed, so
 *    begin/end pairing survives sampling), and maxEventsPerThread caps
 *    each buffer -- a full buffer drops whole spans, never only one
 *    side of a pair.
 *
 * One global session is active at a time (TraceSession::start /
 * TraceSession::stop, or the NEBULA_TRACE=path environment variable,
 * which auto-starts a session at load and writes the file at exit).
 * Stop the session only after instrumented threads have quiesced
 * (engine shutdown/waitIdle); spans still open when the session stops
 * drop their end events.
 */

#ifndef NEBULA_OBS_TRACE_HPP
#define NEBULA_OBS_TRACE_HPP

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

namespace nebula {
namespace obs {

/** One Chrome trace-event record. */
struct TraceEvent
{
    enum class Phase : char {
        Begin = 'B',     //!< duration-span begin
        End = 'E',       //!< duration-span end
        Instant = 'i',   //!< point event
        Counter = 'C',   //!< counter-track sample
        FlowStart = 's', //!< flow arrow origin (binds to enclosing span)
        FlowStep = 't',  //!< flow arrow waypoint
        FlowEnd = 'f',   //!< flow arrow terminus
    };

    Phase phase = Phase::Instant;
    const char *category = ""; //!< static-storage subsystem tag
    const char *name = "";     //!< static-storage event name
    double tsUs = 0.0;         //!< microseconds since session start
    double value = 0.0;        //!< counter value (Counter only)
    uint64_t flowId = 0;       //!< flow-arrow id (Flow* phases only)
    /** Numeric args attached to the event (keys are static strings). */
    std::vector<std::pair<const char *, double>> args;
};

/** Session knobs. */
struct TraceConfig
{
    /** Record every Nth sampled-root span per thread (1 = all). */
    uint64_t sampleEvery = 1;

    /** Per-thread event cap; overflow drops whole spans (counted). */
    size_t maxEventsPerThread = 1u << 20;
};

/**
 * An in-memory trace being recorded. Use the static start()/stop()
 * pair (or NEBULA_TRACE) for the global session the instrumentation
 * writes to; the object returned by stop() serializes or introspects
 * the recording.
 */
class TraceSession
{
  public:
    explicit TraceSession(TraceConfig config = {});
    ~TraceSession() = default;

    TraceSession(const TraceSession &) = delete;
    TraceSession &operator=(const TraceSession &) = delete;

    // -- Global session control ------------------------------------------

    /** The active session, or null (one relaxed atomic load). */
    static TraceSession *current();

    /** True when a session is active. */
    static bool enabled() { return current() != nullptr; }

    /** Install a fresh global session (discards any active one). */
    static TraceSession &start(TraceConfig config = {});

    /**
     * Deactivate and return the global session for serialization;
     * null if none was active. Call only after instrumented threads
     * have quiesced.
     */
    static std::unique_ptr<TraceSession> stop();

    /**
     * Start a session from NEBULA_TRACE=path (sampling via
     * NEBULA_TRACE_SAMPLE=N) and register an exit handler that writes
     * the file. Idempotent; returns true if a session was started.
     */
    static bool startFromEnv();

    // -- Recording (used by TraceSpan and the helpers below) -------------

    /** Append a Begin event; false if it was dropped (buffer full). */
    bool beginSpan(const char *category, const char *name);

    /** Append the matching End event (call only if beginSpan was true). */
    void endSpan(const char *category, const char *name,
                 const std::vector<std::pair<const char *, double>> &args);

    /** Append an instant event. */
    void instant(const char *category, const char *name);

    /**
     * Append a flow event (FlowStart/FlowStep/FlowEnd). Perfetto draws
     * an arrow through every flow event sharing @p flow_id, binding
     * each to the duration span enclosing it -- emit these *inside* a
     * TraceSpan so cross-thread/cross-stage request hops are linked.
     */
    void flow(TraceEvent::Phase phase, const char *category,
              const char *name, uint64_t flow_id);

    /** Append a counter-track sample. */
    void counter(const char *name, double value);

    /** Name the calling thread's track in the trace. */
    void nameThread(const std::string &name);

    /** Root-span sampling decision for the calling thread. */
    bool rootSampleHit();

    // -- Introspection / output ------------------------------------------

    /** One registered thread's recording, in append order. */
    struct ThreadTrack
    {
        int tid = 0;
        std::string name;
        std::vector<TraceEvent> events;
        uint64_t dropped = 0; //!< events lost to the per-thread cap
    };

    /** Copy of every thread's buffer (tid order). */
    std::vector<ThreadTrack> tracks() const;

    /** Total recorded events across threads. */
    uint64_t eventCount() const;

    /** Total events dropped by the per-thread cap. */
    uint64_t droppedEvents() const;

    /** Serialize as Chrome trace-event JSON. */
    void writeJson(std::ostream &os) const;

    /** Write JSON to @p path; false on I/O error. */
    bool writeJson(const std::string &path) const;

    const TraceConfig &config() const { return config_; }

    /** Monotone id distinguishing sessions (ABA-safe span pairing). */
    uint64_t generation() const { return generation_; }

  private:
    struct ThreadBuffer
    {
        std::mutex mutex;
        int tid = 0;
        std::string name;
        std::vector<TraceEvent> events;
        uint64_t rootCount = 0; //!< sampled-root spans seen
        uint64_t dropped = 0;
    };

    /** The calling thread's buffer (registered on first use). */
    ThreadBuffer &threadBuffer();

    /** Append one event (buffer mutex held inside). */
    bool append(TraceEvent &&event);

    TraceConfig config_;
    uint64_t generation_;
    std::chrono::steady_clock::time_point t0_;
    mutable std::mutex buffersMutex_;
    std::vector<std::unique_ptr<ThreadBuffer>> buffers_;
};

/**
 * RAII duration span. Records a Begin event at construction and the
 * matching End (with any attached args) at destruction. No-ops when no
 * session is active, when @p enabled is false (the per-subsystem config
 * toggles), when the surrounding root span was sampled out, or when the
 * thread's buffer is full -- in every case Begin/End stay paired.
 *
 * @p sampled_root marks the span as a sampling root (one serving
 * request, one campaign trial): TraceConfig::sampleEvery applies to it,
 * and skipping it suppresses everything nested inside on this thread.
 */
class TraceSpan
{
  public:
    TraceSpan(const char *category, const char *name, bool enabled = true,
              bool sampled_root = false);
    ~TraceSpan();

    TraceSpan(const TraceSpan &) = delete;
    TraceSpan &operator=(const TraceSpan &) = delete;

    /** Attach a numeric arg, emitted on the End event (static key). */
    void arg(const char *key, double value);

    /** True if this span is actually recording. */
    bool active() const { return recorded_; }

  private:
    TraceSession *session_ = nullptr;
    uint64_t generation_ = 0;
    const char *category_ = "";
    const char *name_ = "";
    bool recorded_ = false;
    bool suppressing_ = false;
    std::vector<std::pair<const char *, double>> args_;
};

/** Instant event on the active session (no-op when disabled). */
void recordInstant(const char *category, const char *name,
                   bool enabled = true);

/** Counter-track sample on the active session (no-op when disabled). */
void recordCounter(const char *name, double value, bool enabled = true);

/**
 * Flow-arrow events on the active session (no-ops when disabled or
 * when @p flow_id is 0 -- the "no trace context" sentinel). A request's
 * hops share one id: start where it is submitted, step at each
 * dispatch/dequeue, end where the response lands.
 */
void recordFlowStart(const char *category, const char *name,
                     uint64_t flow_id, bool enabled = true);
void recordFlowStep(const char *category, const char *name,
                    uint64_t flow_id, bool enabled = true);
void recordFlowEnd(const char *category, const char *name, uint64_t flow_id,
                   bool enabled = true);

/**
 * Allocate a process-unique non-zero trace/flow id: a per-process
 * random-ish salt (time + pid hashed) XOR a monotone counter, so ids
 * from a client and a server process collide with negligible
 * probability when their traces are merged.
 */
uint64_t nextTraceId();

/**
 * Name the calling thread's trace track. Takes effect immediately on
 * the active session and is remembered thread-locally so later-started
 * sessions pick it up too.
 */
void setThreadName(const std::string &name);

} // namespace obs
} // namespace nebula

#endif // NEBULA_OBS_TRACE_HPP
