#include "reliability/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "obs/trace.hpp"
#include "runtime/engine.hpp"
#include "snn/snn_sim.hpp"

namespace nebula {

MitigationSpec
MitigationSpec::none()
{
    return MitigationSpec{};
}

MitigationSpec
MitigationSpec::writeVerifyOnly()
{
    MitigationSpec spec;
    spec.name = "write_verify";
    spec.writeVerify.enabled = true;
    return spec;
}

MitigationSpec
MitigationSpec::full(int spares)
{
    MitigationSpec spec;
    spec.name = "wv+repair";
    spec.spareCols = spares;
    spec.writeVerify.enabled = true;
    spec.repair.enabled = true;
    return spec;
}

FaultModelFactory
stuckAtFactory(double high_fraction, double hard_fraction)
{
    return [high_fraction, hard_fraction](double rate) {
        return std::make_shared<const StuckAtFaultModel>(rate, high_fraction,
                                                         hard_fraction);
    };
}

double
CampaignResult::meanAccuracy(const std::string &mode,
                             const std::string &mitigation,
                             double rate) const
{
    double sum = 0.0;
    int count = 0;
    for (const CampaignRow &row : rows) {
        if (row.mode == mode && row.mitigation == mitigation &&
            std::abs(row.rate - rate) < 1e-12) {
            sum += row.accuracy;
            ++count;
        }
    }
    return count ? sum / count : -1.0;
}

double
CampaignResult::detectionCoverage() const
{
    long long detected = 0, corrupt = 0;
    for (const CampaignRow &row : rows) {
        detected += row.detected;
        corrupt += row.detected + row.undetected;
    }
    return corrupt ? static_cast<double>(detected) / corrupt : 1.0;
}

std::string
CampaignResult::csv() const
{
    std::string out =
        "# units: program_energy_j in joules (J); accuracy, rate and "
        "detection_coverage are dimensionless fractions; detected and "
        "undetected are corrupt-image counts (flagged vs silent); "
        "pulses_per_cell is a mean count\n"
        "backend,mode,mitigation,rate,seed,images,correct,accuracy,"
        "detected,undetected,detection_coverage,"
        "pulses_per_cell,failed_cells,repaired_columns,"
        "irreparable_columns,program_energy_j\n";
    char line[384];
    for (const CampaignRow &row : rows) {
        std::snprintf(
            line, sizeof line,
            "%s,%s,%s,%.6f,%llu,%d,%d,%.6f,%d,%d,%.6f,%.3f,%lld,%lld,"
            "%lld,%.6e\n",
            row.backend.c_str(), row.mode.c_str(), row.mitigation.c_str(),
            row.rate, static_cast<unsigned long long>(row.seed), row.images,
            row.correct, row.accuracy, row.detected, row.undetected,
            row.detectionCoverage(), row.report.pulsesPerCell(),
            row.report.failedCells, row.report.repairedColumns,
            row.report.irreparableColumns, row.report.programEnergy);
        out += line;
    }
    return out;
}

void
CampaignResult::writeCsv(const std::string &path) const
{
    std::ofstream file(path, std::ios::trunc);
    NEBULA_ASSERT(file.good(), "cannot write campaign CSV to ", path);
    file << csv();
}

void
CampaignResult::addStats(StatGroup &stats) const
{
    for (const CampaignRow &row : rows)
        row.report.addTo(stats);
}

namespace {

/** Per-image outcome of one (factory, dataset) measurement. */
struct TrialOutcome
{
    int correct = 0;
    std::vector<int> predicted;
    std::vector<char> flagged; //!< ABFT checksum violation per image
};

/**
 * Run one trial's accuracy measurement through the inference engine.
 * @param timesteps 0 for ANN requests, the evidence window otherwise.
 */
TrialOutcome
runTrial(const ReplicaFactory &factory, const Dataset &test,
         const CampaignConfig &config, int timesteps, int images)
{
    EngineConfig ec;
    ec.numWorkers = config.numWorkers;
    ec.defaultTimesteps = std::max(timesteps, 1);
    ec.seedSalt = config.seedSalt;
    InferenceEngine engine(ec, factory);

    std::vector<Tensor> batch;
    batch.reserve(static_cast<size_t>(images));
    for (int i = 0; i < images; ++i)
        batch.push_back(test.image(i));
    auto futures = engine.submitBatch(batch);

    TrialOutcome outcome;
    outcome.predicted.reserve(static_cast<size_t>(images));
    outcome.flagged.reserve(static_cast<size_t>(images));
    for (int i = 0; i < images; ++i) {
        const InferenceResult result = futures[static_cast<size_t>(i)].get();
        outcome.correct += result.predictedClass == test.label(i);
        outcome.predicted.push_back(result.predictedClass);
        outcome.flagged.push_back(result.integrity.violations > 0);
    }
    engine.shutdown();
    return outcome;
}

/**
 * Split a faulty trial's images into detected / undetected corruptions
 * against a clean-reference prediction vector. An image is corrupt when
 * its prediction differs from the clean run's; the trial's own flagged
 * vector says whether the integrity check fired for that image.
 */
void
accountDetection(const TrialOutcome &trial, const std::vector<int> &clean,
                 CampaignRow &row)
{
    for (size_t i = 0; i < trial.predicted.size() && i < clean.size(); ++i) {
        if (trial.predicted[i] == clean[i])
            continue;
        if (trial.flagged[i])
            ++row.detected;
        else
            ++row.undetected;
    }
}

/**
 * Functional-backend stand-in for the checksum column: audit the
 * perturbed weights against the intended ones with the same row-sum
 * checksum the chip stores -- for every crossbar row (receptive-field
 * index), sum the weight deltas across kernels and compare against half
 * a quantization step, exactly the tolerance the analog check derives
 * from the ADC's LSB. Detects any corruption whose column-sum does not
 * cancel, and misses the same cross-column cancellations the chip-side
 * check misses.
 */
bool
checksumAuditDetects(const Network &clean, const Network &noisy, int levels)
{
    // parameters() is non-const (it hands out mutable tensors for the
    // trainer); the audit only reads.
    Network &c = const_cast<Network &>(clean);
    Network &n = const_cast<Network &>(noisy);
    for (int i = 0; i < c.numLayers(); ++i) {
        Layer &layer = c.layer(i);
        if (!layer.isWeightLayer())
            continue;
        const Tensor &w0 = *layer.parameters()[0];
        const Tensor &w1 = *n.layer(i).parameters()[0];
        const int rf = layer.receptiveField();
        const int kernels = layer.numKernels();
        const float wmax = std::max(w0.maxAbs(), 1e-6f);
        const float tolerance = wmax / (levels - 1); // half of 2*wmax/(L-1)
        for (int r = 0; r < rf; ++r) {
            double residual = 0.0;
            for (int k = 0; k < kernels; ++k) {
                const long long idx =
                    static_cast<long long>(k) * rf + r;
                residual += static_cast<double>(w1[idx]) - w0[idx];
            }
            if (std::abs(residual) > tolerance)
                return true;
        }
    }
    return false;
}

/**
 * Wrap a replica factory so the first replica's programming report is
 * captured for the campaign row (replicas are programmed identically,
 * so one report describes them all).
 */
ReplicaFactory
captureReport(ReplicaFactory base, std::shared_ptr<ProgramReport> report)
{
    return [base = std::move(base),
            report = std::move(report)](int worker_id) {
        auto replica = base(worker_id);
        if (worker_id <= 0 && replica->programReport())
            *report = *replica->programReport();
        return replica;
    };
}

// The functional (non-chip) replicas the campaigns run against live in
// runtime/replica.cpp (makeFunctionalAnnReplicaFactory /
// makeFunctionalSnnReplicaFactory) -- the health monitor shares them as
// its graceful-degradation fallback backend.

} // namespace

CampaignResult
runChipCampaign(const Network &quantized, const QuantizationResult &quant,
                const SpikingModel *snn, const Dataset &test,
                const CampaignConfig &config)
{
    NEBULA_ASSERT(config.images > 0, "campaign needs images");
    NEBULA_ASSERT(!config.rates.empty() && !config.seeds.empty() &&
                      !config.mitigations.empty(),
                  "empty campaign sweep");
    const FaultModelFactory factory =
        config.modelFactory ? config.modelFactory : stuckAtFactory();
    const int images = std::min(config.images, test.size());

    CampaignResult result;
    obs::TraceSpan campaign_span("reliability", "campaign.chip");

    // Clean-reference predictions for ABFT detection accounting: the
    // same chip config, variation draw and programming seed with no
    // fault model, run once per mode. A trial image is corrupt when its
    // prediction differs from this reference.
    std::vector<int> ann_clean, snn_clean;
    if (config.chip.abft) {
        const ReliabilityConfig no_faults;
        if (config.runAnn)
            ann_clean = runTrial(makeAnnReplicaFactory(
                                     quantized, quant, config.chip,
                                     config.variationSigma,
                                     config.chipSeed, no_faults),
                                 test, config, 0, images)
                            .predicted;
        if (config.runSnn && snn)
            snn_clean = runTrial(makeSnnReplicaFactory(
                                     *snn, config.chip,
                                     config.variationSigma,
                                     config.chipSeed, no_faults),
                                 test, config, config.timesteps, images)
                            .predicted;
    }

    for (const MitigationSpec &mit : config.mitigations) {
        NEBULA_DEBUG("reliability", "chip campaign: mitigation ", mit.name);
        for (double rate : config.rates) {
            for (uint64_t seed : config.seeds) {
                obs::TraceSpan trial_span("reliability", "trial",
                                          /*enabled=*/true,
                                          /*sampled_root=*/true);
                trial_span.arg("rate", rate);
                trial_span.arg("seed", static_cast<double>(seed));
                ReliabilityConfig rel;
                rel.faults = factory(rate);
                rel.faultSeed = seed;
                rel.spareCols = mit.spareCols;
                rel.writeVerify = mit.writeVerify;
                rel.repair = mit.repair;

                CampaignRow row;
                row.backend = "chip";
                row.mitigation = mit.name;
                row.rate = rate;
                row.seed = seed;
                row.images = images;

                if (config.runAnn) {
                    auto report = std::make_shared<ProgramReport>();
                    const TrialOutcome trial = runTrial(
                        captureReport(
                            makeAnnReplicaFactory(quantized, quant,
                                                  config.chip,
                                                  config.variationSigma,
                                                  config.chipSeed, rel),
                            report),
                        test, config, 0, images);
                    row.mode = "ann";
                    row.correct = trial.correct;
                    row.accuracy =
                        static_cast<double>(trial.correct) / images;
                    row.detected = row.undetected = 0;
                    if (config.chip.abft)
                        accountDetection(trial, ann_clean, row);
                    row.report = *report;
                    result.rows.push_back(row);
                }
                if (config.runSnn && snn) {
                    auto report = std::make_shared<ProgramReport>();
                    const TrialOutcome trial = runTrial(
                        captureReport(
                            makeSnnReplicaFactory(*snn, config.chip,
                                                  config.variationSigma,
                                                  config.chipSeed, rel),
                            report),
                        test, config, config.timesteps, images);
                    row.mode = "snn";
                    row.correct = trial.correct;
                    row.accuracy =
                        static_cast<double>(trial.correct) / images;
                    row.detected = row.undetected = 0;
                    if (config.chip.abft)
                        accountDetection(trial, snn_clean, row);
                    row.report = *report;
                    result.rows.push_back(row);
                }
            }
        }
    }
    return result;
}

CampaignResult
runFunctionalCampaign(const Network &quantized, const Tensor &calibration,
                      const Dataset &test, const CampaignConfig &config)
{
    NEBULA_ASSERT(config.images > 0, "campaign needs images");
    for (const MitigationSpec &mit : config.mitigations)
        NEBULA_ASSERT(!mit.writeVerify.enabled && !mit.repair.enabled &&
                          mit.spareCols == 0,
                      "functional backend models no mitigation (got ",
                      mit.name, ")");
    const FaultModelFactory factory =
        config.modelFactory ? config.modelFactory : stuckAtFactory();
    const int images = std::min(config.images, test.size());

    CampaignResult result;
    obs::TraceSpan campaign_span("reliability", "campaign.functional");

    // Functional ABFT accounting: no crossbar means no checksum column,
    // so the per-trial weight audit (checksumAuditDetects) stands in --
    // a trial that trips the audit counts all its corrupt images as
    // detected; one that doesn't counts them as silent.
    std::vector<int> ann_clean, snn_clean;
    if (config.chip.abft) {
        if (config.runAnn)
            ann_clean = runTrial(makeFunctionalAnnReplicaFactory(
                                     quantized.clone()),
                                 test, config, 0, images)
                            .predicted;
        if (config.runSnn)
            snn_clean = runTrial(makeFunctionalSnnReplicaFactory(
                                     quantized.clone(), calibration),
                                 test, config, config.timesteps, images)
                            .predicted;
    }

    for (const MitigationSpec &mit : config.mitigations) {
        NEBULA_DEBUG("reliability", "functional campaign: mitigation ",
                     mit.name);
        for (double rate : config.rates) {
            for (uint64_t seed : config.seeds) {
                obs::TraceSpan trial_span("reliability", "trial",
                                          /*enabled=*/true,
                                          /*sampled_root=*/true);
                trial_span.arg("rate", rate);
                trial_span.arg("seed", static_cast<double>(seed));
                Network noisy = quantized.clone();
                const auto model = factory(rate);
                applyFaultsToWeights(noisy, *model, seed);
                const bool audit_fired =
                    config.chip.abft &&
                    checksumAuditDetects(quantized, noisy, /*levels=*/16);

                CampaignRow row;
                row.backend = "functional";
                row.mitigation = mit.name;
                row.rate = rate;
                row.seed = seed;
                row.images = images;

                if (config.runAnn) {
                    TrialOutcome trial = runTrial(
                        makeFunctionalAnnReplicaFactory(noisy), test,
                        config, 0, images);
                    std::fill(trial.flagged.begin(), trial.flagged.end(),
                              static_cast<char>(audit_fired));
                    row.mode = "ann";
                    row.correct = trial.correct;
                    row.accuracy =
                        static_cast<double>(trial.correct) / images;
                    row.detected = row.undetected = 0;
                    if (config.chip.abft)
                        accountDetection(trial, ann_clean, row);
                    result.rows.push_back(row);
                }
                if (config.runSnn) {
                    // The spiking path re-converts the perturbed network
                    // per replica and runs through the engine, so the
                    // encoder seeds are the same per-request derivation
                    // the chip leg uses.
                    TrialOutcome trial = runTrial(
                        makeFunctionalSnnReplicaFactory(noisy, calibration),
                        test, config, config.timesteps, images);
                    std::fill(trial.flagged.begin(), trial.flagged.end(),
                              static_cast<char>(audit_fired));
                    row.mode = "snn";
                    row.correct = trial.correct;
                    row.accuracy =
                        static_cast<double>(trial.correct) / images;
                    row.detected = row.undetected = 0;
                    if (config.chip.abft)
                        accountDetection(trial, snn_clean, row);
                    result.rows.push_back(row);
                }
            }
        }
    }
    return result;
}

void
applyFaultsToWeights(Network &net, const FaultModel &model, uint64_t seed,
                     int levels)
{
    NEBULA_ASSERT(levels >= 2, "need at least 2 levels");
    int xbar = 0;
    for (int i = 0; i < net.numLayers(); ++i) {
        Layer &layer = net.layer(i);
        if (!layer.isWeightLayer())
            continue;
        Tensor &w = *layer.parameters()[0];
        const int rf = layer.receptiveField();
        const int kernels = layer.numKernels();
        NEBULA_ASSERT(w.size() ==
                          static_cast<long long>(rf) * kernels,
                      "unexpected weight layout in ", layer.name());
        const float wmax = std::max(w.maxAbs(), 1e-6f);
        const float step = 2.0f * wmax / (levels - 1);

        FaultMap map(rf, kernels);
        model.sampleInto(map,
                         deriveFaultSeed(seed, static_cast<uint64_t>(xbar)));
        Rng rng(deriveFaultSeed(seed ^ 0xfa57ull,
                                static_cast<uint64_t>(xbar)));

        for (int k = 0; k < kernels; ++k) {
            for (int r = 0; r < rf; ++r) {
                float &value = w[static_cast<long long>(k) * rf + r];
                const CellFault &fault = map.cell(r, k);
                switch (fault.kind) {
                case FaultKind::StuckHigh:
                    value = wmax;
                    break;
                case FaultKind::StuckLow:
                    value = -wmax;
                    break;
                case FaultKind::Drift:
                    value = std::clamp(value + fault.drift * step, -wmax,
                                       wmax);
                    break;
                case FaultKind::Decay:
                    value *= fault.decay;
                    break;
                case FaultKind::None:
                    break;
                }
                if (map.rowOpen(r) || map.colOpen(k))
                    value = 0.0f;
                value = static_cast<float>(value * model.programFactor(rng));
            }
        }
        ++xbar;
    }
}

} // namespace nebula
