#include "reliability/campaign.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

#include "common/logging.hpp"
#include "common/stats.hpp"
#include "obs/trace.hpp"
#include "runtime/engine.hpp"
#include "snn/snn_sim.hpp"

namespace nebula {

MitigationSpec
MitigationSpec::none()
{
    return MitigationSpec{};
}

MitigationSpec
MitigationSpec::writeVerifyOnly()
{
    MitigationSpec spec;
    spec.name = "write_verify";
    spec.writeVerify.enabled = true;
    return spec;
}

MitigationSpec
MitigationSpec::full(int spares)
{
    MitigationSpec spec;
    spec.name = "wv+repair";
    spec.spareCols = spares;
    spec.writeVerify.enabled = true;
    spec.repair.enabled = true;
    return spec;
}

FaultModelFactory
stuckAtFactory(double high_fraction, double hard_fraction)
{
    return [high_fraction, hard_fraction](double rate) {
        return std::make_shared<const StuckAtFaultModel>(rate, high_fraction,
                                                         hard_fraction);
    };
}

double
CampaignResult::meanAccuracy(const std::string &mode,
                             const std::string &mitigation,
                             double rate) const
{
    double sum = 0.0;
    int count = 0;
    for (const CampaignRow &row : rows) {
        if (row.mode == mode && row.mitigation == mitigation &&
            std::abs(row.rate - rate) < 1e-12) {
            sum += row.accuracy;
            ++count;
        }
    }
    return count ? sum / count : -1.0;
}

std::string
CampaignResult::csv() const
{
    std::string out =
        "# units: program_energy_j in joules (J); accuracy and rate are "
        "dimensionless fractions; pulses_per_cell is a mean count\n"
        "backend,mode,mitigation,rate,seed,images,correct,accuracy,"
        "pulses_per_cell,failed_cells,repaired_columns,"
        "irreparable_columns,program_energy_j\n";
    char line[320];
    for (const CampaignRow &row : rows) {
        std::snprintf(
            line, sizeof line,
            "%s,%s,%s,%.6f,%llu,%d,%d,%.6f,%.3f,%lld,%lld,%lld,%.6e\n",
            row.backend.c_str(), row.mode.c_str(), row.mitigation.c_str(),
            row.rate, static_cast<unsigned long long>(row.seed), row.images,
            row.correct, row.accuracy, row.report.pulsesPerCell(),
            row.report.failedCells, row.report.repairedColumns,
            row.report.irreparableColumns, row.report.programEnergy);
        out += line;
    }
    return out;
}

void
CampaignResult::writeCsv(const std::string &path) const
{
    std::ofstream file(path, std::ios::trunc);
    NEBULA_ASSERT(file.good(), "cannot write campaign CSV to ", path);
    file << csv();
}

void
CampaignResult::addStats(StatGroup &stats) const
{
    for (const CampaignRow &row : rows)
        row.report.addTo(stats);
}

namespace {

/**
 * Run one trial's accuracy measurement through the inference engine.
 * @param timesteps 0 for ANN requests, the evidence window otherwise.
 */
int
countCorrect(const ReplicaFactory &factory, const Dataset &test,
             const CampaignConfig &config, int timesteps, int images)
{
    EngineConfig ec;
    ec.numWorkers = config.numWorkers;
    ec.defaultTimesteps = std::max(timesteps, 1);
    ec.seedSalt = config.seedSalt;
    InferenceEngine engine(ec, factory);

    std::vector<Tensor> batch;
    batch.reserve(static_cast<size_t>(images));
    for (int i = 0; i < images; ++i)
        batch.push_back(test.image(i));
    auto futures = engine.submitBatch(batch);

    int correct = 0;
    for (int i = 0; i < images; ++i)
        correct += futures[static_cast<size_t>(i)].get().predictedClass ==
                   test.label(i);
    engine.shutdown();
    return correct;
}

/**
 * Wrap a replica factory so the first replica's programming report is
 * captured for the campaign row (replicas are programmed identically,
 * so one report describes them all).
 */
ReplicaFactory
captureReport(ReplicaFactory base, std::shared_ptr<ProgramReport> report)
{
    return [base = std::move(base),
            report = std::move(report)](int worker_id) {
        auto replica = base(worker_id);
        if (worker_id <= 0 && replica->programReport())
            *report = *replica->programReport();
        return replica;
    };
}

// The functional (non-chip) replicas the campaigns run against live in
// runtime/replica.cpp (makeFunctionalAnnReplicaFactory /
// makeFunctionalSnnReplicaFactory) -- the health monitor shares them as
// its graceful-degradation fallback backend.

} // namespace

CampaignResult
runChipCampaign(const Network &quantized, const QuantizationResult &quant,
                const SpikingModel *snn, const Dataset &test,
                const CampaignConfig &config)
{
    NEBULA_ASSERT(config.images > 0, "campaign needs images");
    NEBULA_ASSERT(!config.rates.empty() && !config.seeds.empty() &&
                      !config.mitigations.empty(),
                  "empty campaign sweep");
    const FaultModelFactory factory =
        config.modelFactory ? config.modelFactory : stuckAtFactory();
    const int images = std::min(config.images, test.size());

    CampaignResult result;
    obs::TraceSpan campaign_span("reliability", "campaign.chip");
    for (const MitigationSpec &mit : config.mitigations) {
        NEBULA_DEBUG("reliability", "chip campaign: mitigation ", mit.name);
        for (double rate : config.rates) {
            for (uint64_t seed : config.seeds) {
                obs::TraceSpan trial_span("reliability", "trial",
                                          /*enabled=*/true,
                                          /*sampled_root=*/true);
                trial_span.arg("rate", rate);
                trial_span.arg("seed", static_cast<double>(seed));
                ReliabilityConfig rel;
                rel.faults = factory(rate);
                rel.faultSeed = seed;
                rel.spareCols = mit.spareCols;
                rel.writeVerify = mit.writeVerify;
                rel.repair = mit.repair;

                CampaignRow row;
                row.backend = "chip";
                row.mitigation = mit.name;
                row.rate = rate;
                row.seed = seed;
                row.images = images;

                if (config.runAnn) {
                    auto report = std::make_shared<ProgramReport>();
                    const int correct = countCorrect(
                        captureReport(
                            makeAnnReplicaFactory(quantized, quant,
                                                  config.chip,
                                                  config.variationSigma,
                                                  config.chipSeed, rel),
                            report),
                        test, config, 0, images);
                    row.mode = "ann";
                    row.correct = correct;
                    row.accuracy = static_cast<double>(correct) / images;
                    row.report = *report;
                    result.rows.push_back(row);
                }
                if (config.runSnn && snn) {
                    auto report = std::make_shared<ProgramReport>();
                    const int correct = countCorrect(
                        captureReport(
                            makeSnnReplicaFactory(*snn, config.chip,
                                                  config.variationSigma,
                                                  config.chipSeed, rel),
                            report),
                        test, config, config.timesteps, images);
                    row.mode = "snn";
                    row.correct = correct;
                    row.accuracy = static_cast<double>(correct) / images;
                    row.report = *report;
                    result.rows.push_back(row);
                }
            }
        }
    }
    return result;
}

CampaignResult
runFunctionalCampaign(const Network &quantized, const Tensor &calibration,
                      const Dataset &test, const CampaignConfig &config)
{
    NEBULA_ASSERT(config.images > 0, "campaign needs images");
    for (const MitigationSpec &mit : config.mitigations)
        NEBULA_ASSERT(!mit.writeVerify.enabled && !mit.repair.enabled &&
                          mit.spareCols == 0,
                      "functional backend models no mitigation (got ",
                      mit.name, ")");
    const FaultModelFactory factory =
        config.modelFactory ? config.modelFactory : stuckAtFactory();
    const int images = std::min(config.images, test.size());

    CampaignResult result;
    obs::TraceSpan campaign_span("reliability", "campaign.functional");
    for (const MitigationSpec &mit : config.mitigations) {
        NEBULA_DEBUG("reliability", "functional campaign: mitigation ",
                     mit.name);
        for (double rate : config.rates) {
            for (uint64_t seed : config.seeds) {
                obs::TraceSpan trial_span("reliability", "trial",
                                          /*enabled=*/true,
                                          /*sampled_root=*/true);
                trial_span.arg("rate", rate);
                trial_span.arg("seed", static_cast<double>(seed));
                Network noisy = quantized.clone();
                const auto model = factory(rate);
                applyFaultsToWeights(noisy, *model, seed);

                CampaignRow row;
                row.backend = "functional";
                row.mitigation = mit.name;
                row.rate = rate;
                row.seed = seed;
                row.images = images;

                if (config.runAnn) {
                    const int correct = countCorrect(
                        makeFunctionalAnnReplicaFactory(noisy), test,
                        config, 0, images);
                    row.mode = "ann";
                    row.correct = correct;
                    row.accuracy = static_cast<double>(correct) / images;
                    result.rows.push_back(row);
                }
                if (config.runSnn) {
                    // The spiking path re-converts the perturbed network
                    // per replica and runs through the engine, so the
                    // encoder seeds are the same per-request derivation
                    // the chip leg uses.
                    const int correct = countCorrect(
                        makeFunctionalSnnReplicaFactory(noisy, calibration),
                        test, config, config.timesteps, images);
                    row.mode = "snn";
                    row.correct = correct;
                    row.accuracy = static_cast<double>(correct) / images;
                    result.rows.push_back(row);
                }
            }
        }
    }
    return result;
}

void
applyFaultsToWeights(Network &net, const FaultModel &model, uint64_t seed,
                     int levels)
{
    NEBULA_ASSERT(levels >= 2, "need at least 2 levels");
    int xbar = 0;
    for (int i = 0; i < net.numLayers(); ++i) {
        Layer &layer = net.layer(i);
        if (!layer.isWeightLayer())
            continue;
        Tensor &w = *layer.parameters()[0];
        const int rf = layer.receptiveField();
        const int kernels = layer.numKernels();
        NEBULA_ASSERT(w.size() ==
                          static_cast<long long>(rf) * kernels,
                      "unexpected weight layout in ", layer.name());
        const float wmax = std::max(w.maxAbs(), 1e-6f);
        const float step = 2.0f * wmax / (levels - 1);

        FaultMap map(rf, kernels);
        model.sampleInto(map,
                         deriveFaultSeed(seed, static_cast<uint64_t>(xbar)));
        Rng rng(deriveFaultSeed(seed ^ 0xfa57ull,
                                static_cast<uint64_t>(xbar)));

        for (int k = 0; k < kernels; ++k) {
            for (int r = 0; r < rf; ++r) {
                float &value = w[static_cast<long long>(k) * rf + r];
                const CellFault &fault = map.cell(r, k);
                switch (fault.kind) {
                case FaultKind::StuckHigh:
                    value = wmax;
                    break;
                case FaultKind::StuckLow:
                    value = -wmax;
                    break;
                case FaultKind::Drift:
                    value = std::clamp(value + fault.drift * step, -wmax,
                                       wmax);
                    break;
                case FaultKind::Decay:
                    value *= fault.decay;
                    break;
                case FaultKind::None:
                    break;
                }
                if (map.rowOpen(r) || map.colOpen(k))
                    value = 0.0f;
                value = static_cast<float>(value * model.programFactor(rng));
            }
        }
        ++xbar;
    }
}

} // namespace nebula
