/**
 * @file
 * Fault-injection campaign runner: sweeps fault rates x fault seeds x
 * mitigation configurations over a quantized ANN and its converted SNN
 * and reports accuracy-degradation curves.
 *
 * Two backends share the CampaignConfig/CampaignResult types:
 *
 *  - Chip backend (runChipCampaign): every trial programs NebulaChip
 *    replicas under a ReliabilityConfig (per-crossbar FaultMap sampled
 *    from the trial seed, write-verify / spare-column repair as the
 *    mitigation spec dictates) and measures accuracy through the
 *    concurrent InferenceEngine -- trials parallelize across worker
 *    replicas while staying bit-deterministic, because fault maps
 *    depend only on (seed, crossbar index) and every request carries a
 *    derived encoder seed.
 *
 *  - Functional backend (runFunctionalCampaign): the fault model is
 *    applied directly to the network's weight tensors (a functional
 *    view of the crossbar cells) and accuracy is measured with the
 *    plain simulators. No mitigation is modeled -- this is the fast
 *    path for large scaled models (the Sec. IV-D variability study)
 *    where the full circuit path would dominate runtime.
 *
 * Results are deterministic given the config: rerunning a campaign
 * yields a byte-identical CSV.
 */

#ifndef NEBULA_RELIABILITY_CAMPAIGN_HPP
#define NEBULA_RELIABILITY_CAMPAIGN_HPP

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "arch/config.hpp"
#include "nn/datasets.hpp"
#include "nn/network.hpp"
#include "nn/quantize.hpp"
#include "reliability/mitigation.hpp"
#include "snn/convert.hpp"

namespace nebula {

/** One mitigation configuration swept by a campaign. */
struct MitigationSpec
{
    std::string name = "none";
    int spareCols = 0;
    WriteVerifyConfig writeVerify;
    RepairConfig repair;

    /** Open-loop programming, no spares. */
    static MitigationSpec none();

    /** Closed-loop write-verify only. */
    static MitigationSpec writeVerifyOnly();

    /** Write-verify plus spare-column repair with @p spares per array. */
    static MitigationSpec full(int spares);
};

/**
 * Builds the fault model for one sweep value. The default factory maps
 * a per-cell stuck-at rate (with the default soft/hard split); the
 * Sec. IV-D bench swaps in a Gaussian-variability factory instead.
 */
using FaultModelFactory =
    std::function<std::shared_ptr<const FaultModel>(double rate)>;

/** Campaign sweep definition. */
struct CampaignConfig
{
    /** Sweep values (per-cell fault rate, or sigma for the bench). */
    std::vector<double> rates{0.0, 0.01, 0.02, 0.05};

    /** Fault-map seeds; each is one independent trial per rate. */
    std::vector<uint64_t> seeds{1};

    /** Mitigation configurations to compare. */
    std::vector<MitigationSpec> mitigations{MitigationSpec::none()};

    /** Sweep-value -> fault model (null: default stuck-at factory). */
    FaultModelFactory modelFactory;

    /** Test images per trial. */
    int images = 60;

    /** SNN evidence window per image. */
    int timesteps = 40;

    bool runAnn = true;
    bool runSnn = true;

    /** Engine worker threads per trial (0 = inline). */
    int numWorkers = 2;

    /** Chip programming seed (shared by all replicas of a trial). */
    uint64_t chipSeed = 5;

    /** Request-seed salt (fixed so every trial encodes identically). */
    uint64_t seedSalt = 4242;

    /** Device programming variation sigma on the chip backend. */
    double variationSigma = 0.0;

    /** Chip architecture for the chip backend. */
    NebulaConfig chip;
};

/** One (backend, mode, mitigation, rate, seed) measurement. */
struct CampaignRow
{
    std::string backend;    //!< "chip" or "functional"
    std::string mode;       //!< "ann" or "snn"
    std::string mitigation; //!< MitigationSpec::name
    double rate = 0.0;
    uint64_t seed = 0;
    int images = 0;
    int correct = 0;
    double accuracy = 0.0;

    /**
     * ABFT detection accounting (config.chip.abft). An image is
     * *corrupt* when its prediction differs from a clean-reference run
     * of the same backend; corrupt images split into detected (the
     * checksum columns flagged the request -- or, on the functional
     * backend, the weight-space checksum audit fired) and undetected
     * (silent data corruption). Zeros when ABFT is off.
     */
    int detected = 0;
    int undetected = 0;

    /** Detected fraction of corrupt images (1 when none are corrupt). */
    double detectionCoverage() const
    {
        const int corrupt = detected + undetected;
        return corrupt ? static_cast<double>(detected) / corrupt : 1.0;
    }

    /** Programming accounting (chip backend; zeros on functional). */
    ProgramReport report;
};

/** All rows of one campaign, plus CSV serialization. */
struct CampaignResult
{
    std::vector<CampaignRow> rows;

    /**
     * Mean accuracy over seeds for one (mode, mitigation, rate) cell;
     * -1 if no row matches.
     */
    double meanAccuracy(const std::string &mode,
                        const std::string &mitigation, double rate) const;

    /**
     * Aggregate ABFT detection coverage: detected / corrupt summed over
     * every row (1 when no row saw a corrupt image).
     */
    double detectionCoverage() const;

    /** Deterministic CSV (header + one line per row). */
    std::string csv() const;

    /** Write csv() to @p path (overwrites). */
    void writeCsv(const std::string &path) const;

    /** Record per-row programming totals into a StatGroup. */
    void addStats(StatGroup &stats) const;
};

/** The default sweep factory: stuck-at cells at the given rate. */
FaultModelFactory stuckAtFactory(double high_fraction = 0.5,
                                 double hard_fraction = 0.25);

/**
 * Chip-backend campaign over a quantized ANN (and, when @p snn is
 * non-null and config.runSnn, its converted SNN). Accuracy is measured
 * on the first config.images samples of @p test through NebulaChip
 * replicas programmed under each (mitigation, rate, seed) scenario.
 */
CampaignResult runChipCampaign(const Network &quantized,
                               const QuantizationResult &quant,
                               const SpikingModel *snn, const Dataset &test,
                               const CampaignConfig &config);

/**
 * Functional-backend campaign: faults are applied straight to weight
 * tensors of clones of @p quantized (see applyFaultsToWeights); the SNN
 * leg converts each perturbed clone with @p calibration. Mitigations
 * are not modeled -- every MitigationSpec must be plain "none".
 */
CampaignResult runFunctionalCampaign(const Network &quantized,
                                     const Tensor &calibration,
                                     const Dataset &test,
                                     const CampaignConfig &config);

/**
 * Apply a fault model directly to a network's weight tensors, mirroring
 * the crossbar cell layout (row = position within a kernel's receptive
 * field, column = kernel): stuck cells pin to +-|w|max, pinning drift
 * shifts by discrete level steps, decay scales toward zero, line opens
 * zero the affected weights, and the model's programFactor multiplies
 * every weight (the Gaussian-variability path). Weight layers reuse the
 * chip's per-crossbar seed derivation, so layer k sees the same fault
 * stream regardless of the other layers.
 */
void applyFaultsToWeights(Network &net, const FaultModel &model,
                          uint64_t seed, int levels = 16);

} // namespace nebula

#endif // NEBULA_RELIABILITY_CAMPAIGN_HPP
