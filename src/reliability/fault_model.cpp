#include "reliability/fault_model.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.hpp"

namespace nebula {

FaultMap::FaultMap(int rows, int cols) : rows_(rows), cols_(cols)
{
    NEBULA_ASSERT(rows > 0 && cols > 0, "bad fault-map geometry");
    cells_.assign(static_cast<size_t>(rows) * cols, CellFault{});
    rowOpen_.assign(static_cast<size_t>(rows), 0);
    colOpen_.assign(static_cast<size_t>(cols), 0);
}

const CellFault &
FaultMap::cell(int row, int col) const
{
    NEBULA_ASSERT(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                  "fault-map cell out of range");
    return cells_[static_cast<size_t>(row) * cols_ + col];
}

CellFault &
FaultMap::cell(int row, int col)
{
    NEBULA_ASSERT(row >= 0 && row < rows_ && col >= 0 && col < cols_,
                  "fault-map cell out of range");
    return cells_[static_cast<size_t>(row) * cols_ + col];
}

void
FaultMap::setRowOpen(int row)
{
    NEBULA_ASSERT(row >= 0 && row < rows_, "row out of range");
    rowOpen_[static_cast<size_t>(row)] = 1;
}

void
FaultMap::setColOpen(int col)
{
    NEBULA_ASSERT(col >= 0 && col < cols_, "col out of range");
    colOpen_[static_cast<size_t>(col)] = 1;
}

bool
FaultMap::rowOpen(int row) const
{
    NEBULA_ASSERT(row >= 0 && row < rows_, "row out of range");
    return rowOpen_[static_cast<size_t>(row)] != 0;
}

bool
FaultMap::colOpen(int col) const
{
    NEBULA_ASSERT(col >= 0 && col < cols_, "col out of range");
    return colOpen_[static_cast<size_t>(col)] != 0;
}

int
FaultMap::cellFaultCount() const
{
    int count = 0;
    for (const auto &f : cells_)
        count += f.faulty();
    return count;
}

int
FaultMap::columnFaultCount(int col) const
{
    if (colOpen(col))
        return rows_;
    int count = 0;
    for (int i = 0; i < rows_; ++i)
        count += cell(i, col).faulty() || rowOpen(i);
    return count;
}

int
FaultMap::columnDefectCount(int col, bool write_verify) const
{
    if (colOpen(col))
        return rows_;
    int count = 0;
    for (int i = 0; i < rows_; ++i) {
        if (rowOpen(i)) {
            ++count;
            continue;
        }
        const CellFault &f = cell(i, col);
        if (f.stuck() && (f.hard || !write_verify))
            ++count;
        else if (f.kind == FaultKind::Drift && !write_verify)
            ++count;
    }
    return count;
}

uint64_t
deriveFaultSeed(uint64_t seed, uint64_t index)
{
    uint64_t z = seed + (index + 1) * 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

void
FaultModel::sampleInto(FaultMap &, uint64_t) const
{
}

double
FaultModel::programFactor(Rng &) const
{
    return 1.0;
}

Rng
FaultModel::cellStream(uint64_t seed, uint64_t salt, int row, int col)
{
    // Counter-based: the stream depends only on (seed, salt, row, col),
    // never on how many cells were visited before, so maps are
    // order-independent and nested across fault rates.
    const uint64_t cell_id =
        (static_cast<uint64_t>(static_cast<uint32_t>(row + 1)) << 32) |
        static_cast<uint32_t>(col + 1);
    return Rng(deriveFaultSeed(seed ^ (salt * 0xd1b54a32d192ed03ull),
                               cell_id));
}

StuckAtFaultModel::StuckAtFaultModel(double rate, double high_fraction,
                                     double hard_fraction)
    : rate_(rate), highFraction_(high_fraction), hardFraction_(hard_fraction)
{
    NEBULA_ASSERT(rate >= 0.0 && rate <= 1.0, "stuck rate out of [0,1]");
}

void
StuckAtFaultModel::sampleInto(FaultMap &map, uint64_t seed) const
{
    if (rate_ <= 0.0)
        return;
    for (int i = 0; i < map.rows(); ++i) {
        for (int j = 0; j < map.cols(); ++j) {
            Rng rng = cellStream(seed, 1, i, j);
            // First draw decides "faulty at this rate": the same cell
            // compares the same uniform against every rate, so fault
            // sets are nested as the rate grows.
            if (rng.uniform() >= rate_)
                continue;
            CellFault &f = map.cell(i, j);
            f.kind = rng.uniform() < highFraction_ ? FaultKind::StuckHigh
                                                   : FaultKind::StuckLow;
            f.hard = rng.uniform() < hardFraction_;
        }
    }
}

std::unique_ptr<FaultModel>
StuckAtFaultModel::clone() const
{
    return std::make_unique<StuckAtFaultModel>(*this);
}

std::string
StuckAtFaultModel::describe() const
{
    std::ostringstream os;
    os << "stuck-at " << 100.0 * rate_ << "%";
    return os.str();
}

PinningDriftFaultModel::PinningDriftFaultModel(double rate, int max_drift)
    : rate_(rate), maxDrift_(max_drift)
{
    NEBULA_ASSERT(rate >= 0.0 && rate <= 1.0, "drift rate out of [0,1]");
    NEBULA_ASSERT(max_drift >= 1, "max_drift must be >= 1");
}

void
PinningDriftFaultModel::sampleInto(FaultMap &map, uint64_t seed) const
{
    if (rate_ <= 0.0)
        return;
    for (int i = 0; i < map.rows(); ++i) {
        for (int j = 0; j < map.cols(); ++j) {
            Rng rng = cellStream(seed, 2, i, j);
            if (rng.uniform() >= rate_)
                continue;
            CellFault &f = map.cell(i, j);
            if (f.faulty())
                continue; // stuck dominates drift on a shared cell
            const int magnitude = rng.uniformInt(1, maxDrift_);
            f.kind = FaultKind::Drift;
            f.drift = static_cast<int8_t>(rng.bernoulli(0.5) ? magnitude
                                                             : -magnitude);
        }
    }
}

std::unique_ptr<FaultModel>
PinningDriftFaultModel::clone() const
{
    return std::make_unique<PinningDriftFaultModel>(*this);
}

std::string
PinningDriftFaultModel::describe() const
{
    std::ostringstream os;
    os << "pinning-drift " << 100.0 * rate_ << "% (+-" << maxDrift_ << ")";
    return os.str();
}

RetentionDecayFaultModel::RetentionDecayFaultModel(double elapsed,
                                                   double tau, double sigma)
    : elapsed_(elapsed), tau_(tau), sigma_(sigma)
{
    NEBULA_ASSERT(elapsed >= 0.0 && tau > 0.0, "bad retention parameters");
}

void
RetentionDecayFaultModel::sampleInto(FaultMap &map, uint64_t seed) const
{
    if (elapsed_ <= 0.0)
        return;
    for (int i = 0; i < map.rows(); ++i) {
        for (int j = 0; j < map.cols(); ++j) {
            Rng rng = cellStream(seed, 3, i, j);
            const double tau_cell = tau_ * std::exp(rng.gaussian() * sigma_);
            const double remaining = std::exp(-elapsed_ / tau_cell);
            // Only record cells whose lost swing is visible at 16-level
            // resolution; the rest are indistinguishable from ideal.
            if (remaining > 1.0 - 1.0 / 32.0)
                continue;
            CellFault &f = map.cell(i, j);
            if (f.faulty())
                continue;
            f.kind = FaultKind::Decay;
            f.decay = static_cast<float>(remaining);
        }
    }
}

std::unique_ptr<FaultModel>
RetentionDecayFaultModel::clone() const
{
    return std::make_unique<RetentionDecayFaultModel>(*this);
}

std::string
RetentionDecayFaultModel::describe() const
{
    std::ostringstream os;
    os << "retention t=" << elapsed_ << "s tau=" << tau_ << "s";
    return os.str();
}

LineOpenFaultModel::LineOpenFaultModel(double row_rate, double col_rate)
    : rowRate_(row_rate), colRate_(col_rate)
{
    NEBULA_ASSERT(row_rate >= 0.0 && row_rate <= 1.0 && col_rate >= 0.0 &&
                      col_rate <= 1.0,
                  "open rates out of [0,1]");
}

void
LineOpenFaultModel::sampleInto(FaultMap &map, uint64_t seed) const
{
    for (int i = 0; i < map.rows(); ++i) {
        Rng rng = cellStream(seed, 4, i, -1);
        if (rng.uniform() < rowRate_)
            map.setRowOpen(i);
    }
    for (int j = 0; j < map.cols(); ++j) {
        Rng rng = cellStream(seed, 5, -1, j);
        if (rng.uniform() < colRate_)
            map.setColOpen(j);
    }
}

std::unique_ptr<FaultModel>
LineOpenFaultModel::clone() const
{
    return std::make_unique<LineOpenFaultModel>(*this);
}

std::string
LineOpenFaultModel::describe() const
{
    std::ostringstream os;
    os << "line-open rows " << 100.0 * rowRate_ << "% cols "
       << 100.0 * colRate_ << "%";
    return os.str();
}

GaussianVariabilityModel::GaussianVariabilityModel(double sigma)
    : sigma_(sigma)
{
    NEBULA_ASSERT(sigma >= 0.0, "variability sigma must be non-negative");
}

double
GaussianVariabilityModel::programFactor(Rng &rng) const
{
    if (sigma_ <= 0.0)
        return 1.0;
    // Truncate at 4 sigma and keep factors positive; a conductance
    // cannot go negative no matter how bad the device is.
    double f = rng.gaussian(1.0, sigma_);
    f = std::clamp(f, 1.0 - 4.0 * sigma_, 1.0 + 4.0 * sigma_);
    return std::max(f, 0.01);
}

std::unique_ptr<FaultModel>
GaussianVariabilityModel::clone() const
{
    return std::make_unique<GaussianVariabilityModel>(*this);
}

std::string
GaussianVariabilityModel::describe() const
{
    std::ostringstream os;
    os << "gaussian sigma=" << sigma_;
    return os.str();
}

CompositeFaultModel::CompositeFaultModel(const CompositeFaultModel &other)
{
    for (const auto &m : other.models_)
        models_.push_back(m->clone());
}

void
CompositeFaultModel::add(std::unique_ptr<FaultModel> model)
{
    NEBULA_ASSERT(model, "null fault model");
    models_.push_back(std::move(model));
}

void
CompositeFaultModel::sampleInto(FaultMap &map, uint64_t seed) const
{
    for (const auto &m : models_)
        m->sampleInto(map, seed);
}

double
CompositeFaultModel::programFactor(Rng &rng) const
{
    double f = 1.0;
    for (const auto &m : models_)
        f *= m->programFactor(rng);
    return f;
}

std::unique_ptr<FaultModel>
CompositeFaultModel::clone() const
{
    return std::make_unique<CompositeFaultModel>(*this);
}

std::string
CompositeFaultModel::describe() const
{
    std::string out = "composite[";
    for (size_t i = 0; i < models_.size(); ++i) {
        if (i)
            out += ", ";
        out += models_[i]->describe();
    }
    return out + "]";
}

} // namespace nebula
