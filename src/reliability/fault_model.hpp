/**
 * @file
 * Device-fault taxonomy for DW-MTJ crossbar arrays.
 *
 * The paper's robustness story is a single Monte-Carlo study (Sec. IV-D:
 * Gaussian conductance variation). Real domain-wall arrays fail in richer
 * ways, and the reliability literature around DW-MTJ neurons treats those
 * failure modes as the central obstacle to spintronic inference:
 *
 *  - stuck-at cells: the wall is pinned at a track end, so the cell reads
 *    G_min (fully AP) or G_max (fully P) regardless of programming. Soft
 *    stuck walls sit in a shallow pinning site and can be freed by pulse
 *    escalation during write-verify; hard ones (physical defects) cannot.
 *  - pinning-state drift: notch geometry variation biases the wall a few
 *    discrete levels away from the addressed state on every open-loop
 *    write. Correctable in closed loop.
 *  - retention decay: thermal activation relaxes the wall toward the
 *    demagnetized track middle over time; conductances decay toward
 *    G_mid with a per-cell time constant.
 *  - line opens: a broken bit-line or source-line disconnects a whole
 *    row / column (cells read zero conductance, the column sources no
 *    current). Only spare-column repair helps.
 *
 * A FaultModel samples these into an explicit per-crossbar FaultMap.
 * Sampling is counter-based: every cell derives its own stream from
 * (seed, row, col), so maps are reproducible independent of evaluation
 * order and *nested* across fault rates -- the faults present at rate r1
 * are a subset of those at r2 > r1 for the same seed, which makes
 * accuracy-vs-rate sweeps monotone in damage rather than resampled.
 */

#ifndef NEBULA_RELIABILITY_FAULT_MODEL_HPP
#define NEBULA_RELIABILITY_FAULT_MODEL_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace nebula {

/** What is wrong with one cell. */
enum class FaultKind : uint8_t
{
    None = 0,
    StuckLow,  //!< reads G_min (fully anti-parallel) regardless of writes
    StuckHigh, //!< reads G_max (fully parallel) regardless of writes
    Drift,     //!< open-loop writes land a few levels off target
    Decay,     //!< conductance relaxed toward G_mid since programming
};

/** Per-cell fault record. */
struct CellFault
{
    FaultKind kind = FaultKind::None;
    int8_t drift = 0;    //!< signed level offset (Drift)
    float decay = 1.0f;  //!< remaining swing fraction in [0, 1] (Decay)
    bool hard = false;   //!< stuck wall that pulse escalation cannot free

    bool faulty() const { return kind != FaultKind::None; }
    bool stuck() const
    {
        return kind == FaultKind::StuckLow || kind == FaultKind::StuckHigh;
    }
};

/**
 * Explicit fault state of one physical crossbar array: a cell-fault
 * matrix plus open-row/open-column flags. Geometry covers every
 * *physical* data column (spares included); the shared reference column
 * is modelled fault-free (it is replicated on real arrays).
 */
class FaultMap
{
  public:
    FaultMap() = default;
    FaultMap(int rows, int cols);

    bool empty() const { return rows_ == 0; }
    int rows() const { return rows_; }
    int cols() const { return cols_; }

    const CellFault &cell(int row, int col) const;
    CellFault &cell(int row, int col);

    void setRowOpen(int row);
    void setColOpen(int col);
    bool rowOpen(int row) const;
    bool colOpen(int col) const;

    /** Cells carrying any fault (opens not included). */
    int cellFaultCount() const;

    /** Faulty cells in one column (an open column counts every row). */
    int columnFaultCount(int col) const;

    /**
     * Defects in one column that programming cannot correct: hard stuck
     * cells, open rows/columns and -- when closed-loop write-verify is
     * unavailable -- soft stuck and drift cells too. This is the score
     * spare-column repair ranks columns by.
     */
    int columnDefectCount(int col, bool write_verify) const;

  private:
    int rows_ = 0, cols_ = 0;
    std::vector<CellFault> cells_;
    std::vector<uint8_t> rowOpen_, colOpen_;
};

/**
 * Base of the fault-model hierarchy. A model contributes two things:
 * discrete faults sampled into a FaultMap (sampleInto) and a
 * multiplicative programming-noise factor applied per write pulse
 * (programFactor). Most models implement only one of the two; the
 * Gaussian variability model of the paper's Sec. IV-D study is the
 * programFactor-only special case.
 */
class FaultModel
{
  public:
    virtual ~FaultModel() = default;

    /**
     * Overlay this model's faults onto @p map. Deterministic in
     * (@p seed, geometry); implementations must derive per-cell streams
     * with cellStream() so maps nest across rates (see file comment).
     */
    virtual void sampleInto(FaultMap &map, uint64_t seed) const;

    /**
     * Multiplicative conductance factor for one program pulse
     * (1.0 = ideal write). Draws from @p rng.
     */
    virtual double programFactor(Rng &rng) const;

    virtual std::unique_ptr<FaultModel> clone() const = 0;

    /** Short human-readable summary ("stuck-at 1.0%"). */
    virtual std::string describe() const = 0;

  protected:
    /** Decorrelated per-cell stream for counter-based sampling.
     *  @p salt separates fault classes; row == -1 addresses whole-column
     *  draws and col == -1 whole-row draws. */
    static Rng cellStream(uint64_t seed, uint64_t salt, int row, int col);
};

/** Stuck-at-G_min / stuck-at-G_max cells. */
class StuckAtFaultModel : public FaultModel
{
  public:
    /**
     * @param rate          Per-cell stuck probability.
     * @param high_fraction Fraction stuck at G_max (rest at G_min).
     * @param hard_fraction Fraction whose wall cannot be freed by
     *                      write-verify pulse escalation.
     */
    explicit StuckAtFaultModel(double rate, double high_fraction = 0.5,
                               double hard_fraction = 0.25);

    void sampleInto(FaultMap &map, uint64_t seed) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;

    double rate() const { return rate_; }

  private:
    double rate_, highFraction_, hardFraction_;
};

/** Discrete pinning-state drift: open-loop writes land +-k levels off. */
class PinningDriftFaultModel : public FaultModel
{
  public:
    /** @param max_drift Largest |level offset| a drifting cell shows. */
    explicit PinningDriftFaultModel(double rate, int max_drift = 2);

    void sampleInto(FaultMap &map, uint64_t seed) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;

  private:
    double rate_;
    int maxDrift_;
};

/**
 * Time-dependent retention decay: every cell's conductance relaxes
 * toward G_mid as exp(-t / tau_cell), tau_cell log-normally spread
 * around a nominal retention constant. Cells whose remaining swing
 * drops below ~1 level step are recorded as Decay faults.
 */
class RetentionDecayFaultModel : public FaultModel
{
  public:
    /**
     * @param elapsed  Time since programming (s).
     * @param tau      Nominal retention time constant (s).
     * @param sigma    Log-domain spread of the per-cell constant.
     */
    RetentionDecayFaultModel(double elapsed, double tau,
                             double sigma = 0.5);

    void sampleInto(FaultMap &map, uint64_t seed) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;

  private:
    double elapsed_, tau_, sigma_;
};

/** Whole row / column opens (broken bit- or source-line). */
class LineOpenFaultModel : public FaultModel
{
  public:
    LineOpenFaultModel(double row_rate, double col_rate);

    void sampleInto(FaultMap &map, uint64_t seed) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;

  private:
    double rowRate_, colRate_;
};

/**
 * The paper's Sec. IV-D Gaussian device variability as a FaultModel:
 * no discrete faults, just a truncated N(1, sigma) multiplicative
 * factor per write. VariabilityModel is a thin wrapper over this class
 * so the crossbar and the fault campaigns share one injection path.
 */
class GaussianVariabilityModel : public FaultModel
{
  public:
    explicit GaussianVariabilityModel(double sigma);

    double programFactor(Rng &rng) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;

    double sigma() const { return sigma_; }

  private:
    double sigma_;
};

/** Composition: overlays every member's faults, multiplies factors. */
class CompositeFaultModel : public FaultModel
{
  public:
    CompositeFaultModel() = default;
    CompositeFaultModel(const CompositeFaultModel &other);

    void add(std::unique_ptr<FaultModel> model);

    void sampleInto(FaultMap &map, uint64_t seed) const override;
    double programFactor(Rng &rng) const override;
    std::unique_ptr<FaultModel> clone() const override;
    std::string describe() const override;

  private:
    std::vector<std::unique_ptr<FaultModel>> models_;
};

/** SplitMix64-style seed derivation shared by fault sampling sites. */
uint64_t deriveFaultSeed(uint64_t seed, uint64_t index);

} // namespace nebula

#endif // NEBULA_RELIABILITY_FAULT_MODEL_HPP
