#include "reliability/health.hpp"

#include <algorithm>
#include <cmath>
#include <exception>
#include <limits>
#include <string>
#include <utility>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace nebula {

namespace {

/** health.state gauge value for one slot. */
void
publishState(int slot, ReplicaHealth state)
{
    obs::MetricsRegistry::global()
        .gauge("health.state", {{"slot", std::to_string(slot)}})
        .set(static_cast<double>(static_cast<int>(state)));
}

} // namespace

const char *
toString(ReplicaHealth health)
{
    switch (health) {
    case ReplicaHealth::Healthy: return "healthy";
    case ReplicaHealth::Degraded: return "degraded";
    case ReplicaHealth::Repaired: return "repaired";
    case ReplicaHealth::Tuned: return "tuned";
    case ReplicaHealth::Demoted: return "demoted";
    }
    return "unknown";
}

HealthMonitor::HealthMonitor(HealthConfig config,
                             std::vector<Tensor> canaries)
    : config_(config), canaries_(std::move(canaries))
{
    NEBULA_ASSERT(config_.probeEvery > 0, "probeEvery must be positive");
    NEBULA_ASSERT(!canaries_.empty(), "health monitor needs canaries");
}

HealthMonitor::~HealthMonitor() = default;

void
HealthMonitor::setFallback(ReplicaFactory fallback)
{
    fallback_ = std::move(fallback);
}

InferenceRequest
HealthMonitor::canaryRequest(size_t index) const
{
    InferenceRequest request;
    request.id = static_cast<uint64_t>(index);
    request.image = canaries_[index];
    request.timesteps = timesteps_;
    request.seed = deriveRequestSeed(config_.canarySeedSalt,
                                     static_cast<uint64_t>(index));
    return request;
}

void
HealthMonitor::captureExpected(ChipReplica &pristine, int default_timesteps)
{
    timesteps_ = config_.timesteps > 0 ? config_.timesteps
                                       : default_timesteps;
    expected_.clear();
    expected_.reserve(canaries_.size());
    for (size_t i = 0; i < canaries_.size(); ++i) {
        const InferenceResult result = pristine.run(canaryRequest(i));
        expected_.push_back(result.logits);
    }
    NEBULA_DEBUG("health", "captured ", expected_.size(),
                 " canary expectation(s), T=", timesteps_);
}

void
HealthMonitor::resizeSlots(int slots)
{
    NEBULA_ASSERT(slots >= 1, "need at least one health slot");
    slots_.clear();
    for (int i = 0; i < slots; ++i)
        slots_.push_back(std::make_unique<Slot>());
}

double
HealthMonitor::measureDeviation(ChipReplica &replica) const
{
    double worst = 0.0;
    for (size_t i = 0; i < canaries_.size(); ++i) {
        const InferenceResult result = replica.run(canaryRequest(i));
        const Tensor &want = expected_[i];
        if (result.logits.size() != want.size())
            return std::numeric_limits<double>::infinity();
        for (long long k = 0; k < want.size(); ++k)
            worst = std::max(
                worst, std::abs(static_cast<double>(result.logits[k]) -
                                static_cast<double>(want[k])));
    }
    return worst;
}

void
HealthMonitor::afterRequest(int slot, std::unique_ptr<ChipReplica> &replica)
{
    if (!config_.enabled || expected_.empty())
        return;
    NEBULA_ASSERT(slot >= 0 && static_cast<size_t>(slot) < slots_.size(),
                  "health slot out of range");
    Slot &s = *slots_[static_cast<size_t>(slot)];
    const auto state = static_cast<ReplicaHealth>(s.state.load());
    if (state == ReplicaHealth::Demoted)
        return; // the functional fallback is not canary-comparable
    if (state == ReplicaHealth::Tuned)
        return; // tuned logits never match pristine canaries again
    if (++s.served % static_cast<uint64_t>(config_.probeEvery) != 0)
        return;
    probeNow(slot, replica);
}

ReplicaHealth
HealthMonitor::probeNow(int slot, std::unique_ptr<ChipReplica> &replica)
{
    NEBULA_ASSERT(slot >= 0 && static_cast<size_t>(slot) < slots_.size(),
                  "health slot out of range");
    NEBULA_ASSERT(!expected_.empty(),
                  "probe before captureExpected()");
    Slot &s = *slots_[static_cast<size_t>(slot)];

    // Settled slots are terminal for probing, exactly as in
    // afterRequest: a Demoted slot serves the functional fallback
    // (whose logits never match the pristine canaries -- probing it
    // would "re-demote" an already-demoted slot) and a Tuned slot's
    // logits are permanently offset from the expectations. Escalated
    // probes (ABFT violations) may race a request that was already in
    // flight when the slot settled; they land here and must be no-ops.
    {
        const auto settled = static_cast<ReplicaHealth>(s.state.load());
        if (settled == ReplicaHealth::Demoted ||
            settled == ReplicaHealth::Tuned)
            return settled;
    }

    auto &metrics = obs::MetricsRegistry::global();

    obs::TraceSpan probe_span("health", "health.probe", true,
                              /*sampled_root=*/true);
    probe_span.arg("slot", static_cast<double>(slot));
    double deviation = measureDeviation(*replica);
    probe_span.arg("deviation", deviation);
    probes_.fetch_add(1);
    metrics.counter("health.probe").inc();
    s.lastDeviation.store(deviation);

    if (deviation <= config_.tolerance) {
        // A Repaired slot stays Repaired so operators can see history.
        if (static_cast<ReplicaHealth>(s.state.load()) ==
            ReplicaHealth::Degraded) {
            s.state.store(static_cast<int>(ReplicaHealth::Healthy));
            publishState(slot, ReplicaHealth::Healthy);
        }
        return static_cast<ReplicaHealth>(s.state.load());
    }

    degradations_.fetch_add(1);
    metrics.counter("health.degraded").inc();
    s.state.store(static_cast<int>(ReplicaHealth::Degraded));
    publishState(slot, ReplicaHealth::Degraded);
    NEBULA_DEBUG("health", "slot ", slot, " degraded: deviation ",
                 deviation, " > tolerance ", config_.tolerance);

    for (int attempt = 0; attempt < config_.maxRepairAttempts; ++attempt) {
        obs::TraceSpan repair_span("health", "health.repair", true,
                                   /*sampled_root=*/true);
        repair_span.arg("slot", static_cast<double>(slot));
        repair_span.arg("attempt", static_cast<double>(attempt));
        metrics.counter("health.repair").inc();
        if (!replica->reprogram(config_.repairWith))
            break; // backend has no reprogrammable chip
        deviation = measureDeviation(*replica);
        repair_span.arg("deviation", deviation);
        s.lastDeviation.store(deviation);
        if (deviation <= config_.tolerance) {
            repairs_.fetch_add(1);
            metrics.counter("health.repair.success").inc();
            s.state.store(static_cast<int>(ReplicaHealth::Repaired));
            publishState(slot, ReplicaHealth::Repaired);
            NEBULA_DEBUG("health", "slot ", slot,
                         " repaired in-place (deviation ", deviation, ")");
            return ReplicaHealth::Repaired;
        }
    }

    // Escalation: repair could not restore the canaries, so try to
    // *learn around* the damage before giving the slot up -- in-situ
    // fine-tuning on the faulted chip (learning/insitu). Tuned logits
    // are permanently offset from the pristine expectations, so
    // acceptance is canary argmax agreement, not logit deviation.
    const HealthConfig::FineTuneEscalationConfig &ft = config_.fineTune;
    if (ft.enabled && !ft.images.empty()) {
        NebulaChip *chip = replica->tunableChip();
        Network *net = replica->tunableNetwork();
        if (chip && net) {
            obs::TraceSpan tune_span("health", "health.finetune", true,
                                     /*sampled_root=*/true);
            tune_span.arg("slot", static_cast<double>(slot));
            metrics.counter("health.finetune").inc();
            try {
                InsituTuner tuner(*chip, *net, ft.tuning);
                const InsituResult tuned =
                    tuner.tune(ft.images, ft.labels);
                metrics.counter("health.finetune.pulses")
                    .inc(static_cast<double>(tuned.updates.pulses));
                metrics.counter("health.finetune.energy_j")
                    .inc(tuned.updates.updateEnergy);
                const double agreement = canaryAgreement(*replica);
                tune_span.arg("agreement", agreement);
                tune_span.arg("final_accuracy", tuned.finalAccuracy);
                if (agreement >= ft.passRatio) {
                    fineTunes_.fetch_add(1);
                    metrics.counter("health.finetune.success").inc();
                    s.state.store(static_cast<int>(ReplicaHealth::Tuned));
                    publishState(slot, ReplicaHealth::Tuned);
                    NEBULA_INFORM("health: slot ", slot,
                                  " fine-tuned in place (agreement ",
                                  agreement, ", accuracy ",
                                  tuned.finalAccuracy, ")");
                    return ReplicaHealth::Tuned;
                }
                NEBULA_DEBUG("health", "slot ", slot,
                             " fine-tune below pass ratio: ", agreement,
                             " < ", ft.passRatio);
            } catch (const std::exception &e) {
                // A faulted tuning pass must not take the ladder down
                // with it; fall through to demotion.
                metrics.counter("health.finetune.fault").inc();
                NEBULA_INFORM("health: slot ", slot,
                              " fine-tune faulted: ", e.what());
            }
        }
    }

    if (fallback_) {
        replica = fallback_(slot);
        NEBULA_ASSERT(replica, "fallback factory returned null replica");
        demotions_.fetch_add(1);
        metrics.counter("health.demote").inc();
        s.state.store(static_cast<int>(ReplicaHealth::Demoted));
        publishState(slot, ReplicaHealth::Demoted);
        NEBULA_INFORM("health: slot ", slot,
                      " demoted to functional backend after failed repair");
        return ReplicaHealth::Demoted;
    }
    return ReplicaHealth::Degraded;
}

double
HealthMonitor::canaryAgreement(ChipReplica &replica) const
{
    size_t agree = 0;
    for (size_t i = 0; i < canaries_.size(); ++i) {
        const InferenceResult result = replica.run(canaryRequest(i));
        const Tensor &want = expected_[i];
        if (result.logits.size() != want.size())
            continue;
        long long got_arg = 0, want_arg = 0;
        for (long long k = 1; k < want.size(); ++k) {
            if (result.logits[k] > result.logits[got_arg])
                got_arg = k;
            if (want[k] > want[want_arg])
                want_arg = k;
        }
        agree += got_arg == want_arg;
    }
    return canaries_.empty()
               ? 0.0
               : static_cast<double>(agree) / canaries_.size();
}

ReplicaHealth
HealthMonitor::health(int slot) const
{
    NEBULA_ASSERT(slot >= 0 && static_cast<size_t>(slot) < slots_.size(),
                  "health slot out of range");
    return static_cast<ReplicaHealth>(
        slots_[static_cast<size_t>(slot)]->state.load());
}

double
HealthMonitor::lastDeviation(int slot) const
{
    NEBULA_ASSERT(slot >= 0 && static_cast<size_t>(slot) < slots_.size(),
                  "health slot out of range");
    return slots_[static_cast<size_t>(slot)]->lastDeviation.load();
}

} // namespace nebula
