/**
 * @file
 * Closed-loop crossbar health management for the serving runtime.
 *
 * DW-MTJ cells drift after programming -- retention decay relaxes the
 * wall toward the demagnetized track middle, pinning sites capture it a
 * few levels off target -- so a chip that was programmed correctly can
 * start serving wrong logits hours later without any fault being
 * *reported*. The HealthMonitor closes the loop the reliability
 * literature (Cui et al., arXiv 2405.14851) calls for and the paper's
 * periodic re-programming assumption (Sengupta et al., arXiv 1510.00459)
 * leaves offline:
 *
 *   1. Probe: every probeEvery requests a worker serves, it runs a set
 *      of canary inputs (golden vectors captured from a pristine
 *      replica at engine start) through its replica and compares the
 *      logits against the expected ones.
 *   2. Repair: when the worst absolute logit deviation exceeds the
 *      tolerance, the replica is marked Degraded and re-programmed in
 *      place under HealthConfig::repairWith -- typically write-verify +
 *      spare-column repair with the decay cleared, modelling a fresh
 *      programming pass whose walls have not yet relaxed.
 *   3. Fine-tune: if re-programming cannot restore the canaries (hard
 *      faults the repair flow cannot fix), an optional in-situ
 *      fine-tuning escalation runs chip-in-the-loop supervised tuning
 *      (learning/insitu) on a labelled calibration set. A tuned replica
 *      no longer matches the pristine logits bit-for-bit, so acceptance
 *      is canary *argmax agreement* >= passRatio; accepted slots move
 *      to Tuned and are not deviation-probed again.
 *   4. Demote: if repair and fine-tuning both fail, the replica is
 *      swapped for a functional (non-chip) backend built by the
 *      fallback factory -- graceful degradation instead of silent
 *      wrong answers. Demoted slots are not probed again.
 *
 * Threading: each slot is owned by exactly one worker thread (the
 * worker that serves that replica); afterRequest()/probeNow() must only
 * be called from that thread. Cross-thread reads (health(), counters)
 * go through atomics. Expected logits are captured before the worker
 * pool starts and immutable afterwards.
 */

#ifndef NEBULA_RELIABILITY_HEALTH_HPP
#define NEBULA_RELIABILITY_HEALTH_HPP

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "learning/insitu.hpp"
#include "nn/tensor.hpp"
#include "reliability/mitigation.hpp"
#include "runtime/replica.hpp"

namespace nebula {

/** Lifecycle state of one serving replica. */
enum class ReplicaHealth : int
{
    Healthy = 0,  //!< all probes within tolerance so far
    Degraded, //!< probe failed; repair unavailable or not yet successful
    Repaired, //!< probe failed, in-place re-programming restored it
    Tuned,    //!< repair failed, in-situ fine-tuning recovered accuracy
    Demoted,  //!< repair failed; serving from the functional fallback
};

/** Stable lower-case name ("healthy", "degraded", ...). */
const char *toString(ReplicaHealth health);

/** Knobs of the closed-loop health monitor. */
struct HealthConfig
{
    /** Master switch (an attached-but-disabled monitor does nothing). */
    bool enabled = true;

    /** Probe a replica every N requests it serves. */
    int probeEvery = 64;

    /** Max acceptable |logit - expected| across canaries. */
    double tolerance = 1e-6;

    /** In-place re-programming attempts before demotion. */
    int maxRepairAttempts = 1;

    /**
     * Reliability scenario for the repair pass. Reprogramming resets
     * time-dependent decay by construction (the walls are re-written),
     * so a typical repair config carries the array's *permanent* fault
     * model (stuck cells, opens) plus write-verify and spare-column
     * repair enabled -- not the decay ramp that triggered the probe.
     */
    ReliabilityConfig repairWith;

    /** Seed salt for the canary encoder seeds (SNN/hybrid canaries). */
    uint64_t canarySeedSalt = 0x6865616c7468ull; // "health"

    /** Timesteps for SNN/hybrid canaries (0: engine default). */
    int timesteps = 0;

    /**
     * In-situ fine-tuning escalation, tried after write-verify repair
     * fails and before demotion (only on replicas exposing a tunable
     * chip). The tuned replica's logits are permanently offset from the
     * pristine canaries, so acceptance switches from logit deviation to
     * canary argmax agreement.
     */
    struct FineTuneEscalationConfig
    {
        bool enabled = false;

        /** Tuner hyperparameters (epochs, batch, lr, write flow). */
        InsituConfig tuning;

        /** Labelled calibration set the tuner descends on. */
        std::vector<Tensor> images;
        std::vector<int> labels;

        /**
         * Accept the tuned replica when at least this fraction of
         * canaries agree with the pristine argmax.
         */
        double passRatio = 0.75;
    };
    FineTuneEscalationConfig fineTune;
};

/** Closed-loop canary prober / repairer / demoter. */
class HealthMonitor
{
  public:
    /** @param canaries Canary input images, run at every probe. */
    HealthMonitor(HealthConfig config, std::vector<Tensor> canaries);
    ~HealthMonitor();

    HealthMonitor(const HealthMonitor &) = delete;
    HealthMonitor &operator=(const HealthMonitor &) = delete;

    /**
     * Fallback factory for demotion (typically
     * makeFunctionalAnnReplicaFactory / ...Snn...). Null: demotion is
     * skipped and an irreparable replica stays Degraded.
     */
    void setFallback(ReplicaFactory fallback);

    /**
     * Record the expected canary logits by running the canaries through
     * @p pristine (a freshly programmed replica). Called by the engine
     * before its workers start; @p default_timesteps fills
     * HealthConfig::timesteps == 0.
     */
    void captureExpected(ChipReplica &pristine, int default_timesteps);

    bool hasExpected() const { return !expected_.empty(); }

    /**
     * Size the per-replica slot table. Must be called before any
     * afterRequest()/probeNow() and never while workers run.
     */
    void resizeSlots(int slots);

    /**
     * Worker-thread hook, called after each successfully served
     * request. Every probeEvery calls it probes @p replica and walks
     * the repair/demote ladder; may replace @p replica (demotion).
     */
    void afterRequest(int slot, std::unique_ptr<ChipReplica> &replica);

    /** Probe @p replica now, unconditionally (same ladder). */
    ReplicaHealth probeNow(int slot, std::unique_ptr<ChipReplica> &replica);

    /** Number of per-replica slots sized by resizeSlots (any thread). */
    int slotCount() const { return static_cast<int>(slots_.size()); }

    /** Current state of one slot (any thread). */
    ReplicaHealth health(int slot) const;

    /** Worst canary deviation seen at the slot's last probe. */
    double lastDeviation(int slot) const;

    // -- monitor-wide counters (any thread) -----------------------------
    long long probes() const { return probes_.load(); }
    long long degradations() const { return degradations_.load(); }
    long long repairs() const { return repairs_.load(); }
    long long fineTunes() const { return fineTunes_.load(); }
    long long demotions() const { return demotions_.load(); }

    const HealthConfig &config() const { return config_; }

  private:
    struct Slot
    {
        std::atomic<int> state{static_cast<int>(ReplicaHealth::Healthy)};
        std::atomic<double> lastDeviation{0.0};
        uint64_t served = 0; //!< owner-worker-local request counter
    };

    /**
     * Run every canary through @p replica; return the worst absolute
     * logit deviation from the expected vectors.
     */
    double measureDeviation(ChipReplica &replica) const;

    /** Canary request for canary @p index (fixed seed/timesteps). */
    InferenceRequest canaryRequest(size_t index) const;

    /**
     * Fraction of canaries whose argmax matches the pristine argmax --
     * the acceptance criterion after fine-tuning, when exact logit
     * comparison is no longer meaningful.
     */
    double canaryAgreement(ChipReplica &replica) const;

    HealthConfig config_;
    std::vector<Tensor> canaries_;
    std::vector<Tensor> expected_; //!< immutable once workers run
    int timesteps_ = 0;            //!< resolved canary timestep count
    ReplicaFactory fallback_;
    std::vector<std::unique_ptr<Slot>> slots_;

    std::atomic<long long> probes_{0};
    std::atomic<long long> degradations_{0};
    std::atomic<long long> repairs_{0};
    std::atomic<long long> fineTunes_{0};
    std::atomic<long long> demotions_{0};
};

} // namespace nebula

#endif // NEBULA_RELIABILITY_HEALTH_HPP
