#include "reliability/mitigation.hpp"

#include "common/stats.hpp"

namespace nebula {

void
ProgramReport::merge(const ProgramReport &other)
{
    cells += other.cells;
    pulses += other.pulses;
    failedCells += other.failedCells;
    repairedColumns += other.repairedColumns;
    irreparableColumns += other.irreparableColumns;
    programEnergy += other.programEnergy;
}

void
ProgramReport::addTo(StatGroup &stats) const
{
    stats.scalar("reliability.cells_programmed").add(cells);
    stats.scalar("reliability.program_pulses").add(pulses);
    stats.scalar("reliability.failed_cells").add(failedCells);
    stats.scalar("reliability.repaired_columns").add(repairedColumns);
    stats.scalar("reliability.irreparable_columns").add(irreparableColumns);
    stats.scalar("reliability.program_energy_j").add(programEnergy);
}

} // namespace nebula
