#include "reliability/mitigation.hpp"

#include "common/stats.hpp"

namespace nebula {

void
ProgramReport::merge(const ProgramReport &other)
{
    cells += other.cells;
    pulses += other.pulses;
    failedCells += other.failedCells;
    repairedColumns += other.repairedColumns;
    irreparableColumns += other.irreparableColumns;
    programEnergy += other.programEnergy;
}

void
ProgramReport::addTo(StatGroup &stats) const
{
    stats.scalar("reliability.cells_programmed").add(cells);
    stats.scalar("reliability.program_pulses").add(pulses);
    stats.scalar("reliability.failed_cells").add(failedCells);
    stats.scalar("reliability.repaired_columns").add(repairedColumns);
    stats.scalar("reliability.irreparable_columns").add(irreparableColumns);
    stats.scalar("reliability.program_energy_j").add(programEnergy);
}

void
UpdateReport::merge(const UpdateReport &other)
{
    cells += other.cells;
    pulses += other.pulses;
    levelSteps += other.levelSteps;
    blockedCells += other.blockedCells;
    clampedCells += other.clampedCells;
    failedCells += other.failedCells;
    updateEnergy += other.updateEnergy;
}

void
UpdateReport::addTo(StatGroup &stats) const
{
    stats.scalar("learning.cells_updated").add(cells);
    stats.scalar("learning.update_pulses").add(pulses);
    stats.scalar("learning.level_steps").add(levelSteps);
    stats.scalar("learning.blocked_cells").add(blockedCells);
    stats.scalar("learning.clamped_cells").add(clampedCells);
    stats.scalar("learning.update_failed_cells").add(failedCells);
    stats.scalar("learning.update_energy_j").add(updateEnergy);
}

} // namespace nebula
