/**
 * @file
 * Mitigation knobs and bookkeeping for programming faulty crossbars:
 * closed-loop write-verify, spare-column repair, and the report both
 * produce. CrossbarArray::program consumes these; NebulaChip carries a
 * ReliabilityConfig so whole networks can be programmed under a fault
 * model with mitigations on or off.
 */

#ifndef NEBULA_RELIABILITY_MITIGATION_HPP
#define NEBULA_RELIABILITY_MITIGATION_HPP

#include <cstdint>
#include <memory>

#include "reliability/fault_model.hpp"

namespace nebula {

class StatGroup;

/**
 * Closed-loop write-verify programming: program -> sense -> trim until
 * the cell reads within tolerance or the pulse budget is spent. The
 * first pulse is a coarse write; trim pulse k moves the wall with
 * 1/k-scaled residual noise (shorter pulses displace the wall less, so
 * control gets finer as the loop iterates). Retry pulses also give a
 * softly pinned stuck wall a chance to depin (thermally assisted
 * escape); hard stuck cells and opens never converge and are reported.
 */
struct WriteVerifyConfig
{
    bool enabled = false;

    /** Accept band around the target, in units of one level step. */
    double toleranceLevels = 0.5;

    /** Pulse budget per cell (first coarse pulse included). */
    int maxPulses = 16;

    /** Chance per retry pulse that a soft stuck wall depins. */
    double depinProbability = 0.35;
};

/**
 * Spare-column repair: logical columns whose uncorrectable-defect count
 * exceeds the threshold are remapped onto the healthiest available
 * physical spare column (CrossbarParams::spareCols of them per array).
 * A spare is only taken when it is strictly healthier than the victim.
 */
struct RepairConfig
{
    bool enabled = false;

    /** Repair a column when its defect count exceeds this. */
    int faultThreshold = 0;
};

/** Mitigation selection for one programming pass. */
struct ProgrammingConfig
{
    WriteVerifyConfig writeVerify;
    RepairConfig repair;
};

/** What one programming pass did (accumulates across crossbars). */
struct ProgramReport
{
    long long cells = 0;         //!< data cells programmed
    long long pulses = 0;        //!< program pulses issued
    long long failedCells = 0;   //!< out of tolerance after the budget
    long long repairedColumns = 0;
    long long irreparableColumns = 0; //!< over threshold, no better spare
    double programEnergy = 0.0;  //!< J spent on program pulses

    /** Mean pulses per programmed cell. */
    double pulsesPerCell() const
    {
        return cells ? static_cast<double>(pulses) / cells : 0.0;
    }

    /** Accumulate another crossbar's report. */
    void merge(const ProgramReport &other);

    /** Record the totals as "reliability.*" scalars. */
    void addTo(StatGroup &stats) const;
};

/**
 * One incremental cell update: move logical cell (row, col) by a signed
 * number of conductance levels. Columns are logical -- the array applies
 * its spare-column remap, so learning addresses the same view inference
 * reads.
 */
struct CellUpdate
{
    int row = 0;
    int col = 0;   //!< logical column
    int delta = 0; //!< signed level steps (0 is skipped)
};

/**
 * What one incremental update pass did (CrossbarArray::updateCells).
 * The same role ProgramReport plays for whole-array programming, at
 * learning-rule granularity: every level step is a programming pulse
 * with the full pulse energy, so the learning cost bill is auditable
 * the same way swap-ins are (serving.swap.* precedent).
 */
struct UpdateReport
{
    long long cells = 0;        //!< nonzero-delta updates attempted
    long long pulses = 0;       //!< pulses issued (steps + trims + blocked)
    long long levelSteps = 0;   //!< net level steps commanded
    long long blockedCells = 0; //!< stuck/open cells a pulse could not move
    long long clampedCells = 0; //!< targets clipped at the level range
    long long failedCells = 0;  //!< write-verify out of tolerance
    double updateEnergy = 0.0;  //!< J spent on update pulses

    /** Mean pulses per updated cell. */
    double pulsesPerCell() const
    {
        return cells ? static_cast<double>(pulses) / cells : 0.0;
    }

    /** Accumulate another pass's report. */
    void merge(const UpdateReport &other);

    /** Record the totals as "learning.*" scalars. */
    void addTo(StatGroup &stats) const;
};

/**
 * Chip-level reliability scenario: which faults afflict the arrays and
 * which mitigations the programming flow uses. Attached to a NebulaChip
 * before programAnn/programSnn; every crossbar then samples its own
 * FaultMap from faultSeed (decorrelated per array, identical across
 * identically-programmed replicas).
 */
struct ReliabilityConfig
{
    /** Device-fault model (null: fault-free arrays). */
    std::shared_ptr<const FaultModel> faults;

    /** Root seed for the per-crossbar fault maps. */
    uint64_t faultSeed = 909;

    /** Physical spare columns per crossbar array. */
    int spareCols = 0;

    WriteVerifyConfig writeVerify;
    RepairConfig repair;

    bool active() const
    {
        return faults != nullptr || writeVerify.enabled || repair.enabled ||
               spareCols > 0;
    }
};

} // namespace nebula

#endif // NEBULA_RELIABILITY_MITIGATION_HPP
