/**
 * @file
 * Seeded exponential backoff with jitter for retrying transient
 * failures (ReplicaFault outcomes from the inference engine).
 *
 * The delay sequence is base * multiplier^k capped at capNs, with a
 * symmetric uniform jitter fraction drawn from a private Rng -- so two
 * backoffs built from the same seed produce bit-identical delay
 * sequences (testable, reproducible under load replay), while distinct
 * seeds decorrelate retry storms across callers. The helper owns no
 * heap state: construction and every nextDelayNs() step are
 * allocation-free, so it can live on the stack of a per-request retry
 * loop without touching the allocator.
 */

#ifndef NEBULA_RUNTIME_BACKOFF_HPP
#define NEBULA_RUNTIME_BACKOFF_HPP

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "common/rng.hpp"

namespace nebula {

/** Shape of one exponential-backoff schedule. */
struct BackoffConfig
{
    uint64_t initialNs = 1'000'000;  //!< first delay (1 ms)
    uint64_t capNs = 100'000'000;    //!< un-jittered ceiling (100 ms)
    double multiplier = 2.0;         //!< growth per attempt (>= 1)
    double jitter = 0.2;             //!< symmetric fraction in [0, 1)
};

/**
 * The delay generator. Deterministic in (config, seed); zero
 * allocations per step.
 */
class ExponentialBackoff
{
  public:
    explicit ExponentialBackoff(const BackoffConfig &config = {},
                                uint64_t seed = 0x9e3779b97f4a7c15ull)
        : cfg_(config), rng_(seed),
          currentNs_(static_cast<double>(config.initialNs))
    {
    }

    /**
     * Delay before the next retry attempt (ns). The un-jittered base
     * grows monotonically and saturates at capNs; the returned value
     * stays within [base * (1 - jitter), base * (1 + jitter)].
     */
    uint64_t
    nextDelayNs()
    {
        const double base = currentNs_;
        currentNs_ = std::min(static_cast<double>(cfg_.capNs),
                              currentNs_ * std::max(1.0, cfg_.multiplier));
        ++attempt_;
        double delay = base;
        if (cfg_.jitter > 0.0)
            delay *= 1.0 + rng_.uniform(-cfg_.jitter, cfg_.jitter);
        return static_cast<uint64_t>(std::llround(std::max(0.0, delay)));
    }

    /** Attempts drawn so far. */
    int attempt() const { return attempt_; }

    /** Restart the schedule (the jitter stream keeps advancing). */
    void
    reset()
    {
        currentNs_ = static_cast<double>(cfg_.initialNs);
        attempt_ = 0;
    }

    const BackoffConfig &config() const { return cfg_; }

  private:
    BackoffConfig cfg_;
    Rng rng_;
    double currentNs_;
    int attempt_ = 0;
};

} // namespace nebula

#endif // NEBULA_RUNTIME_BACKOFF_HPP
