/**
 * @file
 * Configuration for the concurrent inference engine.
 */

#ifndef NEBULA_RUNTIME_CONFIG_HPP
#define NEBULA_RUNTIME_CONFIG_HPP

#include <cstddef>
#include <cstdint>

namespace nebula {

/** Knobs of the InferenceEngine worker pool. */
struct EngineConfig
{
    /**
     * Worker threads, each holding its own programmed chip replica.
     * 0 selects the deterministic inline mode: requests execute
     * synchronously on the submitting thread against a single replica,
     * in exact submission order (the bit-exact reference mode).
     */
    int numWorkers = 2;

    /** Bounded request-queue capacity (backpressure threshold). */
    size_t queueCapacity = 64;

    /** Evidence-integration steps for SNN/hybrid requests that pass 0. */
    int defaultTimesteps = 32;

    /**
     * Salt for per-request encoder-seed derivation. Requests that do
     * not carry an explicit seed get deriveRequestSeed(seedSalt, id),
     * which keeps stochastic (SNN) inference reproducible independent
     * of worker assignment and completion order.
     */
    uint64_t seedSalt = 0x9e3779b97f4a7c15ull;

    /**
     * Emit per-request trace spans (queue-depth counters, latency
     * histograms) when a TraceSession is active. Off-path cost when no
     * session is active is one relaxed atomic load per request.
     */
    bool traceRequests = true;
};

} // namespace nebula

#endif // NEBULA_RUNTIME_CONFIG_HPP
