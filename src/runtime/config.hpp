/**
 * @file
 * Configuration for the concurrent inference engine.
 */

#ifndef NEBULA_RUNTIME_CONFIG_HPP
#define NEBULA_RUNTIME_CONFIG_HPP

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace nebula {

class ChipReplica;
class HealthMonitor;

/**
 * Engine-level reaction to per-request ABFT violations (the checksum
 * verdicts NebulaConfig::abft produces). Detection itself lives on the
 * chip; this only configures what a worker does when a result comes
 * back flagged.
 */
struct AbftConfig
{
    /**
     * Re-execute a violating request once on the worker's fallback
     * replica (below) before settling its promise, so the client gets
     * a correct answer instead of a flagged-corrupt one. Deadline-aware:
     * a request whose budget has already lapsed keeps the flagged
     * original rather than burning more time. The re-run keeps the
     * request's own seed, so a stochastic (SNN) re-execution is
     * reproducible.
     */
    bool reExecute = true;

    /**
     * Factory for the per-worker fallback replica a flagged request is
     * re-run on (typically makeFunctionalAnnReplicaFactory /
     * makeFunctionalSnnReplicaFactory -- a backend with no crossbars to
     * corrupt). Built lazily on first violation, one per worker. Null:
     * violations are surfaced on the result but never re-executed.
     */
    std::function<std::unique_ptr<ChipReplica>(int)> fallback;
};

/**
 * Admission-control policy when a request arrives and the engine is
 * loaded. Shed requests resolve immediately to a typed Shed outcome --
 * the future is fulfilled, never broken -- and are counted in the
 * `runtime.shed` metric.
 */
enum class ShedPolicy : uint8_t
{
    /** Block the submitter until the queue has room (backpressure). */
    Block = 0,

    /** Never block: shed the request when the queue is full. */
    RejectWhenFull,

    /**
     * Shed a deadline-carrying request at submit when the predicted
     * queue wait -- queue depth times the running service-time EWMA,
     * divided across workers -- already exceeds its budget; block
     * otherwise. Requests without deadlines behave as Block.
     */
    DeadlineAware,
};

/**
 * Dynamic micro-batching window. A worker that dequeues a request may
 * hold it for up to maxWaitUs while draining further compatible
 * requests from the queue, then flushes the whole batch through one
 * layer-by-layer chip walk (the batched GEMM path). The window closes
 * early when maxBatch requests are gathered or when waiting any longer
 * would push a held request past its deadline -- a request is never
 * batched past its deadline by construction. maxBatch <= 1 disables
 * batching entirely (the default: solo dequeue, identical to the
 * pre-batching engine). Only replicas that support batched evaluation
 * (ANN chip replicas) coalesce; other modes keep the solo path.
 */
struct BatchingConfig
{
    /** Largest micro-batch one worker flushes at once (<=1: off). */
    int maxBatch = 1;

    /**
     * Longest a worker holds a dequeued request while waiting for more
     * (microseconds). 0 still drains whatever is already queued up to
     * maxBatch -- opportunistic batching with no added latency.
     */
    uint64_t maxWaitUs = 0;
};

/** Knobs of the InferenceEngine worker pool. */
struct EngineConfig
{
    /**
     * Worker threads, each holding its own programmed chip replica.
     * 0 selects the deterministic inline mode: requests execute
     * synchronously on the submitting thread against a single replica,
     * in exact submission order (the bit-exact reference mode).
     */
    int numWorkers = 2;

    /** Bounded request-queue capacity (backpressure threshold). */
    size_t queueCapacity = 64;

    /** Evidence-integration steps for SNN/hybrid requests that pass 0. */
    int defaultTimesteps = 32;

    /**
     * Salt for per-request encoder-seed derivation. Requests that do
     * not carry an explicit seed get deriveRequestSeed(seedSalt, id),
     * which keeps stochastic (SNN) inference reproducible independent
     * of worker assignment and completion order.
     */
    uint64_t seedSalt = 0x9e3779b97f4a7c15ull;

    /**
     * Emit per-request trace spans (queue-depth counters, latency
     * histograms) when a TraceSession is active. Off-path cost when no
     * session is active is one relaxed atomic load per request.
     */
    bool traceRequests = true;

    /**
     * Dynamic micro-batching of compatible queued requests at dequeue
     * time. Logits stay bit-identical to solo evaluation (the batched
     * crossbar kernels run the same per-window expression sequences);
     * per-request energy/trace/metrics attribution is preserved.
     */
    BatchingConfig batching;

    // -- resilience ------------------------------------------------------

    /** Admission control under load (see ShedPolicy). */
    ShedPolicy shedPolicy = ShedPolicy::Block;

    /**
     * Deadline for requests that do not carry one (ns from submit);
     * 0 = no deadline. Expired requests are shed at dequeue with a
     * Timeout outcome instead of being evaluated.
     */
    uint64_t defaultDeadlineNs = 0;

    /** Smoothing of the service-time EWMA admission control reads. */
    double serviceEwmaAlpha = 0.2;

    /**
     * Supervisor restart threshold: after this many *consecutive*
     * ReplicaFault outcomes a worker quarantines its replica and
     * receives a freshly cloned+programmed one from the engine's
     * factory. 0 disables supervision (a poisoned replica keeps
     * faulting every request it serves -- but still never hangs one).
     */
    int maxConsecutiveFaults = 3;

    /**
     * Most-recent quarantined replicas retained for inspection after
     * supervisor restarts; older ones are dropped so a permanently
     * faulting worker (which re-trips maxConsecutiveFaults forever)
     * cannot grow the engine's memory without bound. 0 retains none.
     */
    size_t quarantineCapacity = 16;

    /**
     * Optional closed-loop crossbar health monitor (reliability/health):
     * canary probes between requests, in-place re-programming repair,
     * demotion to a functional backend when repair fails. Null: off.
     */
    std::shared_ptr<HealthMonitor> health;

    /**
     * Reaction to ABFT integrity violations (chip-side detection is
     * enabled via NebulaConfig::abft on the replica factory's chip
     * config; this configures the engine's hedged re-execution).
     */
    AbftConfig abft;
};

} // namespace nebula

#endif // NEBULA_RUNTIME_CONFIG_HPP
