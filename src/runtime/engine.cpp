#include "runtime/engine.hpp"

#include <chrono>
#include <stdexcept>
#include <utility>

#include "common/logging.hpp"
#include "obs/trace.hpp"

namespace nebula {

namespace {

// Same shape as the worker-side histograms so merges stay bin-exact.
constexpr double kLatencyLoMs = 0.0;
constexpr double kLatencyHiMs = 250.0;
constexpr int kLatencyBuckets = 500;

} // namespace

InferenceEngine::InferenceEngine(EngineConfig config,
                                 const ReplicaFactory &factory)
    : config_(config), queue_(config.queueCapacity)
{
    NEBULA_ASSERT(config_.numWorkers >= 0, "negative worker count");
    NEBULA_ASSERT(factory, "null replica factory");

    if (config_.numWorkers == 0) {
        inlineReplica_ = factory(0);
        NEBULA_ASSERT(inlineReplica_, "factory returned null replica");
        NEBULA_DEBUG("runtime", "engine up in inline mode");
        return;
    }
    workers_.reserve(static_cast<size_t>(config_.numWorkers));
    for (int i = 0; i < config_.numWorkers; ++i) {
        auto replica = factory(i);
        NEBULA_ASSERT(replica, "factory returned null replica");
        workers_.push_back(std::make_unique<Worker>(
            i, std::move(replica), &queue_, [this] { noteCompleted(); },
            config_.traceRequests));
    }
    for (auto &worker : workers_)
        worker->start();
    NEBULA_DEBUG("runtime", "engine up with ", config_.numWorkers,
                 " workers, queue capacity ", config_.queueCapacity);
}

InferenceEngine::~InferenceEngine()
{
    shutdown();
}

void
InferenceEngine::finalizeRequest(InferenceRequest &request)
{
    request.id = nextId_.fetch_add(1);
    if (request.timesteps == 0)
        request.timesteps = config_.defaultTimesteps;
    if (request.seed == 0)
        request.seed = seedFor(request.id);
}

std::future<InferenceResult>
InferenceEngine::submit(const Tensor &image)
{
    InferenceRequest request;
    request.image = image;
    return submit(std::move(request));
}

std::future<InferenceResult>
InferenceEngine::submit(InferenceRequest request)
{
    if (!accepting_.load())
        throw std::runtime_error("InferenceEngine is shut down");
    finalizeRequest(request);

    if (inlineReplica_)
        return runInline(std::move(request));

    QueueItem item;
    item.request = std::move(request);
    item.enqueued = std::chrono::steady_clock::now();
    std::future<InferenceResult> future = item.promise.get_future();

    submitted_.fetch_add(1);
    if (!queue_.push(std::move(item))) {
        // Closed while we were blocked on a full queue.
        submitted_.fetch_sub(1);
        {
            std::lock_guard<std::mutex> lock(idleMutex_);
        }
        idleCv_.notify_all();
        throw std::runtime_error("InferenceEngine is shut down");
    }
    obs::recordCounter("queue.depth", static_cast<double>(queue_.size()),
                       config_.traceRequests);
    return future;
}

bool
InferenceEngine::trySubmit(const Tensor &image,
                           std::future<InferenceResult> &out)
{
    if (!accepting_.load())
        throw std::runtime_error("InferenceEngine is shut down");

    InferenceRequest request;
    request.image = image;
    if (inlineReplica_) {
        finalizeRequest(request);
        out = runInline(std::move(request));
        return true;
    }

    QueueItem item;
    item.request = std::move(request);
    item.enqueued = std::chrono::steady_clock::now();
    std::future<InferenceResult> future = item.promise.get_future();

    submitted_.fetch_add(1);
    // A refused trySubmit burns the id it drew: rolling the shared
    // counter back would race with concurrent producers.
    finalizeRequest(item.request);
    if (!queue_.tryPush(item)) {
        submitted_.fetch_sub(1);
        {
            std::lock_guard<std::mutex> lock(idleMutex_);
        }
        idleCv_.notify_all();
        return false;
    }
    out = std::move(future);
    return true;
}

std::vector<std::future<InferenceResult>>
InferenceEngine::submitBatch(const std::vector<Tensor> &images)
{
    std::vector<std::future<InferenceResult>> futures;
    futures.reserve(images.size());
    for (const Tensor &image : images)
        futures.push_back(submit(image));
    return futures;
}

std::future<InferenceResult>
InferenceEngine::runInline(InferenceRequest request)
{
    submitted_.fetch_add(1);
    std::promise<InferenceResult> promise;
    std::future<InferenceResult> future = promise.get_future();
    const auto start = std::chrono::steady_clock::now();
    obs::TraceSpan span("runtime", "request", config_.traceRequests,
                        /*sampled_root=*/true);
    span.arg("id", static_cast<double>(request.id));
    try {
        InferenceResult result = inlineReplica_->run(request);
        const auto end = std::chrono::steady_clock::now();
        result.id = request.id;
        result.workerId = -1;
        result.serviceSeconds =
            std::chrono::duration<double>(end - start).count();
        span.arg("service_ms", 1e3 * result.serviceSeconds);
        inlineStats_.scalar("requests").inc();
        inlineStats_.scalar("latency_ms").sample(1e3 *
                                                 result.serviceSeconds);
        inlineStats_.scalar("service_ms").sample(1e3 *
                                                 result.serviceSeconds);
        inlineStats_.scalar("wait_ms").sample(0.0);
        inlineStats_
            .histogram("latency_ms.hist", kLatencyLoMs, kLatencyHiMs,
                       kLatencyBuckets)
            .sample(1e3 * result.serviceSeconds);
        inlineStats_
            .histogram("service_ms.hist", kLatencyLoMs, kLatencyHiMs,
                       kLatencyBuckets)
            .sample(1e3 * result.serviceSeconds);
        inlineStats_
            .histogram("wait_ms.hist", kLatencyLoMs, kLatencyHiMs,
                       kLatencyBuckets)
            .sample(0.0);
        inlineStats_.scalar("spikes").add(
            static_cast<double>(result.spikes));
        promise.set_value(std::move(result));
    } catch (...) {
        inlineStats_.scalar("failures").inc();
        obs::recordInstant("runtime", "request.failed",
                           config_.traceRequests);
        promise.set_exception(std::current_exception());
    }
    noteCompleted();
    return future;
}

void
InferenceEngine::noteCompleted()
{
    completed_.fetch_add(1);
    {
        std::lock_guard<std::mutex> lock(idleMutex_);
    }
    idleCv_.notify_all();
}

void
InferenceEngine::waitIdle()
{
    std::unique_lock<std::mutex> lock(idleMutex_);
    idleCv_.wait(lock,
                 [&] { return completed_.load() >= submitted_.load(); });
}

void
InferenceEngine::shutdown()
{
    std::lock_guard<std::mutex> lock(shutdownMutex_);
    accepting_.store(false);
    if (joined_)
        return;
    NEBULA_DEBUG("runtime", "engine shutdown: waiting for ",
                 submitted_.load() - completed_.load(),
                 " in-flight requests");
    waitIdle();
    queue_.close();
    joinWorkers();
}

void
InferenceEngine::shutdownNow()
{
    std::lock_guard<std::mutex> lock(shutdownMutex_);
    accepting_.store(false);
    if (joined_)
        return;
    auto pending = queue_.drain();
    queue_.close();
    for (QueueItem &item : pending) {
        item.promise.set_exception(std::make_exception_ptr(
            std::runtime_error("request discarded: engine shut down")));
        noteCompleted();
    }
    waitIdle();
    joinWorkers();
}

void
InferenceEngine::joinWorkers()
{
    for (auto &worker : workers_)
        worker->join();
    joined_ = true;
}

ChipStats
InferenceEngine::chipStats()
{
    waitIdle();
    ChipStats total;
    if (inlineReplica_ && inlineReplica_->chipStats())
        total.merge(*inlineReplica_->chipStats());
    for (const auto &worker : workers_)
        if (const ChipStats *stats = worker->replica().chipStats())
            total.merge(*stats);
    return total;
}

StatGroup
InferenceEngine::runtimeStats()
{
    waitIdle();
    StatGroup group("runtime");
    if (inlineReplica_)
        group.merge(inlineStats_);
    for (const auto &worker : workers_) {
        group.merge(worker->stats());
        if (worker->stats().hasScalar("requests"))
            group
                .scalar("worker" + std::to_string(worker->id()) +
                        ".requests")
                .add(worker->stats().scalarAt("requests").sum());
    }
    group.scalar("queue.capacity").add(
        static_cast<double>(queue_.capacity()));
    group.scalar("queue.high_water").add(
        static_cast<double>(queue_.highWater()));
    group.scalar("submitted").add(static_cast<double>(submitted_.load()));
    group.scalar("completed").add(static_cast<double>(completed_.load()));
    return group;
}

} // namespace nebula
