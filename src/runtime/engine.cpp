#include "runtime/engine.hpp"

#include <algorithm>
#include <chrono>
#include <thread>
#include <utility>

#include "common/logging.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "reliability/health.hpp"

namespace nebula {

namespace {

// Same shape as the worker-side histograms so merges stay bin-exact.
constexpr double kLatencyLoMs = 0.0;
constexpr double kLatencyHiMs = 250.0;
constexpr int kLatencyBuckets = 500;

} // namespace

InferenceEngine::InferenceEngine(EngineConfig config,
                                 const ReplicaFactory &factory)
    : config_(std::move(config)), factory_(factory),
      queue_(config_.queueCapacity)
{
    NEBULA_ASSERT(config_.numWorkers >= 0, "negative worker count");
    NEBULA_ASSERT(factory_, "null replica factory");

    HealthMonitor *health = config_.health.get();
    const bool health_on = health && health->config().enabled;

    if (config_.numWorkers == 0) {
        inlineReplica_ = factory_(0);
        NEBULA_ASSERT(inlineReplica_, "factory returned null replica");
        if (health_on) {
            health->resizeSlots(1);
            if (!health->hasExpected())
                health->captureExpected(*inlineReplica_,
                                        config_.defaultTimesteps);
        }
        NEBULA_DEBUG("runtime", "engine up in inline mode");
        return;
    }

    std::vector<std::unique_ptr<ChipReplica>> replicas;
    replicas.reserve(static_cast<size_t>(config_.numWorkers));
    for (int i = 0; i < config_.numWorkers; ++i) {
        replicas.push_back(factory_(i));
        NEBULA_ASSERT(replicas.back(), "factory returned null replica");
    }
    if (health_on) {
        health->resizeSlots(config_.numWorkers);
        // Capture the golden canary logits from replica 0 while it is
        // still pristine -- replicas are programmed identically, so one
        // expectation covers every slot.
        if (!health->hasExpected())
            health->captureExpected(*replicas.front(),
                                    config_.defaultTimesteps);
    }

    WorkerHooks hooks;
    hooks.onComplete = [this](double service) { noteCompleted(service); };
    hooks.health = health_on ? health : nullptr;
    hooks.maxConsecutiveFaults = config_.maxConsecutiveFaults;
    hooks.traceRequests = config_.traceRequests;
    hooks.maxBatch = config_.batching.maxBatch;
    hooks.maxWaitUs = config_.batching.maxWaitUs;
    hooks.abftReExecute = config_.abft.reExecute;
    hooks.abftFallback = config_.abft.fallback;
    if (config_.maxConsecutiveFaults > 0) {
        hooks.superviseRestart =
            [this](int id, std::unique_ptr<ChipReplica> old) {
                {
                    // Bounded retention: a permanently bad worker
                    // re-trips the fault threshold forever, so keep
                    // only the newest quarantineCapacity replicas.
                    std::lock_guard<std::mutex> lock(quarantineMutex_);
                    quarantined_.push_back(std::move(old));
                    while (quarantined_.size() > config_.quarantineCapacity)
                        quarantined_.erase(quarantined_.begin());
                }
                restarts_.fetch_add(1);
                obs::MetricsRegistry::global()
                    .counter("runtime.worker_restart")
                    .inc();
                obs::recordInstant("runtime", "worker.restart",
                                   config_.traceRequests);
                return factory_(id);
            };
    }

    workers_.reserve(replicas.size());
    for (int i = 0; i < config_.numWorkers; ++i)
        workers_.push_back(std::make_unique<Worker>(
            i, std::move(replicas[static_cast<size_t>(i)]), &queue_,
            hooks));
    for (auto &worker : workers_)
        worker->start();
    NEBULA_DEBUG("runtime", "engine up with ", config_.numWorkers,
                 " workers, queue capacity ", config_.queueCapacity);
}

InferenceEngine::~InferenceEngine()
{
    shutdown();
}

void
InferenceEngine::finalizeRequest(InferenceRequest &request)
{
    request.id = nextId_.fetch_add(1);
    if (request.timesteps == 0)
        request.timesteps = config_.defaultTimesteps;
    if (request.seed == 0)
        request.seed = seedFor(request.id);
    if (request.deadlineNs == 0)
        request.deadlineNs = config_.defaultDeadlineNs;
}

std::future<InferenceResult>
InferenceEngine::submit(const Tensor &image)
{
    InferenceRequest request;
    request.image = image;
    return submit(std::move(request));
}

std::future<InferenceResult>
InferenceEngine::shedRequest(InferenceRequest request, const char *why)
{
    shed_.fetch_add(1);
    obs::MetricsRegistry::global().counter("runtime.shed").inc();
    obs::recordInstant("runtime", "request.shed", config_.traceRequests);
    InferenceResult result;
    result.id = request.id;
    result.error = RuntimeErrorKind::Shed;
    result.errorMessage = why;
    std::promise<InferenceResult> promise;
    promise.set_value(std::move(result));
    return promise.get_future();
}

bool
InferenceEngine::predictsDeadlineMiss(const InferenceRequest &request) const
{
    const double ewma = serviceEwmaSec_.load(std::memory_order_relaxed);
    if (ewma <= 0.0)
        return false; // no service-time evidence yet: admit
    const int workers = std::max(1, static_cast<int>(workers_.size()));
    const double predicted_wait_ns =
        1e9 * ewma * static_cast<double>(queue_.size() + 1) / workers;
    return predicted_wait_ns > static_cast<double>(request.deadlineNs);
}

std::future<InferenceResult>
InferenceEngine::submit(InferenceRequest request)
{
    if (!accepting_.load())
        throw EngineStoppedError("InferenceEngine is shut down");
    finalizeRequest(request);

    if (inlineReplica_)
        return runInline(std::move(request));

    // Admission control. Shed requests resolve immediately and are
    // never counted in submitted_/completed_ -- they were refused, not
    // accepted-then-failed.
    if (config_.shedPolicy == ShedPolicy::DeadlineAware &&
        request.deadlineNs > 0 && predictsDeadlineMiss(request))
        return shedRequest(std::move(request),
                           "predicted queue wait exceeds deadline");

    QueueItem item;
    item.request = std::move(request);
    item.enqueued = std::chrono::steady_clock::now();
    if (item.request.deadlineNs > 0) {
        item.hasDeadline = true;
        item.deadline = item.enqueued +
                        std::chrono::nanoseconds(item.request.deadlineNs);
    }
    std::future<InferenceResult> future = item.promise.get_future();

    // Count *before* the push so the quiesce invariant holds: any item
    // a worker can possibly be evaluating is already reflected in
    // submitted_, and waitIdle (completed_ >= submitted_) cannot return
    // while that worker still touches its replica or stats. Refusal
    // paths below (shed / closed) roll the increment back -- refused
    // requests were never accepted, so they stay uncounted.
    submitted_.fetch_add(1);
    if (config_.shedPolicy == ShedPolicy::RejectWhenFull) {
        if (!queue_.tryPush(item)) {
            rollbackSubmitted();
            if (queue_.closed()) {
                InferenceResult result;
                result.id = item.request.id;
                result.error = RuntimeErrorKind::EngineStopped;
                result.errorMessage = "engine shut down during admission";
                item.promise.set_value(std::move(result));
                return future;
            }
            shed_.fetch_add(1);
            obs::MetricsRegistry::global().counter("runtime.shed").inc();
            obs::recordInstant("runtime", "request.shed",
                               config_.traceRequests);
            InferenceResult result;
            result.id = item.request.id;
            result.error = RuntimeErrorKind::Shed;
            result.errorMessage = "queue full";
            item.promise.set_value(std::move(result));
            return future;
        }
    } else if (!queue_.push(std::move(item))) {
        // Closed while we were blocked on a full queue: the item came
        // back untouched only conceptually (push consumed it), but its
        // promise was moved with it -- so we cannot fulfil it here.
        // push() only fails after close(), which shutdown() performs
        // strictly after accepting_ went false, so report typed stop.
        rollbackSubmitted();
        throw EngineStoppedError("InferenceEngine shut down during submit");
    }

    obs::recordCounter("queue.depth", static_cast<double>(queue_.size()),
                       config_.traceRequests);
    return future;
}

bool
InferenceEngine::trySubmit(const Tensor &image,
                           std::future<InferenceResult> &out)
{
    if (!accepting_.load())
        throw EngineStoppedError("InferenceEngine is shut down");

    InferenceRequest request;
    request.image = image;
    finalizeRequest(request);
    if (inlineReplica_) {
        out = runInline(std::move(request));
        return true;
    }

    QueueItem item;
    item.request = std::move(request);
    item.enqueued = std::chrono::steady_clock::now();
    if (item.request.deadlineNs > 0) {
        item.hasDeadline = true;
        item.deadline = item.enqueued +
                        std::chrono::nanoseconds(item.request.deadlineNs);
    }
    std::future<InferenceResult> future = item.promise.get_future();

    // A refused trySubmit burns the id it drew: rolling the *id*
    // counter back would race with concurrent producers. submitted_ is
    // different -- it is bumped before the enqueue (quiesce invariant,
    // see submit) and rolled back on refusal, which is safe because a
    // transiently inflated submitted_ only makes waitIdle conservative.
    submitted_.fetch_add(1);
    if (!queue_.tryPush(item)) {
        rollbackSubmitted();
        return false;
    }
    out = std::move(future);
    return true;
}

std::vector<std::future<InferenceResult>>
InferenceEngine::submitBatch(const std::vector<Tensor> &images)
{
    std::vector<std::future<InferenceResult>> futures;
    futures.reserve(images.size());
    for (const Tensor &image : images)
        futures.push_back(submit(image));
    return futures;
}

std::future<InferenceResult>
InferenceEngine::runInline(InferenceRequest request)
{
    submitted_.fetch_add(1);
    std::promise<InferenceResult> promise;
    std::future<InferenceResult> future = promise.get_future();
    const auto start = std::chrono::steady_clock::now();
    obs::TraceSpan span("runtime", "request", config_.traceRequests,
                        /*sampled_root=*/true);
    span.arg("id", static_cast<double>(request.id));
    obs::recordFlowStep("runtime", "request.flow", request.traceId,
                        config_.traceRequests);

    if (request.cancel && request.cancel->load(std::memory_order_acquire)) {
        inlineStats_.scalar("cancelled").inc();
        obs::MetricsRegistry::global().counter("runtime.cancelled").inc();
        InferenceResult result;
        result.id = request.id;
        result.error = RuntimeErrorKind::Cancelled;
        result.errorMessage = "request cancelled before evaluation";
        promise.set_value(std::move(result));
        noteCompleted(-1.0);
        return future;
    }

    double service = -1.0;
    bool violated = false;
    try {
        InferenceResult result = inlineReplica_->run(request);
        // Inline-mode mirror of the worker's hedged re-execution: a
        // flagged result is re-run once on the lazily built fallback
        // before the promise settles (see Worker::handleViolation).
        if (result.integrity.violations > 0 && result.ok()) {
            violated = true;
            inlineStats_.scalar("abft.violations").inc();
            obs::MetricsRegistry::global()
                .counter("abft.request_violations")
                .inc();
            obs::recordInstant("runtime", "abft.violation",
                               config_.traceRequests);
            if (config_.abft.reExecute && config_.abft.fallback) {
                if (!inlineAbftFallback_)
                    inlineAbftFallback_ = config_.abft.fallback(0);
                if (inlineAbftFallback_) {
                    try {
                        InferenceResult redo =
                            inlineAbftFallback_->run(request);
                        // Keep the original's detection verdict (see
                        // Worker::handleViolation).
                        redo.integrity.checks += result.integrity.checks;
                        redo.integrity.violations +=
                            result.integrity.violations;
                        redo.integrity.reExecuted = true;
                        result = std::move(redo);
                        inlineStats_.scalar("abft.reexecutions").inc();
                        obs::MetricsRegistry::global()
                            .counter("abft.reexecutions")
                            .inc();
                        obs::recordInstant("runtime", "abft.reexecute",
                                           config_.traceRequests);
                    } catch (...) {
                        // Keep the flagged original; a faulting
                        // fallback must not unseat a typed answer.
                        obs::MetricsRegistry::global()
                            .counter("abft.reexec_fault")
                            .inc();
                    }
                }
            }
        }
        const auto end = std::chrono::steady_clock::now();
        result.id = request.id;
        result.workerId = -1;
        result.serviceSeconds =
            std::chrono::duration<double>(end - start).count();
        span.arg("service_ms", 1e3 * result.serviceSeconds);
        inlineStats_.scalar("requests").inc();
        inlineStats_.scalar("latency_ms").sample(1e3 *
                                                 result.serviceSeconds);
        inlineStats_.scalar("service_ms").sample(1e3 *
                                                 result.serviceSeconds);
        inlineStats_.scalar("wait_ms").sample(0.0);
        inlineStats_
            .histogram("latency_ms.hist", kLatencyLoMs, kLatencyHiMs,
                       kLatencyBuckets)
            .sample(1e3 * result.serviceSeconds);
        inlineStats_
            .histogram("service_ms.hist", kLatencyLoMs, kLatencyHiMs,
                       kLatencyBuckets)
            .sample(1e3 * result.serviceSeconds);
        inlineStats_
            .histogram("wait_ms.hist", kLatencyLoMs, kLatencyHiMs,
                       kLatencyBuckets)
            .sample(0.0);
        inlineStats_.scalar("spikes").add(
            static_cast<double>(result.spikes));
        service = result.serviceSeconds;
        promise.set_value(std::move(result));
    } catch (const std::exception &e) {
        inlineStats_.scalar("failures").inc();
        obs::MetricsRegistry::global().counter("runtime.replica_fault").inc();
        obs::recordInstant("runtime", "request.failed",
                           config_.traceRequests);
        InferenceResult result;
        result.id = request.id;
        result.workerId = -1;
        result.error = RuntimeErrorKind::ReplicaFault;
        result.errorMessage = e.what();
        promise.set_value(std::move(result));
    } catch (...) {
        inlineStats_.scalar("failures").inc();
        obs::MetricsRegistry::global().counter("runtime.replica_fault").inc();
        obs::recordInstant("runtime", "request.failed",
                           config_.traceRequests);
        InferenceResult result;
        result.id = request.id;
        result.workerId = -1;
        result.error = RuntimeErrorKind::ReplicaFault;
        result.errorMessage = "replica threw a non-std exception";
        promise.set_value(std::move(result));
    }

    // A violation escalates the health probe immediately (promise
    // already settled), mirroring the worker path: no waiting for the
    // probeEvery cadence once detection has flagged the replica.
    if (violated && config_.health && config_.health->config().enabled) {
        try {
            config_.health->probeNow(0, inlineReplica_);
        } catch (...) {
            inlineStats_.scalar("probe_failures").inc();
            obs::MetricsRegistry::global()
                .counter("health.probe_fault")
                .inc();
            obs::recordInstant("runtime", "health.probe_fault",
                               config_.traceRequests);
        }
    }

    // Probe after a successful request, with the promise already
    // settled and outside the try/catch above: a throwing probe is
    // absorbed and counted here -- re-entering the catch would call
    // set_value on a satisfied promise and throw std::future_error at
    // the submitter instead of returning the typed-result future.
    if (service >= 0.0 && config_.health &&
        config_.health->config().enabled) {
        try {
            config_.health->afterRequest(0, inlineReplica_);
        } catch (...) {
            inlineStats_.scalar("probe_failures").inc();
            obs::MetricsRegistry::global()
                .counter("health.probe_fault")
                .inc();
            obs::recordInstant("runtime", "health.probe_fault",
                               config_.traceRequests);
        }
    }
    noteCompleted(service);
    return future;
}

void
InferenceEngine::noteServiceTime(double seconds)
{
    double current = serviceEwmaSec_.load(std::memory_order_relaxed);
    double next;
    do {
        next = current <= 0.0
                   ? seconds
                   : current + config_.serviceEwmaAlpha * (seconds - current);
    } while (!serviceEwmaSec_.compare_exchange_weak(
        current, next, std::memory_order_relaxed));
}

void
InferenceEngine::noteCompleted(double service_seconds)
{
    if (service_seconds >= 0.0)
        noteServiceTime(service_seconds);
    completed_.fetch_add(1);
    {
        std::lock_guard<std::mutex> lock(idleMutex_);
    }
    idleCv_.notify_all();
}

void
InferenceEngine::rollbackSubmitted()
{
    submitted_.fetch_sub(1);
    // The decrement can flip waitIdle's predicate true, so wake any
    // waiter the same way noteCompleted does.
    {
        std::lock_guard<std::mutex> lock(idleMutex_);
    }
    idleCv_.notify_all();
}

void
InferenceEngine::waitIdle()
{
    std::unique_lock<std::mutex> lock(idleMutex_);
    idleCv_.wait(lock,
                 [&] { return completed_.load() >= submitted_.load(); });
}

void
InferenceEngine::shutdown()
{
    std::lock_guard<std::mutex> lock(shutdownMutex_);
    accepting_.store(false);
    if (joined_)
        return;
    NEBULA_DEBUG("runtime", "engine shutdown: waiting for ",
                 submitted_.load() - completed_.load(),
                 " in-flight requests");
    waitIdle();
    queue_.close();
    joinWorkers();
}

void
InferenceEngine::shutdownNow()
{
    std::lock_guard<std::mutex> lock(shutdownMutex_);
    accepting_.store(false);
    if (joined_)
        return;
    auto pending = queue_.drain();
    queue_.close();
    for (QueueItem &item : pending) {
        InferenceResult result;
        result.id = item.request.id;
        result.error = RuntimeErrorKind::EngineStopped;
        result.errorMessage = "request discarded: engine shut down";
        item.promise.set_value(std::move(result));
        noteCompleted(-1.0);
    }
    waitIdle();
    joinWorkers();
}

void
InferenceEngine::joinWorkers()
{
    for (auto &worker : workers_)
        worker->join();
    joined_ = true;
}

ChipStats
InferenceEngine::chipStats()
{
    waitIdle();
    ChipStats total;
    if (inlineReplica_ && inlineReplica_->chipStats())
        total.merge(*inlineReplica_->chipStats());
    for (const auto &worker : workers_)
        if (const ChipStats *stats = worker->replica().chipStats())
            total.merge(*stats);
    return total;
}

void
InferenceEngine::withReplicas(const std::function<void(ChipReplica &)> &fn)
{
    NEBULA_ASSERT(fn, "null replica function");
    // Quiesce first: workers blocked in pop() are not touching their
    // replica, and the completed_ handshake in noteCompleted gives this
    // thread a happens-before edge over each worker's last replica use.
    // The caller must not submit concurrently with this call.
    waitIdle();
    if (inlineReplica_)
        fn(*inlineReplica_);
    for (auto &worker : workers_)
        fn(*worker->replicaSlot());
}

size_t
InferenceEngine::quarantinedCount() const
{
    std::lock_guard<std::mutex> lock(quarantineMutex_);
    return quarantined_.size();
}

StatGroup
InferenceEngine::runtimeStats()
{
    waitIdle();
    StatGroup group("runtime");
    if (inlineReplica_)
        group.merge(inlineStats_);
    for (const auto &worker : workers_) {
        group.merge(worker->stats());
        if (worker->stats().hasScalar("requests"))
            group
                .scalar("worker" + std::to_string(worker->id()) +
                        ".requests")
                .add(worker->stats().scalarAt("requests").sum());
    }
    group.scalar("queue.capacity").add(
        static_cast<double>(queue_.capacity()));
    group.scalar("queue.high_water").add(
        static_cast<double>(queue_.highWater()));
    group.scalar("submitted").add(static_cast<double>(submitted_.load()));
    group.scalar("completed").add(static_cast<double>(completed_.load()));
    group.scalar("shed").add(static_cast<double>(shed_.load()));
    group.scalar("worker_restarts").add(
        static_cast<double>(restarts_.load()));
    return group;
}

InferenceResult
submitWithRetry(InferenceEngine &engine, const Tensor &image,
                int max_attempts, const BackoffConfig &backoff,
                uint64_t backoff_seed)
{
    NEBULA_ASSERT(max_attempts >= 1, "need at least one attempt");
    ExponentialBackoff delays(backoff, backoff_seed);
    InferenceResult result;
    for (int attempt = 1;; ++attempt) {
        result = engine.submit(image).get();
        if (result.error != RuntimeErrorKind::ReplicaFault ||
            attempt >= max_attempts)
            return result;
        obs::MetricsRegistry::global().counter("runtime.retry").inc();
        obs::recordInstant("runtime", "request.retry");
        std::this_thread::sleep_for(
            std::chrono::nanoseconds(delays.nextDelayNs()));
    }
}

} // namespace nebula
