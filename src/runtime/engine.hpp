/**
 * @file
 * Concurrent batched inference engine: a pool of worker threads, each
 * owning an identically-programmed NebulaChip replica, fed from one
 * bounded MPMC request queue with future-based result delivery.
 *
 *   submit / submitBatch --> [bounded queue] --> worker 0..N-1
 *                                                  |  private replica
 *                                                  v
 *                                        promise -> std::future
 *
 * Determinism guarantee: every request carries its own encoder seed
 * (derived from the request id), and replicas are programmed from the
 * same prototype with the same chip seed, so each request's output is
 * bit-identical no matter how many workers serve the pool or in which
 * order requests complete. numWorkers == 0 selects an inline mode that
 * executes synchronously on the submitting thread -- the reference
 * against which the threaded modes are tested.
 *
 * Resilience: every returned future resolves to a typed terminal
 * outcome (InferenceResult::error) -- ok, Timeout, Shed, EngineStopped,
 * ReplicaFault or Cancelled -- never a broken promise. Admission
 * control (EngineConfig::shedPolicy) can shed instead of blocking under
 * overload; per-request deadlines are enforced at dequeue; a worker
 * whose replica faults repeatedly is restarted with a fresh replica by
 * the supervisor; an attached HealthMonitor closes the loop on silent
 * crossbar drift (probe / repair / demote).
 *
 * Statistics: workers accumulate latency/throughput counters and chip
 * stats replica-locally (no locks on the hot path); chipStats() /
 * runtimeStats() quiesce the pool (waitIdle) and merge.
 */

#ifndef NEBULA_RUNTIME_ENGINE_HPP
#define NEBULA_RUNTIME_ENGINE_HPP

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "arch/chip.hpp"
#include "common/stats.hpp"
#include "runtime/backoff.hpp"
#include "runtime/config.hpp"
#include "runtime/error.hpp"
#include "runtime/replica.hpp"
#include "runtime/request.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/worker.hpp"

namespace nebula {

/** Worker-pool inference engine over replicated NEBULA chips. */
class InferenceEngine
{
  public:
    /**
     * Build the pool: @p factory is invoked once per worker (or once
     * total in inline mode) and must produce identically-programmed
     * replicas for the determinism guarantee to hold. The engine keeps
     * a copy of @p factory for supervisor restarts.
     */
    InferenceEngine(EngineConfig config, const ReplicaFactory &factory);

    /** Drains and joins (shutdown()) if the caller has not already. */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Enqueue one image with engine-default timesteps/deadline and a
     * seed derived from the assigned request id. Under ShedPolicy::Block
     * a full queue blocks the submitter (backpressure); the other
     * policies may instead return an already-resolved future carrying a
     * Shed outcome. Throws EngineStoppedError once shutdown has begun.
     */
    std::future<InferenceResult> submit(const Tensor &image);

    /**
     * Enqueue a fully-specified request. The id is always overwritten
     * with the engine's monotone counter; timesteps == 0, seed == 0 and
     * deadlineNs == 0 are replaced by the engine defaults/derivation.
     */
    std::future<InferenceResult> submit(InferenceRequest request);

    /**
     * Enqueue without blocking, regardless of shed policy.
     * @return false if the queue is full; @p out is untouched. A
     * refused call burns one request id (the shared counter is never
     * rolled back, to stay race-free with concurrent producers).
     */
    bool trySubmit(const Tensor &image, std::future<InferenceResult> &out);

    /** Enqueue a whole batch (blocking); one future per image. */
    std::vector<std::future<InferenceResult>>
    submitBatch(const std::vector<Tensor> &images);

    /** Block until every submitted request has completed. */
    void waitIdle();

    /**
     * Stop accepting new requests, drain the queue, join the workers.
     * Every outstanding future is fulfilled. Idempotent.
     */
    void shutdown();

    /**
     * Stop accepting, resolve queued (not yet running) requests to a
     * typed EngineStopped outcome without evaluating them, finish
     * in-flight ones, join the workers. Idempotent with shutdown().
     */
    void shutdownNow();

    /** True once shutdown()/shutdownNow() has begun. */
    bool isShutdown() const { return !accepting_.load(); }

    /**
     * Aggregated chip counters across all replicas (quiesces first).
     * Equals the counters of one chip serving the same requests
     * sequentially, by construction of ChipStats::merge.
     */
    ChipStats chipStats();

    /**
     * Merged runtime statistics (quiesces first): request latency /
     * service / wait distributions across workers, per-worker request
     * counts, shed/timeout/fault counters, queue high-water mark.
     */
    StatGroup runtimeStats();

    /**
     * Quiesce the pool and apply @p fn to every serving replica (inline
     * or per-worker). This is the administration hatch the resilience
     * tests and the chaos mode use to mutate live replicas -- e.g.
     * re-programming them under a retention-decay ramp to emulate aged
     * crossbars -- without tearing the engine down.
     */
    void withReplicas(const std::function<void(ChipReplica &)> &fn);

    /** Attached health monitor (null when none was configured). */
    HealthMonitor *health() const { return config_.health.get(); }

    /** Seed a request with this id would get (for reference runs). */
    uint64_t
    seedFor(uint64_t id) const
    {
        return deriveRequestSeed(config_.seedSalt, id);
    }

    uint64_t submitted() const { return submitted_.load(); }
    uint64_t completed() const { return completed_.load(); }

    /**
     * Requests accepted but not yet completed (queued + being
     * evaluated). Two relaxed loads -- cheap enough for admission
     * layers and load generators to poll per request, with no
     * MetricsRegistry scrape. Transiently conservative (high by up to
     * one) while an admission refusal is being rolled back.
     */
    uint64_t inflight() const
    {
        const uint64_t completed = completed_.load();
        const uint64_t submitted = submitted_.load();
        return submitted > completed ? submitted - completed : 0;
    }

    size_t queueDepth() const { return queue_.size(); }
    int numWorkers() const { return static_cast<int>(workers_.size()); }
    const EngineConfig &config() const { return config_; }

    /** Requests refused at admission (typed Shed outcomes). */
    uint64_t shedCount() const { return shed_.load(); }

    /** Supervisor restarts performed across the pool. */
    uint64_t workerRestarts() const { return restarts_.load(); }

    /**
     * Replicas currently retained in quarantine, in restart order.
     * Retention is bounded by EngineConfig::quarantineCapacity (newest
     * kept); workerRestarts() counts all restarts ever performed.
     */
    size_t quarantinedCount() const;

    /**
     * Running service-time estimate (seconds) driving DeadlineAware
     * admission; 0 until the first request completes.
     */
    double serviceEstimateSeconds() const
    {
        return serviceEwmaSec_.load(std::memory_order_relaxed);
    }

  private:
    /** Assign id/seed/timesteps/deadline defaults to a request. */
    void finalizeRequest(InferenceRequest &request);

    /** Execute a request synchronously on the inline replica. */
    std::future<InferenceResult> runInline(InferenceRequest request);

    /** Resolve a future immediately with a typed Shed outcome. */
    std::future<InferenceResult> shedRequest(InferenceRequest request,
                                             const char *why);

    /** Completion callback shared by workers and inline mode. */
    void noteCompleted(double service_seconds);

    /**
     * Undo the pre-enqueue submitted_ increment when admission refuses
     * a request (shed / closed queue), waking waitIdle waiters.
     */
    void rollbackSubmitted();

    /** Fold one measured service time into the admission EWMA. */
    void noteServiceTime(double seconds);

    /** Admission decision for DeadlineAware (true: shed now). */
    bool predictsDeadlineMiss(const InferenceRequest &request) const;

    void joinWorkers();

    EngineConfig config_;
    ReplicaFactory factory_; //!< kept for supervisor restarts
    BoundedQueue<QueueItem> queue_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::unique_ptr<ChipReplica> inlineReplica_; //!< numWorkers == 0
    StatGroup inlineStats_{"inline"};

    /** Lazily built ABFT re-execution fallback for inline mode. */
    std::unique_ptr<ChipReplica> inlineAbftFallback_;

    std::atomic<uint64_t> nextId_{0};
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<uint64_t> shed_{0};
    std::atomic<uint64_t> restarts_{0};
    std::atomic<bool> accepting_{true};
    std::atomic<double> serviceEwmaSec_{0.0};

    mutable std::mutex quarantineMutex_;
    std::vector<std::unique_ptr<ChipReplica>> quarantined_;

    std::mutex idleMutex_;
    std::condition_variable idleCv_;

    std::mutex shutdownMutex_;
    bool joined_ = false;
};

/**
 * Submit @p image and wait for its result, retrying transient
 * ReplicaFault outcomes under seeded exponential backoff with jitter
 * (deterministic in @p backoff's config and @p backoff_seed). Other
 * outcomes -- ok, Timeout, Shed, Cancelled -- are terminal and returned
 * as-is; EngineStoppedError propagates. At most @p max_attempts
 * submissions are made; the last result is returned even if it is still
 * a fault.
 */
InferenceResult submitWithRetry(InferenceEngine &engine, const Tensor &image,
                                int max_attempts = 3,
                                const BackoffConfig &backoff = {},
                                uint64_t backoff_seed = 0x7265747279ull);

} // namespace nebula

#endif // NEBULA_RUNTIME_ENGINE_HPP
