/**
 * @file
 * Concurrent batched inference engine: a pool of worker threads, each
 * owning an identically-programmed NebulaChip replica, fed from one
 * bounded MPMC request queue with future-based result delivery.
 *
 *   submit / submitBatch --> [bounded queue] --> worker 0..N-1
 *                                                  |  private replica
 *                                                  v
 *                                        promise -> std::future
 *
 * Determinism guarantee: every request carries its own encoder seed
 * (derived from the request id), and replicas are programmed from the
 * same prototype with the same chip seed, so each request's output is
 * bit-identical no matter how many workers serve the pool or in which
 * order requests complete. numWorkers == 0 selects an inline mode that
 * executes synchronously on the submitting thread -- the reference
 * against which the threaded modes are tested.
 *
 * Statistics: workers accumulate latency/throughput counters and chip
 * stats replica-locally (no locks on the hot path); chipStats() /
 * runtimeStats() quiesce the pool (waitIdle) and merge.
 */

#ifndef NEBULA_RUNTIME_ENGINE_HPP
#define NEBULA_RUNTIME_ENGINE_HPP

#include <atomic>
#include <condition_variable>
#include <future>
#include <memory>
#include <mutex>
#include <vector>

#include "arch/chip.hpp"
#include "common/stats.hpp"
#include "runtime/config.hpp"
#include "runtime/replica.hpp"
#include "runtime/request.hpp"
#include "runtime/request_queue.hpp"
#include "runtime/worker.hpp"

namespace nebula {

/** Worker-pool inference engine over replicated NEBULA chips. */
class InferenceEngine
{
  public:
    /**
     * Build the pool: @p factory is invoked once per worker (or once
     * total in inline mode) and must produce identically-programmed
     * replicas for the determinism guarantee to hold.
     */
    InferenceEngine(EngineConfig config, const ReplicaFactory &factory);

    /** Drains and joins (shutdown()) if the caller has not already. */
    ~InferenceEngine();

    InferenceEngine(const InferenceEngine &) = delete;
    InferenceEngine &operator=(const InferenceEngine &) = delete;

    /**
     * Enqueue one image with engine-default timesteps and a seed
     * derived from the assigned request id. Blocks while the queue is
     * full (backpressure). Throws if the engine is shut down.
     */
    std::future<InferenceResult> submit(const Tensor &image);

    /**
     * Enqueue a fully-specified request. The id is always overwritten
     * with the engine's monotone counter; timesteps == 0 and seed == 0
     * are replaced by the engine defaults/derivation.
     */
    std::future<InferenceResult> submit(InferenceRequest request);

    /**
     * Enqueue without blocking.
     * @return false if the queue is full; @p out is untouched. A
     * refused call burns one request id (the shared counter is never
     * rolled back, to stay race-free with concurrent producers).
     */
    bool trySubmit(const Tensor &image, std::future<InferenceResult> &out);

    /** Enqueue a whole batch (blocking); one future per image. */
    std::vector<std::future<InferenceResult>>
    submitBatch(const std::vector<Tensor> &images);

    /** Block until every submitted request has completed. */
    void waitIdle();

    /**
     * Stop accepting new requests, drain the queue, join the workers.
     * Every outstanding future is fulfilled. Idempotent.
     */
    void shutdown();

    /**
     * Stop accepting, discard queued (not yet running) requests --
     * their futures receive a std::runtime_error -- finish in-flight
     * ones, join the workers. Idempotent with shutdown().
     */
    void shutdownNow();

    /** True once shutdown()/shutdownNow() has begun. */
    bool isShutdown() const { return !accepting_.load(); }

    /**
     * Aggregated chip counters across all replicas (quiesces first).
     * Equals the counters of one chip serving the same requests
     * sequentially, by construction of ChipStats::merge.
     */
    ChipStats chipStats();

    /**
     * Merged runtime statistics (quiesces first): request latency /
     * service / wait distributions across workers, per-worker request
     * counts, queue high-water mark and capacity.
     */
    StatGroup runtimeStats();

    /** Seed a request with this id would get (for reference runs). */
    uint64_t
    seedFor(uint64_t id) const
    {
        return deriveRequestSeed(config_.seedSalt, id);
    }

    uint64_t submitted() const { return submitted_.load(); }
    uint64_t completed() const { return completed_.load(); }
    size_t queueDepth() const { return queue_.size(); }
    int numWorkers() const { return static_cast<int>(workers_.size()); }
    const EngineConfig &config() const { return config_; }

  private:
    /** Assign id/seed/timesteps defaults to a request. */
    void finalizeRequest(InferenceRequest &request);

    /** Execute a request synchronously on the inline replica. */
    std::future<InferenceResult> runInline(InferenceRequest request);

    /** Completion callback shared by workers and inline mode. */
    void noteCompleted();

    void joinWorkers();

    EngineConfig config_;
    BoundedQueue<QueueItem> queue_;
    std::vector<std::unique_ptr<Worker>> workers_;
    std::unique_ptr<ChipReplica> inlineReplica_; //!< numWorkers == 0
    StatGroup inlineStats_{"inline"};

    std::atomic<uint64_t> nextId_{0};
    std::atomic<uint64_t> submitted_{0};
    std::atomic<uint64_t> completed_{0};
    std::atomic<bool> accepting_{true};

    std::mutex idleMutex_;
    std::condition_variable idleCv_;

    std::mutex shutdownMutex_;
    bool joined_ = false;
};

} // namespace nebula

#endif // NEBULA_RUNTIME_ENGINE_HPP
