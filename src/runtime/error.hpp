/**
 * @file
 * Typed error taxonomy for the inference runtime.
 *
 * Every request submitted to the InferenceEngine resolves to a typed
 * terminal outcome carried *inside* InferenceResult -- the future is
 * always fulfilled with a value, never a broken promise, so callers can
 * branch on the kind (retry a transient ReplicaFault, drop a Shed
 * request, surface a Timeout) without exception plumbing on the hot
 * path. The only exception the engine still throws is
 * EngineStoppedError from submit()/trySubmit() after shutdown, because
 * there is no future to deliver a value through at that point.
 */

#ifndef NEBULA_RUNTIME_ERROR_HPP
#define NEBULA_RUNTIME_ERROR_HPP

#include <cstdint>
#include <stdexcept>
#include <string>

namespace nebula {

/** Terminal outcome kind of one inference request. */
enum class RuntimeErrorKind : uint8_t
{
    None = 0,      //!< request completed normally
    Timeout,       //!< deadline expired before evaluation started
    Shed,          //!< refused at admission (queue full / predicted miss)
    EngineStopped, //!< engine shut down before the request could run
    ReplicaFault,  //!< the serving replica threw (transient; retryable)
    Cancelled,     //!< caller raised the request's cancel flag
};

/** Stable lower-case name ("timeout", "shed", ...). */
inline const char *
toString(RuntimeErrorKind kind)
{
    switch (kind) {
    case RuntimeErrorKind::None: return "ok";
    case RuntimeErrorKind::Timeout: return "timeout";
    case RuntimeErrorKind::Shed: return "shed";
    case RuntimeErrorKind::EngineStopped: return "engine_stopped";
    case RuntimeErrorKind::ReplicaFault: return "replica_fault";
    case RuntimeErrorKind::Cancelled: return "cancelled";
    }
    return "unknown";
}

/**
 * Thrown by submit()/trySubmit() once shutdown has begun. Derives from
 * std::runtime_error so pre-taxonomy call sites that caught the bare
 * type keep working.
 */
class EngineStoppedError : public std::runtime_error
{
  public:
    explicit EngineStoppedError(const std::string &what)
        : std::runtime_error(what)
    {
    }
};

} // namespace nebula

#endif // NEBULA_RUNTIME_ERROR_HPP
