#include "runtime/replica.hpp"

#include <memory>

#include "common/logging.hpp"

namespace nebula {

AnnChipReplica::AnnChipReplica(const Network &prototype,
                               const QuantizationResult &quant,
                               const NebulaConfig &config,
                               double variation_sigma, uint64_t chip_seed,
                               const ReliabilityConfig &reliability)
    : net_(prototype.clone()), quant_(quant),
      chip_(config, variation_sigma, chip_seed)
{
    chip_.setReliability(reliability);
    chip_.programAnn(net_, quant_);
}

InferenceResult
AnnChipReplica::run(const InferenceRequest &request)
{
    InferenceResult result;
    result.logits = chip_.runAnn(request.image);
    result.predictedClass = result.logits.argmaxRow(0);
    return result;
}

SnnChipReplica::SnnChipReplica(const SpikingModel &prototype,
                               const NebulaConfig &config,
                               double variation_sigma, uint64_t chip_seed,
                               const ReliabilityConfig &reliability)
    : model_(prototype.clone()), chip_(config, variation_sigma, chip_seed)
{
    chip_.setReliability(reliability);
    chip_.programSnn(model_);
}

InferenceResult
SnnChipReplica::run(const InferenceRequest &request)
{
    NEBULA_ASSERT(request.timesteps > 0,
                  "SNN request needs a timestep count");
    const SnnRunResult snn =
        chip_.runSnn(request.image, request.timesteps, request.seed);
    InferenceResult result;
    result.logits = snn.logits;
    result.predictedClass = snn.predictedClass();
    result.timesteps = snn.timesteps;
    result.spikes = snn.totalSpikes;
    return result;
}

HybridReplica::HybridReplica(std::unique_ptr<HybridNetwork> hybrid)
    : hybrid_(std::move(hybrid))
{
    NEBULA_ASSERT(hybrid_, "null hybrid network");
}

InferenceResult
HybridReplica::run(const InferenceRequest &request)
{
    NEBULA_ASSERT(request.timesteps > 0,
                  "hybrid request needs a timestep count");
    const HybridRunResult hyb =
        hybrid_->run(request.image, request.timesteps, request.seed);
    InferenceResult result;
    result.logits = hyb.logits;
    result.predictedClass = hyb.predictedClass();
    result.timesteps = hyb.timesteps;
    result.spikes = hyb.prefixSpikes;
    return result;
}

ReplicaFactory
makeAnnReplicaFactory(const Network &prototype,
                      const QuantizationResult &quant,
                      const NebulaConfig &config, double variation_sigma,
                      uint64_t chip_seed, const ReliabilityConfig &reliability)
{
    auto proto = std::make_shared<const Network>(prototype.clone());
    return [proto, quant, config, variation_sigma, chip_seed,
            reliability](int) -> std::unique_ptr<ChipReplica> {
        return std::make_unique<AnnChipReplica>(*proto, quant, config,
                                                variation_sigma, chip_seed,
                                                reliability);
    };
}

ReplicaFactory
makeSnnReplicaFactory(const SpikingModel &prototype,
                      const NebulaConfig &config, double variation_sigma,
                      uint64_t chip_seed, const ReliabilityConfig &reliability)
{
    auto proto = std::make_shared<const SpikingModel>(prototype.clone());
    return [proto, config, variation_sigma, chip_seed,
            reliability](int) -> std::unique_ptr<ChipReplica> {
        return std::make_unique<SnnChipReplica>(*proto, config,
                                                variation_sigma, chip_seed,
                                                reliability);
    };
}

ReplicaFactory
makeHybridReplicaFactory(const Network &ann, const Tensor &calibration,
                         int ann_layers, const ConversionConfig &config)
{
    auto proto = std::make_shared<const Network>(ann.clone());
    auto calib = std::make_shared<const Tensor>(calibration);
    return [proto, calib, ann_layers,
            config](int) -> std::unique_ptr<ChipReplica> {
        // HybridNetwork folds BN into its source in place, so each
        // worker converts a private clone of the prototype.
        Network source = proto->clone();
        auto hybrid = std::make_unique<HybridNetwork>(source, *calib,
                                                      ann_layers, config);
        return std::make_unique<HybridReplica>(std::move(hybrid));
    };
}

} // namespace nebula
