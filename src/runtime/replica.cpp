#include "runtime/replica.hpp"

#include <memory>

#include "common/logging.hpp"
#include "snn/snn_sim.hpp"

namespace nebula {

AnnChipReplica::AnnChipReplica(const Network &prototype,
                               const QuantizationResult &quant,
                               const NebulaConfig &config,
                               double variation_sigma, uint64_t chip_seed,
                               const ReliabilityConfig &reliability)
    : net_(prototype.clone()), quant_(quant),
      chip_(config, variation_sigma, chip_seed)
{
    chip_.setReliability(reliability);
    chip_.programAnn(net_, quant_);
}

InferenceResult
AnnChipReplica::run(const InferenceRequest &request)
{
    const ChipStats before = chip_.stats();
    InferenceResult result;
    result.logits = chip_.runAnn(request.image);
    result.predictedClass = result.logits.argmaxRow(0);
    result.energy = estimateEnergyBreakdown(before, chip_.stats(), Mode::ANN);
    result.integrity.checks = chip_.stats().abftChecks - before.abftChecks;
    result.integrity.violations =
        chip_.stats().abftViolations - before.abftViolations;
    return result;
}

std::vector<InferenceResult>
AnnChipReplica::runBatch(
    const std::vector<const InferenceRequest *> &requests)
{
    std::vector<Tensor> images;
    images.reserve(requests.size());
    for (const InferenceRequest *request : requests)
        images.push_back(request->image);
    AnnBatchResult batch = chip_.runAnnBatch(images);
    std::vector<InferenceResult> results;
    results.reserve(requests.size());
    for (size_t b = 0; b < requests.size(); ++b) {
        InferenceResult result;
        result.logits = std::move(batch.logits[b]);
        result.predictedClass = result.logits.argmaxRow(0);
        // Per-request attribution from this request's own slice of the
        // batch activity (clean deltas, not accumulated-total diffs).
        result.energy = estimateEnergyBreakdown(
            ChipStats(), batch.perImage[b], Mode::ANN);
        result.integrity.checks = batch.perImage[b].abftChecks;
        result.integrity.violations = batch.perImage[b].abftViolations;
        results.push_back(std::move(result));
    }
    return results;
}

bool
AnnChipReplica::reprogram(const ReliabilityConfig &rel)
{
    chip_.setReliability(rel);
    chip_.programAnn(net_, quant_);
    return true;
}

SnnChipReplica::SnnChipReplica(const SpikingModel &prototype,
                               const NebulaConfig &config,
                               double variation_sigma, uint64_t chip_seed,
                               const ReliabilityConfig &reliability)
    : model_(prototype.clone()), chip_(config, variation_sigma, chip_seed)
{
    chip_.setReliability(reliability);
    chip_.programSnn(model_);
}

InferenceResult
SnnChipReplica::run(const InferenceRequest &request)
{
    NEBULA_ASSERT(request.timesteps > 0,
                  "SNN request needs a timestep count");
    const ChipStats before = chip_.stats();
    const SnnRunResult snn =
        chip_.runSnn(request.image, request.timesteps, request.seed);
    InferenceResult result;
    result.logits = snn.logits;
    result.predictedClass = snn.predictedClass();
    result.timesteps = snn.timesteps;
    result.spikes = snn.totalSpikes;
    result.energy = estimateEnergyBreakdown(before, chip_.stats(), Mode::SNN);
    result.integrity.checks = chip_.stats().abftChecks - before.abftChecks;
    result.integrity.violations =
        chip_.stats().abftViolations - before.abftViolations;
    return result;
}

bool
SnnChipReplica::reprogram(const ReliabilityConfig &rel)
{
    chip_.setReliability(rel);
    chip_.programSnn(model_);
    return true;
}

HybridReplica::HybridReplica(std::unique_ptr<HybridNetwork> hybrid)
    : hybrid_(std::move(hybrid))
{
    NEBULA_ASSERT(hybrid_, "null hybrid network");
}

InferenceResult
HybridReplica::run(const InferenceRequest &request)
{
    NEBULA_ASSERT(request.timesteps > 0,
                  "hybrid request needs a timestep count");
    const HybridRunResult hyb =
        hybrid_->run(request.image, request.timesteps, request.seed);
    InferenceResult result;
    result.logits = hyb.logits;
    result.predictedClass = hyb.predictedClass();
    result.timesteps = hyb.timesteps;
    result.spikes = hyb.prefixSpikes;
    return result;
}

ReplicaFactory
makeAnnReplicaFactory(const Network &prototype,
                      const QuantizationResult &quant,
                      const NebulaConfig &config, double variation_sigma,
                      uint64_t chip_seed, const ReliabilityConfig &reliability)
{
    auto proto = std::make_shared<const Network>(prototype.clone());
    return [proto, quant, config, variation_sigma, chip_seed,
            reliability](int) -> std::unique_ptr<ChipReplica> {
        return std::make_unique<AnnChipReplica>(*proto, quant, config,
                                                variation_sigma, chip_seed,
                                                reliability);
    };
}

ReplicaFactory
makeSnnReplicaFactory(const SpikingModel &prototype,
                      const NebulaConfig &config, double variation_sigma,
                      uint64_t chip_seed, const ReliabilityConfig &reliability)
{
    auto proto = std::make_shared<const SpikingModel>(prototype.clone());
    return [proto, config, variation_sigma, chip_seed,
            reliability](int) -> std::unique_ptr<ChipReplica> {
        return std::make_unique<SnnChipReplica>(*proto, config,
                                                variation_sigma, chip_seed,
                                                reliability);
    };
}

namespace {

/** Functional ANN replica: the prototype network evaluated as-is. */
class FunctionalAnnReplica : public ChipReplica
{
  public:
    explicit FunctionalAnnReplica(const Network &prototype)
        : net_(prototype.clone())
    {
    }

    InferenceResult
    run(const InferenceRequest &request) override
    {
        std::vector<int> batched;
        batched.push_back(1);
        for (int d = 0; d < request.image.rank(); ++d)
            batched.push_back(request.image.dim(d));
        InferenceResult result;
        result.logits = net_.forward(request.image.reshaped(batched), false);
        result.predictedClass = result.logits.argmaxRow(0);
        return result;
    }

    const char *mode() const override { return "ann"; }

  private:
    Network net_;
};

/**
 * Functional spiking replica: a private converted model driven with the
 * request's encoder seed -- exactly the per-request seed stream the
 * chip backend gets from the engine, so the two legs differ only in the
 * crossbar model.
 */
class FunctionalSnnReplica : public ChipReplica
{
  public:
    FunctionalSnnReplica(const Network &prototype, const Tensor &calibration)
        : model_(convertClone(prototype, calibration)), sim_(model_)
    {
    }

    InferenceResult
    run(const InferenceRequest &request) override
    {
        NEBULA_ASSERT(request.timesteps > 0, "SNN request needs timesteps");
        const SnnRunResult snn =
            sim_.run(request.image, request.timesteps, request.seed);
        InferenceResult result;
        result.logits = snn.logits;
        result.predictedClass = snn.predictedClass();
        result.timesteps = request.timesteps;
        result.spikes = snn.totalSpikes;
        return result;
    }

    const char *mode() const override { return "snn"; }

  private:
    /** convertToSnn folds BN in place, so convert a private clone. */
    static SpikingModel
    convertClone(const Network &prototype, const Tensor &calibration)
    {
        Network clone = prototype.clone();
        return convertToSnn(clone, calibration);
    }

    SpikingModel model_;
    SnnSimulator sim_;
};

} // namespace

ReplicaFactory
makeFunctionalAnnReplicaFactory(const Network &prototype)
{
    auto proto = std::make_shared<const Network>(prototype.clone());
    return [proto](int) -> std::unique_ptr<ChipReplica> {
        return std::make_unique<FunctionalAnnReplica>(*proto);
    };
}

ReplicaFactory
makeFunctionalSnnReplicaFactory(const Network &prototype,
                                const Tensor &calibration)
{
    auto proto = std::make_shared<const Network>(prototype.clone());
    auto calib = std::make_shared<const Tensor>(calibration);
    return [proto, calib](int) -> std::unique_ptr<ChipReplica> {
        return std::make_unique<FunctionalSnnReplica>(*proto, *calib);
    };
}

ReplicaFactory
makeHybridReplicaFactory(const Network &ann, const Tensor &calibration,
                         int ann_layers, const ConversionConfig &config)
{
    auto proto = std::make_shared<const Network>(ann.clone());
    auto calib = std::make_shared<const Tensor>(calibration);
    return [proto, calib, ann_layers,
            config](int) -> std::unique_ptr<ChipReplica> {
        // HybridNetwork folds BN into its source in place, so each
        // worker converts a private clone of the prototype.
        Network source = proto->clone();
        auto hybrid = std::make_unique<HybridNetwork>(source, *calib,
                                                      ann_layers, config);
        return std::make_unique<HybridReplica>(std::move(hybrid));
    };
}

} // namespace nebula
