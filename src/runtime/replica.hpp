/**
 * @file
 * Worker-owned chip replicas. Each worker thread holds one replica: a
 * private clone of the (quantized or converted) network programmed onto
 * a private NebulaChip, so the hot path touches no shared mutable
 * state and needs no locks. Replicas built from the same prototype and
 * chip seed are programmed identically, which is what makes N-worker
 * execution bit-identical to a sequential run.
 */

#ifndef NEBULA_RUNTIME_REPLICA_HPP
#define NEBULA_RUNTIME_REPLICA_HPP

#include <functional>
#include <memory>
#include <vector>

#include "arch/chip.hpp"
#include "runtime/request.hpp"
#include "snn/hybrid.hpp"

namespace nebula {

/** One worker's private inference backend. */
class ChipReplica
{
  public:
    virtual ~ChipReplica() = default;

    /**
     * Execute one request. Fills the mode-dependent result fields
     * (logits, prediction, spikes, timesteps); the worker adds the
     * bookkeeping ones (id, timings, worker id).
     */
    virtual InferenceResult run(const InferenceRequest &request) = 0;

    /**
     * True when runBatch() coalesces requests into one shared chip
     * walk. The worker's batch gatherer only holds requests for
     * replicas that benefit; everything else keeps the solo path.
     */
    virtual bool supportsBatch() const { return false; }

    /**
     * Execute a micro-batch of requests. Per-request results must be
     * bit-identical (logits, prediction) to calling run() on the same
     * requests in order from the same chip state; per-request energy
     * attribution must be preserved. The default just loops run() so
     * every replica is batch-callable; chip-backed ANN replicas
     * override with the genuinely batched GEMM-style evaluation.
     */
    virtual std::vector<InferenceResult>
    runBatch(const std::vector<const InferenceRequest *> &requests)
    {
        std::vector<InferenceResult> results;
        results.reserve(requests.size());
        for (const InferenceRequest *request : requests)
            results.push_back(run(*request));
        return results;
    }

    /** Chip counters accumulated so far (null: replica has no chip). */
    virtual const ChipStats *chipStats() const { return nullptr; }

    /**
     * Programming accounting of the replica's chip (pulses, failed
     * cells, repaired columns); null when the replica has no chip.
     * Replicas are programmed identically, so any one replica's report
     * describes the programming flow of all of them.
     */
    virtual const ProgramReport *programReport() const { return nullptr; }

    /** Reset the replica's chip counters. */
    virtual void clearStats() {}

    /**
     * Re-program the replica's chip in place under @p rel (fault model,
     * write-verify, spare-column repair). The closed-loop health
     * monitor calls this both to *degrade* a replica (injecting a
     * retention-decay ramp, say) and to *repair* it (re-programming
     * with mitigations and a fresh -- undecayed -- fault state).
     * @return false when the replica has no reprogrammable chip
     * (functional / hybrid backends).
     */
    virtual bool reprogram(const ReliabilityConfig &) { return false; }

    /**
     * The replica's chip, when it supports in-place incremental updates
     * (chip-in-the-loop fine-tuning). Null for functional / hybrid
     * backends and for modes whose mapping has no incremental path.
     */
    virtual NebulaChip *tunableChip() { return nullptr; }

    /**
     * The replica's private programmed network (the chip's weight /
     * bias source), when tunableChip() is non-null. The in-situ tuner
     * needs both: host gradients accumulate on this network and deltas
     * flow back through the chip's update API.
     */
    virtual Network *tunableNetwork() { return nullptr; }

    /** Replica mode tag ("ann" / "snn" / "hybrid"). */
    virtual const char *mode() const = 0;
};

/**
 * Factory invoked once per worker (and once for the inline replica);
 * @p worker_id is 0-based. Factories returned by the helpers below own
 * a private clone of the prototype, so the caller's network may be
 * freed after the factory is created.
 */
using ReplicaFactory =
    std::function<std::unique_ptr<ChipReplica>(int worker_id)>;

/** ANN-mode replica: quantized network on ANN crossbars. */
class AnnChipReplica : public ChipReplica
{
  public:
    AnnChipReplica(const Network &prototype, const QuantizationResult &quant,
                   const NebulaConfig &config, double variation_sigma,
                   uint64_t chip_seed,
                   const ReliabilityConfig &reliability = {});

    InferenceResult run(const InferenceRequest &request) override;
    bool supportsBatch() const override { return true; }
    std::vector<InferenceResult> runBatch(
        const std::vector<const InferenceRequest *> &requests) override;
    const ChipStats *chipStats() const override { return &chip_.stats(); }
    const ProgramReport *programReport() const override
    {
        return &chip_.programReport();
    }
    void clearStats() override { chip_.clearStats(); }
    bool reprogram(const ReliabilityConfig &rel) override;
    NebulaChip *tunableChip() override { return &chip_; }
    Network *tunableNetwork() override { return &net_; }
    const char *mode() const override { return "ann"; }

  private:
    Network net_;
    QuantizationResult quant_;
    NebulaChip chip_;
};

/** SNN-mode replica: converted spiking model on SNN crossbars. */
class SnnChipReplica : public ChipReplica
{
  public:
    SnnChipReplica(const SpikingModel &prototype, const NebulaConfig &config,
                   double variation_sigma, uint64_t chip_seed,
                   const ReliabilityConfig &reliability = {});

    InferenceResult run(const InferenceRequest &request) override;
    const ChipStats *chipStats() const override { return &chip_.stats(); }
    const ProgramReport *programReport() const override
    {
        return &chip_.programReport();
    }
    void clearStats() override { chip_.clearStats(); }
    bool reprogram(const ReliabilityConfig &rel) override;
    const char *mode() const override { return "snn"; }

  private:
    SpikingModel model_;
    NebulaChip chip_;
};

/**
 * Hybrid-mode replica: spiking prefix + ANN suffix (functional model;
 * the hybrid pipeline is not chip-mapped yet, so chipStats() is null).
 */
class HybridReplica : public ChipReplica
{
  public:
    /** Takes ownership of an already-built hybrid network. */
    explicit HybridReplica(std::unique_ptr<HybridNetwork> hybrid);

    InferenceResult run(const InferenceRequest &request) override;
    const char *mode() const override { return "hybrid"; }

  private:
    std::unique_ptr<HybridNetwork> hybrid_;
};

/**
 * Factory producing identically-programmed ANN replicas. The prototype
 * must already be quantized (@p quant from quantizeNetwork); it is
 * cloned once into the factory and again per worker.
 */
ReplicaFactory makeAnnReplicaFactory(const Network &prototype,
                                     const QuantizationResult &quant,
                                     const NebulaConfig &config = {},
                                     double variation_sigma = 0.0,
                                     uint64_t chip_seed = 5,
                                     const ReliabilityConfig &reliability = {});

/** Factory producing identically-programmed SNN replicas. */
ReplicaFactory makeSnnReplicaFactory(const SpikingModel &prototype,
                                     const NebulaConfig &config = {},
                                     double variation_sigma = 0.0,
                                     uint64_t chip_seed = 5,
                                     const ReliabilityConfig &reliability = {});

/**
 * Factory producing hybrid replicas: each worker converts its own clone
 * of @p ann (BN must already be folded) with @p ann_layers trailing
 * weight layers kept in the ANN domain.
 */
ReplicaFactory makeHybridReplicaFactory(const Network &ann,
                                        const Tensor &calibration,
                                        int ann_layers,
                                        const ConversionConfig &config = {});

/**
 * Functional (non-chip) ANN replica factory: the prototype network is
 * evaluated as-is, with no crossbar model in the loop. Used by the
 * fault campaigns as the algorithmic baseline and by the health monitor
 * as the graceful-degradation fallback when a chip replica cannot be
 * repaired.
 */
ReplicaFactory makeFunctionalAnnReplicaFactory(const Network &prototype);

/**
 * Functional SNN replica factory: each replica converts a private clone
 * of @p prototype and runs the algorithmic SNN simulator with the
 * request's encoder seed (the same per-request derivation the chip
 * backend sees).
 */
ReplicaFactory makeFunctionalSnnReplicaFactory(const Network &prototype,
                                               const Tensor &calibration);

} // namespace nebula

#endif // NEBULA_RUNTIME_REPLICA_HPP
